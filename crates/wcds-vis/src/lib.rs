//! SVG rendering of deployments, backbones, and spanners.
//!
//! The paper communicates through figures (unit-disk graphs, WCDS
//! examples, packing arguments); this crate regenerates that style of
//! figure from live data structures, so every experiment can ship a
//! visual artifact alongside its table. Pure string generation — no
//! drawing dependencies.
//!
//! # Examples
//!
//! ```
//! use wcds_core::algo2::AlgorithmTwo;
//! use wcds_core::WcdsConstruction;
//! use wcds_geom::deploy;
//! use wcds_graph::UnitDiskGraph;
//! use wcds_vis::SceneBuilder;
//!
//! let udg = UnitDiskGraph::build(deploy::uniform(50, 4.0, 4.0, 1), 1.0);
//! let result = AlgorithmTwo::new().construct(udg.graph());
//! let svg = SceneBuilder::new(&udg)
//!     .background_edges(udg.graph())
//!     .highlight_edges(&result.spanner, "#111111", 1.6)
//!     .wcds(&result.wcds)
//!     .caption("Algorithm II backbone")
//!     .render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.ends_with("</svg>\n"));
//! ```

mod scene;

pub use scene::SceneBuilder;
