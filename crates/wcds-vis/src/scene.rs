use std::fmt::Write as _;
use wcds_core::Wcds;
use wcds_graph::{Graph, NodeId, UnitDiskGraph};

/// Pixels per geometry unit.
const SCALE: f64 = 60.0;
/// Canvas margin in pixels.
const MARGIN: f64 = 24.0;

/// Builds an SVG picture of a deployment layer by layer.
///
/// Layers are painted in insertion order: typically background edges
/// first, then a highlighted subgraph (the spanner), then node glyphs
/// (gray nodes as small circles, MIS dominators as filled black disks,
/// additional dominators as squares), then an optional caption.
#[derive(Debug)]
pub struct SceneBuilder<'a> {
    udg: &'a UnitDiskGraph,
    body: String,
    node_style: Vec<NodeGlyph>,
    caption: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeGlyph {
    Plain,
    MisDominator,
    AdditionalDominator,
}

impl<'a> SceneBuilder<'a> {
    /// Starts a scene over a geometric deployment.
    pub fn new(udg: &'a UnitDiskGraph) -> Self {
        Self {
            udg,
            body: String::new(),
            node_style: vec![NodeGlyph::Plain; udg.node_count()],
            caption: None,
        }
    }

    fn x(&self, u: NodeId) -> f64 {
        MARGIN + self.udg.point(u).x * SCALE
    }

    fn y(&self, u: NodeId) -> f64 {
        MARGIN + self.udg.point(u).y * SCALE
    }

    /// Paints every edge of `g` as a faint background line.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s node count differs from the deployment's.
    pub fn background_edges(mut self, g: &Graph) -> Self {
        assert_eq!(g.node_count(), self.udg.node_count(), "graph/deployment mismatch");
        for e in g.edges() {
            let (u, v) = e.endpoints();
            let _ = writeln!(
                self.body,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#c9c9c9" stroke-width="0.7"/>"##,
                self.x(u),
                self.y(u),
                self.x(v),
                self.y(v)
            );
        }
        self
    }

    /// Paints the edges of a subgraph (e.g. the spanner) in a strong
    /// color.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s node count differs from the deployment's.
    pub fn highlight_edges(mut self, g: &Graph, color: &str, width: f64) -> Self {
        assert_eq!(g.node_count(), self.udg.node_count(), "graph/deployment mismatch");
        for e in g.edges() {
            let (u, v) = e.endpoints();
            let _ = writeln!(
                self.body,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{color}" stroke-width="{width:.1}"/>"##,
                self.x(u),
                self.y(u),
                self.x(v),
                self.y(v)
            );
        }
        self
    }

    /// Marks the dominators of a WCDS: MIS dominators as filled disks,
    /// additional dominators as filled squares.
    pub fn wcds(mut self, wcds: &Wcds) -> Self {
        for &u in wcds.mis_dominators() {
            self.node_style[u] = NodeGlyph::MisDominator;
        }
        for &u in wcds.additional_dominators() {
            self.node_style[u] = NodeGlyph::AdditionalDominator;
        }
        self
    }

    /// Adds a caption under the picture.
    pub fn caption<S: Into<String>>(mut self, text: S) -> Self {
        self.caption = Some(text.into());
        self
    }

    /// Produces the final SVG document.
    pub fn render(mut self) -> String {
        // node glyphs over the edges
        for u in 0..self.udg.node_count() {
            let (x, y) = (self.x(u), self.y(u));
            match self.node_style[u] {
                NodeGlyph::Plain => {
                    let _ = writeln!(
                        self.body,
                        r##"<circle cx="{x:.1}" cy="{y:.1}" r="2.4" fill="#ffffff" stroke="#555555" stroke-width="1"/>"##
                    );
                }
                NodeGlyph::MisDominator => {
                    let _ = writeln!(
                        self.body,
                        r##"<circle cx="{x:.1}" cy="{y:.1}" r="4.2" fill="#111111"/>"##
                    );
                }
                NodeGlyph::AdditionalDominator => {
                    let _ = writeln!(
                        self.body,
                        r##"<rect x="{:.1}" y="{:.1}" width="7" height="7" fill="#b03030"/>"##,
                        x - 3.5,
                        y - 3.5
                    );
                }
            }
        }
        let bbox = wcds_geom::BoundingBox::enclosing(self.udg.points())
            .unwrap_or_else(|| wcds_geom::BoundingBox::with_size(1.0, 1.0));
        let mut height = bbox.max().y * SCALE + 2.0 * MARGIN;
        let width = bbox.max().x * SCALE + 2.0 * MARGIN;
        let mut tail = String::new();
        if let Some(caption) = &self.caption {
            height += 22.0;
            let _ = writeln!(
                tail,
                r##"<text x="{MARGIN}" y="{:.1}" font-family="sans-serif" font-size="14" fill="#222222">{}</text>"##,
                height - 8.0,
                escape(caption)
            );
        }
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
             viewBox=\"0 0 {width:.0} {height:.0}\">\n\
             <rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n{}{}</svg>\n",
            self.body, tail
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_core::algo2::AlgorithmTwo;
    use wcds_core::WcdsConstruction;
    use wcds_geom::deploy;

    fn small_udg() -> UnitDiskGraph {
        UnitDiskGraph::build(deploy::uniform(30, 3.0, 3.0, 4), 1.0)
    }

    #[test]
    fn renders_well_formed_svg() {
        let udg = small_udg();
        let svg = SceneBuilder::new(&udg).background_edges(udg.graph()).render();
        assert!(svg.starts_with("<svg xmlns"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<line").count(), udg.graph().edge_count());
        assert_eq!(svg.matches("<circle").count(), 30);
    }

    #[test]
    fn wcds_glyphs_match_partition() {
        let udg = small_udg();
        let result = AlgorithmTwo::new().construct(udg.graph());
        let svg = SceneBuilder::new(&udg).wcds(&result.wcds).render();
        let mis = result.wcds.mis_dominators().len();
        let add = result.wcds.additional_dominators().len();
        // MIS dominators render as big filled disks, bridges as rects
        assert_eq!(svg.matches(r##"fill="#111111""##).count(), mis);
        assert_eq!(svg.matches("<rect x=").count(), add);
    }

    #[test]
    fn caption_is_escaped_and_present() {
        let udg = small_udg();
        let svg = SceneBuilder::new(&udg).caption("a < b & c").render();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn figure2_scene_renders_both_dominators() {
        let udg = UnitDiskGraph::build(deploy::figure2(), 1.0);
        let wcds = Wcds::from_mis(vec![0, 1]);
        let spanner = wcds.weakly_induced_subgraph(udg.graph());
        let svg = SceneBuilder::new(&udg)
            .background_edges(udg.graph())
            .highlight_edges(&spanner, "#111111", 1.6)
            .wcds(&wcds)
            .caption("Figure 2: WCDS {1, 2} and its weakly induced subgraph")
            .render();
        assert_eq!(svg.matches(r##"fill="#111111""##).count(), 2, "two dominator disks");
        assert_eq!(svg.matches(r##"stroke="#111111""##).count(), 8, "eight black edges");
        assert!(svg.contains("Figure 2"));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_graph_panics() {
        let udg = small_udg();
        let other = wcds_graph::generators::path(5);
        let _ = SceneBuilder::new(&udg).background_edges(&other);
    }

    #[test]
    fn empty_deployment_renders() {
        let udg = UnitDiskGraph::build(vec![], 1.0);
        let svg = SceneBuilder::new(&udg).render();
        assert!(svg.starts_with("<svg"));
    }
}
