//! Topological and geometric dilation of a spanner (§3, Theorem 11).
//!
//! For a spanner `G'` of `G` and non-adjacent `u, v`:
//!
//! * **topological dilation** compares minimum hop counts:
//!   `h'(u, v)` vs `h(u, v)`; Theorem 11 proves `h' ≤ 3h + 2` for
//!   Algorithm II's spanner;
//! * **geometric dilation** compares the worst-case Euclidean length of
//!   a *minimum-hop* path in `G'` against the length of a
//!   minimum-distance path in `G`; Lemma 6 turns the affine hop bound
//!   `h' ≤ αh + β` into `ℓ' < 2αℓ + 2α + β`, giving `ℓ' ≤ 6ℓ + 5`.
//!
//! [`DilationReport::measure`] computes the exact maxima over all
//! non-adjacent connected pairs (an `O(n·(n+|E|))` sweep of BFS /
//! Dijkstra / shortest-path-DAG passes), plus the affine-bound checks
//! with their worst witnesses.
//!
//! The sweep is per-source parallel (the `rayon` feature; see
//! [`wcds_graph::parallel`]): each source yields an independent partial
//! over its pairs, and the partials are folded **serially in source
//! order** with the same strict-improvement comparisons a serial scan
//! performs — so the report is byte-identical whatever the thread count.

use wcds_graph::{parallel, CsrWeights, Graph, NodeId, SearchScratch};
use wcds_geom::Point;

/// Worst-case pair evidence for one dilation metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorstPair {
    /// One endpoint.
    pub u: NodeId,
    /// Other endpoint.
    pub v: NodeId,
    /// Metric value in the base graph `G`.
    pub in_graph: f64,
    /// Metric value in the spanner `G'`.
    pub in_spanner: f64,
}

/// Per-source accumulator of one `measure` worker (pairs `(u, v > u)`
/// for a single `u`).
#[derive(Debug, Clone, Default)]
struct SourcePartial {
    topological: Option<WorstPair>,
    geometric: Option<WorstPair>,
    topo_slack: Option<f64>,
    geo_slack: Option<f64>,
    /// First `(u, v)` the spanner disconnects while `G` connects it —
    /// reported by panic from the fold, on the caller's thread.
    disconnected: Option<(NodeId, NodeId)>,
}

/// Sources measured exactly (full Dijkstra, no filtering) before the
/// sweep, to seed [`GeoThresholds`] with achieved values.
const GEO_PREPASS_SOURCES: usize = 8;

/// Relative margin for the squared filter comparisons: a pair is only
/// skipped when its bound holds with this much room, so float rounding
/// in the squared test can never skip a pair whose real ratio/slack
/// ties or beats the current extreme.
const GEO_FILTER_MARGIN: f64 = 1e-6;

/// Certified lower bound on the final worst geometric ratio and upper
/// bound on the final worst geometric slack — values some earlier pair
/// *achieved*, so the true extremes are at least this extreme.
///
/// They license skipping `ℓ_G(u, v)` for pairs that provably cannot
/// improve either metric. Two facts make cheap per-pair bounds
/// available *before* running Dijkstra in `G`:
///
/// * `ℓ_G(u, v) ≥ |uv|` — every `G`-path is at least the straight-line
///   distance (triangle inequality);
/// * `ℓ_G(u, v) ≤ ℓ_{G'}(u, v)` — `G' ⊆ G`, so the spanner's min-hop
///   path is also a `G`-path, and the minimum over all `G`-paths can
///   only be shorter.
///
/// Hence `ℓ'/ℓ_G ≤ ℓ'/|uv|`: if even that overestimate is strictly
/// below the achieved ratio, the pair cannot set a new maximum. And
/// `6ℓ_G + 5 − ℓ' ≥ 6|uv| + 5 − ℓ'`: if that underestimate is strictly
/// above the achieved slack, the pair cannot set a new minimum. Both
/// tests compare squares (no per-pair sqrt) with [`GEO_FILTER_MARGIN`]
/// slop, so a skip implies the *strict* real inequality. Skipped pairs
/// therefore change neither the extreme values nor their first-achiever
/// witnesses, keeping the filtered report byte-identical to the
/// unfiltered one. The thresholds are fixed before the parallel sweep
/// starts, so the skip set is deterministic and thread-count
/// independent.
#[derive(Debug, Clone, Copy, Default)]
struct GeoThresholds {
    /// An achieved `ℓ'/ℓ_G` ratio (`None` until any pair qualifies).
    ratio: Option<f64>,
    /// An achieved `6ℓ_G + 5 − ℓ'` slack.
    slack: Option<f64>,
}

impl GeoThresholds {
    /// Tightens the thresholds with the extremes a prepass source
    /// achieved.
    fn absorb(&mut self, p: &SourcePartial) {
        if let Some(w) = p.geometric {
            let r = w.in_spanner / w.in_graph;
            if self.ratio.is_none_or(|t| r > t) {
                self.ratio = Some(r);
            }
        }
        if let Some(s) = p.geo_slack {
            if self.slack.is_none_or(|t| s < t) {
                self.slack = Some(s);
            }
        }
    }
}

/// Serial fold of per-source partials in source order: replicates
/// exactly the decisions a single-threaded u-then-v scan would make
/// (strict improvement only), so parallel and serial reports are
/// byte-identical.
///
/// # Panics
///
/// Panics if any partial recorded a pair the spanner disconnects.
fn fold_partials(partials: Vec<SourcePartial>) -> DilationReport {
    let mut topological: Option<WorstPair> = None;
    let mut geometric: Option<WorstPair> = None;
    let mut topo_slack: Option<f64> = None;
    let mut geo_slack: Option<f64> = None;
    for p in partials {
        if let Some((u, v)) = p.disconnected {
            panic!("spanner disconnects pair ({u}, {v}) that G connects");
        }
        if let Some(w) = p.topological {
            let r = w.in_spanner / w.in_graph;
            if topological.is_none_or(|b| r > b.in_spanner / b.in_graph) {
                topological = Some(w);
            }
        }
        if let Some(s) = p.topo_slack {
            if topo_slack.is_none_or(|b| s < b) {
                topo_slack = Some(s);
            }
        }
        if let Some(w) = p.geometric {
            let r = w.in_spanner / w.in_graph;
            if geometric.is_none_or(|b| r > b.in_spanner / b.in_graph) {
                geometric = Some(w);
            }
        }
        if let Some(s) = p.geo_slack {
            if geo_slack.is_none_or(|b| s < b) {
                geo_slack = Some(s);
            }
        }
    }
    DilationReport { topological, geometric, topo_bound_slack: topo_slack, geo_bound_slack: geo_slack }
}

/// One source's share of [`DilationReport::measure`]: hop metrics for
/// all pairs `(u, v > u)` — or all pairs `(u, v ≠ u)` when `all_pairs`
/// is set (the sampled estimator, where `u`'s pairs with unsampled
/// `v < u` would otherwise never be seen) — geometric metrics via a
/// radius-bounded Dijkstra restricted to the pairs [`GeoThresholds`]
/// cannot rule out.
///
/// `needed` is caller-owned scratch (cleared here) listing `(v, ℓ')`
/// for the surviving pairs.
#[allow(clippy::too_many_arguments)] // private kernel; bundling into a struct would just rename the list
fn measure_source(
    g: &Graph,
    spanner: &Graph,
    points: &[Point],
    len_g: &CsrWeights,
    len_s: &CsrWeights,
    sg: &mut SearchScratch,
    ss: &mut SearchScratch,
    needed: &mut Vec<(NodeId, f64)>,
    u: NodeId,
    thr: GeoThresholds,
    all_pairs: bool,
) -> SourcePartial {
    let n = g.node_count();
    // sg: hops + geometric lengths in G; ss: min-hop max lengths (and
    // spanner hops) in G'. Only pairs with id ≥ cover are consumed, so
    // the hop sweeps may stop once those ids are final.
    let cover = if all_pairs { 0 } else { u };
    sg.bfs_covering(g, u, cover);
    ss.min_hop_max_length_covering(spanner, len_s, u, cover);

    let mut p = SourcePartial::default();
    needed.clear();
    let mut radius = 0.0f64;
    // ratio test `ℓ'² < t²·|uv|²·(1 − margin)` with the threshold square
    // hoisted out of the pair loop.
    let ratio_tt = thr.ratio.map(|t| t * t * (1.0 - GEO_FILTER_MARGIN));
    let start = if all_pairs { 0 } else { u + 1 };
    for v in start..n {
        if v == u {
            continue;
        }
        let Some(hg) = sg.hop(v) else { continue };
        if hg <= 1 {
            continue; // adjacent or identical: dilation undefined
        }
        let Some(hs) = ss.hop(v) else {
            // record, don't panic: worker panics lose their message
            // crossing the thread::scope join
            if p.disconnected.is_none() {
                p.disconnected = Some((u, v));
            }
            continue;
        };
        let ls = ss.len_of(v).expect("hop-connected in spanner");

        let topo_ratio = hs as f64 / hg as f64;
        if p.topological.is_none_or(|w| topo_ratio > w.in_spanner / w.in_graph) {
            p.topological = Some(WorstPair { u, v, in_graph: hg as f64, in_spanner: hs as f64 });
        }
        let slack_t = (3 * hg + 2) as f64 - hs as f64;
        if p.topo_slack.is_none_or(|s| slack_t < s) {
            p.topo_slack = Some(slack_t);
        }

        // Can this pair move either geometric extreme? `d2 = |uv|²`;
        // skip only when both metrics are strictly safe.
        let d2 = points[u].distance_squared(points[v]);
        let ratio_safe = ratio_tt.is_some_and(|tt| ls * ls < tt * d2);
        let slack_safe = thr.slack.is_some_and(|t| {
            // slack ≥ 6|uv| + 5 − ℓ' > t  ⟺  |uv| > q := (t − 5 + ℓ')/6
            let q = (t - 5.0 + ls) / 6.0;
            q < 0.0 || d2 > q * q * (1.0 + GEO_FILTER_MARGIN)
        });
        if !(ratio_safe && slack_safe) {
            needed.push((v, ls));
            // ℓ_G ≤ ℓ', so every needed distance is final within ℓ'.
            if ls > radius {
                radius = ls;
            }
        }
    }

    sg.dijkstra_weighted_radius(g, len_g, u, radius);
    for &(v, ls) in needed.iter() {
        let lg = sg.len_of(v).expect("hop-connected implies length-connected");
        let geo_ratio = ls / lg;
        if p.geometric.is_none_or(|w| geo_ratio > w.in_spanner / w.in_graph) {
            p.geometric = Some(WorstPair { u, v, in_graph: lg, in_spanner: ls });
        }
        let slack_g = 6.0 * lg + 5.0 - ls;
        if p.geo_slack.is_none_or(|s| slack_g < s) {
            p.geo_slack = Some(slack_g);
        }
    }
    p
}

/// Dilation measurements of a spanner against its base graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DilationReport {
    /// Maximum of `h'(u,v) / h(u,v)` over non-adjacent pairs, with its
    /// witness. `None` when no non-adjacent pair exists.
    pub topological: Option<WorstPair>,
    /// Maximum of `ℓ'(u,v) / ℓ(u,v)` (worst min-hop path length in `G'`
    /// vs min-distance path in `G`), with witness.
    pub geometric: Option<WorstPair>,
    /// Maximum slack of `3h + 2 − h'` — nonnegative iff Theorem 11's
    /// topological bound holds; the stored pair minimises the slack.
    pub topo_bound_slack: Option<f64>,
    /// Maximum slack of `6ℓ + 5 − ℓ'` — nonnegative iff Theorem 11's
    /// geometric bound holds.
    pub geo_bound_slack: Option<f64>,
}

impl DilationReport {
    /// Measures dilation of `spanner` over `g` with node positions
    /// `points` (used for the geometric metric).
    ///
    /// Only pairs that are **non-adjacent in `g`** and connected in both
    /// graphs participate, per the paper's definitions.
    ///
    /// # Panics
    ///
    /// Panics if the graphs differ in node count, `points` is the wrong
    /// length, or the spanner disconnects a pair `g` connects (a spanner
    /// must preserve connectivity).
    pub fn measure(g: &Graph, spanner: &Graph, points: &[Point]) -> Self {
        Self::measure_with_threads(g, spanner, points, parallel::threads())
    }

    /// [`DilationReport::measure`] with an explicit worker count.
    ///
    /// Exposed so determinism can be tested without feature flags: the
    /// report is identical for every `nthreads`, because per-source
    /// partials are folded serially in source order.
    pub fn measure_with_threads(
        g: &Graph,
        spanner: &Graph,
        points: &[Point],
        nthreads: usize,
    ) -> Self {
        assert_eq!(g.node_count(), spanner.node_count(), "node count mismatch");
        assert_eq!(points.len(), g.node_count(), "one point per node required");
        let n = g.node_count();
        // Shared per-graph precomputation, read-only across workers:
        // edge lengths aligned to CSR slots, so the relaxation loops
        // run without sqrt or point loads.
        let len_g = CsrWeights::euclidean(g, points);
        let len_s = CsrWeights::euclidean(spanner, points);

        // Exact pre-pass: the first few sources run unfiltered, and the
        // worst ratio/slack they achieve become certified thresholds
        // for every later source (see [`GeoThresholds`]). Its partials
        // join the fold like any other source's.
        let prepass = n.min(GEO_PREPASS_SOURCES);
        let mut thr = GeoThresholds::default();
        let mut partials = Vec::with_capacity(n);
        {
            let mut sg = SearchScratch::new(n);
            let mut ss = SearchScratch::new(n);
            let mut needed = Vec::new();
            for u in 0..prepass {
                let p = measure_source(
                    g,
                    spanner,
                    points,
                    &len_g,
                    &len_s,
                    &mut sg,
                    &mut ss,
                    &mut needed,
                    u,
                    GeoThresholds::default(),
                    false,
                );
                thr.absorb(&p);
                partials.push(p);
            }
        }

        partials.extend(parallel::map_indices(
            nthreads,
            n - prepass,
            || (SearchScratch::new(n), SearchScratch::new(n), Vec::new()),
            |(sg, ss, needed), i| {
                measure_source(
                    g,
                    spanner,
                    points,
                    &len_g,
                    &len_s,
                    sg,
                    ss,
                    needed,
                    prepass + i,
                    thr,
                    false,
                )
            },
        ));

        fold_partials(partials)
    }

    /// The maximum topological dilation ratio (1.0 when no pair
    /// qualifies).
    pub fn topological_ratio(&self) -> f64 {
        self.topological.map_or(1.0, |w| w.in_spanner / w.in_graph)
    }

    /// The maximum geometric dilation ratio (1.0 when no pair
    /// qualifies).
    pub fn geometric_ratio(&self) -> f64 {
        self.geometric.map_or(1.0, |w| w.in_spanner / w.in_graph)
    }

    /// Whether Theorem 11's affine bound `h' ≤ 3h + 2` held for every
    /// measured pair.
    pub fn satisfies_topological_bound(&self) -> bool {
        self.topo_bound_slack.is_none_or(|s| s >= 0.0)
    }

    /// Whether Theorem 11's affine bound `ℓ' ≤ 6ℓ + 5` held for every
    /// measured pair.
    pub fn satisfies_geometric_bound(&self) -> bool {
        self.geo_bound_slack.is_none_or(|s| s >= -1e-9)
    }
}

/// A **certified sampled** dilation estimate for instances too large for
/// the exact `O(n·(n+|E|))` sweep (n = 100k–1M).
///
/// The estimator picks `sources_sampled` sources spread evenly over the
/// id space (rotated by a seed) and measures each of their pairs
/// **exactly** — the same per-source kernel as
/// [`DilationReport::measure`], including the certified `ℓ_G ≥ |uv|`
/// straight-line lower bound that lets a source skip the `G`-Dijkstra
/// for pairs which provably cannot move the extremes (see
/// [`GeoThresholds`]). No pair is ever approximated: a pair is either
/// swept exactly or not covered at all. The result is therefore
/// **one-sided certified**:
///
/// * `report.topological_ratio()` and `report.geometric_ratio()` are
///   *achieved* values — lower bounds on the true maxima;
/// * `report.topo_bound_slack` / `report.geo_bound_slack` are upper
///   bounds on the true minimum slacks, so a *violation* of a Theorem 11
///   bound found on the sample disproves the bound outright.
///
/// `exact` reports whether the sample covered every source (then the
/// report equals the full measurement), and `pair_coverage` reports the
/// fraction of unordered node pairs with at least one sampled endpoint
/// — the measured share of the pair population.
#[derive(Debug, Clone, PartialEq)]
pub struct DilationEstimate {
    /// Extremes over the covered pair set (exact on those pairs).
    pub report: DilationReport,
    /// Number of distinct sources swept.
    pub sources_sampled: usize,
    /// Node count of the instance.
    pub node_count: usize,
    /// Whether every source was swept (the estimate *is* the exact
    /// measurement).
    pub exact: bool,
    /// Fraction of unordered node pairs with a sampled endpoint, in
    /// `(0, 1]`.
    pub pair_coverage: f64,
}

impl DilationEstimate {
    /// Sampled dilation of `spanner` over `g` with at most `max_sources`
    /// sources, using [`parallel::threads`] workers.
    ///
    /// `seed` rotates which sources are picked; the choice is otherwise
    /// a deterministic even spread over the id space. When
    /// `max_sources ≥ n` this is exactly [`DilationReport::measure`].
    ///
    /// # Panics
    ///
    /// As [`DilationReport::measure`].
    pub fn sampled(
        g: &Graph,
        spanner: &Graph,
        points: &[Point],
        max_sources: usize,
        seed: u64,
    ) -> Self {
        Self::sampled_with_threads(g, spanner, points, max_sources, seed, parallel::threads())
    }

    /// [`DilationEstimate::sampled`] with an explicit worker count.
    ///
    /// The estimate is byte-identical for every `nthreads`: the sampled
    /// sources are fixed up front, per-source partials fold serially in
    /// source order, and the skip thresholds are frozen before the
    /// parallel stage — the same determinism argument as
    /// [`DilationReport::measure_with_threads`].
    pub fn sampled_with_threads(
        g: &Graph,
        spanner: &Graph,
        points: &[Point],
        max_sources: usize,
        seed: u64,
        nthreads: usize,
    ) -> Self {
        let n = g.node_count();
        if max_sources >= n {
            return Self {
                report: DilationReport::measure_with_threads(g, spanner, points, nthreads),
                sources_sampled: n,
                node_count: n,
                exact: true,
                pair_coverage: 1.0,
            };
        }
        assert_eq!(g.node_count(), spanner.node_count(), "node count mismatch");
        assert_eq!(points.len(), g.node_count(), "one point per node required");
        let k = max_sources.max(1);
        // Even spread over the id space, rotated by the seed: `i·n/k`
        // are k distinct ids (n > k), and adding a constant offset mod n
        // stays injective. Sorted so the serial fold runs in source
        // order, like the exact sweep.
        let off = (seed % n as u64) as usize;
        let mut sources: Vec<NodeId> = (0..k).map(|i| (off + i * n / k) % n).collect();
        sources.sort_unstable();

        let len_g = CsrWeights::euclidean(g, points);
        let len_s = CsrWeights::euclidean(spanner, points);
        let prepass = sources.len().min(GEO_PREPASS_SOURCES);
        let mut thr = GeoThresholds::default();
        let mut partials = Vec::with_capacity(sources.len());
        {
            let mut sg = SearchScratch::new(n);
            let mut ss = SearchScratch::new(n);
            let mut needed = Vec::new();
            for &u in &sources[..prepass] {
                let p = measure_source(
                    g,
                    spanner,
                    points,
                    &len_g,
                    &len_s,
                    &mut sg,
                    &mut ss,
                    &mut needed,
                    u,
                    GeoThresholds::default(),
                    true,
                );
                thr.absorb(&p);
                partials.push(p);
            }
        }
        let rest = &sources[prepass..];
        partials.extend(parallel::map_indices(
            nthreads,
            rest.len(),
            || (SearchScratch::new(n), SearchScratch::new(n), Vec::new()),
            |(sg, ss, needed), i| {
                measure_source(
                    g, spanner, points, &len_g, &len_s, sg, ss, needed, rest[i], thr, true,
                )
            },
        ));

        let pairs = |m: usize| m.saturating_sub(1) * m / 2;
        let total = pairs(n);
        let covered = total - pairs(n - k);
        Self {
            report: fold_partials(partials),
            sources_sampled: k,
            node_count: n,
            exact: false,
            pair_coverage: if total == 0 { 1.0 } else { covered as f64 / total as f64 },
        }
    }
}

/// Lemma 6 as a checkable statement: if `h'(u,v) ≤ α·h(u,v) + β` for all
/// non-adjacent pairs, then `ℓ'(u,v) < 2α·ℓ(u,v) + 2α + β`.
///
/// Returns the worst observed `ℓ' − (2α·ℓ + 2α + β)` (negative means the
/// implication held with room to spare), or `None` if no pair qualified.
pub fn lemma6_worst_slack(
    g: &Graph,
    spanner: &Graph,
    points: &[Point],
    alpha: f64,
    beta: f64,
) -> Option<f64> {
    let n = g.node_count();
    let len_g = CsrWeights::euclidean(g, points);
    let len_s = CsrWeights::euclidean(spanner, points);
    let partials = parallel::map_indices(
        parallel::threads(),
        n,
        || (SearchScratch::new(n), SearchScratch::new(n)),
        |(sg, ss), u| {
            sg.bfs_covering(g, u, u);
            sg.dijkstra_weighted(g, &len_g, u);
            ss.min_hop_max_length_covering(spanner, &len_s, u, u);
            let mut worst: Option<f64> = None;
            for v in (u + 1)..n {
                let Some(hg) = sg.hop(v) else { continue };
                if hg <= 1 {
                    continue;
                }
                let (Some(lg), Some(ls)) = (sg.len_of(v), ss.len_of(v)) else { continue };
                let excess = ls - (2.0 * alpha * lg + 2.0 * alpha + beta);
                if worst.is_none_or(|w| excess > w) {
                    worst = Some(excess);
                }
            }
            worst
        },
    );
    partials
        .into_iter()
        .flatten()
        .fold(None, |acc: Option<f64>, e| {
            Some(acc.map_or(e, |w| if e > w { e } else { w }))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo2::AlgorithmTwo;
    use crate::WcdsConstruction;
    use wcds_geom::deploy;
    use wcds_graph::{traversal, UnitDiskGraph};

    fn connected_udg(n: usize, side: f64, seed: u64) -> Option<UnitDiskGraph> {
        let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed), 1.0);
        traversal::is_connected(udg.graph()).then_some(udg)
    }

    #[test]
    fn identity_spanner_has_dilation_one() {
        let udg = connected_udg(80, 4.0, 2).expect("dense deployment connects");
        let r = DilationReport::measure(udg.graph(), udg.graph(), udg.points());
        assert_eq!(r.topological_ratio(), 1.0);
        assert!(r.geometric_ratio() >= 1.0); // max-length min-hop path can exceed ℓ_G
        assert!(r.satisfies_topological_bound());
        assert!(r.satisfies_geometric_bound());
    }

    #[test]
    fn theorem11_bounds_hold_for_algorithm2_spanner() {
        for seed in 0..6 {
            let Some(udg) = connected_udg(120, 6.0, seed) else { continue };
            let result = AlgorithmTwo::new().construct(udg.graph());
            let r = DilationReport::measure(udg.graph(), &result.spanner, udg.points());
            assert!(r.satisfies_topological_bound(), "seed {seed}: {:?}", r.topo_bound_slack);
            assert!(r.satisfies_geometric_bound(), "seed {seed}: {:?}", r.geo_bound_slack);
        }
    }

    #[test]
    fn lemma6_implication_holds_with_measured_alpha_beta() {
        let Some(udg) = connected_udg(100, 5.0, 3) else { return };
        let result = AlgorithmTwo::new().construct(udg.graph());
        // with (α, β) = (3, 2) the paper's geometric bound must hold
        let slack = lemma6_worst_slack(udg.graph(), &result.spanner, udg.points(), 3.0, 2.0);
        if let Some(s) = slack {
            assert!(s < 0.0, "Lemma 6 violated: excess {s}");
        }
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        let Some(udg) = connected_udg(100, 5.0, 5) else { return };
        let result = AlgorithmTwo::new().construct(udg.graph());
        let serial =
            DilationReport::measure_with_threads(udg.graph(), &result.spanner, udg.points(), 1);
        for nthreads in [2, 3, 7, 100] {
            let par = DilationReport::measure_with_threads(
                udg.graph(),
                &result.spanner,
                udg.points(),
                nthreads,
            );
            // bitwise equality, witnesses included — not approximate
            assert_eq!(par, serial, "nthreads {nthreads}");
        }
    }

    #[test]
    #[should_panic(expected = "disconnects")]
    fn disconnected_spanner_panics() {
        let udg = UnitDiskGraph::build(deploy::chain(4, 0.9), 1.0);
        let empty = Graph::empty(4);
        let _ = DilationReport::measure(udg.graph(), &empty, udg.points());
    }

    #[test]
    fn no_qualifying_pairs_yields_trivial_report() {
        // a triangle: every pair adjacent
        let pts = deploy::gaussian_blob(3, 1.0, 1.0, 0.01, 1);
        let udg = UnitDiskGraph::build(pts, 1.0);
        assert_eq!(udg.graph().edge_count(), 3);
        let r = DilationReport::measure(udg.graph(), udg.graph(), udg.points());
        assert!(r.topological.is_none());
        assert!(r.satisfies_topological_bound());
    }

    /// Unfiltered reference implementation: one-shot public searches per
    /// source, no thresholds, no radius bound, no covering early-outs.
    fn measure_reference(g: &Graph, spanner: &Graph, points: &[Point]) -> DilationReport {
        use wcds_graph::shortest_path;
        let n = g.node_count();
        let mut topological: Option<WorstPair> = None;
        let mut geometric: Option<WorstPair> = None;
        let mut topo_slack: Option<f64> = None;
        let mut geo_slack: Option<f64> = None;
        for u in 0..n {
            let hg_all = traversal::bfs_distances(g, u);
            let hs_all = traversal::bfs_distances(spanner, u);
            let lg_all = shortest_path::geometric_distances(g, points, u);
            let ls_all = shortest_path::min_hop_max_length(spanner, points, u);
            for v in (u + 1)..n {
                let Some(hg) = hg_all[v] else { continue };
                if hg <= 1 {
                    continue;
                }
                let hs = hs_all[v].expect("spanner preserves connectivity");
                let (lg, ls) = (lg_all[v].unwrap(), ls_all[v].unwrap());
                let tr = hs as f64 / hg as f64;
                if topological.is_none_or(|w| tr > w.in_spanner / w.in_graph) {
                    topological =
                        Some(WorstPair { u, v, in_graph: hg as f64, in_spanner: hs as f64 });
                }
                let st = (3 * hg + 2) as f64 - hs as f64;
                if topo_slack.is_none_or(|s| st < s) {
                    topo_slack = Some(st);
                }
                let gr = ls / lg;
                if geometric.is_none_or(|w| gr > w.in_spanner / w.in_graph) {
                    geometric = Some(WorstPair { u, v, in_graph: lg, in_spanner: ls });
                }
                let sg = 6.0 * lg + 5.0 - ls;
                if geo_slack.is_none_or(|s| sg < s) {
                    geo_slack = Some(sg);
                }
            }
        }
        DilationReport {
            topological,
            geometric,
            topo_bound_slack: topo_slack,
            geo_bound_slack: geo_slack,
        }
    }

    #[test]
    fn filtered_engine_matches_unfiltered_reference() {
        // the threshold filter + radius-bounded Dijkstra must reproduce
        // the naive sweep bit-for-bit, witnesses included — across
        // instances large enough to exercise the prepass thresholds
        for (n, side, seed) in [(150, 7.0, 1), (200, 8.0, 4), (250, 9.0, 11), (180, 7.5, 23)] {
            let Some(udg) = connected_udg(n, side, seed) else { continue };
            let result = AlgorithmTwo::new().construct(udg.graph());
            let fast = DilationReport::measure(udg.graph(), &result.spanner, udg.points());
            let want = measure_reference(udg.graph(), &result.spanner, udg.points());
            assert_eq!(fast, want, "n={n} seed={seed}");
        }
    }

    #[test]
    fn filtered_engine_matches_reference_on_identity_spanner() {
        // ratio-1 everywhere: thresholds are tight, maximal skipping
        let udg = connected_udg(160, 7.0, 9).expect("dense deployment connects");
        let fast = DilationReport::measure(udg.graph(), udg.graph(), udg.points());
        let want = measure_reference(udg.graph(), udg.graph(), udg.points());
        assert_eq!(fast, want);
    }

    #[test]
    fn sampled_with_full_budget_is_the_exact_measurement() {
        let Some(udg) = connected_udg(120, 6.0, 2) else { return };
        let result = AlgorithmTwo::new().construct(udg.graph());
        let est =
            DilationEstimate::sampled(udg.graph(), &result.spanner, udg.points(), usize::MAX, 9);
        assert!(est.exact);
        assert_eq!(est.sources_sampled, 120);
        assert_eq!(est.pair_coverage, 1.0);
        let exact = DilationReport::measure(udg.graph(), &result.spanner, udg.points());
        assert_eq!(est.report, exact);
    }

    #[test]
    fn sampled_estimate_is_a_certified_one_sided_bound() {
        // sampled extremes are achieved values: ratios can only be
        // under-estimates, slacks only over-estimates, for any seed
        for seed in [0u64, 7, 1234] {
            let Some(udg) = connected_udg(180, 7.5, 4) else { return };
            let result = AlgorithmTwo::new().construct(udg.graph());
            let exact = DilationReport::measure(udg.graph(), &result.spanner, udg.points());
            let est = DilationEstimate::sampled(udg.graph(), &result.spanner, udg.points(), 24, seed);
            assert!(!est.exact);
            assert_eq!(est.sources_sampled, 24);
            assert!(est.pair_coverage > 0.0 && est.pair_coverage < 1.0);
            assert!(est.report.topological_ratio() <= exact.topological_ratio(), "seed {seed}");
            assert!(est.report.geometric_ratio() <= exact.geometric_ratio(), "seed {seed}");
            if let (Some(e), Some(x)) = (est.report.topo_bound_slack, exact.topo_bound_slack) {
                assert!(e >= x, "seed {seed}: sampled topo slack below exact minimum");
            }
            if let (Some(e), Some(x)) = (est.report.geo_bound_slack, exact.geo_bound_slack) {
                assert!(e >= x - 1e-9, "seed {seed}: sampled geo slack below exact minimum");
            }
        }
    }

    #[test]
    fn sampled_thread_count_never_changes_the_estimate() {
        let Some(udg) = connected_udg(150, 7.0, 6) else { return };
        let result = AlgorithmTwo::new().construct(udg.graph());
        let serial = DilationEstimate::sampled_with_threads(
            udg.graph(),
            &result.spanner,
            udg.points(),
            20,
            3,
            1,
        );
        for nthreads in [2, 5, 16] {
            let par = DilationEstimate::sampled_with_threads(
                udg.graph(),
                &result.spanner,
                udg.points(),
                20,
                3,
                nthreads,
            );
            assert_eq!(par, serial, "nthreads {nthreads}");
        }
    }

    #[test]
    fn worst_pair_witnesses_are_consistent() {
        let Some(udg) = connected_udg(90, 5.0, 7) else { return };
        let result = AlgorithmTwo::new().construct(udg.graph());
        let r = DilationReport::measure(udg.graph(), &result.spanner, udg.points());
        if let Some(w) = r.topological {
            let hg = traversal::hop_distance(udg.graph(), w.u, w.v).unwrap();
            let hs = traversal::hop_distance(&result.spanner, w.u, w.v).unwrap();
            assert_eq!(w.in_graph, hg as f64);
            assert_eq!(w.in_spanner, hs as f64);
            assert!(hg >= 2);
        }
    }
}
