//! Topological and geometric dilation of a spanner (§3, Theorem 11).
//!
//! For a spanner `G'` of `G` and non-adjacent `u, v`:
//!
//! * **topological dilation** compares minimum hop counts:
//!   `h'(u, v)` vs `h(u, v)`; Theorem 11 proves `h' ≤ 3h + 2` for
//!   Algorithm II's spanner;
//! * **geometric dilation** compares the worst-case Euclidean length of
//!   a *minimum-hop* path in `G'` against the length of a
//!   minimum-distance path in `G`; Lemma 6 turns the affine hop bound
//!   `h' ≤ αh + β` into `ℓ' < 2αℓ + 2α + β`, giving `ℓ' ≤ 6ℓ + 5`.
//!
//! [`DilationReport::measure`] computes the exact maxima over all
//! non-adjacent connected pairs (an `O(n·(n+|E|))` sweep of BFS /
//! Dijkstra / shortest-path-DAG passes), plus the affine-bound checks
//! with their worst witnesses.
//!
//! The sweep is per-source parallel (the `rayon` feature; see
//! [`wcds_graph::parallel`]): each source yields an independent partial
//! over its pairs, and the partials are folded **serially in source
//! order** with the same strict-improvement comparisons a serial scan
//! performs — so the report is byte-identical whatever the thread count.

use wcds_graph::{parallel, CsrWeights, Graph, NodeId, SearchScratch};
use wcds_geom::Point;

/// Worst-case pair evidence for one dilation metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorstPair {
    /// One endpoint.
    pub u: NodeId,
    /// Other endpoint.
    pub v: NodeId,
    /// Metric value in the base graph `G`.
    pub in_graph: f64,
    /// Metric value in the spanner `G'`.
    pub in_spanner: f64,
}

/// Per-source accumulator of one `measure` worker (pairs `(u, v > u)`
/// for a single `u`).
#[derive(Debug, Clone, Default)]
struct SourcePartial {
    topological: Option<WorstPair>,
    geometric: Option<WorstPair>,
    topo_slack: Option<f64>,
    geo_slack: Option<f64>,
    /// First `(u, v)` the spanner disconnects while `G` connects it —
    /// reported by panic from the fold, on the caller's thread.
    disconnected: Option<(NodeId, NodeId)>,
}

/// Sources measured exactly (full Dijkstra, no filtering) before the
/// sweep, to seed [`GeoThresholds`] with achieved values.
const GEO_PREPASS_SOURCES: usize = 8;

/// Relative margin for the squared filter comparisons: a pair is only
/// skipped when its bound holds with this much room, so float rounding
/// in the squared test can never skip a pair whose real ratio/slack
/// ties or beats the current extreme.
const GEO_FILTER_MARGIN: f64 = 1e-6;

/// Certified lower bound on the final worst geometric ratio and upper
/// bound on the final worst geometric slack — values some earlier pair
/// *achieved*, so the true extremes are at least this extreme.
///
/// They license skipping `ℓ_G(u, v)` for pairs that provably cannot
/// improve either metric. Two facts make cheap per-pair bounds
/// available *before* running Dijkstra in `G`:
///
/// * `ℓ_G(u, v) ≥ |uv|` — every `G`-path is at least the straight-line
///   distance (triangle inequality);
/// * `ℓ_G(u, v) ≤ ℓ_{G'}(u, v)` — `G' ⊆ G`, so the spanner's min-hop
///   path is also a `G`-path, and the minimum over all `G`-paths can
///   only be shorter.
///
/// Hence `ℓ'/ℓ_G ≤ ℓ'/|uv|`: if even that overestimate is strictly
/// below the achieved ratio, the pair cannot set a new maximum. And
/// `6ℓ_G + 5 − ℓ' ≥ 6|uv| + 5 − ℓ'`: if that underestimate is strictly
/// above the achieved slack, the pair cannot set a new minimum. Both
/// tests compare squares (no per-pair sqrt) with [`GEO_FILTER_MARGIN`]
/// slop, so a skip implies the *strict* real inequality. Skipped pairs
/// therefore change neither the extreme values nor their first-achiever
/// witnesses, keeping the filtered report byte-identical to the
/// unfiltered one. The thresholds are fixed before the parallel sweep
/// starts, so the skip set is deterministic and thread-count
/// independent.
#[derive(Debug, Clone, Copy, Default)]
struct GeoThresholds {
    /// An achieved `ℓ'/ℓ_G` ratio (`None` until any pair qualifies).
    ratio: Option<f64>,
    /// An achieved `6ℓ_G + 5 − ℓ'` slack.
    slack: Option<f64>,
}

/// One source's share of [`DilationReport::measure`]: hop metrics for
/// all pairs `(u, v > u)`, geometric metrics via a radius-bounded
/// Dijkstra restricted to the pairs [`GeoThresholds`] cannot rule out.
///
/// `needed` is caller-owned scratch (cleared here) listing `(v, ℓ')`
/// for the surviving pairs.
#[allow(clippy::too_many_arguments)] // private kernel; bundling into a struct would just rename the list
fn measure_source(
    g: &Graph,
    spanner: &Graph,
    points: &[Point],
    len_g: &CsrWeights,
    len_s: &CsrWeights,
    sg: &mut SearchScratch,
    ss: &mut SearchScratch,
    needed: &mut Vec<(NodeId, f64)>,
    u: NodeId,
    thr: GeoThresholds,
) -> SourcePartial {
    let n = g.node_count();
    // sg: hops + geometric lengths in G; ss: min-hop max lengths (and
    // spanner hops) in G'. Only pairs (u, v>u) are consumed, so the hop
    // sweeps stop once ids ≥ u are final.
    sg.bfs_covering(g, u, u);
    ss.min_hop_max_length_covering(spanner, len_s, u, u);

    let mut p = SourcePartial::default();
    needed.clear();
    let mut radius = 0.0f64;
    // ratio test `ℓ'² < t²·|uv|²·(1 − margin)` with the threshold square
    // hoisted out of the pair loop.
    let ratio_tt = thr.ratio.map(|t| t * t * (1.0 - GEO_FILTER_MARGIN));
    for v in (u + 1)..n {
        let Some(hg) = sg.hop(v) else { continue };
        if hg <= 1 {
            continue; // adjacent or identical: dilation undefined
        }
        let Some(hs) = ss.hop(v) else {
            // record, don't panic: worker panics lose their message
            // crossing the thread::scope join
            if p.disconnected.is_none() {
                p.disconnected = Some((u, v));
            }
            continue;
        };
        let ls = ss.len_of(v).expect("hop-connected in spanner");

        let topo_ratio = hs as f64 / hg as f64;
        if p.topological.is_none_or(|w| topo_ratio > w.in_spanner / w.in_graph) {
            p.topological = Some(WorstPair { u, v, in_graph: hg as f64, in_spanner: hs as f64 });
        }
        let slack_t = (3 * hg + 2) as f64 - hs as f64;
        if p.topo_slack.is_none_or(|s| slack_t < s) {
            p.topo_slack = Some(slack_t);
        }

        // Can this pair move either geometric extreme? `d2 = |uv|²`;
        // skip only when both metrics are strictly safe.
        let d2 = points[u].distance_squared(points[v]);
        let ratio_safe = ratio_tt.is_some_and(|tt| ls * ls < tt * d2);
        let slack_safe = thr.slack.is_some_and(|t| {
            // slack ≥ 6|uv| + 5 − ℓ' > t  ⟺  |uv| > q := (t − 5 + ℓ')/6
            let q = (t - 5.0 + ls) / 6.0;
            q < 0.0 || d2 > q * q * (1.0 + GEO_FILTER_MARGIN)
        });
        if !(ratio_safe && slack_safe) {
            needed.push((v, ls));
            // ℓ_G ≤ ℓ', so every needed distance is final within ℓ'.
            if ls > radius {
                radius = ls;
            }
        }
    }

    sg.dijkstra_weighted_radius(g, len_g, u, radius);
    for &(v, ls) in needed.iter() {
        let lg = sg.len_of(v).expect("hop-connected implies length-connected");
        let geo_ratio = ls / lg;
        if p.geometric.is_none_or(|w| geo_ratio > w.in_spanner / w.in_graph) {
            p.geometric = Some(WorstPair { u, v, in_graph: lg, in_spanner: ls });
        }
        let slack_g = 6.0 * lg + 5.0 - ls;
        if p.geo_slack.is_none_or(|s| slack_g < s) {
            p.geo_slack = Some(slack_g);
        }
    }
    p
}

/// Dilation measurements of a spanner against its base graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DilationReport {
    /// Maximum of `h'(u,v) / h(u,v)` over non-adjacent pairs, with its
    /// witness. `None` when no non-adjacent pair exists.
    pub topological: Option<WorstPair>,
    /// Maximum of `ℓ'(u,v) / ℓ(u,v)` (worst min-hop path length in `G'`
    /// vs min-distance path in `G`), with witness.
    pub geometric: Option<WorstPair>,
    /// Maximum slack of `3h + 2 − h'` — nonnegative iff Theorem 11's
    /// topological bound holds; the stored pair minimises the slack.
    pub topo_bound_slack: Option<f64>,
    /// Maximum slack of `6ℓ + 5 − ℓ'` — nonnegative iff Theorem 11's
    /// geometric bound holds.
    pub geo_bound_slack: Option<f64>,
}

impl DilationReport {
    /// Measures dilation of `spanner` over `g` with node positions
    /// `points` (used for the geometric metric).
    ///
    /// Only pairs that are **non-adjacent in `g`** and connected in both
    /// graphs participate, per the paper's definitions.
    ///
    /// # Panics
    ///
    /// Panics if the graphs differ in node count, `points` is the wrong
    /// length, or the spanner disconnects a pair `g` connects (a spanner
    /// must preserve connectivity).
    pub fn measure(g: &Graph, spanner: &Graph, points: &[Point]) -> Self {
        Self::measure_with_threads(g, spanner, points, parallel::threads())
    }

    /// [`DilationReport::measure`] with an explicit worker count.
    ///
    /// Exposed so determinism can be tested without feature flags: the
    /// report is identical for every `nthreads`, because per-source
    /// partials are folded serially in source order.
    pub fn measure_with_threads(
        g: &Graph,
        spanner: &Graph,
        points: &[Point],
        nthreads: usize,
    ) -> Self {
        assert_eq!(g.node_count(), spanner.node_count(), "node count mismatch");
        assert_eq!(points.len(), g.node_count(), "one point per node required");
        let n = g.node_count();
        // Shared per-graph precomputation, read-only across workers:
        // edge lengths aligned to CSR slots, so the relaxation loops
        // run without sqrt or point loads.
        let len_g = CsrWeights::euclidean(g, points);
        let len_s = CsrWeights::euclidean(spanner, points);

        // Exact pre-pass: the first few sources run unfiltered, and the
        // worst ratio/slack they achieve become certified thresholds
        // for every later source (see [`GeoThresholds`]). Its partials
        // join the fold like any other source's.
        let prepass = n.min(GEO_PREPASS_SOURCES);
        let mut thr = GeoThresholds::default();
        let mut partials = Vec::with_capacity(n);
        {
            let mut sg = SearchScratch::new(n);
            let mut ss = SearchScratch::new(n);
            let mut needed = Vec::new();
            for u in 0..prepass {
                let p = measure_source(
                    g,
                    spanner,
                    points,
                    &len_g,
                    &len_s,
                    &mut sg,
                    &mut ss,
                    &mut needed,
                    u,
                    GeoThresholds::default(),
                );
                if let Some(w) = p.geometric {
                    let r = w.in_spanner / w.in_graph;
                    if thr.ratio.is_none_or(|t| r > t) {
                        thr.ratio = Some(r);
                    }
                }
                if let Some(s) = p.geo_slack {
                    if thr.slack.is_none_or(|t| s < t) {
                        thr.slack = Some(s);
                    }
                }
                partials.push(p);
            }
        }

        partials.extend(parallel::map_indices(
            nthreads,
            n - prepass,
            || (SearchScratch::new(n), SearchScratch::new(n), Vec::new()),
            |(sg, ss, needed), i| {
                measure_source(g, spanner, points, &len_g, &len_s, sg, ss, needed, prepass + i, thr)
            },
        ));

        // Serial fold in source order: replicates exactly the decisions a
        // single-threaded u-then-v scan would make (strict improvement
        // only), so parallel and serial reports are byte-identical.
        let mut topological: Option<WorstPair> = None;
        let mut geometric: Option<WorstPair> = None;
        let mut topo_slack: Option<f64> = None;
        let mut geo_slack: Option<f64> = None;
        for p in partials {
            if let Some((u, v)) = p.disconnected {
                panic!("spanner disconnects pair ({u}, {v}) that G connects");
            }
            if let Some(w) = p.topological {
                let r = w.in_spanner / w.in_graph;
                if topological.is_none_or(|b| r > b.in_spanner / b.in_graph) {
                    topological = Some(w);
                }
            }
            if let Some(s) = p.topo_slack {
                if topo_slack.is_none_or(|b| s < b) {
                    topo_slack = Some(s);
                }
            }
            if let Some(w) = p.geometric {
                let r = w.in_spanner / w.in_graph;
                if geometric.is_none_or(|b| r > b.in_spanner / b.in_graph) {
                    geometric = Some(w);
                }
            }
            if let Some(s) = p.geo_slack {
                if geo_slack.is_none_or(|b| s < b) {
                    geo_slack = Some(s);
                }
            }
        }
        Self { topological, geometric, topo_bound_slack: topo_slack, geo_bound_slack: geo_slack }
    }

    /// The maximum topological dilation ratio (1.0 when no pair
    /// qualifies).
    pub fn topological_ratio(&self) -> f64 {
        self.topological.map_or(1.0, |w| w.in_spanner / w.in_graph)
    }

    /// The maximum geometric dilation ratio (1.0 when no pair
    /// qualifies).
    pub fn geometric_ratio(&self) -> f64 {
        self.geometric.map_or(1.0, |w| w.in_spanner / w.in_graph)
    }

    /// Whether Theorem 11's affine bound `h' ≤ 3h + 2` held for every
    /// measured pair.
    pub fn satisfies_topological_bound(&self) -> bool {
        self.topo_bound_slack.is_none_or(|s| s >= 0.0)
    }

    /// Whether Theorem 11's affine bound `ℓ' ≤ 6ℓ + 5` held for every
    /// measured pair.
    pub fn satisfies_geometric_bound(&self) -> bool {
        self.geo_bound_slack.is_none_or(|s| s >= -1e-9)
    }
}

/// Lemma 6 as a checkable statement: if `h'(u,v) ≤ α·h(u,v) + β` for all
/// non-adjacent pairs, then `ℓ'(u,v) < 2α·ℓ(u,v) + 2α + β`.
///
/// Returns the worst observed `ℓ' − (2α·ℓ + 2α + β)` (negative means the
/// implication held with room to spare), or `None` if no pair qualified.
pub fn lemma6_worst_slack(
    g: &Graph,
    spanner: &Graph,
    points: &[Point],
    alpha: f64,
    beta: f64,
) -> Option<f64> {
    let n = g.node_count();
    let len_g = CsrWeights::euclidean(g, points);
    let len_s = CsrWeights::euclidean(spanner, points);
    let partials = parallel::map_indices(
        parallel::threads(),
        n,
        || (SearchScratch::new(n), SearchScratch::new(n)),
        |(sg, ss), u| {
            sg.bfs_covering(g, u, u);
            sg.dijkstra_weighted(g, &len_g, u);
            ss.min_hop_max_length_covering(spanner, &len_s, u, u);
            let mut worst: Option<f64> = None;
            for v in (u + 1)..n {
                let Some(hg) = sg.hop(v) else { continue };
                if hg <= 1 {
                    continue;
                }
                let (Some(lg), Some(ls)) = (sg.len_of(v), ss.len_of(v)) else { continue };
                let excess = ls - (2.0 * alpha * lg + 2.0 * alpha + beta);
                if worst.is_none_or(|w| excess > w) {
                    worst = Some(excess);
                }
            }
            worst
        },
    );
    partials
        .into_iter()
        .flatten()
        .fold(None, |acc: Option<f64>, e| {
            Some(acc.map_or(e, |w| if e > w { e } else { w }))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo2::AlgorithmTwo;
    use crate::WcdsConstruction;
    use wcds_geom::deploy;
    use wcds_graph::{traversal, UnitDiskGraph};

    fn connected_udg(n: usize, side: f64, seed: u64) -> Option<UnitDiskGraph> {
        let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed), 1.0);
        traversal::is_connected(udg.graph()).then_some(udg)
    }

    #[test]
    fn identity_spanner_has_dilation_one() {
        let udg = connected_udg(80, 4.0, 2).expect("dense deployment connects");
        let r = DilationReport::measure(udg.graph(), udg.graph(), udg.points());
        assert_eq!(r.topological_ratio(), 1.0);
        assert!(r.geometric_ratio() >= 1.0); // max-length min-hop path can exceed ℓ_G
        assert!(r.satisfies_topological_bound());
        assert!(r.satisfies_geometric_bound());
    }

    #[test]
    fn theorem11_bounds_hold_for_algorithm2_spanner() {
        for seed in 0..6 {
            let Some(udg) = connected_udg(120, 6.0, seed) else { continue };
            let result = AlgorithmTwo::new().construct(udg.graph());
            let r = DilationReport::measure(udg.graph(), &result.spanner, udg.points());
            assert!(r.satisfies_topological_bound(), "seed {seed}: {:?}", r.topo_bound_slack);
            assert!(r.satisfies_geometric_bound(), "seed {seed}: {:?}", r.geo_bound_slack);
        }
    }

    #[test]
    fn lemma6_implication_holds_with_measured_alpha_beta() {
        let Some(udg) = connected_udg(100, 5.0, 3) else { return };
        let result = AlgorithmTwo::new().construct(udg.graph());
        // with (α, β) = (3, 2) the paper's geometric bound must hold
        let slack = lemma6_worst_slack(udg.graph(), &result.spanner, udg.points(), 3.0, 2.0);
        if let Some(s) = slack {
            assert!(s < 0.0, "Lemma 6 violated: excess {s}");
        }
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        let Some(udg) = connected_udg(100, 5.0, 5) else { return };
        let result = AlgorithmTwo::new().construct(udg.graph());
        let serial =
            DilationReport::measure_with_threads(udg.graph(), &result.spanner, udg.points(), 1);
        for nthreads in [2, 3, 7, 100] {
            let par = DilationReport::measure_with_threads(
                udg.graph(),
                &result.spanner,
                udg.points(),
                nthreads,
            );
            // bitwise equality, witnesses included — not approximate
            assert_eq!(par, serial, "nthreads {nthreads}");
        }
    }

    #[test]
    #[should_panic(expected = "disconnects")]
    fn disconnected_spanner_panics() {
        let udg = UnitDiskGraph::build(deploy::chain(4, 0.9), 1.0);
        let empty = Graph::empty(4);
        let _ = DilationReport::measure(udg.graph(), &empty, udg.points());
    }

    #[test]
    fn no_qualifying_pairs_yields_trivial_report() {
        // a triangle: every pair adjacent
        let pts = deploy::gaussian_blob(3, 1.0, 1.0, 0.01, 1);
        let udg = UnitDiskGraph::build(pts, 1.0);
        assert_eq!(udg.graph().edge_count(), 3);
        let r = DilationReport::measure(udg.graph(), udg.graph(), udg.points());
        assert!(r.topological.is_none());
        assert!(r.satisfies_topological_bound());
    }

    /// Unfiltered reference implementation: one-shot public searches per
    /// source, no thresholds, no radius bound, no covering early-outs.
    fn measure_reference(g: &Graph, spanner: &Graph, points: &[Point]) -> DilationReport {
        use wcds_graph::shortest_path;
        let n = g.node_count();
        let mut topological: Option<WorstPair> = None;
        let mut geometric: Option<WorstPair> = None;
        let mut topo_slack: Option<f64> = None;
        let mut geo_slack: Option<f64> = None;
        for u in 0..n {
            let hg_all = traversal::bfs_distances(g, u);
            let hs_all = traversal::bfs_distances(spanner, u);
            let lg_all = shortest_path::geometric_distances(g, points, u);
            let ls_all = shortest_path::min_hop_max_length(spanner, points, u);
            for v in (u + 1)..n {
                let Some(hg) = hg_all[v] else { continue };
                if hg <= 1 {
                    continue;
                }
                let hs = hs_all[v].expect("spanner preserves connectivity");
                let (lg, ls) = (lg_all[v].unwrap(), ls_all[v].unwrap());
                let tr = hs as f64 / hg as f64;
                if topological.is_none_or(|w| tr > w.in_spanner / w.in_graph) {
                    topological =
                        Some(WorstPair { u, v, in_graph: hg as f64, in_spanner: hs as f64 });
                }
                let st = (3 * hg + 2) as f64 - hs as f64;
                if topo_slack.is_none_or(|s| st < s) {
                    topo_slack = Some(st);
                }
                let gr = ls / lg;
                if geometric.is_none_or(|w| gr > w.in_spanner / w.in_graph) {
                    geometric = Some(WorstPair { u, v, in_graph: lg, in_spanner: ls });
                }
                let sg = 6.0 * lg + 5.0 - ls;
                if geo_slack.is_none_or(|s| sg < s) {
                    geo_slack = Some(sg);
                }
            }
        }
        DilationReport {
            topological,
            geometric,
            topo_bound_slack: topo_slack,
            geo_bound_slack: geo_slack,
        }
    }

    #[test]
    fn filtered_engine_matches_unfiltered_reference() {
        // the threshold filter + radius-bounded Dijkstra must reproduce
        // the naive sweep bit-for-bit, witnesses included — across
        // instances large enough to exercise the prepass thresholds
        for (n, side, seed) in [(150, 7.0, 1), (200, 8.0, 4), (250, 9.0, 11), (180, 7.5, 23)] {
            let Some(udg) = connected_udg(n, side, seed) else { continue };
            let result = AlgorithmTwo::new().construct(udg.graph());
            let fast = DilationReport::measure(udg.graph(), &result.spanner, udg.points());
            let want = measure_reference(udg.graph(), &result.spanner, udg.points());
            assert_eq!(fast, want, "n={n} seed={seed}");
        }
    }

    #[test]
    fn filtered_engine_matches_reference_on_identity_spanner() {
        // ratio-1 everywhere: thresholds are tight, maximal skipping
        let udg = connected_udg(160, 7.0, 9).expect("dense deployment connects");
        let fast = DilationReport::measure(udg.graph(), udg.graph(), udg.points());
        let want = measure_reference(udg.graph(), udg.graph(), udg.points());
        assert_eq!(fast, want);
    }

    #[test]
    fn worst_pair_witnesses_are_consistent() {
        let Some(udg) = connected_udg(90, 5.0, 7) else { return };
        let result = AlgorithmTwo::new().construct(udg.graph());
        let r = DilationReport::measure(udg.graph(), &result.spanner, udg.points());
        if let Some(w) = r.topological {
            let hg = traversal::hop_distance(udg.graph(), w.u, w.v).unwrap();
            let hs = traversal::hop_distance(&result.spanner, w.u, w.v).unwrap();
            assert_eq!(w.in_graph, hg as f64);
            assert_eq!(w.in_spanner, hs as f64);
            assert!(hg >= 2);
        }
    }
}
