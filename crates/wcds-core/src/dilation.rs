//! Topological and geometric dilation of a spanner (§3, Theorem 11).
//!
//! For a spanner `G'` of `G` and non-adjacent `u, v`:
//!
//! * **topological dilation** compares minimum hop counts:
//!   `h'(u, v)` vs `h(u, v)`; Theorem 11 proves `h' ≤ 3h + 2` for
//!   Algorithm II's spanner;
//! * **geometric dilation** compares the worst-case Euclidean length of
//!   a *minimum-hop* path in `G'` against the length of a
//!   minimum-distance path in `G`; Lemma 6 turns the affine hop bound
//!   `h' ≤ αh + β` into `ℓ' < 2αℓ + 2α + β`, giving `ℓ' ≤ 6ℓ + 5`.
//!
//! [`DilationReport::measure`] computes the exact maxima over all
//! non-adjacent connected pairs (an `O(n·(n+|E|))` sweep of BFS /
//! Dijkstra / shortest-path-DAG passes), plus the affine-bound checks
//! with their worst witnesses.

use wcds_graph::{shortest_path, traversal, Graph, NodeId};
use wcds_geom::Point;

/// Worst-case pair evidence for one dilation metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorstPair {
    /// One endpoint.
    pub u: NodeId,
    /// Other endpoint.
    pub v: NodeId,
    /// Metric value in the base graph `G`.
    pub in_graph: f64,
    /// Metric value in the spanner `G'`.
    pub in_spanner: f64,
}

/// Dilation measurements of a spanner against its base graph.
#[derive(Debug, Clone)]
pub struct DilationReport {
    /// Maximum of `h'(u,v) / h(u,v)` over non-adjacent pairs, with its
    /// witness. `None` when no non-adjacent pair exists.
    pub topological: Option<WorstPair>,
    /// Maximum of `ℓ'(u,v) / ℓ(u,v)` (worst min-hop path length in `G'`
    /// vs min-distance path in `G`), with witness.
    pub geometric: Option<WorstPair>,
    /// Maximum slack of `3h + 2 − h'` — nonnegative iff Theorem 11's
    /// topological bound holds; the stored pair minimises the slack.
    pub topo_bound_slack: Option<f64>,
    /// Maximum slack of `6ℓ + 5 − ℓ'` — nonnegative iff Theorem 11's
    /// geometric bound holds.
    pub geo_bound_slack: Option<f64>,
}

impl DilationReport {
    /// Measures dilation of `spanner` over `g` with node positions
    /// `points` (used for the geometric metric).
    ///
    /// Only pairs that are **non-adjacent in `g`** and connected in both
    /// graphs participate, per the paper's definitions.
    ///
    /// # Panics
    ///
    /// Panics if the graphs differ in node count, `points` is the wrong
    /// length, or the spanner disconnects a pair `g` connects (a spanner
    /// must preserve connectivity).
    pub fn measure(g: &Graph, spanner: &Graph, points: &[Point]) -> Self {
        assert_eq!(g.node_count(), spanner.node_count(), "node count mismatch");
        assert_eq!(points.len(), g.node_count(), "one point per node required");
        let n = g.node_count();
        let mut topological: Option<WorstPair> = None;
        let mut geometric: Option<WorstPair> = None;
        let mut topo_slack: Option<f64> = None;
        let mut geo_slack: Option<f64> = None;

        for u in 0..n {
            let h_g = traversal::bfs_distances(g, u);
            let h_s = traversal::bfs_distances(spanner, u);
            let l_g = shortest_path::geometric_distances(g, points, u);
            let l_s = shortest_path::min_hop_max_length(spanner, points, u);
            for v in (u + 1)..n {
                let Some(hg) = h_g[v] else { continue };
                if hg <= 1 {
                    continue; // adjacent or identical: dilation undefined
                }
                let hs = h_s[v].unwrap_or_else(|| {
                    panic!("spanner disconnects pair ({u}, {v}) that G connects")
                });
                let lg = l_g[v].expect("hop-connected implies length-connected");
                let ls = l_s[v].expect("hop-connected in spanner");

                let topo_ratio = hs as f64 / hg as f64;
                if topological.is_none_or(|w| topo_ratio > w.in_spanner / w.in_graph) {
                    topological =
                        Some(WorstPair { u, v, in_graph: hg as f64, in_spanner: hs as f64 });
                }
                let slack_t = (3 * hg + 2) as f64 - hs as f64;
                if topo_slack.is_none_or(|s| slack_t < s) {
                    topo_slack = Some(slack_t);
                }

                let geo_ratio = ls / lg;
                if geometric.is_none_or(|w| geo_ratio > w.in_spanner / w.in_graph) {
                    geometric = Some(WorstPair { u, v, in_graph: lg, in_spanner: ls });
                }
                let slack_g = 6.0 * lg + 5.0 - ls;
                if geo_slack.is_none_or(|s| slack_g < s) {
                    geo_slack = Some(slack_g);
                }
            }
        }
        Self { topological, geometric, topo_bound_slack: topo_slack, geo_bound_slack: geo_slack }
    }

    /// The maximum topological dilation ratio (1.0 when no pair
    /// qualifies).
    pub fn topological_ratio(&self) -> f64 {
        self.topological.map_or(1.0, |w| w.in_spanner / w.in_graph)
    }

    /// The maximum geometric dilation ratio (1.0 when no pair
    /// qualifies).
    pub fn geometric_ratio(&self) -> f64 {
        self.geometric.map_or(1.0, |w| w.in_spanner / w.in_graph)
    }

    /// Whether Theorem 11's affine bound `h' ≤ 3h + 2` held for every
    /// measured pair.
    pub fn satisfies_topological_bound(&self) -> bool {
        self.topo_bound_slack.map_or(true, |s| s >= 0.0)
    }

    /// Whether Theorem 11's affine bound `ℓ' ≤ 6ℓ + 5` held for every
    /// measured pair.
    pub fn satisfies_geometric_bound(&self) -> bool {
        self.geo_bound_slack.map_or(true, |s| s >= -1e-9)
    }
}

/// Lemma 6 as a checkable statement: if `h'(u,v) ≤ α·h(u,v) + β` for all
/// non-adjacent pairs, then `ℓ'(u,v) < 2α·ℓ(u,v) + 2α + β`.
///
/// Returns the worst observed `ℓ' − (2α·ℓ + 2α + β)` (negative means the
/// implication held with room to spare), or `None` if no pair qualified.
pub fn lemma6_worst_slack(
    g: &Graph,
    spanner: &Graph,
    points: &[Point],
    alpha: f64,
    beta: f64,
) -> Option<f64> {
    let n = g.node_count();
    let mut worst: Option<f64> = None;
    for u in 0..n {
        let h_g = traversal::bfs_distances(g, u);
        let l_g = shortest_path::geometric_distances(g, points, u);
        let l_s = shortest_path::min_hop_max_length(spanner, points, u);
        for v in (u + 1)..n {
            let Some(hg) = h_g[v] else { continue };
            if hg <= 1 {
                continue;
            }
            let (Some(lg), Some(ls)) = (l_g[v], l_s[v]) else { continue };
            let excess = ls - (2.0 * alpha * lg + 2.0 * alpha + beta);
            if worst.is_none_or(|w| excess > w) {
                worst = Some(excess);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo2::AlgorithmTwo;
    use crate::WcdsConstruction;
    use wcds_geom::deploy;
    use wcds_graph::UnitDiskGraph;

    fn connected_udg(n: usize, side: f64, seed: u64) -> Option<UnitDiskGraph> {
        let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed), 1.0);
        traversal::is_connected(udg.graph()).then_some(udg)
    }

    #[test]
    fn identity_spanner_has_dilation_one() {
        let udg = connected_udg(80, 4.0, 2).expect("dense deployment connects");
        let r = DilationReport::measure(udg.graph(), udg.graph(), udg.points());
        assert_eq!(r.topological_ratio(), 1.0);
        assert!(r.geometric_ratio() >= 1.0); // max-length min-hop path can exceed ℓ_G
        assert!(r.satisfies_topological_bound());
        assert!(r.satisfies_geometric_bound());
    }

    #[test]
    fn theorem11_bounds_hold_for_algorithm2_spanner() {
        for seed in 0..6 {
            let Some(udg) = connected_udg(120, 6.0, seed) else { continue };
            let result = AlgorithmTwo::new().construct(udg.graph());
            let r = DilationReport::measure(udg.graph(), &result.spanner, udg.points());
            assert!(r.satisfies_topological_bound(), "seed {seed}: {:?}", r.topo_bound_slack);
            assert!(r.satisfies_geometric_bound(), "seed {seed}: {:?}", r.geo_bound_slack);
        }
    }

    #[test]
    fn lemma6_implication_holds_with_measured_alpha_beta() {
        let Some(udg) = connected_udg(100, 5.0, 3) else { return };
        let result = AlgorithmTwo::new().construct(udg.graph());
        // with (α, β) = (3, 2) the paper's geometric bound must hold
        let slack = lemma6_worst_slack(udg.graph(), &result.spanner, udg.points(), 3.0, 2.0);
        if let Some(s) = slack {
            assert!(s < 0.0, "Lemma 6 violated: excess {s}");
        }
    }

    #[test]
    #[should_panic(expected = "disconnects")]
    fn disconnected_spanner_panics() {
        let udg = UnitDiskGraph::build(deploy::chain(4, 0.9), 1.0);
        let empty = Graph::empty(4);
        let _ = DilationReport::measure(udg.graph(), &empty, udg.points());
    }

    #[test]
    fn no_qualifying_pairs_yields_trivial_report() {
        // a triangle: every pair adjacent
        let pts = deploy::gaussian_blob(3, 1.0, 1.0, 0.01, 1);
        let udg = UnitDiskGraph::build(pts, 1.0);
        assert_eq!(udg.graph().edge_count(), 3);
        let r = DilationReport::measure(udg.graph(), udg.graph(), udg.points());
        assert!(r.topological.is_none());
        assert!(r.satisfies_topological_bound());
    }

    #[test]
    fn worst_pair_witnesses_are_consistent() {
        let Some(udg) = connected_udg(90, 5.0, 7) else { return };
        let result = AlgorithmTwo::new().construct(udg.graph());
        let r = DilationReport::measure(udg.graph(), &result.spanner, udg.points());
        if let Some(w) = r.topological {
            let hg = traversal::hop_distance(udg.graph(), w.u, w.v).unwrap();
            let hs = traversal::hop_distance(&result.spanner, w.u, w.v).unwrap();
            assert_eq!(w.in_graph, hg as f64);
            assert_eq!(w.in_spanner, hs as f64);
            assert!(hg >= 2);
        }
    }
}
