//! Maximal independent set construction (§2 of the paper).
//!
//! The centralized pattern (the paper's Table 1): repeatedly take the
//! lowest-ranked *white* node, mark it black, and mark its neighbors
//! gray, until no white node remains. The black nodes form an MIS, hence
//! an independent dominating set. Which MIS you get — and which extra
//! structural properties it has — depends entirely on the ranking:
//!
//! * [`RankingMode::StaticId`] — Algorithm II's MIS (complementary
//!   subsets 2 **or 3** hops apart, Lemma 3);
//! * [`RankingMode::DegreeId`] — the classic `(white-degree, id)`
//!   dynamic heuristic, included for the ranking ablation;
//! * level-based ranks via [`greedy_mis_ranked`] — Algorithm I's MIS
//!   (complementary subsets **exactly 2** hops apart, Theorem 4).

use crate::ranking::Rank;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wcds_graph::{Graph, NodeId};

/// Built-in ranking policies for [`greedy_mis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankingMode {
    /// Static rank = node ID. Lowest ID wins.
    StaticId,
    /// Dynamic rank = `(number of white neighbors, id)`, recomputed as
    /// nodes leave the white set; *higher* white degree = lower rank
    /// (greedy coverage), ID breaks ties.
    DegreeId,
}

/// Node colors during and after MIS construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    /// Undecided.
    White,
    /// In the MIS (a dominator).
    Black,
    /// Dominated by a black neighbor.
    Gray,
}

/// Greedy MIS under a built-in ranking mode.
///
/// Returns the MIS sorted ascending. Works on any graph (not only UDGs);
/// the UDG-specific bounds (Lemma 1/2) of course only hold on UDGs.
///
/// # Examples
///
/// ```
/// use wcds_core::mis::{greedy_mis, RankingMode};
/// use wcds_graph::generators;
///
/// let g = generators::path(5);
/// assert_eq!(greedy_mis(&g, RankingMode::StaticId), vec![0, 2, 4]);
/// ```
pub fn greedy_mis(g: &Graph, mode: RankingMode) -> Vec<NodeId> {
    match mode {
        RankingMode::StaticId => {
            let ranks: Vec<Rank> = g.nodes().map(|u| Rank::new(0, u as u64)).collect();
            greedy_mis_ranked(g, &ranks)
        }
        RankingMode::DegreeId => greedy_mis_degree(g),
    }
}

/// Greedy MIS in ascending order of the given static ranks (the paper's
/// Table 1 algorithm verbatim).
///
/// # Panics
///
/// Panics if `ranks.len() != g.node_count()`.
pub fn greedy_mis_ranked(g: &Graph, ranks: &[Rank]) -> Vec<NodeId> {
    assert_eq!(ranks.len(), g.node_count(), "one rank per node required");
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|&u| ranks[u]);
    let mut color = vec![Color::White; g.node_count()];
    let mut mis = Vec::new();
    for u in order {
        if color[u] != Color::White {
            continue;
        }
        color[u] = Color::Black;
        mis.push(u);
        for v in g.adj(u) {
            if color[v] == Color::White {
                color[v] = Color::Gray;
            }
        }
    }
    mis.sort_unstable();
    mis
}

/// Greedy MIS with colors returned, for callers that need the gray set.
pub fn greedy_mis_ranked_with_colors(g: &Graph, ranks: &[Rank]) -> (Vec<NodeId>, Vec<Color>) {
    let mis = greedy_mis_ranked(g, ranks);
    let mut color = vec![Color::Gray; g.node_count()];
    for &u in &mis {
        color[u] = Color::Black;
    }
    (mis, color)
}

/// Dynamic `(white-degree, id)` greedy MIS: at each step pick the white
/// node covering the most still-white nodes, lowest ID on ties.
fn greedy_mis_degree(g: &Graph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut color = vec![Color::White; n];
    let mut white_deg: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
    // max-heap on (white_deg, Reverse(id)); stale entries skipped lazily
    let mut heap: BinaryHeap<(usize, Reverse<NodeId>)> =
        g.nodes().map(|u| (white_deg[u], Reverse(u))).collect();
    let mut mis = Vec::new();
    while let Some((d, Reverse(u))) = heap.pop() {
        if color[u] != Color::White || d != white_deg[u] {
            continue; // decided already, or stale priority
        }
        color[u] = Color::Black;
        mis.push(u);
        for v in g.adj(u) {
            if color[v] == Color::White {
                color[v] = Color::Gray;
                // v's white neighbors lose a white neighbor
                for w in g.adj(v) {
                    if color[w] == Color::White {
                        white_deg[w] -= 1;
                        heap.push((white_deg[w], Reverse(w)));
                    }
                }
            }
        }
    }
    mis.sort_unstable();
    mis
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_graph::{domination, generators, UnitDiskGraph};
    use wcds_geom::deploy;

    fn assert_is_mis(g: &Graph, mis: &[NodeId]) {
        assert!(domination::is_maximal_independent_set(g, mis), "not an MIS: {mis:?}");
    }

    #[test]
    fn static_id_on_path() {
        let g = generators::path(6);
        let mis = greedy_mis(&g, RankingMode::StaticId);
        assert_eq!(mis, vec![0, 2, 4]);
        assert_is_mis(&g, &mis);
    }

    #[test]
    fn static_id_on_star_prefers_center() {
        let g = generators::star(5);
        assert_eq!(greedy_mis(&g, RankingMode::StaticId), vec![0]);
    }

    #[test]
    fn degree_id_prefers_high_degree_nodes_first() {
        // on a star the center (highest degree) is taken first, giving
        // the minimum MIS; static-id would also pick 0 here, so use a
        // star centered at the highest id to tell the modes apart
        let mut b = wcds_graph::GraphBuilder::new(6);
        for leaf in 0..5 {
            b.add_edge(5, leaf);
        }
        let g = b.build();
        assert_eq!(greedy_mis(&g, RankingMode::DegreeId), vec![5]);
        // static-id picks leaf 0 first, forcing all five leaves in
        assert_eq!(greedy_mis(&g, RankingMode::StaticId), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn degree_id_yields_valid_mis_on_caterpillar() {
        let g = generators::caterpillar(5, 4);
        assert_is_mis(&g, &greedy_mis(&g, RankingMode::DegreeId));
        assert_is_mis(&g, &greedy_mis(&g, RankingMode::StaticId));
    }

    #[test]
    fn both_modes_yield_valid_mis_on_random_graphs() {
        for seed in 0..10 {
            let g = generators::connected_gnp(50, 0.08, seed);
            for mode in [RankingMode::StaticId, RankingMode::DegreeId] {
                let mis = greedy_mis(&g, mode);
                assert_is_mis(&g, &mis);
            }
        }
    }

    #[test]
    fn both_modes_yield_valid_mis_on_udgs() {
        for seed in 0..5 {
            let udg = UnitDiskGraph::build(deploy::uniform(120, 6.0, 6.0, seed), 1.0);
            for mode in [RankingMode::StaticId, RankingMode::DegreeId] {
                assert_is_mis(udg.graph(), &greedy_mis(udg.graph(), mode));
            }
        }
    }

    #[test]
    fn ranked_mis_respects_rank_order() {
        // give node 3 the lowest rank on a path: it must be in the MIS
        let g = generators::path(7);
        let mut ranks: Vec<Rank> = (0..7).map(|u| Rank::new(1, u as u64)).collect();
        ranks[3] = Rank::new(0, 3);
        let mis = greedy_mis_ranked(&g, &ranks);
        assert!(mis.contains(&3));
        assert_is_mis(&g, &mis);
    }

    #[test]
    fn colors_partition_nodes() {
        let g = generators::connected_gnp(40, 0.1, 1);
        let ranks: Vec<Rank> = g.nodes().map(|u| Rank::new(0, u as u64)).collect();
        let (mis, colors) = greedy_mis_ranked_with_colors(&g, &ranks);
        let blacks = colors.iter().filter(|&&c| c == Color::Black).count();
        assert_eq!(blacks, mis.len());
        assert!(colors.iter().all(|&c| c != Color::White));
    }

    #[test]
    fn empty_and_singleton_graphs() {
        assert!(greedy_mis(&Graph::empty(0), RankingMode::StaticId).is_empty());
        assert_eq!(greedy_mis(&Graph::empty(1), RankingMode::StaticId), vec![0]);
        assert_eq!(greedy_mis(&Graph::empty(3), RankingMode::DegreeId), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "one rank per node")]
    fn rank_length_mismatch_panics() {
        let g = generators::path(3);
        let _ = greedy_mis_ranked(&g, &[Rank::new(0, 0)]);
    }
}
