//! WCDS post-processing: redundant-dominator pruning.
//!
//! The paper closes Theorem 10 with "the bound on the size of `U` may
//! be improved by tighter analysis". This module implements the
//! engineering counterpart: a **pruning pass** that removes dominators
//! one at a time whenever the remainder is still a valid WCDS. The
//! result is a *minimal* WCDS (no proper subset works), typically
//! noticeably smaller than the raw construction — at the price of the
//! structural guarantees the MIS layout provided (the 3-hop bridges may
//! go, and with them Theorem 11's dilation constants; the A2 ablation
//! in `wcds-bench` quantifies that trade).

use crate::Wcds;
use wcds_graph::{domination, Graph, NodeId};

/// How pruning candidates are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneOrder {
    /// Try highest IDs first (deterministic, matches the ID-based
    /// symmetry breaking used everywhere else).
    #[default]
    DescendingId,
    /// Try additional dominators before MIS dominators, highest degree
    /// first — bridges are the most frequently redundant nodes.
    BridgesFirst,
}

/// Removes redundant dominators from a valid WCDS until it is minimal.
///
/// Runs in `O(|U| · (n + |E|))`: each removal candidate is re-validated
/// with one BFS over the weakly induced subgraph.
///
/// Returns the pruned set; the MIS/additional partition of surviving
/// nodes is preserved (pruning never *adds* nodes).
///
/// # Panics
///
/// Panics if `wcds` is not a valid WCDS of `g` to begin with.
///
/// # Examples
///
/// ```
/// use wcds_core::postprocess::{prune, PruneOrder};
/// use wcds_core::Wcds;
/// use wcds_graph::generators;
///
/// // on a star, {center, leaf} is valid but the leaf is redundant
/// let g = generators::star(4);
/// let w = Wcds::new(vec![0], vec![1]);
/// let pruned = prune(&g, &w, PruneOrder::DescendingId);
/// assert_eq!(pruned.nodes(), &[0]);
/// ```
pub fn prune(g: &Graph, wcds: &Wcds, order: PruneOrder) -> Wcds {
    assert!(wcds.is_valid(g), "pruning requires a valid WCDS");
    let mut members: Vec<NodeId> = wcds.nodes().to_vec();
    let is_additional = |u: NodeId| wcds.additional_dominators().binary_search(&u).is_ok();

    let mut candidates = members.clone();
    match order {
        PruneOrder::DescendingId => candidates.sort_unstable_by(|a, b| b.cmp(a)),
        PruneOrder::BridgesFirst => candidates.sort_unstable_by_key(|&u| {
            (!is_additional(u), std::cmp::Reverse(g.degree(u)), u)
        }),
    }

    for &candidate in &candidates {
        let trial: Vec<NodeId> = members.iter().copied().filter(|&u| u != candidate).collect();
        if domination::is_weakly_connected_dominating_set(g, &trial) {
            members = trial;
        }
    }

    let mis: Vec<NodeId> = members.iter().copied().filter(|&u| !is_additional(u)).collect();
    let additional: Vec<NodeId> = members.into_iter().filter(|&u| is_additional(u)).collect();
    Wcds::new(mis, additional)
}

/// Whether a WCDS is minimal: removing any single member breaks it.
pub fn is_minimal(g: &Graph, wcds: &Wcds) -> bool {
    wcds.is_valid(g)
        && wcds.nodes().iter().all(|&u| {
            let trial: Vec<NodeId> =
                wcds.nodes().iter().copied().filter(|&v| v != u).collect();
            !domination::is_weakly_connected_dominating_set(g, &trial)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo1::AlgorithmOne;
    use crate::algo2::AlgorithmTwo;
    use crate::WcdsConstruction;
    use wcds_geom::deploy;
    use wcds_graph::{generators, traversal, UnitDiskGraph};

    #[test]
    fn pruned_sets_are_minimal_and_valid() {
        for seed in 0..6 {
            let g = generators::connected_gnp(40, 0.1, seed);
            let raw = AlgorithmTwo::new().construct(&g).wcds;
            for order in [PruneOrder::DescendingId, PruneOrder::BridgesFirst] {
                let pruned = prune(&g, &raw, order);
                assert!(pruned.is_valid(&g), "seed {seed}");
                assert!(pruned.len() <= raw.len());
                assert!(is_minimal(&g, &pruned), "seed {seed} order {order:?}");
            }
        }
    }

    #[test]
    fn pruning_respects_partition() {
        let udg = UnitDiskGraph::build(deploy::uniform(120, 6.0, 6.0, 3), 1.0);
        if !traversal::is_connected(udg.graph()) {
            return;
        }
        let raw = AlgorithmTwo::new().construct(udg.graph()).wcds;
        let pruned = prune(udg.graph(), &raw, PruneOrder::BridgesFirst);
        for &u in pruned.mis_dominators() {
            assert!(raw.mis_dominators().contains(&u));
        }
        for &u in pruned.additional_dominators() {
            assert!(raw.additional_dominators().contains(&u));
        }
    }

    #[test]
    fn bridges_first_removes_more_bridges() {
        let udg = UnitDiskGraph::build(deploy::uniform(200, 7.0, 7.0, 5), 1.0);
        if !traversal::is_connected(udg.graph()) {
            return;
        }
        let raw = AlgorithmTwo::new().construct(udg.graph()).wcds;
        let by_bridge = prune(udg.graph(), &raw, PruneOrder::BridgesFirst);
        assert!(by_bridge.additional_dominators().len() <= raw.additional_dominators().len());
    }

    #[test]
    fn already_minimal_sets_are_untouched() {
        // a path's optimum-style WCDS {1, 3} is minimal on P5
        let g = generators::path(5);
        let w = Wcds::from_mis(vec![1, 3]);
        assert!(is_minimal(&g, &w));
        let pruned = prune(&g, &w, PruneOrder::DescendingId);
        assert_eq!(pruned.nodes(), w.nodes());
    }

    #[test]
    fn algorithm1_output_often_shrinks() {
        let udg = UnitDiskGraph::build(deploy::uniform(150, 6.0, 6.0, 7), 1.0);
        if !traversal::is_connected(udg.graph()) {
            return;
        }
        let raw = AlgorithmOne::new().construct(udg.graph()).wcds;
        let pruned = prune(udg.graph(), &raw, PruneOrder::DescendingId);
        assert!(pruned.len() <= raw.len());
        assert!(pruned.is_valid(udg.graph()));
    }

    #[test]
    #[should_panic(expected = "valid WCDS")]
    fn pruning_invalid_set_panics() {
        let g = generators::path(5);
        let _ = prune(&g, &Wcds::from_mis(vec![0]), PruneOrder::DescendingId);
    }

    #[test]
    fn singleton_wcds_is_minimal() {
        let g = generators::star(4);
        let w = Wcds::from_mis(vec![0]);
        assert!(is_minimal(&g, &w));
        assert_eq!(prune(&g, &w, PruneOrder::DescendingId).nodes(), &[0]);
    }
}
