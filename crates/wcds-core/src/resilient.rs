//! (k, m)-resilient backbones: m-fold coverage, k-connected core.
//!
//! The paper's Algorithm II backbone is a single point of failure per
//! dominator: one crash uncovers its cluster until the repair engine
//! heals it. This module generalizes the construction along the two
//! axes the fault-tolerance literature names (Zhang et al.,
//! arXiv:1510.05886, connected m-fold dominating sets; Fukunaga,
//! arXiv:1511.09156, k-connected m-dominating sets in UDGs):
//!
//! * **m-fold coverage** — every non-dominator has at least `m`
//!   dominator neighbors, so `m − 1` dominator crashes cannot uncover
//!   any node;
//! * **k-connected core** — the subgraph *induced* by the dominators is
//!   k-vertex-connected (per component of the host graph), so the
//!   backbone itself survives any `k − 1` dominator crashes.
//!
//! The construction is **layered**: layer `i` re-runs the paper's
//! lex-first greedy MIS + 3-hop bridge machinery
//! ([`crate::mis::greedy_mis`], [`select_additional_dominators`]) on
//! the *residual* graph induced by the nodes no earlier layer selected.
//! Layers are pairwise disjoint, and greedy-MIS maximality gives every
//! never-selected node one MIS neighbor **per layer** — m-fold coverage
//! falls out of the layering with no extra bookkeeping. Layer 1 is
//! byte-identical to [`AlgorithmTwo`](crate::algo2::AlgorithmTwo), so a
//! `(1, 1)` backbone *is* the paper's backbone (plus the connectors
//! that upgrade weak connectivity to induced connectivity).
//!
//! Connectivity is then raised to `k` by **connector augmentation**:
//! first a deterministic sweep joins the induced components of the
//! dominator set through one- and two-node gray bridges (the 3-hop MIS
//! gap bound guarantees such bridges exist), then a repair loop finds a
//! cut witness below `k` ([`connectivity::vertex_cut_below`]) and adds
//! the interior of a lex-first bypass path that avoids the cut. The
//! loop terminates with connectivity `k` whenever the host component is
//! itself k-connected; otherwise it stops at the host's own limit and
//! [`ResilientBackbone::achieved_connectivity`] reports what was
//! reached — construction never panics on an unfavourable topology.
//!
//! Everything here is serial and deterministic: same graph, same
//! params, same backbone, independent of thread count.
//!
//! # Examples
//!
//! ```
//! use wcds_core::resilient::{ResilientBackbone, ResilientParams};
//! use wcds_geom::deploy;
//! use wcds_graph::{connectivity, domination, UnitDiskGraph};
//!
//! let udg = UnitDiskGraph::build(deploy::uniform(180, 6.0, 6.0, 11), 1.0);
//! let params = ResilientParams::new(2, 2).unwrap();
//! let b = ResilientBackbone::construct(udg.graph(), params);
//! assert!(domination::m_fold_coverage(udg.graph(), b.dominators(), 2));
//! assert!(connectivity::backbone_k_connectivity(
//!     udg.graph(),
//!     b.dominators(),
//!     b.achieved_connectivity(),
//! ));
//! ```

use crate::algo2::select_additional_dominators;
use crate::mis::{greedy_mis, RankingMode};
use crate::wcds::Wcds;
use std::fmt;
use wcds_graph::{connectivity, traversal, Graph, NodeId};

/// Maximum supported redundancy on either axis.
pub const MAX_FOLD: u32 = 3;

/// Repair-loop round cap per connectivity level: each round adds at
/// least one connector or stops, so this only bites on adversarial
/// topologies where the host graph is not k-connected to begin with.
const REPAIR_ROUNDS: usize = 64;

/// Target redundancy of a resilient backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResilientParams {
    /// Target vertex connectivity of the induced backbone (`1..=3`).
    pub k: u32,
    /// Coverage multiplicity for non-dominators (`1..=3`).
    pub m: u32,
}

/// Rejected [`ResilientParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError {
    axis: &'static str,
    got: u32,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} must be in 1..={MAX_FOLD}, got {}", self.axis, self.got)
    }
}

impl std::error::Error for ParamError {}

impl ResilientParams {
    /// Validated params: both axes in `1..=`[`MAX_FOLD`].
    pub fn new(k: u32, m: u32) -> Result<Self, ParamError> {
        if !(1..=MAX_FOLD).contains(&k) {
            return Err(ParamError { axis: "connectivity k", got: k });
        }
        if !(1..=MAX_FOLD).contains(&m) {
            return Err(ParamError { axis: "coverage m", got: m });
        }
        Ok(Self { k, m })
    }

    /// The paper's plain backbone shape: `(k, m) = (1, 1)`.
    pub fn plain() -> Self {
        Self { k: 1, m: 1 }
    }
}

/// A constructed (k, m)-backbone: disjoint dominator layers plus the
/// connectors that raise the induced core to the target connectivity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilientBackbone {
    params: ResilientParams,
    layers: Vec<Wcds>,
    connectors: Vec<NodeId>,
    achieved_k: u32,
    dominators: Vec<NodeId>,
}

impl ResilientBackbone {
    /// Runs the layered construction on `g`.
    ///
    /// Handles disconnected hosts (each component is treated
    /// independently) and never panics: if `g` itself cannot support
    /// the requested connectivity, the backbone is still built and
    /// [`achieved_connectivity`](Self::achieved_connectivity) reports
    /// the level that was actually reached.
    pub fn construct(g: &Graph, params: ResilientParams) -> Self {
        let n = g.node_count();
        let mut active = vec![true; n];
        let mut layers = Vec::with_capacity(params.m as usize);
        for _ in 0..params.m {
            let alive: Vec<NodeId> = (0..n).filter(|&u| is_set(&active, u)).collect();
            let residual = g.induced(&alive);
            // inactive nodes are isolated in the residual graph, so the
            // lex-first greedy admits them all; they are phantoms of
            // earlier layers and are filtered out. Isolated *active*
            // nodes correctly join: nobody else can cover them.
            let mis_full = greedy_mis(&residual, RankingMode::StaticId);
            let mis: Vec<NodeId> =
                mis_full.iter().copied().filter(|&u| is_set(&active, u)).collect();
            // bridge intermediates are residual-neighbors of MIS
            // anchors, hence always active
            let bridges = select_additional_dominators(&residual, &mis_full);
            for &u in mis.iter().chain(bridges.iter()) {
                clear(&mut active, u);
            }
            layers.push(Wcds::new(mis, bridges));
        }

        let mut in_d = vec![false; n];
        for layer in &layers {
            for &u in layer.nodes() {
                mark(&mut in_d, u);
            }
        }
        let mut connectors = Vec::new();
        connect_core(g, &mut in_d, &mut connectors);
        for level in 2..=params.k {
            raise_connectivity(g, &mut in_d, &mut connectors, level);
        }
        connectors.sort_unstable();

        let dominators: Vec<NodeId> = (0..n).filter(|&u| is_set(&in_d, u)).collect();
        let mut achieved_k = 0;
        for level in (1..=params.k).rev() {
            if connectivity::backbone_k_connectivity(g, &dominators, level) {
                achieved_k = level;
                break;
            }
        }
        Self { params, layers, connectors, achieved_k, dominators }
    }

    /// The requested redundancy.
    pub fn params(&self) -> ResilientParams {
        self.params
    }

    /// The `m` disjoint dominator layers; layer 0 is byte-identical to
    /// [`AlgorithmTwo`](crate::algo2::AlgorithmTwo) on the same graph.
    pub fn layers(&self) -> &[Wcds] {
        &self.layers
    }

    /// Connector nodes added by the connectivity augmentation, sorted.
    pub fn connectors(&self) -> &[NodeId] {
        &self.connectors
    }

    /// The vertex connectivity actually verified for the induced core
    /// (≤ `params.k`; lower only when the host graph itself is not
    /// k-connected in some component).
    pub fn achieved_connectivity(&self) -> u32 {
        self.achieved_k
    }

    /// All dominators across layers and connectors, sorted ascending.
    pub fn dominators(&self) -> &[NodeId] {
        &self.dominators
    }

    /// Total backbone size.
    pub fn len(&self) -> usize {
        self.dominators.len()
    }

    /// Whether the backbone is empty (only for the empty graph).
    pub fn is_empty(&self) -> bool {
        self.dominators.is_empty()
    }

    /// The whole backbone as one [`Wcds`]: clusterheads are the union
    /// of the layer MISes (so every node keeps an adjacent head — layer
    /// 1 already dominates), additional dominators are the bridges and
    /// connectors. This is the shape the router and the service bundle
    /// consume.
    pub fn merged_wcds(&self) -> Wcds {
        let mut mis = Vec::new();
        let mut additional = self.connectors.clone();
        for layer in &self.layers {
            mis.extend_from_slice(layer.mis_dominators());
            additional.extend_from_slice(layer.additional_dominators());
        }
        Wcds::new(mis, additional)
    }

    /// The weakly induced spanner of the merged backbone.
    pub fn spanner(&self, g: &Graph) -> Graph {
        g.weakly_induced(&self.dominators)
    }
}

// ---------------------------------------------------------------------
// connector augmentation

/// Phase A: joins the induced components of the dominator set inside
/// each host component, using single gray nodes first and then
/// adjacent gray pairs. Because layer 1 is a maximal independent set,
/// complementary dominator subsets sit at most 3 hops apart (the
/// paper's Lemma 3), so the two sweeps always finish the job on a
/// connected host.
fn connect_core(g: &Graph, in_d: &mut [bool], connectors: &mut Vec<NodeId>) {
    let n = g.node_count();
    let mut dsu = Dsu::new(n);
    for u in 0..n {
        if !is_set(in_d, u) {
            continue;
        }
        for v in g.adj(u) {
            if is_set(in_d, v) {
                dsu.union(u, v);
            }
        }
    }
    loop {
        let mut progress = false;
        // single gray nodes spanning two or more dominator components
        for x in 0..n {
            if is_set(in_d, x) {
                continue;
            }
            let mut first = usize::MAX;
            let mut joins = false;
            for v in g.adj(x) {
                if !is_set(in_d, v) {
                    continue;
                }
                let r = dsu.find(v);
                if first == usize::MAX {
                    first = r;
                } else if r != first {
                    joins = true;
                    break;
                }
            }
            if joins {
                mark(in_d, x);
                connectors.push(x);
                for v in g.adj(x) {
                    if is_set(in_d, v) {
                        dsu.union(x, v);
                    }
                }
                progress = true;
            }
        }
        // adjacent gray pairs bridging a 3-hop dominator gap
        for x in 0..n {
            if is_set(in_d, x) {
                continue;
            }
            let rx = dominator_root(g, &mut dsu, in_d, x);
            let Some(rx) = rx else { continue };
            let mut partner = usize::MAX;
            for y in g.adj(x) {
                if is_set(in_d, y) {
                    continue;
                }
                match dominator_root(g, &mut dsu, in_d, y) {
                    Some(ry) if ry != rx => {
                        partner = y;
                        break;
                    }
                    _ => {}
                }
            }
            if partner != usize::MAX {
                for u in [x, partner] {
                    mark(in_d, u);
                    connectors.push(u);
                    for v in g.adj(u) {
                        if is_set(in_d, v) {
                            dsu.union(u, v);
                        }
                    }
                }
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
}

/// The component root of `x`'s first dominator neighbor, if any.
fn dominator_root(g: &Graph, dsu: &mut Dsu, in_d: &[bool], x: NodeId) -> Option<usize> {
    g.adj(x).find(|&v| is_set(in_d, v)).map(|v| dsu.find(v))
}

/// Phase B: repairs vertex cuts below `level` by routing a lex-first
/// bypass path around each cut witness and promoting its gray interior
/// to connectors. Stops when the core verifies at `level` or when a
/// witness admits no bypass (the host component is not that connected).
fn raise_connectivity(
    g: &Graph,
    in_d: &mut [bool],
    connectors: &mut Vec<NodeId>,
    level: u32,
) {
    for _ in 0..REPAIR_ROUNDS {
        let d: Vec<NodeId> = (0..g.node_count()).filter(|&u| is_set(in_d, u)).collect();
        let Some((cut, u, w)) = cut_witness(g, &d, level) else { return };
        let mut banned = vec![false; g.node_count()];
        for &c in &cut {
            mark(&mut banned, c);
        }
        let Some(path) = bfs_path_avoiding(g, u, w, &banned) else { return };
        let mut added = false;
        for &p in &path {
            if !is_set(in_d, p) {
                mark(in_d, p);
                connectors.push(p);
                added = true;
            }
        }
        // a bypass with an all-dominator interior would contradict the
        // cut witness, but stop rather than loop if it ever happens
        if !added {
            return;
        }
    }
}

/// A connectivity-`level` violation in the induced core: the offending
/// cut (host ids) plus the lex-smallest separated dominator pair.
/// `None` when every host-component group verifies at `level`.
fn cut_witness(g: &Graph, d: &[NodeId], level: u32) -> Option<(Vec<NodeId>, NodeId, NodeId)> {
    let mut comp = vec![usize::MAX; g.node_count()];
    for (i, c) in traversal::connected_components(g).iter().enumerate() {
        for &u in c {
            set_val(&mut comp, u, i);
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for &u in d {
        groups.entry(comp.get(u).copied().unwrap_or(usize::MAX)).or_default().push(u);
    }
    for grp in groups.values() {
        if grp.len() <= 1 {
            continue;
        }
        let sub = g.induced(grp);
        let Some(cut) = subset_cut_below(&sub, grp, level) else { continue };
        // lex-smallest separated pair: the two smallest group nodes in
        // distinct components of the group minus the cut
        let mut banned = vec![false; g.node_count()];
        for &c in &cut {
            mark(&mut banned, c);
        }
        let mut seen = vec![false; g.node_count()];
        let mut u = usize::MAX;
        let mut w = usize::MAX;
        for &s in grp {
            if is_set(&banned, s) || is_set(&seen, s) {
                continue;
            }
            if u == usize::MAX {
                u = s;
            } else {
                w = s;
                break;
            }
            // flood s's component in the cut-free induced subgraph
            let mut queue = std::collections::VecDeque::from([s]);
            mark(&mut seen, s);
            while let Some(x) = queue.pop_front() {
                for y in sub.adj(x) {
                    if !is_set(&banned, y) && !is_set(&seen, y) {
                        mark(&mut seen, y);
                        queue.push_back(y);
                    }
                }
            }
        }
        if u != usize::MAX && w != usize::MAX {
            return Some((cut, u, w));
        }
    }
    None
}

/// A vertex cut of size `< level` for the dominator group `grp` inside
/// its induced (host-id-space) subgraph `sub`, mapped back to host ids.
fn subset_cut_below(sub: &Graph, grp: &[NodeId], level: u32) -> Option<Vec<NodeId>> {
    let compact = compact_induced(sub, grp);
    connectivity::vertex_cut_below(&compact, level)
        .map(|cut| cut.iter().filter_map(|&i| grp.get(i).copied()).collect())
}

/// Re-numbers `grp` (sorted host ids) to `0..grp.len()` with the edges
/// `sub` gives them.
fn compact_induced(sub: &Graph, grp: &[NodeId]) -> Graph {
    let mut idx = vec![usize::MAX; sub.node_count()];
    for (i, &u) in grp.iter().enumerate() {
        set_val(&mut idx, u, i);
    }
    let mut edges = Vec::new();
    for (i, &u) in grp.iter().enumerate() {
        for v in sub.adj(u) {
            let j = idx.get(v).copied().unwrap_or(usize::MAX);
            if j != usize::MAX && j > i {
                edges.push((i, j));
            }
        }
    }
    Graph::from_edges(grp.len(), edges)
}

/// Lex-first BFS path from `from` to `to` avoiding `banned` nodes.
fn bfs_path_avoiding(
    g: &Graph,
    from: NodeId,
    to: NodeId,
    banned: &[bool],
) -> Option<Vec<NodeId>> {
    if from == to {
        return Some(vec![from]);
    }
    if is_set(banned, from) || is_set(banned, to) {
        return None;
    }
    let n = g.node_count();
    let mut parent = vec![usize::MAX; n];
    set_val(&mut parent, from, from);
    let mut queue = std::collections::VecDeque::from([from]);
    'bfs: while let Some(x) = queue.pop_front() {
        for y in g.adj(x) {
            if is_set(banned, y) || parent.get(y).copied().unwrap_or(0) != usize::MAX {
                continue;
            }
            set_val(&mut parent, y, x);
            if y == to {
                break 'bfs;
            }
            queue.push_back(y);
        }
    }
    if parent.get(to).copied().unwrap_or(usize::MAX) == usize::MAX {
        return None;
    }
    let mut path = vec![to];
    let mut x = to;
    while x != from {
        x = parent.get(x).copied().unwrap_or(from);
        path.push(x);
    }
    path.reverse();
    Some(path)
}

// ---------------------------------------------------------------------
// small helpers (strict-file policy: no slice indexing, no narrow casts)

fn is_set(bits: &[bool], u: usize) -> bool {
    bits.get(u).copied().unwrap_or(false)
}

fn mark(bits: &mut [bool], u: usize) {
    if let Some(b) = bits.get_mut(u) {
        *b = true;
    }
}

fn clear(bits: &mut [bool], u: usize) {
    if let Some(b) = bits.get_mut(u) {
        *b = false;
    }
}

fn set_val(v: &mut [usize], at: usize, val: usize) {
    if let Some(slot) = v.get_mut(at) {
        *slot = val;
    }
}

/// Path-halving union-find over host node ids.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self { parent: (0..n).collect() }
    }

    fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent.get(x).copied().unwrap_or(x);
            if p == x {
                return x;
            }
            let gp = self.parent.get(p).copied().unwrap_or(p);
            set_val(&mut self.parent, x, gp);
            x = gp;
        }
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        // deterministic: smaller root wins
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        set_val(&mut self.parent, hi, lo);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo2::AlgorithmTwo;
    use wcds_geom::deploy;
    use wcds_graph::{domination, generators, UnitDiskGraph};

    fn udg(n: usize, side: f64, seed: u64) -> UnitDiskGraph {
        UnitDiskGraph::build(deploy::uniform(n, side, side, seed), 1.0)
    }

    #[test]
    fn plain_layer_matches_algorithm_two_exactly() {
        for seed in 0..8 {
            let g = udg(150, 6.0, seed);
            let b = ResilientBackbone::construct(
                g.graph(),
                ResilientParams::plain(),
            );
            let (mis, additional) = AlgorithmTwo::new().construct_parts(g.graph());
            let layer = &b.layers()[0];
            assert_eq!(layer.mis_dominators(), &mis[..], "seed {seed}");
            assert_eq!(layer.additional_dominators(), &additional[..], "seed {seed}");
        }
    }

    #[test]
    fn layers_are_disjoint_and_cover_m_fold() {
        for seed in 0..6 {
            let g = udg(200, 6.5, seed);
            for m in 1..=3u32 {
                let b = ResilientBackbone::construct(
                    g.graph(),
                    ResilientParams::new(1, m).unwrap(),
                );
                let mut seen = std::collections::BTreeSet::new();
                for layer in b.layers() {
                    for &u in layer.nodes() {
                        assert!(seen.insert(u), "seed {seed} m {m}: layer overlap at {u}");
                    }
                }
                assert!(
                    domination::m_fold_coverage(g.graph(), b.dominators(), m as usize),
                    "seed {seed} m {m}: coverage violated"
                );
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let g = udg(180, 6.0, 5);
        let p = ResilientParams::new(2, 2).unwrap();
        let a = ResilientBackbone::construct(g.graph(), p);
        let b = ResilientBackbone::construct(g.graph(), p);
        assert_eq!(a, b);
    }

    #[test]
    fn merged_wcds_is_a_valid_wcds() {
        for seed in 0..4 {
            let g = udg(160, 6.0, seed);
            for (k, m) in [(1, 1), (1, 2), (2, 1), (2, 2)] {
                let b = ResilientBackbone::construct(
                    g.graph(),
                    ResilientParams::new(k, m).unwrap(),
                );
                assert!(
                    b.merged_wcds().is_valid(g.graph()),
                    "seed {seed} ({k},{m}): merged WCDS invalid"
                );
            }
        }
    }

    #[test]
    fn disconnected_hosts_are_handled_per_component() {
        // two far-apart clusters
        let mut pts = deploy::uniform(60, 3.0, 3.0, 9);
        pts.extend(deploy::uniform(60, 3.0, 3.0, 10).iter().map(|p| {
            wcds_geom::Point::new(p.x + 50.0, p.y + 50.0)
        }));
        let g = UnitDiskGraph::build(pts, 1.0);
        let b = ResilientBackbone::construct(
            g.graph(),
            ResilientParams::new(2, 2).unwrap(),
        );
        assert!(domination::m_fold_coverage(g.graph(), b.dominators(), 2));
        assert!(connectivity::backbone_k_connectivity(
            g.graph(),
            b.dominators(),
            b.achieved_connectivity()
        ));
    }

    #[test]
    fn achieved_connectivity_is_honest_on_a_path() {
        // a path can never yield a 2-connected core
        let g = generators::path(9);
        let b = ResilientBackbone::construct(&g, ResilientParams::new(2, 1).unwrap());
        assert_eq!(b.achieved_connectivity(), 1);
        assert!(connectivity::backbone_k_connectivity(&g, b.dominators(), 1));
    }

    #[test]
    fn params_are_validated() {
        assert!(ResilientParams::new(0, 1).is_err());
        assert!(ResilientParams::new(1, 4).is_err());
        assert!(ResilientParams::new(3, 3).is_ok());
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let b = ResilientBackbone::construct(
            &Graph::empty(0),
            ResilientParams::new(2, 2).unwrap(),
        );
        assert!(b.is_empty());
        let b = ResilientBackbone::construct(
            &Graph::empty(1),
            ResilientParams::new(2, 2).unwrap(),
        );
        assert_eq!(b.dominators(), &[0]);
    }
}
