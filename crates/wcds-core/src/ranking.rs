//! Node ranking (§2.2 of the paper).
//!
//! A *rank* is a unique, totally ordered identifier used to break
//! symmetry while growing an MIS. The paper distinguishes:
//!
//! * **static ranking** — the rank never changes; e.g. the node ID;
//! * **dynamic ranking** — the rank may change during construction;
//!   e.g. `(white-degree, id)`;
//! * **level-based ranking** — the static pair `(tree level, id)` where
//!   the level is the node's hop distance from the root of a spanning
//!   tree. This is the rank that makes the greedy MIS a WCDS
//!   (Theorems 4 and 5).

use wcds_graph::spanning::SpanningTree;
use wcds_graph::NodeId;

/// A level-based rank: the lexicographically ordered pair `(level, id)`.
///
/// The root (level 0) has the lowest rank; within a level, IDs break
/// ties. Ranks are unique as long as IDs are.
///
/// # Examples
///
/// ```
/// use wcds_core::ranking::Rank;
///
/// let root = Rank::new(0, 0);
/// let a = Rank::new(1, 10);
/// let b = Rank::new(3, 7);
/// assert!(root < a && a < b);
/// assert_eq!(format!("{a}"), "(1, 10)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rank {
    level: u32,
    id: u64,
}

impl Rank {
    /// Creates a rank from a level and an ID.
    pub fn new(level: u32, id: u64) -> Self {
        Self { level, id }
    }

    /// The level component (hop distance from the spanning-tree root).
    pub fn level(self) -> u32 {
        self.level
    }

    /// The ID component (tie-breaker).
    pub fn id(self) -> u64 {
        self.id
    }
}

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.level, self.id)
    }
}

/// Assigns every node its level-based rank from a spanning tree,
/// using node indices as IDs.
///
/// This is the centralized form of Algorithm I's first two phases: any
/// spanning tree works; BFS trees are what the distributed protocol
/// produces.
pub fn level_based_ranks(tree: &SpanningTree) -> Vec<Rank> {
    level_based_ranks_with_ids(tree, |u| u as u64)
}

/// Assigns level-based ranks with custom protocol-level IDs.
///
/// IDs must be unique or ranks will collide (checked in debug builds).
pub fn level_based_ranks_with_ids<F>(tree: &SpanningTree, mut id_of: F) -> Vec<Rank>
where
    F: FnMut(NodeId) -> u64,
{
    let ranks: Vec<Rank> =
        (0..tree.node_count()).map(|u| Rank::new(tree.level(u), id_of(u))).collect();
    debug_assert!(
        {
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            sorted.windows(2).all(|w| w[0] < w[1])
        },
        "ranks must be unique"
    );
    ranks
}

/// The permutation of nodes in ascending rank order.
pub fn rank_order(ranks: &[Rank]) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..ranks.len()).collect();
    order.sort_by_key(|&u| ranks[u]);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_graph::generators;

    #[test]
    fn lexicographic_order_level_first() {
        assert!(Rank::new(0, 99) < Rank::new(1, 0));
        assert!(Rank::new(2, 3) < Rank::new(2, 4));
        assert_eq!(Rank::new(1, 1), Rank::new(1, 1));
    }

    #[test]
    fn paper_figure6_examples() {
        // the paper's Figure 6: root (0, 0); node 10 at level 1 → (1, 10);
        // node 7 at level 3 → (3, 7)
        let root = Rank::new(0, 0);
        let n10 = Rank::new(1, 10);
        let n7 = Rank::new(3, 7);
        assert!(root < n10);
        assert!(n10 < n7);
        assert_eq!(format!("{n7}"), "(3, 7)");
    }

    #[test]
    fn tree_ranks_follow_levels() {
        let g = generators::grid(3, 3);
        let tree = SpanningTree::bfs(&g, 4).unwrap();
        let ranks = level_based_ranks(&tree);
        for (u, rank) in ranks.iter().enumerate() {
            assert_eq!(rank.level(), tree.level(u));
            assert_eq!(rank.id(), u as u64);
        }
        // root has the unique minimum rank
        let min = *ranks.iter().min().unwrap();
        assert_eq!(min, ranks[4]);
    }

    #[test]
    fn rank_order_starts_at_root() {
        let g = generators::connected_gnp(30, 0.1, 7);
        let tree = SpanningTree::bfs(&g, 12).unwrap();
        let ranks = level_based_ranks(&tree);
        let order = rank_order(&ranks);
        assert_eq!(order[0], 12);
        for w in order.windows(2) {
            assert!(ranks[w[0]] < ranks[w[1]]);
        }
    }

    #[test]
    fn custom_ids_break_ties_differently() {
        let g = generators::star(3);
        let tree = SpanningTree::bfs(&g, 0).unwrap();
        // reverse the ids of the three leaves
        let ranks = level_based_ranks_with_ids(&tree, |u| 100 - u as u64);
        let order = rank_order(&ranks);
        assert_eq!(order, vec![0, 3, 2, 1]);
    }
}
