//! Sparse-spanner extraction and sparseness accounting.
//!
//! Coloring every edge incident to a dominator black yields the weakly
//! induced subgraph `G'`. The paper proves `G'` has `Θ(n)` edges:
//!
//! * **Theorem 8** (Algorithm I): every black edge joins a gray node to a
//!   black node, and a gray node has at most 5 black neighbors (Lemma 1),
//!   so `|E'| ≤ 5 · #gray`.
//! * **Theorem 10** (Algorithm II): counting the three edge types —
//!   gray↔MIS (≤ 5·#gray), MIS↔additional (≤ 47·|S|/2, via the 3-hop
//!   pair bound of Lemma 2), gray↔additional (≤ 4·#gray) — gives
//!   `|E'| ≤ 9·#gray + 23.5·|S| = Θ(n)`.

use crate::Wcds;
use wcds_graph::{Graph, NodeId};

/// Sparseness accounting for a WCDS-induced spanner.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannerStats {
    /// Nodes in the underlying graph.
    pub nodes: usize,
    /// Edges in the underlying graph `G`.
    pub graph_edges: usize,
    /// Edges in the spanner `G'` (black edges).
    pub spanner_edges: usize,
    /// Gray (non-dominator) node count.
    pub gray_nodes: usize,
    /// MIS dominator count `|S|`.
    pub mis_dominators: usize,
    /// Additional dominator count `|C|`.
    pub additional_dominators: usize,
    /// Edges between a gray node and an MIS dominator.
    pub gray_mis_edges: usize,
    /// Edges between an MIS dominator and an additional dominator.
    pub mis_additional_edges: usize,
    /// Edges between a gray node and an additional dominator.
    pub gray_additional_edges: usize,
    /// Edges between two additional dominators.
    pub additional_additional_edges: usize,
    /// Edges between two "MIS" dominators — zero for the paper's
    /// algorithms (an MIS is independent) but possible for baselines
    /// whose dominator set is not independent.
    pub mis_mis_edges: usize,
}

impl SpannerStats {
    /// Computes the accounting for `wcds` over `g`.
    ///
    /// Classifies edges in one pass over `g`'s CSR — a black edge is any
    /// edge with a dominator endpoint, so neither the spanner graph nor
    /// its edge list needs materialising. The only allocations are the
    /// two membership bitmaps; at n = 1M this is the difference between
    /// a scan and a second graph build.
    pub fn compute(g: &Graph, wcds: &Wcds) -> Self {
        let is_mis = g.membership(wcds.mis_dominators());
        let is_add = g.membership(wcds.additional_dominators());
        let class = |x: NodeId| -> u8 {
            if is_mis[x] {
                0
            } else if is_add[x] {
                1
            } else {
                2
            }
        };
        let mut gray_mis = 0;
        let mut mis_add = 0;
        let mut gray_add = 0;
        let mut add_add = 0;
        let mut mis_mis = 0;
        let mut spanner_edges = 0;
        for u in g.nodes() {
            let cu = class(u);
            for v in g.adj(u) {
                if v <= u {
                    continue; // count each undirected edge once
                }
                match (cu.min(class(v)), cu.max(class(v))) {
                    (0, 2) => gray_mis += 1,
                    (0, 1) => mis_add += 1,
                    (1, 2) => gray_add += 1,
                    (1, 1) => add_add += 1,
                    (0, 0) => mis_mis += 1,
                    // gray–gray: not a black edge, not in the spanner
                    (2, 2) => continue,
                    other => unreachable!("impossible edge class {other:?}"),
                }
                spanner_edges += 1;
            }
        }
        Self {
            nodes: g.node_count(),
            graph_edges: g.edge_count(),
            spanner_edges,
            gray_nodes: g.node_count() - wcds.len(),
            mis_dominators: wcds.mis_dominators().len(),
            additional_dominators: wcds.additional_dominators().len(),
            gray_mis_edges: gray_mis,
            mis_additional_edges: mis_add,
            gray_additional_edges: gray_add,
            additional_additional_edges: add_add,
            mis_mis_edges: mis_mis,
        }
    }

    /// Spanner edges per node — the "linear edges" constant. Returns 0
    /// for the empty graph.
    pub fn edges_per_node(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.spanner_edges as f64 / self.nodes as f64
        }
    }

    /// Theorem 8's bound for a pure-MIS WCDS on a **unit-disk** graph:
    /// `|E'| ≤ 5 · #gray`.
    ///
    /// Only meaningful when there are no additional dominators and `g`
    /// was a UDG.
    pub fn satisfies_theorem8_bound(&self) -> bool {
        self.spanner_edges <= 5 * self.gray_nodes
    }

    /// Theorem 10's bound for an Algorithm II WCDS on a UDG:
    /// `|E'| ≤ 9·#gray + ⌈47/2⌉·|S|` (the 47/2 comes from Lemma 2's
    /// 3-hop pair count; we round up to stay integral).
    pub fn satisfies_theorem10_bound(&self) -> bool {
        self.spanner_edges <= 9 * self.gray_nodes + 24 * self.mis_dominators
    }

    /// Fraction of `G`'s edges kept by the spanner (1.0 for empty `G`).
    pub fn retention(&self) -> f64 {
        if self.graph_edges == 0 {
            1.0
        } else {
            self.spanner_edges as f64 / self.graph_edges as f64
        }
    }
}

impl std::fmt::Display for SpannerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "spanner: {}/{} edges over {} nodes ({:.2} edges/node, {:.1}% kept)",
            self.spanner_edges,
            self.graph_edges,
            self.nodes,
            self.edges_per_node(),
            100.0 * self.retention()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo1::AlgorithmOne;
    use crate::algo2::AlgorithmTwo;
    use crate::WcdsConstruction;
    use wcds_geom::deploy;
    use wcds_graph::{generators, UnitDiskGraph};

    #[test]
    fn edge_classes_sum_to_spanner_edges() {
        let udg = UnitDiskGraph::build(deploy::uniform(150, 6.0, 6.0, 5), 1.0);
        let result = AlgorithmTwo::new().construct(udg.graph());
        let s = SpannerStats::compute(udg.graph(), &result.wcds);
        assert_eq!(
            s.gray_mis_edges
                + s.mis_additional_edges
                + s.gray_additional_edges
                + s.additional_additional_edges
                + s.mis_mis_edges,
            s.spanner_edges
        );
        assert_eq!(s.mis_mis_edges, 0, "an MIS is independent");
        assert_eq!(s.nodes, 150);
    }

    #[test]
    fn theorem8_bound_holds_for_algorithm1_on_udgs() {
        for seed in 0..8 {
            let udg = UnitDiskGraph::build(deploy::uniform(180, 6.0, 6.0, seed), 1.0);
            if !wcds_graph::traversal::is_connected(udg.graph()) {
                continue;
            }
            let result = AlgorithmOne::new().construct(udg.graph());
            let s = SpannerStats::compute(udg.graph(), &result.wcds);
            assert!(s.satisfies_theorem8_bound(), "seed {seed}: {s}");
        }
    }

    #[test]
    fn theorem10_bound_holds_for_algorithm2_on_udgs() {
        for seed in 0..8 {
            let udg = UnitDiskGraph::build(deploy::uniform(180, 6.0, 6.0, seed), 1.0);
            if !wcds_graph::traversal::is_connected(udg.graph()) {
                continue;
            }
            let result = AlgorithmTwo::new().construct(udg.graph());
            let s = SpannerStats::compute(udg.graph(), &result.wcds);
            assert!(s.satisfies_theorem10_bound(), "seed {seed}: {s}");
        }
    }

    #[test]
    fn scan_counts_match_the_materialised_spanner() {
        // the CSR scan must agree with actually building G' — for both
        // algorithms and for a baseline-shaped (non-independent) WCDS
        for seed in [1, 4, 12] {
            let udg = UnitDiskGraph::build(deploy::uniform(160, 6.5, 6.5, seed), 1.0);
            for result in [
                AlgorithmOne::new().construct(udg.graph()),
                AlgorithmTwo::new().construct(udg.graph()),
            ] {
                let s = SpannerStats::compute(udg.graph(), &result.wcds);
                let spanner = result.wcds.weakly_induced_subgraph(udg.graph());
                assert_eq!(s.spanner_edges, spanner.edge_count(), "seed {seed}");
                assert_eq!(s.spanner_edges, result.spanner.edge_count(), "seed {seed}");
            }
        }
    }

    #[test]
    fn spanner_is_subgraph_and_retention_sane() {
        let g = generators::connected_gnp(60, 0.2, 3);
        let result = AlgorithmTwo::new().construct(&g);
        assert!(g.contains_subgraph(&result.spanner));
        let s = SpannerStats::compute(&g, &result.wcds);
        assert!(s.retention() <= 1.0 + 1e-12);
        assert!(s.retention() > 0.0);
    }

    #[test]
    fn display_is_informative() {
        let g = generators::path(4);
        let result = AlgorithmTwo::new().construct(&g);
        let s = SpannerStats::compute(&g, &result.wcds);
        assert!(format!("{s}").contains("edges/node"));
    }
}
