//! Weakly-connected dominating sets and position-less sparse spanners.
//!
//! This crate implements the primary contribution of
//! *Alzoubi, Wan, Frieder — ICDCS 2003*:
//!
//! * [`mis`] — maximal-independent-set machinery with pluggable ranking
//!   (§2 of the paper): static ID, dynamic `(degree, id)`, and the
//!   level-based `(tree level, id)` rank;
//! * [`ranking`] — rank types and the spanning-tree level assignment;
//! * [`algo1`] — **Algorithm I**: level-ranked MIS = WCDS with
//!   approximation ratio 5; centralized reference plus the full
//!   three-phase distributed protocol (leader election, level
//!   calculation, color marking);
//! * [`algo2`] — **Algorithm II**: fully localized; arbitrary MIS +
//!   additional dominators closing every 3-hop gap, `O(n)` time and
//!   messages, spanner with topological dilation 3 / geometric dilation
//!   6; centralized reference plus the full distributed protocol;
//! * [`election`] — distributed leader election + spanning-tree
//!   construction (the substrate Algorithm I's first phase needs);
//! * [`wcds`] — the verified [`Wcds`] output type;
//! * [`spanner`] — weakly-induced spanner extraction and sparseness
//!   accounting (Theorems 8 and 10);
//! * [`dilation`] — topological/geometric dilation measurement
//!   (Lemma 6, Theorem 11);
//! * [`properties`] — checkable forms of the structural lemmas
//!   (Lemmas 1–3, Theorem 4);
//! * [`maintenance`] — WCDS maintenance under mobility (the paper's
//!   §4.2 extension), with 3-hop repair locality;
//! * [`partition`] — grid-partitioned parallel Algorithm II for
//!   city-scale inputs (n = 100k–1M), byte-identical to the sequential
//!   construction;
//! * [`resilient`] — (k, m)-resilient backbones: layered residual
//!   re-runs of the MIS/bridge machinery give m-fold coverage, and
//!   connector augmentation raises the induced core to k-connectivity
//!   (the fault-tolerance generalization of ROADMAP item 4);
//! * [`postprocess`] — redundant-dominator pruning (the engineering
//!   side of the paper's "the bound … may be improved" remark);
//! * [`audit`] — one-stop backbone quality report combining all of the
//!   above.
//!
//! # Examples
//!
//! ```
//! use wcds_core::algo1::AlgorithmOne;
//! use wcds_core::algo2::AlgorithmTwo;
//! use wcds_core::WcdsConstruction;
//! use wcds_geom::deploy;
//! use wcds_graph::UnitDiskGraph;
//!
//! let udg = UnitDiskGraph::build(deploy::uniform(150, 6.0, 6.0, 3), 1.0);
//! for algo in [
//!     &AlgorithmOne::new() as &dyn WcdsConstruction,
//!     &AlgorithmTwo::new() as &dyn WcdsConstruction,
//! ] {
//!     let result = algo.construct(udg.graph());
//!     assert!(result.wcds.is_valid(udg.graph()), "{} built an invalid WCDS", algo.name());
//! }
//! ```

pub mod algo1;
pub mod algo2;
pub mod audit;
pub mod dilation;
pub mod election;
pub mod maintenance;
pub mod mis;
pub mod partition;
pub mod postprocess;
pub mod properties;
pub mod ranking;
pub mod resilient;
pub mod spanner;
pub mod wcds;

pub use wcds::Wcds;
use wcds_graph::Graph;

/// The output of a WCDS construction: the dominator set and the sparse
/// spanner it weakly induces.
#[derive(Debug, Clone)]
pub struct ConstructionResult {
    /// The weakly-connected dominating set (with its MIS/additional
    /// partition).
    pub wcds: Wcds,
    /// The weakly induced subgraph `G' = (V, E')` — the paper's
    /// position-less sparse spanner.
    pub spanner: Graph,
}

/// A WCDS construction algorithm (centralized view).
///
/// Both of the paper's algorithms, and every baseline, implement this so
/// experiments can sweep over algorithms uniformly. Distributed variants
/// live in the `distributed` submodules of [`algo1`] and [`algo2`] and
/// produce the same `ConstructionResult` plus message/time reports.
pub trait WcdsConstruction {
    /// Runs the construction on a connected graph.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `g` is disconnected (the paper
    /// assumes a connected network; check with
    /// [`wcds_graph::traversal::is_connected`] first).
    fn construct(&self, g: &Graph) -> ConstructionResult;

    /// A short display name ("algorithm-1", "greedy-wcds", …).
    fn name(&self) -> &'static str;
}
