//! **Algorithm I** (§4.1): level-ranked MIS as a WCDS with ratio 5.
//!
//! Three phases:
//!
//! 1. **Leader election** — elect a leader and build a spanning tree `T`
//!    (see [`crate::election`]); `O(n)` time, `O(n log n)` messages.
//! 2. **Level calculation** — each node learns its level (hop distance
//!    from the root in `T`) and its neighbors' levels; completion is
//!    reported up the tree with `COMPLETE` messages. `O(n)` messages.
//! 3. **Color marking** — grow the MIS greedily in `(level, id)` rank
//!    order using `BLACK`/`GRAY` messages. Every node sends exactly one
//!    message, so `O(n)` messages.
//!
//! By Theorem 4 the resulting MIS has all complementary subsets exactly
//! two hops apart, so by Theorem 5 it is a WCDS; by Lemma 7 its size is
//! at most `5·opt`; by Theorem 8 the black edges form a sparse spanner.
//!
//! [`AlgorithmOne`] is the centralized reference (identical output,
//! useful for analysis); [`distributed`] runs the real protocol stack on
//! the simulator and, under the synchronous schedule, produces the same
//! MIS.

use crate::mis::greedy_mis_ranked;
use crate::ranking::level_based_ranks;
use crate::{ConstructionResult, Wcds, WcdsConstruction};
use wcds_graph::spanning::SpanningTree;
use wcds_graph::{Graph, NodeId};

/// Centralized Algorithm I.
///
/// Builds a BFS spanning tree from the root (default: node 0, which is
/// what the distributed election elects under index IDs), ranks nodes by
/// `(level, id)`, and greedily grows the MIS in rank order.
///
/// # Examples
///
/// ```
/// use wcds_core::algo1::AlgorithmOne;
/// use wcds_core::WcdsConstruction;
/// use wcds_graph::generators;
///
/// let g = generators::cycle(9);
/// let result = AlgorithmOne::new().construct(&g);
/// assert!(result.wcds.is_valid(&g));
/// assert!(result.wcds.additional_dominators().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct AlgorithmOne {
    root: Option<NodeId>,
}

impl AlgorithmOne {
    /// Algorithm I rooted at node 0.
    pub fn new() -> Self {
        Self { root: None }
    }

    /// Overrides the root (leader) node.
    pub fn with_root(root: NodeId) -> Self {
        Self { root: Some(root) }
    }

    /// The spanning tree, ranks, and MIS — exposed for experiments that
    /// need the intermediates (e.g. the Theorem 4 subset-distance check).
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected.
    pub fn construct_detailed(&self, g: &Graph) -> (SpanningTree, Vec<NodeId>) {
        let root = self.root.unwrap_or(0);
        let tree = SpanningTree::bfs(g, root)
            .expect("Algorithm I requires a connected graph");
        let ranks = level_based_ranks(&tree);
        let mis = greedy_mis_ranked(g, &ranks);
        (tree, mis)
    }
}

impl WcdsConstruction for AlgorithmOne {
    fn construct(&self, g: &Graph) -> ConstructionResult {
        let (_, mis) = self.construct_detailed(g);
        let wcds = Wcds::from_mis(mis);
        let spanner = wcds.weakly_induced_subgraph(g);
        ConstructionResult { wcds, spanner }
    }

    fn name(&self) -> &'static str {
        "algorithm-1"
    }
}

pub mod distributed {
    //! The full distributed protocol stack for Algorithm I.
    //!
    //! Phases are run back-to-back on the simulator; the harness
    //! sequences them (in a deployment the root's receipt of all
    //! `COMPLETE` messages triggers the next phase — those messages are
    //! part of the level phase here, so the message accounting is
    //! faithful).

    use super::*;
    use crate::election::{self, ElectionOutcome};
    use crate::ranking::Rank;
    use wcds_sim::{Context, ProcId, Protocol, Schedule, SimReport, Simulator};

    /// Messages of the level-calculation phase.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum LevelMsg {
        /// "My level is `level`." Broadcast once per node.
        Level { level: u32 },
        /// "My subtree has finished computing levels." Sent up the tree.
        Complete,
    }

    /// Per-node state for the level-calculation phase.
    #[derive(Debug)]
    pub struct LevelNode {
        parent: Option<ProcId>,
        children: Vec<ProcId>,
        level: Option<u32>,
        neighbor_levels: Vec<(ProcId, u32)>,
        pending_children: usize,
        completed: bool,
    }

    impl LevelNode {
        /// A node that knows its tree parent and children (from the
        /// election phase).
        pub fn new(parent: Option<ProcId>, children: Vec<ProcId>) -> Self {
            let pending_children = children.len();
            Self {
                parent,
                children,
                level: None,
                neighbor_levels: Vec::new(),
                pending_children,
                completed: false,
            }
        }

        /// This node's level, once computed.
        pub fn level(&self) -> Option<u32> {
            self.level
        }

        /// The levels this node heard from its neighbors.
        pub fn neighbor_levels(&self) -> &[(ProcId, u32)] {
            &self.neighbor_levels
        }

        fn maybe_complete(&mut self, ctx: &mut Context<'_, LevelMsg>) {
            if !self.completed && self.level.is_some() && self.pending_children == 0 {
                self.completed = true;
                if let Some(p) = self.parent {
                    ctx.send(p, LevelMsg::Complete);
                }
            }
        }

        fn announce(&mut self, level: u32, ctx: &mut Context<'_, LevelMsg>) {
            self.level = Some(level);
            ctx.broadcast(LevelMsg::Level { level });
            self.maybe_complete(ctx);
        }
    }

    impl Protocol for LevelNode {
        type Message = LevelMsg;

        fn on_start(&mut self, ctx: &mut Context<'_, LevelMsg>) {
            if self.parent.is_none() {
                self.announce(0, ctx);
            }
        }

        fn on_message(&mut self, from: ProcId, msg: LevelMsg, ctx: &mut Context<'_, LevelMsg>) {
            match msg {
                LevelMsg::Level { level } => {
                    self.neighbor_levels.push((from, level));
                    if self.level.is_none() && self.parent == Some(from) {
                        self.announce(level + 1, ctx);
                    }
                }
                LevelMsg::Complete => {
                    debug_assert!(self.children.contains(&from), "COMPLETE from non-child");
                    self.pending_children -= 1;
                    self.maybe_complete(ctx);
                }
            }
        }

        fn message_kind(msg: &LevelMsg) -> &'static str {
            match msg {
                LevelMsg::Level { .. } => "LEVEL",
                LevelMsg::Complete => "COMPLETE",
            }
        }
    }

    /// Messages of the color-marking phase.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum MarkMsg {
        /// "I am black (an MIS dominator)."
        Black,
        /// "I am gray (dominated)."
        Gray,
    }

    /// Node colors in the marking phase.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum MarkColor {
        /// Undecided.
        White,
        /// MIS dominator.
        Black,
        /// Dominated.
        Gray,
    }

    /// Per-node state for the color-marking phase.
    #[derive(Debug)]
    pub struct MarkingNode {
        rank: Rank,
        lower_rank_neighbors: Vec<ProcId>,
        gray_heard: Vec<ProcId>,
        color: MarkColor,
    }

    impl MarkingNode {
        /// A node that knows its own rank and its neighbors' ranks (from
        /// the level phase).
        pub fn new(rank: Rank, neighbor_ranks: &[(ProcId, Rank)]) -> Self {
            let lower_rank_neighbors = neighbor_ranks
                .iter()
                .filter(|&&(_, r)| r < rank)
                .map(|&(p, _)| p)
                .collect();
            Self { rank, lower_rank_neighbors, gray_heard: Vec::new(), color: MarkColor::White }
        }

        /// Final color of the node.
        pub fn color(&self) -> MarkColor {
            self.color
        }

        /// This node's `(level, id)` rank.
        pub fn rank(&self) -> Rank {
            self.rank
        }

        fn maybe_blacken(&mut self, ctx: &mut Context<'_, MarkMsg>) {
            if self.color == MarkColor::White
                && self.lower_rank_neighbors.iter().all(|p| self.gray_heard.contains(p))
            {
                self.color = MarkColor::Black;
                ctx.broadcast(MarkMsg::Black);
            }
        }
    }

    impl Protocol for MarkingNode {
        type Message = MarkMsg;

        fn on_start(&mut self, ctx: &mut Context<'_, MarkMsg>) {
            // the root — and only the root — has no lower-rank neighbor
            self.maybe_blacken(ctx);
        }

        fn on_message(&mut self, from: ProcId, msg: MarkMsg, ctx: &mut Context<'_, MarkMsg>) {
            match msg {
                MarkMsg::Black => {
                    if self.color == MarkColor::White {
                        self.color = MarkColor::Gray;
                        ctx.broadcast(MarkMsg::Gray);
                    }
                }
                MarkMsg::Gray => {
                    self.gray_heard.push(from);
                    self.maybe_blacken(ctx);
                }
            }
        }

        fn message_kind(msg: &MarkMsg) -> &'static str {
            match msg {
                MarkMsg::Black => "BLACK",
                MarkMsg::Gray => "GRAY",
            }
        }
    }

    /// A complete distributed Algorithm I run.
    #[derive(Debug, Clone)]
    pub struct DistributedRun {
        /// The constructed WCDS and spanner.
        pub result: ConstructionResult,
        /// The elected leader (tree root).
        pub leader: NodeId,
        /// The election spanning tree.
        pub tree: SpanningTree,
        /// Phase 1 accounting.
        pub election_report: SimReport,
        /// Phase 2 accounting.
        pub level_report: SimReport,
        /// Phase 3 accounting.
        pub marking_report: SimReport,
    }

    impl DistributedRun {
        /// Total messages across all three phases.
        pub fn total_messages(&self) -> u64 {
            self.election_report.messages.total()
                + self.level_report.messages.total()
                + self.marking_report.messages.total()
        }

        /// Total virtual time across all three phases (phases run
        /// back-to-back).
        pub fn total_time(&self) -> u64 {
            self.election_report.time + self.level_report.time + self.marking_report.time
        }
    }

    /// Runs the three-phase distributed Algorithm I.
    ///
    /// `make_schedule` is invoked once per phase, so asynchronous runs
    /// can give each phase its own seed.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected or a protocol invariant is violated.
    pub fn run_with<F>(g: &Graph, mut make_schedule: F) -> DistributedRun
    where
        F: FnMut() -> Schedule,
    {
        // Phase 1: leader election + spanning tree.
        let ElectionOutcome { leader, tree, report: election_report } =
            election::elect(g, make_schedule());

        // Phase 2: level calculation.
        let mut level_sim = Simulator::new(g, |u| {
            LevelNode::new(tree.parent(u), tree.children(u).to_vec())
        });
        let level_report = level_sim.run(make_schedule()).expect("level phase quiesces");
        let levels: Vec<u32> = g
            .nodes()
            .map(|u| level_sim.node(u).level().expect("every node is leveled"))
            .collect();
        for u in g.nodes() {
            debug_assert_eq!(levels[u], tree.level(u), "protocol level disagrees with tree");
        }

        // Phase 3: color marking by (level, id) rank.
        let ranks: Vec<Rank> = g.nodes().map(|u| Rank::new(levels[u], u as u64)).collect();
        let mut mark_sim = Simulator::new(g, |u| {
            let neighbor_ranks: Vec<(ProcId, Rank)> = level_sim
                .node(u)
                .neighbor_levels()
                .iter()
                .map(|&(p, l)| (p, Rank::new(l, p as u64)))
                .collect();
            debug_assert_eq!(neighbor_ranks.len(), g.degree(u), "missing neighbor levels");
            MarkingNode::new(ranks[u], &neighbor_ranks)
        });
        let marking_report = mark_sim.run(make_schedule()).expect("marking phase quiesces");
        let mis: Vec<NodeId> =
            g.nodes().filter(|&u| mark_sim.node(u).color() == MarkColor::Black).collect();
        assert!(
            g.nodes().all(|u| mark_sim.node(u).color() != MarkColor::White),
            "marking phase left undecided nodes"
        );

        let wcds = Wcds::from_mis(mis);
        let spanner = wcds.weakly_induced_subgraph(g);
        DistributedRun {
            result: ConstructionResult { wcds, spanner },
            leader,
            tree,
            election_report,
            level_report,
            marking_report,
        }
    }

    /// Synchronous distributed Algorithm I.
    pub fn run_synchronous(g: &Graph) -> DistributedRun {
        run_with(g, Schedule::synchronous)
    }

    /// Asynchronous distributed Algorithm I (per-phase seeds derived
    /// from `seed`).
    pub fn run_asynchronous(g: &Graph, seed: u64) -> DistributedRun {
        let mut phase = 0u64;
        run_with(g, move || {
            phase += 1;
            Schedule::asynchronous(seed.wrapping_mul(31).wrapping_add(phase))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use wcds_geom::deploy;
    use wcds_graph::{domination, generators, traversal, UnitDiskGraph};

    #[test]
    fn centralized_output_is_mis_and_wcds() {
        for seed in 0..6 {
            let g = generators::connected_gnp(60, 0.07, seed);
            let result = AlgorithmOne::new().construct(&g);
            assert!(domination::is_maximal_independent_set(&g, result.wcds.nodes()));
            assert!(result.wcds.is_valid(&g), "seed {seed}");
        }
    }

    #[test]
    fn centralized_on_udgs() {
        for seed in 0..6 {
            let udg = UnitDiskGraph::build(deploy::uniform(150, 6.0, 6.0, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            let result = AlgorithmOne::new().construct(udg.graph());
            assert!(result.wcds.is_valid(udg.graph()));
        }
    }

    #[test]
    fn theorem4_complementary_subsets_exactly_two_hops() {
        for seed in 0..4 {
            let g = generators::connected_gnp(24, 0.12, seed);
            let (_, mis) = AlgorithmOne::new().construct_detailed(&g);
            if mis.len() < 2 {
                continue;
            }
            assert_eq!(
                properties::max_complementary_subset_distance(&g, &mis),
                Some(2),
                "seed {seed}: Theorem 4 violated for MIS {mis:?}"
            );
        }
    }

    #[test]
    fn custom_root_is_in_the_mis() {
        let g = generators::cycle(9);
        let (tree, mis) = AlgorithmOne::with_root(4).construct_detailed(&g);
        assert_eq!(tree.root(), 4);
        assert!(mis.contains(&4), "the root has the minimum rank, so it must be black");
    }

    #[test]
    fn distributed_matches_centralized_synchronously() {
        for seed in 0..5 {
            let g = generators::connected_gnp(40, 0.1, seed);
            let dist = distributed::run_synchronous(&g);
            let cent = AlgorithmOne::with_root(dist.leader).construct(&g);
            // same root and BFS levels ⇒ same ranks ⇒ same MIS
            assert_eq!(dist.result.wcds.mis_dominators(), cent.wcds.mis_dominators(), "seed {seed}");
        }
    }

    #[test]
    fn distributed_async_builds_a_valid_wcds() {
        for seed in 0..5 {
            let g = generators::connected_gnp(35, 0.1, seed);
            let run = distributed::run_asynchronous(&g, seed);
            assert!(run.result.wcds.is_valid(&g), "seed {seed}");
            assert!(domination::is_maximal_independent_set(&g, run.result.wcds.nodes()));
        }
    }

    #[test]
    fn marking_phase_sends_exactly_one_message_per_node() {
        let g = generators::connected_gnp(50, 0.08, 2);
        let run = distributed::run_synchronous(&g);
        // every node broadcasts exactly one BLACK or GRAY
        assert_eq!(run.marking_report.messages.total(), 50);
        assert_eq!(run.marking_report.messages.max_per_node(), 1);
    }

    #[test]
    fn level_phase_message_count_is_linear() {
        let g = generators::connected_gnp(50, 0.08, 4);
        let run = distributed::run_synchronous(&g);
        // one LEVEL broadcast per node + one COMPLETE per non-root node
        assert_eq!(run.level_report.messages.of_kind("LEVEL"), 50);
        assert_eq!(run.level_report.messages.of_kind("COMPLETE"), 49);
    }

    #[test]
    fn chain_worst_case_runs_in_linear_rounds() {
        let g = generators::path(60);
        let run = distributed::run_synchronous(&g);
        assert!(run.result.wcds.is_valid(&g));
        // phases are each O(n) rounds on the chain
        assert!(run.total_time() <= 6 * 60, "time {} not O(n)", run.total_time());
    }

    #[test]
    fn singleton_and_edge_graphs() {
        let g1 = wcds_graph::Graph::empty(1);
        let r1 = AlgorithmOne::new().construct(&g1);
        assert_eq!(r1.wcds.nodes(), &[0]);

        let g2 = generators::path(2);
        let r2 = AlgorithmOne::new().construct(&g2);
        assert_eq!(r2.wcds.nodes(), &[0]);
        assert!(r2.wcds.is_valid(&g2));

        let d2 = distributed::run_synchronous(&g2);
        assert_eq!(d2.result.wcds.nodes(), &[0]);
    }
}
