//! **Algorithm II** (§4.2): the fully localized WCDS construction.
//!
//! Three phases, all local:
//!
//! 1. **MIS phase** — grow an arbitrary MIS with the lowest-ID-among-
//!    white-neighbors rule (`MIS-DOMINATOR` / `GRAY` messages). By
//!    Lemma 3, complementary subsets of this MIS are 2 **or 3** hops
//!    apart.
//! 2. **Gap-closing phase** — gray nodes exchange `1-HOP-DOMINATORS` and
//!    `2-HOP-DOMINATORS` lists; for every pair of MIS dominators exactly
//!    three hops apart, the lower-ID one recruits a single intermediate
//!    node (`SELECTION` → `ADDITIONAL-DOMINATOR`), closing the gap to
//!    ≤ 2 hops. By Lemma 9 the union is a WCDS.
//! 3. **Edge coloring** — every edge incident to a dominator is black;
//!    the black subgraph is the sparse spanner (Theorem 10) with
//!    topological dilation 3 and geometric dilation 6 (Theorem 11).
//!
//! Every node sends `O(1)` messages (Theorem 12): one `MIS-DOMINATOR` or
//! `GRAY`, one list of each kind if gray, plus at most a constant number
//! of selection-related messages (bounded by Lemma 2's packing
//! constants). Time and messages are `O(n)`.
//!
//! One protocol detail is under-specified in the paper: how the far
//! dominator `w` of a selected 3-hop pair learns about its new bridge —
//! `w` is two hops from the broadcasting additional dominator `v`. We
//! have the shared intermediate `x` (adjacent to both `v` and `w`)
//! relay the announcement to `w` with a `RELAY` unicast, preserving the
//! `O(1)`-messages-per-node budget. This choice affects only `w`'s
//! routing tables, not the WCDS itself.

use crate::maintenance::region::{contributions_for_pred, BallScratch};
use crate::mis::{greedy_mis, RankingMode};
use crate::{ConstructionResult, Wcds, WcdsConstruction};
use std::collections::BTreeSet;
use wcds_graph::{traversal, Graph, NodeId};

/// Centralized Algorithm II.
///
/// Produces the same MIS as the distributed protocol (lowest-ID greedy)
/// and a deterministic choice of additional dominators (the smallest
/// eligible intermediate per 3-hop pair; the distributed run may pick a
/// different but equally valid intermediate).
///
/// # Examples
///
/// ```
/// use wcds_core::algo2::AlgorithmTwo;
/// use wcds_core::WcdsConstruction;
/// use wcds_graph::generators;
///
/// let g = generators::path(7);
/// let result = AlgorithmTwo::new().construct(&g);
/// assert!(result.wcds.is_valid(&g));
/// // MIS {0, 2, 4, 6}; no pair is exactly 3 hops apart, so no bridges
/// assert!(result.wcds.additional_dominators().is_empty());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct AlgorithmTwo {
    _priv: (),
}

impl AlgorithmTwo {
    /// Creates the construction.
    pub fn new() -> Self {
        Self { _priv: () }
    }

    /// Returns `(mis, additional)` separately, for analyses that need
    /// the partition before it is wrapped in a [`Wcds`].
    pub fn construct_parts(&self, g: &Graph) -> (Vec<NodeId>, Vec<NodeId>) {
        let mis = greedy_mis(g, RankingMode::StaticId);
        let additional = select_additional_dominators(g, &mis);
        (mis, additional)
    }
}

impl WcdsConstruction for AlgorithmTwo {
    fn construct(&self, g: &Graph) -> ConstructionResult {
        let (mis, additional) = self.construct_parts(g);
        let wcds = Wcds::new(mis, additional);
        let spanner = wcds.weakly_induced_subgraph(g);
        ConstructionResult { wcds, spanner }
    }

    fn name(&self) -> &'static str {
        "algorithm-2"
    }
}

/// For every MIS pair `(u, w)` with `hop(u, w) = 3` and `id(u) < id(w)`,
/// adds one intermediate node: the smallest neighbor `v` of `u` with
/// `hop(v, w) = 2`.
///
/// Nodes already serving another pair are reused only if they happen to
/// be the smallest choice again (the paper recruits per pair without
/// global dedup; the returned set is deduplicated since a node is either
/// a dominator or not).
///
/// Exposed because WCDS *maintenance* re-runs the same deterministic
/// selection after local MIS repairs.
///
/// # Panics
///
/// Panics if `mis` is not independent-dominating over the component
/// containing its 3-hop pairs (an intermediate must exist for every
/// 3-hop pair of a genuine MIS).
///
/// Runs in `O(Σ_u |ball(u, 3)|)` — each MIS anchor explores only its
/// radius-3 neighborhood (the same per-anchor decomposition the
/// maintenance engine repairs with), so total work is linear in the
/// graph on bounded-growth topologies like UDGs. The quadratic
/// full-BFS-per-pair formulation survives as
/// [`select_additional_dominators_reference`], the oracle the tests
/// compare against.
pub fn select_additional_dominators(g: &Graph, mis: &[NodeId]) -> Vec<NodeId> {
    let in_mis = g.membership(mis);
    let mut scratch = BallScratch::new(g.node_count());
    let mut additional = BTreeSet::new();
    for &u in mis {
        additional.extend(contributions_for_pred(&mut scratch, g, |w| in_mis[w], u));
    }
    debug_assert!(additional.iter().all(|&v| !in_mis[v]), "neighbors of a dominator are gray");
    additional.into_iter().collect()
}

/// The textbook `O(|MIS| · (n + |E|))` formulation of the bridge rule:
/// a full BFS per MIS anchor and per 3-hop pair. Semantically identical
/// to [`select_additional_dominators`]; kept as the independently-derived
/// oracle for equivalence tests (and release-asserted against the
/// partitioned construction at small n).
pub fn select_additional_dominators_reference(g: &Graph, mis: &[NodeId]) -> Vec<NodeId> {
    let in_mis = g.membership(mis);
    let mut additional = BTreeSet::new();
    for &u in mis {
        let dist_u = traversal::bfs_distances(g, u);
        for &w in mis {
            if u >= w || dist_u[w] != Some(3) {
                continue;
            }
            let dist_w = traversal::bfs_distances(g, w);
            let v = g
                .adj(u)
                .find(|&v| dist_w[v] == Some(2))
                .expect("a 3-hop pair has an intermediate at distance (1, 2)");
            debug_assert!(!in_mis[v], "neighbors of a dominator are gray");
            additional.insert(v);
        }
    }
    additional.into_iter().collect()
}

pub mod distributed {
    //! The full distributed Algorithm II protocol — a single state
    //! machine per node, all phases message-driven, no global
    //! coordination of any kind.

    use super::*;
    use std::collections::BTreeMap;
    use wcds_sim::{Context, ProcId, Protocol, Schedule, SimReport, Simulator};

    /// Node color in the distributed protocol.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum NodeColor {
        /// Undecided.
        White,
        /// MIS dominator.
        MisDominator,
        /// Dominated, not recruited.
        Gray,
        /// Recruited additional dominator (was gray).
        AdditionalDominator,
    }

    /// Messages of the protocol (§4.2's message vocabulary).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Algo2Msg {
        /// "I joined the MIS."
        MisDominator,
        /// "I am dominated."
        Gray,
        /// A gray node's 1-hop dominator list.
        OneHopDoms(Vec<ProcId>),
        /// A gray node's 2-hop dominator list: `(dominator, intermediate)`.
        TwoHopDoms(Vec<(ProcId, ProcId)>),
        /// Dominator `u` asks the receiver to become an additional
        /// dominator bridging to `w` through `x`.
        Selection {
            /// The second intermediate on the 3-hop path.
            x: ProcId,
            /// The far dominator.
            w: ProcId,
        },
        /// A recruited node announces itself; carries the pair's
        /// provenance so `x` can relay to `w`.
        AdditionalDominator {
            /// The recruiting dominator.
            u: ProcId,
            /// The second intermediate.
            x: ProcId,
            /// The far dominator.
            w: ProcId,
        },
        /// `x` relays the bridge announcement to the far dominator `w`.
        Relay {
            /// The additional dominator.
            v: ProcId,
            /// The recruiting dominator.
            u: ProcId,
        },
    }

    /// Per-node state of the distributed Algorithm II.
    #[derive(Debug)]
    pub struct Algo2Node {
        color: NodeColor,
        /// Neighbors that announced `MIS-DOMINATOR` or `GRAY`.
        decided: BTreeSet<ProcId>,
        /// Neighbors known to be gray.
        gray_neighbors: BTreeSet<ProcId>,
        /// Gray nodes and dominators: adjacent dominators.
        one_hop_doms: BTreeSet<ProcId>,
        /// Dominator id → intermediate neighbor to reach it in 2 hops.
        two_hop_doms: BTreeMap<ProcId, ProcId>,
        /// MIS dominators only: far dominator id → `(v, x)` bridge path.
        three_hop_doms: BTreeMap<ProcId, (ProcId, ProcId)>,
        /// Gray neighbors whose `1-HOP-DOMINATORS` list arrived.
        one_hop_lists_from: BTreeSet<ProcId>,
        sent_one_hop: bool,
        sent_two_hop: bool,
    }

    impl Algo2Node {
        /// A fresh white node.
        pub fn new() -> Self {
            Self {
                color: NodeColor::White,
                decided: BTreeSet::new(),
                gray_neighbors: BTreeSet::new(),
                one_hop_doms: BTreeSet::new(),
                two_hop_doms: BTreeMap::new(),
                three_hop_doms: BTreeMap::new(),
                one_hop_lists_from: BTreeSet::new(),
                sent_one_hop: false,
                sent_two_hop: false,
            }
        }

        /// Final color.
        pub fn color(&self) -> NodeColor {
            self.color
        }

        /// Whether this node ended up a dominator of either kind.
        pub fn is_dominator(&self) -> bool {
            matches!(self.color, NodeColor::MisDominator | NodeColor::AdditionalDominator)
        }

        /// This node's 1-hop dominator list (gray nodes and dominators).
        pub fn one_hop_doms(&self) -> impl Iterator<Item = ProcId> + '_ {
            self.one_hop_doms.iter().copied()
        }

        /// `(dominator, intermediate)` entries of the 2-hop list.
        pub fn two_hop_doms(&self) -> impl Iterator<Item = (ProcId, ProcId)> + '_ {
            self.two_hop_doms.iter().map(|(&d, &v)| (d, v))
        }

        /// `(dominator, (v, x))` entries of the 3-hop list (MIS
        /// dominators only).
        pub fn three_hop_doms(&self) -> impl Iterator<Item = (ProcId, (ProcId, ProcId))> + '_ {
            self.three_hop_doms.iter().map(|(&d, &vx)| (d, vx))
        }

        /// MIS rule: a white node with the lowest ID among its white
        /// neighbors joins the MIS.
        fn maybe_join_mis(&mut self, ctx: &mut Context<'_, Algo2Msg>) {
            if self.color != NodeColor::White {
                return;
            }
            let me = ctx.id();
            let all_lower_are_gray = ctx
                .neighbors()
                .iter()
                .filter(|&&p| p < me)
                .all(|p| self.gray_neighbors.contains(p));
            if all_lower_are_gray {
                self.color = NodeColor::MisDominator;
                ctx.broadcast(Algo2Msg::MisDominator);
            }
        }

        /// Gray nodes publish their 1-hop list once every neighbor has
        /// decided.
        fn maybe_send_one_hop(&mut self, ctx: &mut Context<'_, Algo2Msg>) {
            if self.color != NodeColor::Gray || self.sent_one_hop {
                return;
            }
            if self.decided.len() == ctx.degree() {
                self.sent_one_hop = true;
                ctx.broadcast(Algo2Msg::OneHopDoms(self.one_hop_doms.iter().copied().collect()));
                self.maybe_send_two_hop(ctx);
            }
        }

        /// Gray nodes publish their 2-hop list once every gray neighbor's
        /// 1-hop list arrived.
        fn maybe_send_two_hop(&mut self, ctx: &mut Context<'_, Algo2Msg>) {
            if self.color != NodeColor::Gray || self.sent_two_hop || !self.sent_one_hop {
                return;
            }
            if self.gray_neighbors.iter().all(|p| self.one_hop_lists_from.contains(p)) {
                self.sent_two_hop = true;
                ctx.broadcast(Algo2Msg::TwoHopDoms(
                    self.two_hop_doms.iter().map(|(&d, &v)| (d, v)).collect(),
                ));
            }
        }
    }

    impl Default for Algo2Node {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Protocol for Algo2Node {
        type Message = Algo2Msg;

        fn on_start(&mut self, ctx: &mut Context<'_, Algo2Msg>) {
            self.maybe_join_mis(ctx);
        }

        fn on_message(&mut self, from: ProcId, msg: Algo2Msg, ctx: &mut Context<'_, Algo2Msg>) {
            match msg {
                Algo2Msg::MisDominator => {
                    self.decided.insert(from);
                    self.one_hop_doms.insert(from);
                    // a 2-hop entry for a now-adjacent dominator is stale
                    self.two_hop_doms.remove(&from);
                    if self.color == NodeColor::White {
                        self.color = NodeColor::Gray;
                        ctx.broadcast(Algo2Msg::Gray);
                    }
                    self.maybe_send_one_hop(ctx);
                }
                Algo2Msg::Gray => {
                    self.decided.insert(from);
                    self.gray_neighbors.insert(from);
                    self.maybe_join_mis(ctx);
                    self.maybe_send_one_hop(ctx);
                    self.maybe_send_two_hop(ctx);
                }
                Algo2Msg::OneHopDoms(doms) => {
                    let me = ctx.id();
                    match self.color {
                        NodeColor::Gray | NodeColor::AdditionalDominator => {
                            for d in doms {
                                if d != me
                                    && !self.one_hop_doms.contains(&d)
                                    && !self.two_hop_doms.contains_key(&d)
                                {
                                    self.two_hop_doms.insert(d, from);
                                }
                            }
                            self.one_hop_lists_from.insert(from);
                            self.maybe_send_two_hop(ctx);
                        }
                        NodeColor::MisDominator => {
                            for d in doms {
                                if d != me && !self.two_hop_doms.contains_key(&d) {
                                    self.two_hop_doms.insert(d, from);
                                    // Lemma-2-style cleanup: a dominator
                                    // discovered at 2 hops cannot be a
                                    // 3-hop entry
                                    self.three_hop_doms.remove(&d);
                                }
                            }
                        }
                        NodeColor::White => unreachable!(
                            "lists are sent only after all neighbors decided, so no white receiver"
                        ),
                    }
                }
                Algo2Msg::TwoHopDoms(entries) => {
                    if self.color != NodeColor::MisDominator {
                        return;
                    }
                    let me = ctx.id();
                    for (w, x) in entries {
                        if w != me
                            && me < w
                            && !self.two_hop_doms.contains_key(&w)
                            && !self.three_hop_doms.contains_key(&w)
                        {
                            self.three_hop_doms.insert(w, (from, x));
                            ctx.send(from, Algo2Msg::Selection { x, w });
                        }
                    }
                }
                Algo2Msg::Selection { x, w } => {
                    // `from` is the recruiting dominator u
                    if self.color == NodeColor::Gray {
                        self.color = NodeColor::AdditionalDominator;
                    }
                    debug_assert!(
                        matches!(self.color, NodeColor::AdditionalDominator),
                        "selection must target a gray/recruited node"
                    );
                    ctx.broadcast(Algo2Msg::AdditionalDominator { u: from, x, w });
                }
                Algo2Msg::AdditionalDominator { u, x, w } => {
                    // only the named intermediate x relays onward to w
                    if ctx.id() == x {
                        ctx.send(w, Algo2Msg::Relay { v: from, u });
                    }
                }
                Algo2Msg::Relay { v, u } => {
                    if self.color == NodeColor::MisDominator {
                        // record the reverse bridge: reach u via (x=from, v)
                        self.three_hop_doms.entry(u).or_insert((from, v));
                    }
                }
            }
        }

        fn message_kind(msg: &Algo2Msg) -> &'static str {
            match msg {
                Algo2Msg::MisDominator => "MIS-DOMINATOR",
                Algo2Msg::Gray => "GRAY",
                Algo2Msg::OneHopDoms(_) => "1-HOP-DOMINATORS",
                Algo2Msg::TwoHopDoms(_) => "2-HOP-DOMINATORS",
                Algo2Msg::Selection { .. } => "SELECTION",
                Algo2Msg::AdditionalDominator { .. } => "ADDITIONAL-DOMINATOR",
                Algo2Msg::Relay { .. } => "RELAY",
            }
        }

        fn message_payload(msg: &Algo2Msg) -> u64 {
            // list messages carry one entry per dominator; everything
            // else is a constant-size announcement
            match msg {
                Algo2Msg::OneHopDoms(doms) => 1 + doms.len() as u64,
                Algo2Msg::TwoHopDoms(entries) => 1 + entries.len() as u64,
                _ => 1,
            }
        }
    }

    /// The routing-relevant state a node accumulated during the run —
    /// the paper's `1HopDomList` / `2HopDomList` / `3HopDomList`.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct NodeInfo {
        /// Adjacent dominators.
        pub one_hop_doms: Vec<ProcId>,
        /// `(dominator, intermediate)` pairs at two hops.
        pub two_hop_doms: Vec<(ProcId, ProcId)>,
        /// `(dominator, first intermediate, second intermediate)`
        /// triples at three hops (MIS dominators only).
        pub three_hop_doms: Vec<(ProcId, ProcId, ProcId)>,
    }

    /// A completed distributed Algorithm II run.
    #[derive(Debug, Clone)]
    pub struct DistributedRun {
        /// The constructed WCDS and spanner.
        pub result: ConstructionResult,
        /// Final per-node colors.
        pub colors: Vec<NodeColor>,
        /// Per-node dominator lists (the protocol's routing state).
        pub node_infos: Vec<NodeInfo>,
        /// Message/time accounting.
        pub report: SimReport,
    }

    /// Runs distributed Algorithm II on a connected graph.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected or the protocol leaves a node
    /// undecided (a bug).
    pub fn run(g: &Graph, schedule: Schedule) -> DistributedRun {
        assert!(traversal::is_connected(g), "Algorithm II requires a connected graph");
        let mut sim = Simulator::new(g, |_| Algo2Node::new());
        let report = sim.run(schedule).expect("Algorithm II quiesces");
        let colors: Vec<NodeColor> = g.nodes().map(|u| sim.node(u).color()).collect();
        assert!(
            colors.iter().all(|&c| c != NodeColor::White),
            "protocol left undecided nodes"
        );
        let mis: Vec<NodeId> =
            g.nodes().filter(|&u| colors[u] == NodeColor::MisDominator).collect();
        let additional: Vec<NodeId> =
            g.nodes().filter(|&u| colors[u] == NodeColor::AdditionalDominator).collect();
        let node_infos: Vec<NodeInfo> = g
            .nodes()
            .map(|u| {
                let node = sim.node(u);
                NodeInfo {
                    one_hop_doms: node.one_hop_doms().collect(),
                    two_hop_doms: node.two_hop_doms().collect(),
                    three_hop_doms: node
                        .three_hop_doms()
                        .map(|(d, (v, x))| (d, v, x))
                        .collect(),
                }
            })
            .collect();
        let wcds = Wcds::new(mis, additional);
        let spanner = wcds.weakly_induced_subgraph(g);
        DistributedRun { result: ConstructionResult { wcds, spanner }, colors, node_infos, report }
    }

    /// Synchronous distributed Algorithm II.
    pub fn run_synchronous(g: &Graph) -> DistributedRun {
        run(g, Schedule::synchronous())
    }

    /// Asynchronous distributed Algorithm II.
    pub fn run_asynchronous(g: &Graph, seed: u64) -> DistributedRun {
        run(g, Schedule::asynchronous(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::distributed::{run_asynchronous, run_synchronous, NodeColor};
    use super::*;
    use crate::properties;
    use wcds_geom::deploy;
    use wcds_graph::{domination, generators, UnitDiskGraph};

    #[test]
    fn centralized_is_valid_on_random_graphs() {
        for seed in 0..8 {
            let g = generators::connected_gnp(50, 0.08, seed);
            let result = AlgorithmTwo::new().construct(&g);
            assert!(result.wcds.is_valid(&g), "seed {seed}");
            assert!(domination::is_maximal_independent_set(&g, result.wcds.mis_dominators()));
        }
    }

    #[test]
    fn centralized_is_valid_on_udgs() {
        for seed in 0..8 {
            let udg = UnitDiskGraph::build(deploy::uniform(200, 7.0, 7.0, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            let result = AlgorithmTwo::new().construct(udg.graph());
            assert!(result.wcds.is_valid(udg.graph()), "seed {seed}");
        }
    }

    #[test]
    fn bridged_dominating_set_has_subset_distance_at_most_2() {
        // Lemma 9's premise, which the construction establishes
        for seed in 0..6 {
            let g = generators::connected_gnp(40, 0.08, seed);
            let (mis, additional) = AlgorithmTwo::new().construct_parts(&g);
            let mut all = mis.clone();
            all.extend(&additional);
            all.sort_unstable();
            if all.len() < 2 {
                continue;
            }
            let d = properties::max_complementary_subset_distance(&g, &all).unwrap();
            assert!(d <= 2, "seed {seed}: subset distance {d} > 2");
        }
    }

    #[test]
    fn index_id_paths_need_no_bridges() {
        // with index IDs, greedy on a path picks every other node, so
        // consecutive MIS nodes are exactly 2 apart — no 3-hop pairs
        for n in [4, 6, 8, 11] {
            let g = generators::path(n);
            let (mis, additional) = AlgorithmTwo::new().construct_parts(&g);
            let expected: Vec<NodeId> = (0..n).step_by(2).collect();
            assert_eq!(mis, expected);
            assert!(additional.is_empty(), "n = {n}");
        }
    }

    #[test]
    fn bounded_local_selection_matches_full_bfs_reference() {
        for seed in 0..10 {
            let g = generators::connected_gnp(60, 0.07, seed);
            let mis = greedy_mis(&g, RankingMode::StaticId);
            assert_eq!(
                select_additional_dominators(&g, &mis),
                select_additional_dominators_reference(&g, &mis),
                "gnp seed {seed}"
            );
        }
        for seed in 0..6 {
            let udg = UnitDiskGraph::build(deploy::uniform(250, 8.0, 8.0, seed), 1.0);
            let mis = greedy_mis(udg.graph(), RankingMode::StaticId);
            assert_eq!(
                select_additional_dominators(udg.graph(), &mis),
                select_additional_dominators_reference(udg.graph(), &mis),
                "udg seed {seed}"
            );
        }
    }

    #[test]
    fn three_hop_pair_gets_bridged() {
        // 0-4-5-1 path with extra nodes making ids force MIS = {0, 1}:
        // edges: 0-4, 4-5, 5-1. Greedy by id: 0 black → 4 gray;
        // 1 black (its only neighbor 5 is higher id... rule: 1's lower
        // neighbors: none white-lower? 1's neighbors = {5}; 5 > 1 so 1
        // is locally lowest → black. 5 gray. MIS = {0, 1}, dist = 3.
        let g = Graph::from_edges(6, [(0, 4), (4, 5), (5, 1), (2, 0), (3, 1)]);
        let (mis, additional) = AlgorithmTwo::new().construct_parts(&g);
        assert_eq!(mis, vec![0, 1]);
        assert_eq!(additional, vec![4], "0 recruits its neighbor 4 to bridge to 1");
        let wcds = Wcds::new(mis, additional);
        assert!(wcds.is_valid(&g));
    }

    #[test]
    fn distributed_sync_matches_centralized_mis() {
        for seed in 0..6 {
            let g = generators::connected_gnp(45, 0.09, seed);
            let run = run_synchronous(&g);
            let cent = AlgorithmTwo::new().construct(&g);
            assert_eq!(
                run.result.wcds.mis_dominators(),
                cent.wcds.mis_dominators(),
                "seed {seed}: the MIS rule is deterministic"
            );
            assert!(run.result.wcds.is_valid(&g), "seed {seed}");
        }
    }

    #[test]
    fn distributed_async_is_valid_for_many_seeds() {
        for seed in 0..10 {
            let g = generators::connected_gnp(35, 0.1, seed % 4);
            let run = run_asynchronous(&g, seed);
            assert!(run.result.wcds.is_valid(&g), "seed {seed}");
            assert!(domination::is_maximal_independent_set(&g, run.result.wcds.mis_dominators()));
            // bridged set always has subset distance ≤ 2
            if run.result.wcds.len() >= 2 {
                let d =
                    properties::max_complementary_subset_distance(&g, run.result.wcds.nodes());
                assert!(d.unwrap() <= 2, "seed {seed}");
            }
        }
    }

    #[test]
    fn distributed_on_udgs() {
        for seed in 0..4 {
            let udg = UnitDiskGraph::build(deploy::uniform(150, 6.0, 6.0, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            let run = run_synchronous(udg.graph());
            assert!(run.result.wcds.is_valid(udg.graph()), "seed {seed}");
        }
    }

    #[test]
    fn message_count_is_linear_with_small_constant() {
        // Theorem 12: O(n) messages. Measure the per-node constant on a
        // random UDG and require it stays modest.
        let udg = UnitDiskGraph::build(deploy::uniform(300, 8.0, 8.0, 1), 1.0);
        if !traversal::is_connected(udg.graph()) {
            return;
        }
        let run = run_synchronous(udg.graph());
        let per_node = run.report.messages.total() as f64 / 300.0;
        assert!(per_node < 12.0, "messages per node = {per_node}");
    }

    #[test]
    fn chain_topology_worst_case_time_is_linear() {
        let g = generators::path(80);
        let run = run_synchronous(&g);
        assert!(run.result.wcds.is_valid(&g));
        // the MIS wave travels the chain: Θ(n) rounds, small constant
        assert!(run.report.rounds <= 3 * 80, "rounds {}", run.report.rounds);
    }

    #[test]
    fn descending_ids_chain_forces_sequential_marking() {
        // Theorem 12's worst case: each node must wait for its
        // lower-id neighbor; with ids descending along the chain the
        // wave is fully sequential. Our ids are indices, so reverse the
        // path: edges (i, i+1) but give lower ids to the far end — with
        // index ids, path(n) is already ascending, the worst case.
        let g = generators::path(50);
        let run = run_synchronous(&g);
        assert!(run.report.rounds >= 25, "expected Θ(n) rounds, got {}", run.report.rounds);
    }

    #[test]
    fn every_gray_node_sends_exactly_one_list_of_each_kind() {
        let g = generators::connected_gnp(40, 0.1, 7);
        let run = run_synchronous(&g);
        let gray_count = run
            .colors
            .iter()
            .filter(|&&c| matches!(c, NodeColor::Gray | NodeColor::AdditionalDominator))
            .count() as u64;
        assert_eq!(run.report.messages.of_kind("1-HOP-DOMINATORS"), gray_count);
        assert_eq!(run.report.messages.of_kind("2-HOP-DOMINATORS"), gray_count);
        assert_eq!(
            run.report.messages.of_kind("MIS-DOMINATOR") + run.report.messages.of_kind("GRAY"),
            40
        );
    }

    #[test]
    fn one_hop_list_payload_is_lemma1_bounded_on_udgs() {
        // every gray node's 1-hop dominator list has ≤ 5 entries on a
        // UDG (Lemma 1), so total 1-HOP payload ≤ 6·#gray (entries + 1
        // header each)
        let udg = UnitDiskGraph::build(deploy::uniform(300, 8.0, 8.0, 2), 1.0);
        if !traversal::is_connected(udg.graph()) {
            return;
        }
        let run = run_synchronous(udg.graph());
        let gray = run
            .colors
            .iter()
            .filter(|&&c| matches!(c, NodeColor::Gray | NodeColor::AdditionalDominator))
            .count() as u64;
        let payload = run.report.messages.payload_of_kind("1-HOP-DOMINATORS");
        assert!(payload <= 6 * gray, "payload {payload} exceeds 6·{gray}");
        // payload accounting really is coarser than message counting
        assert!(run.report.messages.total_payload() >= run.report.messages.total());
    }

    #[test]
    fn selections_equal_additional_dominator_broadcasts() {
        let udg = UnitDiskGraph::build(deploy::uniform(250, 9.0, 9.0, 5), 1.0);
        if !traversal::is_connected(udg.graph()) {
            return;
        }
        let run = run_synchronous(udg.graph());
        assert_eq!(
            run.report.messages.of_kind("SELECTION"),
            run.report.messages.of_kind("ADDITIONAL-DOMINATOR")
        );
        assert_eq!(
            run.report.messages.of_kind("ADDITIONAL-DOMINATOR"),
            run.report.messages.of_kind("RELAY")
        );
    }

    #[test]
    fn singleton_and_pair_graphs() {
        let g1 = Graph::empty(1);
        let r1 = AlgorithmTwo::new().construct(&g1);
        assert_eq!(r1.wcds.nodes(), &[0]);

        let g2 = generators::path(2);
        let run = run_synchronous(&g2);
        assert_eq!(run.result.wcds.nodes(), &[0]);
        assert_eq!(run.colors[1], NodeColor::Gray);
    }
}
