//! The verified WCDS output type.

use std::fmt;
use wcds_graph::{domination, Graph, NodeId};

/// A weakly-connected dominating set, partitioned the way the paper's
/// algorithms produce it: MIS dominators plus (for Algorithm II)
/// additional dominators bridging 3-hop MIS gaps.
///
/// The type does not *enforce* validity — constructions are verified by
/// calling [`Wcds::is_valid`] (and the test suites do, exhaustively) —
/// but it does enforce the structural basics: sorted, disjoint, in-range
/// member lists.
///
/// # Examples
///
/// ```
/// use wcds_core::Wcds;
/// use wcds_graph::generators;
///
/// let g = generators::path(5);
/// let w = Wcds::new(vec![0, 2, 4], vec![]);
/// assert!(w.is_valid(&g));
/// assert_eq!(w.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wcds {
    mis: Vec<NodeId>,
    additional: Vec<NodeId>,
    all: Vec<NodeId>,
}

impl Wcds {
    /// Builds a WCDS from its MIS-dominator and additional-dominator
    /// parts.
    ///
    /// # Panics
    ///
    /// Panics if the two lists overlap or contain duplicates.
    pub fn new(mut mis: Vec<NodeId>, mut additional: Vec<NodeId>) -> Self {
        mis.sort_unstable();
        additional.sort_unstable();
        assert!(mis.windows(2).all(|w| w[0] < w[1]), "duplicate MIS dominators");
        assert!(additional.windows(2).all(|w| w[0] < w[1]), "duplicate additional dominators");
        let mut all = Vec::with_capacity(mis.len() + additional.len());
        all.extend_from_slice(&mis);
        all.extend_from_slice(&additional);
        all.sort_unstable();
        assert!(
            all.windows(2).all(|w| w[0] < w[1]),
            "MIS and additional dominator sets overlap"
        );
        Self { mis, additional, all }
    }

    /// A WCDS that is just an MIS (Algorithm I's shape).
    pub fn from_mis(mis: Vec<NodeId>) -> Self {
        Self::new(mis, Vec::new())
    }

    /// All dominators, sorted ascending.
    pub fn nodes(&self) -> &[NodeId] {
        &self.all
    }

    /// The MIS dominators (clusterheads), sorted.
    pub fn mis_dominators(&self) -> &[NodeId] {
        &self.mis
    }

    /// The additional dominators (3-hop bridges), sorted.
    pub fn additional_dominators(&self) -> &[NodeId] {
        &self.additional
    }

    /// Total dominator count `|U|`.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Whether `u` is a dominator of either kind.
    pub fn contains(&self, u: NodeId) -> bool {
        self.all.binary_search(&u).is_ok()
    }

    /// Checks the full WCDS definition against `g`: the set dominates
    /// `g` and its weakly induced subgraph is connected.
    pub fn is_valid(&self, g: &Graph) -> bool {
        domination::is_weakly_connected_dominating_set(g, &self.all)
    }

    /// The weakly induced subgraph `G'` — all edges of `g` with at least
    /// one endpoint in this set. This *is* the paper's sparse spanner.
    pub fn weakly_induced_subgraph(&self, g: &Graph) -> Graph {
        g.weakly_induced(&self.all)
    }

    /// Membership bitmap over `g`'s nodes.
    pub fn membership(&self, g: &Graph) -> Vec<bool> {
        g.membership(&self.all)
    }
}

impl fmt::Display for Wcds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WCDS {{ {} dominators: {} MIS + {} additional }}",
            self.all.len(),
            self.mis.len(),
            self.additional.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_graph::generators;

    #[test]
    fn partition_is_preserved() {
        let w = Wcds::new(vec![4, 1], vec![3]);
        assert_eq!(w.mis_dominators(), &[1, 4]);
        assert_eq!(w.additional_dominators(), &[3]);
        assert_eq!(w.nodes(), &[1, 3, 4]);
        assert_eq!(w.len(), 3);
        assert!(w.contains(3));
        assert!(!w.contains(2));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_parts_panic() {
        let _ = Wcds::new(vec![1, 2], vec![2]);
    }

    #[test]
    #[should_panic(expected = "duplicate MIS")]
    fn duplicate_mis_panics() {
        let _ = Wcds::new(vec![1, 1], vec![]);
    }

    #[test]
    fn validity_on_path() {
        let g = generators::path(5);
        assert!(Wcds::from_mis(vec![0, 2, 4]).is_valid(&g));
        assert!(Wcds::from_mis(vec![1, 3]).is_valid(&g));
        // {0, 4} leaves node 2 undominated
        assert!(!Wcds::from_mis(vec![0, 4]).is_valid(&g));
    }

    #[test]
    fn weakly_induced_subgraph_matches_graph_method() {
        let g = generators::connected_gnp(30, 0.1, 9);
        let w = Wcds::new(vec![0, 5, 9], vec![12]);
        assert_eq!(w.weakly_induced_subgraph(&g), g.weakly_induced(&[0, 5, 9, 12]));
    }

    #[test]
    fn empty_wcds() {
        let w = Wcds::from_mis(vec![]);
        assert!(w.is_empty());
        assert!(w.is_valid(&Graph::empty(0)));
        assert!(!w.is_valid(&generators::path(2)));
    }

    #[test]
    fn display_summarises() {
        let w = Wcds::new(vec![0, 1], vec![2]);
        let s = format!("{w}");
        assert!(s.contains("3 dominators"));
        assert!(s.contains("2 MIS"));
    }
}
