//! Region leases: the admission protocol behind concurrent mutations.
//!
//! PR 5's repair engine proved the paper's locality claim — a mutation's
//! effects stay inside `ball(seeds ∪ flips, 3)` — which makes mutations
//! whose disturbed regions do not meet *commute* (the local-computation
//! framing of Kuhn–Moscibroda–Nieberg–Wattenhofer, arXiv:0803.2174).
//! This module turns that theorem into a scheduler:
//!
//! * a mutation **claims** the grid cells that conservatively cover
//!   everything its repair may read, by pure cell arithmetic on the
//!   mutation site(s) — no graph walk is needed to claim
//!   ([`claim_cells`]);
//! * a [`LeaseTable`] admits claims **all-or-nothing**: a claim is
//!   granted only when every one of its cells is free *and* no older
//!   queued claim shares a cell with it; otherwise it queues. Cells are
//!   kept in sorted order and the grant decision is atomic over the
//!   whole claim, so there is no hold-and-wait and therefore no
//!   deadlock; queue order per cell equals global ticket order, which
//!   gives per-cell FIFO fairness and freedom from starvation (the
//!   oldest waiter is at the head of every queue it is in, and nothing
//!   admitted later may overtake it on a shared cell);
//! * [`plan_waves`] turns a *batch* of claims (one drift tick) into
//!   FIFO waves: wave `k` holds the claims whose every conflicting
//!   predecessor sits in a wave `< k`. Applying the batch one wave at a
//!   time is exactly what the live table would schedule if each
//!   mutation arrived as its own request.
//!
//! The table is a **pure state machine** — no locks, no clocks, no I/O
//! — so the production store (which wraps it in a mutex + condvar) and
//! the `wcds-analyze` bounded-interleaving checker drive the *same*
//! admission/commit code.
//!
//! Correctness is not delegated to the leases: batched deltas are
//! applied by one coalesced worklist repair under exclusive access, and
//! the maintained state is a pure function of the final positions, so
//! any schedule the table admits yields state byte-identical to serial
//! application in commit order. The leases buy scheduling (what may
//! proceed together), fairness (FIFO), and honest accounting
//! (waits / conflicts / peak concurrency).

use std::collections::{BTreeSet, HashMap, VecDeque};
use wcds_geom::Point;

/// Grid-cell coordinate, matching `wcds_geom::GridIndex` cell keys:
/// `(floor(x / cell), floor(y / cell))` with `cell` = the UDG radius.
pub type CellKey = (i64, i64);

/// Half-width, in cells, of the block a single mutation site claims.
///
/// A repair seeded at site `s` may read: the 3-hop dirty ball around
/// the disturbed edges (≤ 3·r from `s`), each dirty anchor's own 3-hop
/// contribution ball (+3·r), and the bridge rule's one-hop adjacency
/// probes around those (+2·r) — ≤ 8·r in total. With cell size = r,
/// a block of ±8 cells around the site covers every cell a repair
/// confined to that footprint can touch. The claim is a conservative
/// *scheduling* predicate: an under-claim could only cost precision
/// (two mutations serialized that could have run together would be a
/// missed speedup; exactness never depends on the claim).
pub const CLAIM_RADIUS_CELLS: i64 = 8;

/// What a mutation asks to lease.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scope {
    /// A sorted, deduplicated set of grid cells (moves and joins).
    Cells(Vec<CellKey>),
    /// A sorted, deduplicated set of mutation-**site** cells, each
    /// standing for the ±[`CLAIM_RADIUS_CELLS`] block around it — the
    /// same region [`claim_cells`] would materialize, kept implicit so
    /// the admission hot path stays `O(sites²)` per conflict test
    /// instead of `O(block area)` per claim. Semantically identical to
    /// `Cells(claim_cells(sites, cell))` (property-tested below).
    Blocks(Vec<CellKey>),
    /// The whole plane — a leave compacts every id above the victim,
    /// so it conflicts with everything.
    All,
}

impl Scope {
    /// Whether two scopes may not hold leases simultaneously.
    ///
    /// Two implicit blocks of half-width `R` intersect iff their site
    /// cells are within Chebyshev distance `2R`; a block meets an
    /// explicit cell iff the cell is within Chebyshev distance `R` of
    /// the site. Near the grid's `i64` edge [`claim_cells`] saturates
    /// while this test does not — the distance test is then (at worst)
    /// more conservative, which a scheduling predicate may always be.
    pub fn conflicts(&self, other: &Scope) -> bool {
        match (self, other) {
            (Scope::All, _) | (_, Scope::All) => true,
            (Scope::Cells(a), Scope::Cells(b)) => sorted_cells_intersect(a, b),
            (Scope::Blocks(a), Scope::Blocks(b)) => {
                within_chebyshev(a, b, 2 * CLAIM_RADIUS_CELLS)
            }
            (Scope::Blocks(a), Scope::Cells(b)) | (Scope::Cells(b), Scope::Blocks(a)) => {
                within_chebyshev(a, b, CLAIM_RADIUS_CELLS)
            }
        }
    }
}

/// Whether any pair across the two cell lists is within Chebyshev
/// distance `reach`. Lists are tiny (one entry per mutation site), so
/// the quadratic sweep beats materializing and intersecting blocks.
fn within_chebyshev(a: &[CellKey], b: &[CellKey], reach: i64) -> bool {
    let r = reach.unsigned_abs();
    a.iter().any(|&(ax, ay)| {
        b.iter().any(|&(bx, by)| ax.abs_diff(bx) <= r && ay.abs_diff(by) <= r)
    })
}

/// Two-pointer sweep over ascending cell lists.
fn sorted_cells_intersect(mut a: &[CellKey], mut b: &[CellKey]) -> bool {
    while let (Some((&x, rest_a)), Some((&y, rest_b))) = (a.split_first(), b.split_first()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => a = rest_a,
            std::cmp::Ordering::Greater => b = rest_b,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// The cell containing `p` for cell size `cell` (the `GridIndex` key
/// rule).
pub fn cell_of(p: Point, cell: f64) -> CellKey {
    // floor of a finite coordinate over a positive cell size;
    // saturating f64→i64 is the grid-key rule shared with GridIndex
    #[allow(clippy::cast_possible_truncation)]
    {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }
}

/// The sorted union of ±[`CLAIM_RADIUS_CELLS`] cell blocks around each
/// site. For a move, pass *both* the old and the new position — edges
/// change at both ends of the hop.
///
/// This runs on every mutation admission (hundreds of cells per
/// claim), so it stays allocation-lean: each site's block is emitted
/// already sorted (row-major scan), and the per-site blocks are
/// sort-merged flat rather than fed through a tree set.
pub fn claim_cells(sites: &[Point], cell: f64) -> Vec<CellKey> {
    let span = (2 * CLAIM_RADIUS_CELLS + 1) as usize;
    let mut cells: Vec<CellKey> = Vec::with_capacity(sites.len() * span * span);
    for &p in sites {
        let (cx, cy) = cell_of(p, cell);
        for dx in -CLAIM_RADIUS_CELLS..=CLAIM_RADIUS_CELLS {
            for dy in -CLAIM_RADIUS_CELLS..=CLAIM_RADIUS_CELLS {
                cells.push((cx.saturating_add(dx), cy.saturating_add(dy)));
            }
        }
    }
    // a single block is already sorted; overlapping multi-site blocks
    // need the sort + dedup
    if sites.len() > 1 {
        cells.sort_unstable();
        cells.dedup();
    }
    cells
}

/// The sorted, deduplicated cell keys of the sites themselves — the
/// compact form [`Scope::Blocks`] carries. `Blocks(site_cells(sites))`
/// schedules identically to `Cells(claim_cells(sites))` without ever
/// materializing the `(2R+1)²` cells per site.
pub fn site_cells(sites: &[Point], cell: f64) -> Vec<CellKey> {
    let mut cells: Vec<CellKey> = sites.iter().map(|&p| cell_of(p, cell)).collect();
    cells.sort_unstable();
    cells.dedup();
    cells
}

/// Admission verdict for one [`LeaseTable::acquire`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Every cell was free and no older waiter conflicts: the claim
    /// holds its leases on return.
    Granted,
    /// The claim queued (FIFO) behind a holder or an older waiter.
    Queued,
}

/// Ticket identifying one claim for the lifetime of its lease.
pub type Ticket = u64;

/// The lease table: tickets → scopes, a granted set, and one global
/// FIFO of waiting tickets.
///
/// Per-cell FIFO queues are represented implicitly: because a queued
/// claim enqueues on *all* its cells atomically, the per-cell queue
/// order is exactly the global ticket order restricted to the claims
/// touching that cell. "`t` is at the head of every queue it is in"
/// is therefore "`no older waiting claim conflicts with t`", which is
/// the grant predicate [`LeaseTable::grantable`] implements.
#[derive(Debug, Clone, Default)]
pub struct LeaseTable {
    next_ticket: Ticket,
    scopes: HashMap<Ticket, Scope>,
    granted: BTreeSet<Ticket>,
    waiting: VecDeque<Ticket>,
}

impl LeaseTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of claims currently holding leases.
    pub fn in_flight(&self) -> usize {
        self.granted.len()
    }

    /// Number of claims currently queued.
    pub fn queued(&self) -> usize {
        self.waiting.len()
    }

    /// Whether `t` currently holds its leases.
    pub fn is_granted(&self, t: Ticket) -> bool {
        self.granted.contains(&t)
    }

    /// Pure grant predicate: `scope` may be granted right now iff it
    /// conflicts with no granted claim and with no *older* waiting
    /// claim (`older_than` bounds the waiters considered, so the
    /// promotion sweep can ask the question "as of ticket t").
    fn grantable(&self, scope: &Scope, older_than: Ticket) -> bool {
        self.granted
            .iter()
            .chain(self.waiting.iter().filter(|&&w| w < older_than))
            .all(|t| self.scopes.get(t).is_none_or(|s| !s.conflicts(scope)))
    }

    /// Claims `scope`, all-or-nothing: either every lease is taken on
    /// return (`Granted`) or none is and the ticket queues (`Queued`).
    /// The returned ticket must eventually be passed to
    /// [`LeaseTable::release`] (if granted, now or later) or
    /// [`LeaseTable::abort`] (to renounce a queued claim).
    pub fn acquire(&mut self, scope: Scope) -> (Ticket, Admission) {
        let t = self.next_ticket;
        self.next_ticket += 1;
        let admitted = self.grantable(&scope, t);
        self.scopes.insert(t, scope);
        if admitted {
            self.granted.insert(t);
            (t, Admission::Granted)
        } else {
            self.waiting.push_back(t);
            (t, Admission::Queued)
        }
    }

    /// Releases a granted claim's leases and promotes every waiter the
    /// release unblocks, in ticket order. Returns the newly granted
    /// tickets (the production wrapper wakes their threads; the model
    /// checker steps their actors).
    pub fn release(&mut self, t: Ticket) -> Vec<Ticket> {
        if !self.granted.remove(&t) {
            return Vec::new();
        }
        self.scopes.remove(&t);
        self.promote()
    }

    /// Withdraws a *queued* claim (a mutator bailing out before its
    /// grant — e.g. its request was cancelled), then promotes: the
    /// departed waiter may have been the only thing blocking a younger
    /// one. Aborting a granted claim is just [`LeaseTable::release`].
    pub fn abort(&mut self, t: Ticket) -> Vec<Ticket> {
        if self.granted.contains(&t) {
            return self.release(t);
        }
        self.waiting.retain(|&w| w != t);
        self.scopes.remove(&t);
        self.promote()
    }

    /// Grants every waiting claim whose conflicts have cleared, oldest
    /// first. A claim is promoted only if it conflicts with no granted
    /// claim and no older claim *still* waiting — scanning in ticket
    /// order makes cascaded grants deterministic.
    fn promote(&mut self) -> Vec<Ticket> {
        let mut newly = Vec::new();
        let mut rest: VecDeque<Ticket> = VecDeque::new();
        while let Some(w) = self.waiting.pop_front() {
            let ok = match self.scopes.get(&w) {
                Some(scope) => {
                    let blocked_by_rest = rest
                        .iter()
                        .any(|e| self.scopes.get(e).is_some_and(|s| s.conflicts(scope)));
                    !blocked_by_rest && self.grantable_against_granted(scope)
                }
                None => false,
            };
            if ok {
                self.granted.insert(w);
                newly.push(w);
            } else {
                rest.push_back(w);
            }
        }
        self.waiting = rest;
        newly
    }

    fn grantable_against_granted(&self, scope: &Scope) -> bool {
        self.granted
            .iter()
            .all(|t| self.scopes.get(t).is_none_or(|s| !s.conflicts(scope)))
    }

    /// Internal consistency, checked by the `wcds-analyze` lease
    /// machine explorer after every step: granted and waiting sets are
    /// disjoint, every ticket has a scope, no two granted scopes
    /// conflict, and the wait queue is in ticket (FIFO) order.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in &self.waiting {
            if self.granted.contains(w) {
                return Err(format!("ticket {w} both granted and waiting"));
            }
        }
        for t in self.granted.iter().chain(self.waiting.iter()) {
            if !self.scopes.contains_key(t) {
                return Err(format!("ticket {t} has no scope"));
            }
        }
        let granted: Vec<&Ticket> = self.granted.iter().collect();
        for (i, a) in granted.iter().enumerate() {
            for b in granted.iter().skip(i + 1) {
                let conflict = match (self.scopes.get(a), self.scopes.get(b)) {
                    (Some(sa), Some(sb)) => sa.conflicts(sb),
                    _ => false,
                };
                if conflict {
                    return Err(format!("granted tickets {a} and {b} hold conflicting leases"));
                }
            }
        }
        let in_order = self
            .waiting
            .iter()
            .zip(self.waiting.iter().skip(1))
            .all(|(a, b)| a < b);
        if !in_order {
            return Err("wait queue out of FIFO (ticket) order".into());
        }
        Ok(())
    }
}

/// The FIFO wave schedule for a batch of claims: `wave[i]` is the
/// round in which claim `i` applies. A claim lands one wave after its
/// latest-scheduled conflicting predecessor (or in wave 0 with none) —
/// exactly the order the live [`LeaseTable`] would grant if each claim
/// arrived as its own request, and the serial batch order restricted
/// to each conflict chain is preserved.
pub fn plan_waves(claims: &[Scope]) -> Vec<usize> {
    let mut wave = vec![0usize; claims.len()];
    for i in 0..claims.len() {
        let mut w = 0usize;
        for j in 0..i {
            let conflict = match (claims.get(i), claims.get(j)) {
                (Some(a), Some(b)) => a.conflicts(b),
                _ => false,
            };
            if conflict {
                w = w.max(wave.get(j).copied().unwrap_or(0) + 1);
            }
        }
        if let Some(slot) = wave.get_mut(i) {
            *slot = w;
        }
    }
    wave
}

/// Scheduling summary of one planned batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Claim indices per wave, batch order within each wave.
    pub waves: Vec<Vec<usize>>,
    /// Claims scheduled behind a conflicting predecessor (they would
    /// have waited on the live table).
    pub waits: u64,
    /// Conflicting (claim, earlier claim) pairs detected.
    pub conflicts: u64,
    /// Widest wave — the peak number of repairs the schedule lets
    /// proceed together.
    pub max_concurrency: usize,
}

/// Plans a batch: waves via [`plan_waves`] plus the conflict/wait
/// accounting the store surfaces as counters.
pub fn plan_batch(claims: &[Scope]) -> BatchPlan {
    let wave = plan_waves(claims);
    let rounds = wave.iter().copied().max().map_or(0, |m| m + 1);
    let mut waves: Vec<Vec<usize>> = vec![Vec::new(); rounds];
    for (i, &w) in wave.iter().enumerate() {
        if let Some(slot) = waves.get_mut(w) {
            slot.push(i);
        }
    }
    let mut conflicts = 0u64;
    for i in 0..claims.len() {
        for j in 0..i {
            let conflict = match (claims.get(i), claims.get(j)) {
                (Some(a), Some(b)) => a.conflicts(b),
                _ => false,
            };
            if conflict {
                conflicts += 1;
            }
        }
    }
    let waits = wave.iter().filter(|&&w| w > 0).count() as u64;
    let max_concurrency = waves.iter().map(Vec::len).max().unwrap_or(0);
    BatchPlan { waves, waits, conflicts, max_concurrency }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn cells(list: &[CellKey]) -> Scope {
        let mut v = list.to_vec();
        v.sort_unstable();
        v.dedup();
        Scope::Cells(v)
    }

    #[test]
    fn claim_blocks_cover_both_ends_of_a_move() {
        let old = Point::new(0.5, 0.5);
        let new = Point::new(3.4, 0.5);
        let claim = claim_cells(&[old, new], 1.0);
        let r = CLAIM_RADIUS_CELLS;
        // both blocks present, overlapping region not double counted
        assert!(claim.contains(&(0, 0)) && claim.contains(&(3, 0)));
        assert!(claim.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        let lone = claim_cells(&[old], 1.0);
        assert_eq!(lone.len() as i64, (2 * r + 1) * (2 * r + 1));
        assert!(claim.len() > lone.len() && (claim.len() as i64) < 2 * (2 * r + 1) * (2 * r + 1));
    }

    #[test]
    fn disjoint_claims_are_granted_together() {
        let mut t = LeaseTable::new();
        let (a, adm_a) = t.acquire(cells(&[(0, 0), (0, 1)]));
        let (b, adm_b) = t.acquire(cells(&[(10, 10)]));
        assert_eq!((adm_a, adm_b), (Admission::Granted, Admission::Granted));
        assert_eq!(t.in_flight(), 2);
        assert!(t.release(a).is_empty());
        assert!(t.release(b).is_empty());
        assert_eq!(t.in_flight(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn overlapping_claims_queue_fifo_and_promote_in_order() {
        let mut t = LeaseTable::new();
        let (a, _) = t.acquire(cells(&[(0, 0)]));
        let (b, adm_b) = t.acquire(cells(&[(0, 0), (1, 0)]));
        let (c, adm_c) = t.acquire(cells(&[(1, 0)]));
        assert_eq!(adm_b, Admission::Queued);
        // c is disjoint from the *holder* but must not overtake b on (1, 0)
        assert_eq!(adm_c, Admission::Queued);
        t.check_invariants().unwrap();
        let newly = t.release(a);
        assert_eq!(newly, vec![b], "b first; c still conflicts with b");
        let newly = t.release(b);
        assert_eq!(newly, vec![c]);
        assert!(t.release(c).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn all_scope_serializes_against_everything() {
        let mut t = LeaseTable::new();
        let (a, _) = t.acquire(cells(&[(5, 5)]));
        let (leave, adm) = t.acquire(Scope::All);
        assert_eq!(adm, Admission::Queued);
        let (b, adm_b) = t.acquire(cells(&[(-9, -9)]));
        assert_eq!(adm_b, Admission::Queued, "nothing overtakes a queued leave");
        assert_eq!(t.release(a), vec![leave]);
        assert_eq!(t.release(leave), vec![b]);
        assert!(t.release(b).is_empty());
    }

    #[test]
    fn abort_of_a_queued_claim_unblocks_younger_waiters() {
        let mut t = LeaseTable::new();
        let (a, _) = t.acquire(cells(&[(0, 0)]));
        let (b, _) = t.acquire(cells(&[(0, 0), (2, 2)]));
        let (c, adm_c) = t.acquire(cells(&[(2, 2)]));
        assert_eq!(adm_c, Admission::Queued, "c queues behind b on (2, 2)");
        // b withdraws: c's only conflict is gone, and (2, 2) is free
        assert_eq!(t.abort(b), vec![c]);
        assert!(t.is_granted(c));
        assert_eq!(t.release(a), Vec::<Ticket>::new());
        t.check_invariants().unwrap();
    }

    #[test]
    fn waves_match_per_cell_fifo_semantics() {
        let claims = vec![
            cells(&[(0, 0)]),          // wave 0
            cells(&[(9, 9)]),          // wave 0 (disjoint)
            cells(&[(0, 0), (9, 9)]),  // wave 1 (behind both)
            cells(&[(9, 9)]),          // wave 2 (behind claim 2)
            cells(&[(50, 50)]),        // wave 0
        ];
        assert_eq!(plan_waves(&claims), vec![0, 0, 1, 2, 0]);
        let plan = plan_batch(&claims);
        assert_eq!(plan.waves, vec![vec![0, 1, 4], vec![2], vec![3]]);
        assert_eq!(plan.waits, 2);
        // pairs (2,0) (2,1) (3,1) (3,2) — claim 3 meets 1 on (9,9) even
        // though FIFO order already separates them
        assert_eq!(plan.conflicts, 4);
        assert_eq!(plan.max_concurrency, 3);
    }

    /// Property: a `Blocks` scope is indistinguishable from the
    /// materialized `Cells` claim it stands for — across every pairing
    /// (Blocks/Blocks, Blocks/Cells) over randomized move sites.
    #[test]
    fn block_scopes_schedule_exactly_like_materialized_claims() {
        let mut rng_state = 0x6c62272e07bb0142u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        let mut conflicts = 0usize;
        let mut clears = 0usize;
        for _case in 0..400 {
            // two "moves": old + new site each, coordinates spread so
            // both conflicting and disjoint block pairs occur
            let site = |v: u64| Point::new((v % 64) as f64, ((v / 64) % 64) as f64);
            let a_sites = [site(next()), site(next())];
            let b_sites = [site(next()), site(next())];
            let a_blocks = Scope::Blocks(site_cells(&a_sites, 1.0));
            let b_blocks = Scope::Blocks(site_cells(&b_sites, 1.0));
            let a_cells = Scope::Cells(claim_cells(&a_sites, 1.0));
            let b_cells = Scope::Cells(claim_cells(&b_sites, 1.0));
            let truth = a_cells.conflicts(&b_cells);
            assert_eq!(a_blocks.conflicts(&b_blocks), truth, "blocks vs blocks");
            assert_eq!(a_blocks.conflicts(&b_cells), truth, "blocks vs cells");
            assert_eq!(a_cells.conflicts(&b_blocks), truth, "cells vs blocks");
            assert!(a_blocks.conflicts(&Scope::All), "nothing escapes a leave");
            if truth {
                conflicts += 1;
            } else {
                clears += 1;
            }
        }
        assert!(conflicts > 50 && clears > 50, "trace must exercise both verdicts");
    }

    /// Property: replaying a batch through the live table — acquire all
    /// in order, then repeatedly release everything granted — grants
    /// exactly one wave per round, in the order `plan_waves` computed.
    #[test]
    fn wave_plan_equals_live_table_simulation() {
        let mut rng_state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for _case in 0..50 {
            let n = (next() % 8 + 2) as usize;
            let claims: Vec<Scope> = (0..n)
                .map(|_| {
                    let c = (next() % 4) as i64;
                    let d = (next() % 4) as i64;
                    cells(&[(c, d), (c + 1, d)])
                })
                .collect();
            let wave = plan_waves(&claims);
            let mut table = LeaseTable::new();
            let tickets: Vec<(Ticket, Admission)> =
                claims.iter().map(|c| table.acquire(c.clone())).collect();
            let mut round = 0usize;
            let mut granted_now: Vec<Ticket> = tickets
                .iter()
                .filter(|(_, a)| *a == Admission::Granted)
                .map(|(t, _)| *t)
                .collect();
            while !granted_now.is_empty() {
                for &t in &granted_now {
                    let idx = tickets.iter().position(|(tt, _)| *tt == t).unwrap();
                    assert_eq!(
                        wave[idx], round,
                        "claim {idx} granted in round {round}, planned wave {}",
                        wave[idx]
                    );
                }
                let mut newly = Vec::new();
                for &t in &granted_now {
                    newly.extend(table.release(t));
                }
                granted_now = newly;
                round += 1;
                table.check_invariants().unwrap();
            }
            assert_eq!(table.in_flight(), 0);
            assert_eq!(table.queued(), 0);
        }
    }
}
