//! WCDS maintenance under mobility (§4.2's extension).
//!
//! The paper sketches the maintenance strategy and defers the details to
//! a follow-up: "the key technique … is to maintain the MIS in the
//! unit-disk graph at all times, and to maintain information about all
//! MIS-dominators within three-hop distance … the algorithm can be
//! applied locally, and the nodes that get affected are within three-hop
//! distance."
//!
//! [`MaintainedWcds`] implements exactly that contract:
//!
//! * the MIS is repaired **locally** after each topology change —
//!   independence violations drop the higher-ID dominator, domination
//!   gaps promote the lowest-ID uncovered node;
//! * additional dominators are re-derived with the same deterministic
//!   per-3-hop-pair rule Algorithm II uses, so regions whose MIS did not
//!   change keep their bridges;
//! * every repair returns a [`RepairReport`] whose *locality radius* —
//!   the hop distance from a changed dominator to the nearest affected
//!   node — lets experiments verify the paper's 3-hop locality claim.

use crate::algo2::select_additional_dominators;
use crate::Wcds;
use std::collections::BTreeSet;
use wcds_geom::Point;
use wcds_graph::{traversal, Graph, NodeId, UnitDiskGraph};

/// A WCDS kept valid across node motion, joins, and departures.
///
/// # Examples
///
/// ```
/// use wcds_core::maintenance::MaintainedWcds;
/// use wcds_geom::{deploy, Point};
///
/// let mut net = MaintainedWcds::new(deploy::uniform(80, 4.0, 4.0, 1), 1.0);
/// assert!(net.wcds().is_valid(net.graph()));
/// let report = net.apply_join(Point::new(2.0, 2.0));
/// assert!(net.wcds().is_valid(net.graph()));
/// assert!(report.affected.contains(&80));
/// ```
#[derive(Debug, Clone)]
pub struct MaintainedWcds {
    udg: UnitDiskGraph,
    mis: BTreeSet<NodeId>,
    additional: BTreeSet<NodeId>,
}

/// What one repair changed, and how far from the disturbance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Nodes whose incident edge set changed (the disturbance).
    pub affected: Vec<NodeId>,
    /// Nodes that became dominators (of either kind).
    pub promoted: Vec<NodeId>,
    /// Nodes that stopped being dominators.
    pub demoted: Vec<NodeId>,
    /// Maximum hop distance (in the new graph) from any promoted or
    /// demoted node to the nearest affected node; `None` when nothing
    /// changed or nothing was affected.
    pub locality_radius: Option<u32>,
}

impl RepairReport {
    /// Whether the repair changed any dominator status.
    pub fn changed(&self) -> bool {
        !self.promoted.is_empty() || !self.demoted.is_empty()
    }
}

impl MaintainedWcds {
    /// Builds the initial WCDS (Algorithm II's construction) over a
    /// deployment.
    pub fn new(points: Vec<Point>, radius: f64) -> Self {
        let udg = UnitDiskGraph::build(points, radius);
        let mis: BTreeSet<NodeId> =
            crate::mis::greedy_mis(udg.graph(), crate::mis::RankingMode::StaticId)
                .into_iter()
                .collect();
        let mis_vec: Vec<NodeId> = mis.iter().copied().collect();
        let additional: BTreeSet<NodeId> =
            select_additional_dominators(udg.graph(), &mis_vec).into_iter().collect();
        Self { udg, mis, additional }
    }

    /// The current topology.
    pub fn graph(&self) -> &Graph {
        self.udg.graph()
    }

    /// The current node positions.
    pub fn points(&self) -> &[Point] {
        self.udg.points()
    }

    /// The current WCDS.
    pub fn wcds(&self) -> Wcds {
        Wcds::new(self.mis.iter().copied().collect(), self.additional.iter().copied().collect())
    }

    /// Moves the listed nodes and repairs the WCDS.
    ///
    /// # Panics
    ///
    /// Panics if a node id is out of range.
    pub fn apply_motion(&mut self, moves: &[(NodeId, Point)]) -> RepairReport {
        let mut points = self.udg.points().to_vec();
        for &(u, p) in moves {
            points[u] = p;
        }
        let new_udg = UnitDiskGraph::build(points, self.udg.radius());
        let affected = edge_delta_endpoints(self.udg.graph(), new_udg.graph());
        self.udg = new_udg;
        self.repair(affected)
    }

    /// Adds a node (it receives the next id `n`) and repairs.
    pub fn apply_join(&mut self, p: Point) -> RepairReport {
        let mut points = self.udg.points().to_vec();
        let new_id = points.len();
        points.push(p);
        let new_udg = UnitDiskGraph::build(points, self.udg.radius());
        let mut affected: BTreeSet<NodeId> =
            new_udg.graph().neighbors(new_id).iter().copied().collect();
        affected.insert(new_id);
        self.udg = new_udg;
        self.repair(affected)
    }

    /// Removes node `u`. **Ids above `u` shift down by one** (positions
    /// are compacted); dominator sets are remapped before repair.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn apply_leave(&mut self, u: NodeId) -> RepairReport {
        let old_neighbors: Vec<NodeId> = self.udg.graph().neighbors(u).to_vec();
        let mut points = self.udg.points().to_vec();
        points.remove(u);
        let remap = |x: NodeId| if x > u { x - 1 } else { x };
        self.mis = self.mis.iter().copied().filter(|&x| x != u).map(remap).collect();
        self.additional = self.additional.iter().copied().filter(|&x| x != u).map(remap).collect();
        self.udg = UnitDiskGraph::build(points, self.udg.radius());
        let affected: BTreeSet<NodeId> = old_neighbors.into_iter().map(remap).collect();
        self.repair(affected)
    }

    /// Local MIS repair + deterministic bridge re-selection.
    fn repair<I: IntoIterator<Item = NodeId>>(&mut self, affected: I) -> RepairReport {
        let g = self.udg.graph();
        let before: BTreeSet<NodeId> = self.mis.union(&self.additional).copied().collect();

        // 1. Independence: adjacent dominator pairs keep the lower id.
        let mut mis = self.mis.clone();
        loop {
            let mut drop: Option<NodeId> = None;
            'scan: for &u in &mis {
                for &v in g.neighbors(u) {
                    if v > u && mis.contains(&v) {
                        drop = Some(v);
                        break 'scan;
                    }
                }
            }
            match drop {
                Some(v) => {
                    mis.remove(&v);
                }
                None => break,
            }
        }
        // 2. Domination: promote the lowest-id uncovered node until the
        //    set dominates. A newly promoted node has no MIS neighbor,
        //    so independence is preserved.
        loop {
            let uncovered = g.nodes().find(|&u| {
                !mis.contains(&u) && !g.neighbors(u).iter().any(|v| mis.contains(v))
            });
            match uncovered {
                Some(u) => {
                    mis.insert(u);
                }
                None => break,
            }
        }
        self.mis = mis;

        // 3. Bridges: re-derive with Algorithm II's deterministic rule.
        let mis_vec: Vec<NodeId> = self.mis.iter().copied().collect();
        self.additional = select_additional_dominators(g, &mis_vec).into_iter().collect();

        let after: BTreeSet<NodeId> = self.mis.union(&self.additional).copied().collect();
        let promoted: Vec<NodeId> = after.difference(&before).copied().collect();
        let demoted: Vec<NodeId> = before.difference(&after).copied().collect();
        let affected: Vec<NodeId> =
            affected.into_iter().filter(|&u| u < g.node_count()).collect();

        let locality_radius = if affected.is_empty() || (promoted.is_empty() && demoted.is_empty())
        {
            None
        } else {
            let dist = traversal::multi_source_bfs(g, affected.iter().copied());
            promoted.iter().chain(&demoted).map(|&u| dist[u].unwrap_or(u32::MAX)).max()
        };
        RepairReport { affected, promoted, demoted, locality_radius }
    }
}

/// Endpoints of edges present in exactly one of the two graphs.
fn edge_delta_endpoints(old: &Graph, new: &Graph) -> BTreeSet<NodeId> {
    let old_edges: BTreeSet<_> = old.edges().into_iter().collect();
    let new_edges: BTreeSet<_> = new.edges().into_iter().collect();
    let mut out = BTreeSet::new();
    for e in old_edges.symmetric_difference(&new_edges) {
        let (u, v) = e.endpoints();
        out.insert(u);
        out.insert(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_geom::{deploy, BoundingBox};
    use wcds_graph::domination;

    fn assert_valid(net: &MaintainedWcds) {
        let w = net.wcds();
        assert!(
            domination::is_independent_set(net.graph(), w.mis_dominators()),
            "MIS part lost independence"
        );
        assert!(
            domination::is_dominating_set(net.graph(), w.mis_dominators()),
            "MIS part lost domination"
        );
        // full weak connectivity is only defined when the network itself
        // is connected (motion can legitimately partition a UDG)
        if wcds_graph::traversal::is_connected(net.graph()) {
            assert!(w.is_valid(net.graph()), "invalid WCDS after repair: {w}");
        }
    }

    #[test]
    fn initial_construction_is_valid() {
        let net = MaintainedWcds::new(deploy::uniform(120, 5.0, 5.0, 2), 1.0);
        assert_valid(&net);
    }

    #[test]
    fn noop_motion_changes_nothing() {
        let mut net = MaintainedWcds::new(deploy::uniform(60, 4.0, 4.0, 3), 1.0);
        let before = net.wcds();
        let p0 = net.points()[0];
        let report = net.apply_motion(&[(0, p0)]);
        assert!(!report.changed());
        assert!(report.affected.is_empty());
        assert_eq!(net.wcds(), before);
    }

    #[test]
    fn small_motions_keep_validity_over_a_trace() {
        let region = BoundingBox::with_size(5.0, 5.0);
        let mut net = MaintainedWcds::new(deploy::uniform(100, 5.0, 5.0, 4), 1.0);
        for step in 0..15 {
            let moved = deploy::perturb(net.points(), region, 0.15, step);
            let moves: Vec<(NodeId, Point)> = moved.iter().copied().enumerate().collect();
            net.apply_motion(&moves);
            assert_valid(&net);
        }
    }

    #[test]
    fn single_node_motion_has_local_repairs() {
        let mut net = MaintainedWcds::new(deploy::uniform(150, 6.0, 6.0, 5), 1.0);
        let mut max_radius = 0;
        for step in 0..20 {
            let u = (step * 7) % 150;
            let old = net.points()[u];
            let target = Point::new((old.x + 0.4).min(6.0), old.y);
            let report = net.apply_motion(&[(u, target)]);
            assert_valid(&net);
            if let Some(r) = report.locality_radius {
                max_radius = max_radius.max(r);
            }
        }
        // paper's claim: affected nodes are within three-hop distance;
        // bridge re-selection can ripple one hop further
        assert!(max_radius <= 4, "repair radius {max_radius} exceeds 3-hop locality (+1)");
    }

    #[test]
    fn join_in_empty_area_becomes_dominator() {
        // one far-away joiner must dominate itself
        let mut net = MaintainedWcds::new(deploy::uniform(50, 3.0, 3.0, 6), 1.0);
        let report = net.apply_join(Point::new(50.0, 50.0));
        assert!(report.promoted.contains(&50));
        let w = net.wcds();
        assert!(w.contains(50));
        assert!(domination::is_dominating_set(net.graph(), w.nodes()));
    }

    #[test]
    fn join_next_to_dominator_stays_gray() {
        let mut net = MaintainedWcds::new(deploy::chain(5, 0.9), 1.0);
        // MIS of the chain with index ids: {0, 2, 4}
        assert_eq!(net.wcds().mis_dominators(), &[0, 2, 4]);
        let p2 = net.points()[2];
        let report = net.apply_join(Point::new(p2.x + 0.1, p2.y));
        assert!(!report.promoted.contains(&5));
        assert_valid(&net);
    }

    #[test]
    fn leave_of_dominator_promotes_uncovered_neighbor() {
        let mut net = MaintainedWcds::new(deploy::chain(4, 0.9), 1.0);
        assert_eq!(net.wcds().mis_dominators(), &[0, 2]);
        // remove dominator 2; old node 3 (new id 2) is left isolated and
        // must promote itself
        let report = net.apply_leave(2);
        assert_valid(&net);
        assert!(report.promoted.contains(&2), "report: {report:?}");
        assert!(net.wcds().contains(2));
    }

    #[test]
    fn leave_of_gray_node_is_cheap() {
        let mut net = MaintainedWcds::new(deploy::chain(7, 0.9), 1.0);
        let report = net.apply_leave(1);
        assert_valid(&net);
        // old dominators 2,4,6 are now 1,3,5; node 0 keeps its status;
        // chain split is bridged by... 0 alone dominates 0; 1(old 2)
        // dominates old 3; set stays dominating, maybe unchanged
        assert!(report.demoted.is_empty() || net.wcds().is_valid(net.graph()));
    }

    #[test]
    fn churn_sequence_stays_valid() {
        let region = BoundingBox::with_size(4.0, 4.0);
        let mut net = MaintainedWcds::new(deploy::uniform(60, 4.0, 4.0, 7), 1.0);
        for step in 0u64..10 {
            match step % 3 {
                0 => {
                    let moved = deploy::perturb(net.points(), region, 0.2, 100 + step);
                    let moves: Vec<(NodeId, Point)> =
                        moved.iter().copied().enumerate().collect();
                    net.apply_motion(&moves);
                }
                1 => {
                    let _ = net.apply_join(Point::new(
                        (step as f64 * 0.37) % 4.0,
                        (step as f64 * 0.61) % 4.0,
                    ));
                }
                _ => {
                    let victim = (step as usize * 11) % net.graph().node_count();
                    let _ = net.apply_leave(victim);
                }
            }
            assert_valid(&net);
        }
    }
}

pub mod distributed;
