//! WCDS maintenance under mobility (§4.2's extension).
//!
//! The paper sketches the maintenance strategy and defers the details to
//! a follow-up: "the key technique … is to maintain the MIS in the
//! unit-disk graph at all times, and to maintain information about all
//! MIS-dominators within three-hop distance … the algorithm can be
//! applied locally, and the nodes that get affected are within three-hop
//! distance."
//!
//! [`MaintainedWcds`] implements exactly that contract, and does it
//! incrementally end to end:
//!
//! * the topology lives in a [`DynamicUdg`] — every move/join/leave
//!   yields an `O(Δ)` [`TopoDelta`] and splices the CSR instead of
//!   rebuilding it;
//! * the MIS is repaired by the ascending-id cascade in [`region`],
//!   seeded at the delta's disturbed nodes, which restores the exact
//!   lexicographic-first MIS a from-scratch greedy run would build;
//! * additional dominators are kept as per-MIS-node *contribution sets*
//!   with bridge refcounts, so only MIS nodes inside the 3-hop ball
//!   around the disturbance re-derive their bridges
//!   ([`select_additional_dominators_in`]); the union stays equal to
//!   Algorithm II's global selection at all times;
//! * every repair returns a [`RepairReport`] whose *locality radius* —
//!   the per-stage propagation distance of the repair (disturbed edges
//!   → MIS flips, then disturbance ∪ flips → dominator-status changes)
//!   — lets experiments verify the paper's 3-hop locality claim, plus
//!   touched-node/edge counters sizing the repaired region.
//!
//! Why the 3-hop ball suffices for bridges: the disturbed set `D`
//! (delta seeds ∪ MIS flips) contains every endpoint of every changed
//! edge and every membership change, so any shortest path can be
//! truncated at its first `D`-vertex — distances *from* `D` agree in
//! the old and new graphs. An MIS node `u` with `hop(D, u) ≥ 4` has an
//! identical radius-3 ball (members, distances, memberships) in both
//! graphs, and Algorithm II's pair rule for `u` reads nothing else.

use crate::Wcds;
use std::collections::{BTreeMap, BTreeSet};
use wcds_geom::Point;
use wcds_graph::{DynamicUdg, Graph, NodeId};

pub mod lease;
pub(crate) mod region;
pub use region::select_additional_dominators_in;

/// How far the locality scan looks before calling a changed node
/// unreachable from the disturbance (reported as `u32::MAX`). Repairs
/// land within 3–4 hops; 8 leaves slack to *observe* a violation of the
/// locality claim rather than mask it.
const LOCALITY_SCAN_RADIUS: u32 = 8;

/// A WCDS kept valid across node motion, joins, and departures.
///
/// # Examples
///
/// ```
/// use wcds_core::maintenance::MaintainedWcds;
/// use wcds_geom::{deploy, Point};
///
/// let mut net = MaintainedWcds::new(deploy::uniform(80, 4.0, 4.0, 1), 1.0);
/// assert!(net.wcds().is_valid(net.graph()));
/// let report = net.apply_join(Point::new(2.0, 2.0));
/// assert!(net.wcds().is_valid(net.graph()));
/// assert!(report.affected.contains(&80));
/// ```
#[derive(Debug, Clone)]
pub struct MaintainedWcds {
    udg: DynamicUdg,
    mis: BTreeSet<NodeId>,
    /// MIS node → the bridges its 3-hop pairs selected (only non-empty
    /// sets are stored).
    contrib: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// Bridge → number of MIS nodes whose contribution set contains it.
    /// The key set *is* the additional-dominator set.
    bridge_refs: BTreeMap<NodeId, u32>,
    /// Workers for repair-internal parallel sweeps (contribution-set
    /// recomputation fans out per anchor above
    /// [`PARALLEL_REPAIR_THRESHOLD`]). Results are identical for every
    /// value — the per-anchor sets are computed read-only and merged in
    /// ascending key order.
    threads: usize,
}

/// Below this many refresh anchors a repair stays on the calling thread:
/// typical single-mutation repairs touch a handful of MIS nodes and the
/// spawn cost would dominate. Batched drift ticks routinely disturb
/// hundreds of anchors and cross this comfortably.
const PARALLEL_REPAIR_THRESHOLD: usize = 16;

/// What one repair changed, how far from the disturbance, and how much
/// of the graph it had to look at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Nodes whose incident edge set changed (the disturbance).
    pub affected: Vec<NodeId>,
    /// Nodes that became dominators (of either kind).
    pub promoted: Vec<NodeId>,
    /// Nodes that stopped being dominators.
    pub demoted: Vec<NodeId>,
    /// Nodes that stayed dominators but switched kind (MIS head ↔
    /// bridge). The dominator *set* is unchanged for these, yet every
    /// head-derived artifact (clusterheads, routing tables) is stale —
    /// a cache consumer must treat a role swap exactly like a
    /// promotion. See [`RepairReport::changed`].
    pub role_changes: Vec<NodeId>,
    /// How far the repair's effects propagated (hop distance in the new
    /// graph), measured per repair stage: the farthest MIS flip from
    /// the disturbed edge endpoints, and the farthest dominator
    /// promotion/demotion from the disturbance *including* those flips
    /// (a flipped MIS node is itself part of the disturbance the
    /// bridge-selection layer reacts to). The maximum of the two is the
    /// paper's §4.2 "affected within three-hop distance" quantity;
    /// `None` when no membership or status changed, or nothing was
    /// disturbed.
    pub locality_radius: Option<u32>,
    /// Net edges the mutation created (canonical `(u, v)` with `u < v`,
    /// ascending; intra-batch add/remove pairs cancel).
    pub edges_added: Vec<(NodeId, NodeId)>,
    /// Net edges the mutation destroyed. For a leave these are reported
    /// in the pre-removal id space (the vanished node has no new id).
    pub edges_removed: Vec<(NodeId, NodeId)>,
    /// Nodes inside the repaired region (the 3-hop ball around the
    /// disturbed set); every node the repair examined is counted.
    pub touched_nodes: usize,
    /// Total degree over the touched nodes — edge endpoints the repair
    /// may have scanned.
    pub touched_edges: usize,
}

impl RepairReport {
    /// Whether the repair changed any dominator status — membership
    /// (`promoted` / `demoted`) **or** kind (`role_changes`). This is
    /// exactly `wcds_before != wcds_after` over the MIS/bridge
    /// partition: a repair may swap a bridge into the MIS while a
    /// nearby head drops to bridge, leaving the dominator *union*
    /// intact — a union-only diff would call that "unchanged" and let
    /// a cache patch routing state against the wrong head set.
    pub fn changed(&self) -> bool {
        !self.promoted.is_empty()
            || !self.demoted.is_empty()
            || !self.role_changes.is_empty()
    }
}

/// Snapshot of the dominator partition a repair is diffed against,
/// taken in the id space the repair will report in.
struct Baseline {
    mis: BTreeSet<NodeId>,
    bridges: BTreeSet<NodeId>,
}

impl MaintainedWcds {
    /// Builds the initial WCDS (Algorithm II's construction) over a
    /// deployment, using [`wcds_graph::parallel::threads()`] workers for
    /// the from-scratch pass.
    pub fn new(points: Vec<Point>, radius: f64) -> Self {
        Self::with_threads(points, radius, wcds_graph::parallel::threads())
    }

    /// [`MaintainedWcds::new`] with an explicit worker count for the
    /// initial construction. The from-scratch pass runs the same
    /// grid-partitioned MIS and per-anchor bridge selection as
    /// [`crate::partition::PartitionedTwo`], so a 100k-node deployment
    /// comes up in seconds instead of minutes; subsequent repairs are
    /// incremental and fan their refresh sweeps out over the same
    /// worker count (see [`MaintainedWcds::set_threads`]). The
    /// resulting state is identical for every `nthreads`.
    pub fn with_threads(points: Vec<Point>, radius: f64, nthreads: usize) -> Self {
        let udg = DynamicUdg::new(points, radius);
        let mis_vec =
            crate::partition::mis_over_points(udg.graph(), udg.points(), nthreads.max(1));
        let per_anchor =
            crate::partition::bridge_contributions(udg.graph(), &mis_vec, nthreads.max(1));
        let mis: BTreeSet<NodeId> = mis_vec.into_iter().collect();
        let mut contrib = BTreeMap::new();
        let mut bridge_refs: BTreeMap<NodeId, u32> = BTreeMap::new();
        for (u, set) in per_anchor {
            if set.is_empty() {
                continue;
            }
            for &b in &set {
                *bridge_refs.entry(b).or_insert(0) += 1;
            }
            contrib.insert(u, set);
        }
        let net = Self { udg, mis, contrib, bridge_refs, threads: nthreads.max(1) };
        net.debug_check_against_global();
        net
    }

    /// Sets the worker count for repair-internal parallel sweeps. Has no
    /// effect on results — only on how many threads a large repair's
    /// contribution recomputation fans out over.
    pub fn set_threads(&mut self, nthreads: usize) {
        self.threads = nthreads.max(1);
    }

    /// The repair worker count (see [`MaintainedWcds::set_threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The current topology.
    pub fn graph(&self) -> &Graph {
        self.udg.graph()
    }

    /// The current node positions.
    pub fn points(&self) -> &[Point] {
        self.udg.points()
    }

    /// The unit-disk radius. Also the cell size of the topology's
    /// spatial grid, and therefore the cell size region leases claim
    /// against (see [`lease`]).
    pub fn radius(&self) -> f64 {
        self.udg.radius()
    }

    /// The current WCDS.
    pub fn wcds(&self) -> Wcds {
        Wcds::new(self.mis.iter().copied().collect(), self.bridge_refs.keys().copied().collect())
    }

    /// Moves the listed nodes and repairs the WCDS. The whole batch is
    /// spliced into the CSR in one row-merge pass
    /// ([`DynamicUdg::move_nodes`]); the repair is seeded with the
    /// endpoints of the *net* edge delta (a later move undoing an
    /// earlier one cancels).
    ///
    /// # Panics
    ///
    /// Panics if a node id is out of range.
    pub fn apply_motion(&mut self, moves: &[(NodeId, Point)]) -> RepairReport {
        let before = self.baseline();
        let delta = self.udg.move_nodes(moves);
        self.repair(&delta.seeds, before, delta.added, delta.removed)
    }

    /// Adds a node (it receives the next id `n`) and repairs.
    pub fn apply_join(&mut self, p: Point) -> RepairReport {
        let before = self.baseline();
        let (_, delta) = self.udg.add_node(p);
        self.repair(&delta.seeds, before, delta.added, Vec::new())
    }

    /// Removes node `u`. **Ids above `u` shift down by one** (positions
    /// are compacted); dominator sets are remapped before repair. The
    /// remap is order-preserving, so it commutes with the id-ranked
    /// greedy construction and the bridge rule.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn apply_leave(&mut self, u: NodeId) -> RepairReport {
        let dropped = self.contrib.remove(&u);
        let delta = self.udg.remove_node(u);
        let remap = |x: NodeId| if x > u { x - 1 } else { x };
        self.mis = self.mis.iter().copied().filter(|&x| x != u).map(remap).collect();
        self.contrib = self
            .contrib
            .iter()
            .map(|(&k, set)| {
                let set: BTreeSet<NodeId> =
                    set.iter().copied().filter(|&b| b != u).map(remap).collect();
                (remap(k), set)
            })
            .filter(|(_, set)| !set.is_empty())
            .collect();
        self.bridge_refs = self
            .bridge_refs
            .iter()
            .filter(|&(&b, _)| b != u)
            .map(|(&b, &c)| (remap(b), c))
            .collect();
        // status baseline in the new id space, before the leaver's own
        // contributions are released (mirrors what a reader saw last)
        let before = self.baseline();
        for b in dropped.into_iter().flatten() {
            release_bridge(&mut self.bridge_refs, remap(b));
        }
        self.repair(&delta.seeds, before, Vec::new(), delta.removed)
    }

    /// Delta-driven repair: cascade the MIS from the seeds, then refresh
    /// contribution sets for MIS nodes inside the 3-hop ball around the
    /// disturbance (seeds ∪ flips).
    fn repair(
        &mut self,
        seeds: &[NodeId],
        before: Baseline,
        edges_added: Vec<(NodeId, NodeId)>,
        edges_removed: Vec<(NodeId, NodeId)>,
    ) -> RepairReport {
        let g = self.udg.graph();
        let flipped = region::cascade_mis(g, &mut self.mis, seeds);
        let mut dirty: BTreeSet<NodeId> = seeds.iter().copied().collect();
        dirty.extend(flipped.iter().copied());
        let ball = region::bounded_ball(g, dirty.iter().copied(), 3);
        if ball.len() * 2 >= g.node_count() {
            // dense repair: the ball covers most of the graph, so the
            // per-anchor diff/merge below degenerates to a global pass
            // that still pays set-diff bookkeeping per key. Rebuild the
            // contribution state wholesale with the constructor's
            // partitioned sweep instead — per-anchor sets are a pure
            // function of (graph, MIS, anchor), so anchors outside the
            // ball recompute to their old values and the result is
            // identical to the incremental path (debug-asserted below).
            let mis_vec: Vec<NodeId> = self.mis.iter().copied().collect();
            let per_anchor =
                crate::partition::bridge_contributions(g, &mis_vec, self.threads);
            self.contrib.clear();
            self.bridge_refs.clear();
            for (u, set) in per_anchor {
                if set.is_empty() {
                    continue;
                }
                for &b in &set {
                    *self.bridge_refs.entry(b).or_insert(0) += 1;
                }
                self.contrib.insert(u, set);
            }
        } else {
            // refresh every current-MIS node in the ball, plus every old
            // contribution key in it (covers nodes that just left the MIS)
            let keys: Vec<NodeId> = ball
                .keys()
                .copied()
                .filter(|k| self.mis.contains(k) || self.contrib.contains_key(k))
                .collect();
            // per-anchor sets are a read-only function of (graph, MIS,
            // anchor), so they can be computed on any number of workers; the
            // refcount/contrib merge below stays serial in ascending key
            // order, making the result thread-count-invariant
            let workers =
                if keys.len() >= PARALLEL_REPAIR_THRESHOLD { self.threads } else { 1 };
            let mut new_sets: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); keys.len()];
            {
                let mis = &self.mis;
                let nodes = g.node_count();
                wcds_graph::parallel::map_indices_with(
                    workers,
                    &mut new_sets,
                    || region::BallScratch::new(nodes),
                    |scratch, i| {
                        let k = keys[i];
                        if mis.contains(&k) {
                            region::contributions_for_with(scratch, g, mis, k)
                        } else {
                            BTreeSet::new()
                        }
                    },
                );
            }
            for (&k, new_set) in keys.iter().zip(new_sets) {
                let old_set = self.contrib.remove(&k).unwrap_or_default();
                if new_set == old_set {
                    if !old_set.is_empty() {
                        self.contrib.insert(k, old_set);
                    }
                    continue;
                }
                for &b in old_set.difference(&new_set) {
                    release_bridge(&mut self.bridge_refs, b);
                }
                for &b in new_set.difference(&old_set) {
                    *self.bridge_refs.entry(b).or_insert(0) += 1;
                }
                if !new_set.is_empty() {
                    self.contrib.insert(k, new_set);
                }
            }
        }

        let after = self.dominators();
        let before_union: BTreeSet<NodeId> =
            before.mis.union(&before.bridges).copied().collect();
        let promoted: Vec<NodeId> = after.difference(&before_union).copied().collect();
        let demoted: Vec<NodeId> = before_union.difference(&after).copied().collect();
        // dominators whose *kind* flipped while the union kept them: a
        // bridge absorbed into the MIS as a nearby head drops to bridge
        // is invisible to the union diff yet invalidates every
        // head-derived artifact downstream
        let bridges_after: BTreeSet<NodeId> = self.bridge_refs.keys().copied().collect();
        let role_changes: Vec<NodeId> = before
            .mis
            .symmetric_difference(&self.mis)
            .chain(before.bridges.symmetric_difference(&bridges_after))
            .copied()
            .filter(|u| {
                promoted.binary_search(u).is_err() && demoted.binary_search(u).is_err()
            })
            .collect::<BTreeSet<NodeId>>()
            .into_iter()
            .collect();
        let affected: Vec<NodeId> = seeds.to_vec();
        let locality_radius = if affected.is_empty() {
            None
        } else {
            let g = self.udg.graph();
            // stage one: how far the MIS cascade ran from the disturbed
            // edge endpoints (no flips → nothing to measure, no scan)
            let cascade = if flipped.is_empty() {
                None
            } else {
                let targets: BTreeSet<NodeId> = flipped.iter().copied().collect();
                let from_seeds = region::distances_to_targets(
                    g,
                    affected.iter().copied(),
                    &targets,
                    LOCALITY_SCAN_RADIUS,
                );
                flipped
                    .iter()
                    .map(|u| from_seeds.get(u).copied().unwrap_or(u32::MAX))
                    .max()
            };
            // stage two: how far dominator-status changes sit from the
            // disturbance including those flips (a flipped MIS node is
            // itself part of the disturbance the bridge layer sees)
            let status = if promoted.is_empty() && demoted.is_empty() && role_changes.is_empty()
            {
                None
            } else {
                let targets: BTreeSet<NodeId> = promoted
                    .iter()
                    .chain(&demoted)
                    .chain(&role_changes)
                    .copied()
                    .collect();
                let from_dirty = region::distances_to_targets(
                    g,
                    dirty.iter().copied(),
                    &targets,
                    LOCALITY_SCAN_RADIUS,
                );
                targets
                    .iter()
                    .map(|u| from_dirty.get(u).copied().unwrap_or(u32::MAX))
                    .max()
            };
            cascade.max(status)
        };
        let touched_nodes = ball.len();
        let touched_edges = ball.keys().map(|&u| self.udg.graph().degree(u)).sum();
        self.debug_check_against_global();
        RepairReport {
            affected,
            promoted,
            demoted,
            role_changes,
            locality_radius,
            edges_added,
            edges_removed,
            touched_nodes,
            touched_edges,
        }
    }

    /// Current dominator set: MIS ∪ referenced bridges.
    fn dominators(&self) -> BTreeSet<NodeId> {
        self.mis.iter().chain(self.bridge_refs.keys()).copied().collect()
    }

    fn baseline(&self) -> Baseline {
        Baseline {
            mis: self.mis.clone(),
            bridges: self.bridge_refs.keys().copied().collect(),
        }
    }

    /// Debug-build oracle: incremental state must equal a from-scratch
    /// Algorithm II run after every mutation.
    #[cfg(debug_assertions)]
    fn debug_check_against_global(&self) {
        let g = self.udg.graph();
        let fresh_mis = crate::mis::greedy_mis(g, crate::mis::RankingMode::StaticId);
        let mis: Vec<NodeId> = self.mis.iter().copied().collect();
        debug_assert_eq!(mis, fresh_mis, "cascade diverged from greedy MIS");
        let additional: Vec<NodeId> = self.bridge_refs.keys().copied().collect();
        debug_assert_eq!(
            additional,
            crate::algo2::select_additional_dominators(g, &fresh_mis),
            "bridge refcounts diverged from Algorithm II's selection"
        );
        let refs: BTreeMap<NodeId, u32> = self.contrib.values().flatten().fold(
            BTreeMap::new(),
            |mut acc, &b| {
                *acc.entry(b).or_insert(0) += 1;
                acc
            },
        );
        debug_assert_eq!(refs, self.bridge_refs, "refcounts out of sync with contributions");
    }

    #[cfg(not(debug_assertions))]
    fn debug_check_against_global(&self) {}
}

/// Drops one reference to bridge `b`, deleting the entry at zero.
fn release_bridge(refs: &mut BTreeMap<NodeId, u32>, b: NodeId) {
    let gone = match refs.get_mut(&b) {
        Some(c) => {
            *c -= 1;
            *c == 0
        }
        None => {
            debug_assert!(false, "released an unreferenced bridge {b}");
            false
        }
    };
    if gone {
        refs.remove(&b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_geom::{deploy, BoundingBox};
    use wcds_graph::domination;

    fn assert_valid(net: &MaintainedWcds) {
        let w = net.wcds();
        assert!(
            domination::is_independent_set(net.graph(), w.mis_dominators()),
            "MIS part lost independence"
        );
        assert!(
            domination::is_dominating_set(net.graph(), w.mis_dominators()),
            "MIS part lost domination"
        );
        // full weak connectivity is only defined when the network itself
        // is connected (motion can legitimately partition a UDG)
        if wcds_graph::traversal::is_connected(net.graph()) {
            assert!(w.is_valid(net.graph()), "invalid WCDS after repair: {w}");
        }
    }

    #[test]
    fn initial_construction_is_valid() {
        let net = MaintainedWcds::new(deploy::uniform(120, 5.0, 5.0, 2), 1.0);
        assert_valid(&net);
    }

    #[test]
    fn initial_construction_matches_algorithm_two() {
        let net = MaintainedWcds::new(deploy::uniform(140, 5.0, 5.0, 8), 1.0);
        let (mis, additional) =
            crate::algo2::AlgorithmTwo::new().construct_parts(net.graph());
        let w = net.wcds();
        assert_eq!(w.mis_dominators(), &mis[..]);
        assert_eq!(w.additional_dominators(), &additional[..]);
    }

    #[test]
    fn noop_motion_changes_nothing() {
        let mut net = MaintainedWcds::new(deploy::uniform(60, 4.0, 4.0, 3), 1.0);
        let before = net.wcds();
        let p0 = net.points()[0];
        let report = net.apply_motion(&[(0, p0)]);
        assert!(!report.changed());
        assert!(report.affected.is_empty());
        assert_eq!(report.touched_nodes, 0);
        assert!(report.edges_added.is_empty() && report.edges_removed.is_empty());
        assert_eq!(net.wcds(), before);
    }

    #[test]
    fn small_motions_keep_validity_over_a_trace() {
        let region = BoundingBox::with_size(5.0, 5.0);
        let mut net = MaintainedWcds::new(deploy::uniform(100, 5.0, 5.0, 4), 1.0);
        for step in 0..15 {
            let moved = deploy::perturb(net.points(), region, 0.15, step);
            let moves: Vec<(NodeId, Point)> = moved.iter().copied().enumerate().collect();
            net.apply_motion(&moves);
            assert_valid(&net);
        }
    }

    #[test]
    fn single_node_motion_has_local_repairs() {
        let mut net = MaintainedWcds::new(deploy::uniform(150, 6.0, 6.0, 5), 1.0);
        let mut max_radius = 0;
        for step in 0..20 {
            let u = (step * 7) % 150;
            let old = net.points()[u];
            let target = Point::new((old.x + 0.4).min(6.0), old.y);
            let report = net.apply_motion(&[(u, target)]);
            assert_valid(&net);
            if let Some(r) = report.locality_radius {
                max_radius = max_radius.max(r);
            }
            if report.affected.is_empty() {
                assert_eq!(report.touched_nodes, 0);
            } else {
                assert!(report.touched_nodes > 0);
                assert!(report.touched_nodes < 150, "repair touched the whole graph");
            }
        }
        // paper's claim: affected nodes are within three-hop distance;
        // bridge re-selection can ripple one hop further
        assert!(max_radius <= 4, "repair radius {max_radius} exceeds 3-hop locality (+1)");
    }

    #[test]
    fn join_in_empty_area_becomes_dominator() {
        // one far-away joiner must dominate itself
        let mut net = MaintainedWcds::new(deploy::uniform(50, 3.0, 3.0, 6), 1.0);
        let report = net.apply_join(Point::new(50.0, 50.0));
        assert!(report.promoted.contains(&50));
        let w = net.wcds();
        assert!(w.contains(50));
        assert!(domination::is_dominating_set(net.graph(), w.nodes()));
    }

    #[test]
    fn join_next_to_dominator_stays_gray() {
        let mut net = MaintainedWcds::new(deploy::chain(5, 0.9), 1.0);
        // MIS of the chain with index ids: {0, 2, 4}
        assert_eq!(net.wcds().mis_dominators(), &[0, 2, 4]);
        let p2 = net.points()[2];
        let report = net.apply_join(Point::new(p2.x + 0.1, p2.y));
        assert!(!report.promoted.contains(&5));
        assert_valid(&net);
    }

    #[test]
    fn leave_of_dominator_promotes_uncovered_neighbor() {
        let mut net = MaintainedWcds::new(deploy::chain(4, 0.9), 1.0);
        assert_eq!(net.wcds().mis_dominators(), &[0, 2]);
        // remove dominator 2; old node 3 (new id 2) is left isolated and
        // must promote itself
        let report = net.apply_leave(2);
        assert_valid(&net);
        assert!(report.promoted.contains(&2), "report: {report:?}");
        assert!(net.wcds().contains(2));
    }

    #[test]
    fn leave_of_gray_node_is_cheap() {
        let mut net = MaintainedWcds::new(deploy::chain(7, 0.9), 1.0);
        let report = net.apply_leave(1);
        assert_valid(&net);
        // old dominators 2,4,6 are now 1,3,5; node 0 keeps its status;
        // chain split is bridged by... 0 alone dominates 0; 1(old 2)
        // dominates old 3; set stays dominating, maybe unchanged
        assert!(report.demoted.is_empty() || net.wcds().is_valid(net.graph()));
    }

    #[test]
    fn churn_sequence_stays_valid() {
        let region = BoundingBox::with_size(4.0, 4.0);
        let mut net = MaintainedWcds::new(deploy::uniform(60, 4.0, 4.0, 7), 1.0);
        for step in 0u64..10 {
            match step % 3 {
                0 => {
                    let moved = deploy::perturb(net.points(), region, 0.2, 100 + step);
                    let moves: Vec<(NodeId, Point)> =
                        moved.iter().copied().enumerate().collect();
                    net.apply_motion(&moves);
                }
                1 => {
                    let _ = net.apply_join(Point::new(
                        (step as f64 * 0.37) % 4.0,
                        (step as f64 * 0.61) % 4.0,
                    ));
                }
                _ => {
                    let victim = (step as usize * 11) % net.graph().node_count();
                    let _ = net.apply_leave(victim);
                }
            }
            assert_valid(&net);
        }
    }

    #[test]
    fn touched_region_is_a_small_fraction_on_big_graphs() {
        let mut net = MaintainedWcds::new(deploy::uniform(800, 16.0, 16.0, 13), 1.0);
        let n = net.graph().node_count();
        for step in 0..10 {
            let u = (step * 67) % n;
            let old = net.points()[u];
            let target = Point::new((old.x + 0.5).min(16.0), old.y);
            let report = net.apply_motion(&[(u, target)]);
            assert!(
                report.touched_nodes * 4 < n,
                "step {step}: touched {} of {n} nodes",
                report.touched_nodes
            );
        }
    }
}

pub mod distributed;
