//! Region-scoped repair primitives: the 3-hop-bounded machinery behind
//! [`super::MaintainedWcds`].
//!
//! Everything here works on *sparse* node sets — hash maps keyed by the
//! touched nodes — so a repair allocates proportionally to the disturbed
//! region, never to the whole graph (the one exception is
//! [`BallScratch`], a dense distance array allocated once per repair
//! and reset in `O(|ball|)`, which the per-anchor searches share).
//! Three building blocks:
//!
//! * [`bounded_ball`] — multi-source BFS truncated at a hop radius;
//! * [`cascade_mis`] — restores the *lexicographic-first* MIS (the set
//!   greedy `StaticId` construction produces) after an edge delta, via
//!   an ascending-id worklist fixpoint seeded at the disturbed nodes;
//! * [`contributions_for_with`] / [`select_additional_dominators_in`] — the
//!   per-MIS-node share of Algorithm II's bridge rule, computed from
//!   radius-bounded searches only.
//!
//! Why the worklist restores exactly the greedy MIS: under a static-id
//! ranking, `u` is black iff no neighbor `v < u` is black — a unique
//! fixpoint. The heap pops ascending ids and every push made while
//! processing `u` targets an id above `u`, so pops are non-decreasing:
//! when `u` is decided, every smaller id's membership is already final.
//! A node's decision can only change if its own edge set changed (it is
//! a seed) or a smaller neighbor flipped (the flip pushes it), so the
//! fixpoint reached equals a from-scratch greedy run.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};
use wcds_graph::{Graph, NodeId};

/// Multi-source BFS truncated at `radius` hops: hop distance from the
/// nearest source for every node within `radius`, as a sparse map.
/// Out-of-range sources are ignored.
pub(crate) fn bounded_ball<I>(g: &Graph, sources: I, radius: u32) -> HashMap<NodeId, u32>
where
    I: IntoIterator<Item = NodeId>,
{
    let mut dist: HashMap<NodeId, u32> = HashMap::new();
    let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
    for s in sources {
        if s < g.node_count() && !dist.contains_key(&s) {
            dist.insert(s, 0);
            queue.push_back((s, 0));
        }
    }
    while let Some((u, du)) = queue.pop_front() {
        if du == radius {
            continue;
        }
        for v in g.adj(u) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(du + 1);
                queue.push_back((v, du + 1));
            }
        }
    }
    dist
}

/// Hop distances from `sources` to the nodes of `targets`, scanning no
/// farther than `radius` — the BFS stops the moment the last target is
/// assigned, so on dense graphs it touches a few hop layers instead of
/// the whole `radius`-ball. Distances in the returned map are exact;
/// targets beyond `radius` (or unreachable) are absent, exactly as
/// they would be absent from [`bounded_ball`]'s map.
pub(crate) fn distances_to_targets<I>(
    g: &Graph,
    sources: I,
    targets: &BTreeSet<NodeId>,
    radius: u32,
) -> HashMap<NodeId, u32>
where
    I: IntoIterator<Item = NodeId>,
{
    let mut dist: HashMap<NodeId, u32> = HashMap::new();
    let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
    let mut remaining = targets.len();
    for s in sources {
        if s < g.node_count() {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(s) {
                e.insert(0);
                queue.push_back((s, 0));
                if targets.contains(&s) {
                    remaining -= 1;
                }
            }
        }
    }
    while remaining > 0 {
        let Some((u, du)) = queue.pop_front() else { break };
        if du == radius {
            continue;
        }
        for v in g.adj(u) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(du + 1);
                queue.push_back((v, du + 1));
                if targets.contains(&v) {
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                }
            }
        }
    }
    dist
}

/// Repairs `mis` to the lexicographic-first MIS of `g` after a topology
/// delta, and returns the nodes whose membership flipped (ascending).
///
/// Caller contract: before the call, `mis` is the lex-first MIS of the
/// pre-delta graph, and `seeds` contains every node whose incident edge
/// set changed (both in the post-delta id space — when the delta renamed
/// nodes, the caller has already applied the order-preserving remap to
/// `mis`, which commutes with greedy construction).
pub(crate) fn cascade_mis(g: &Graph, mis: &mut BTreeSet<NodeId>, seeds: &[NodeId]) -> Vec<NodeId> {
    let mut heap: BinaryHeap<Reverse<NodeId>> = seeds.iter().copied().map(Reverse).collect();
    let mut done: HashSet<NodeId> = HashSet::new();
    let mut flipped = Vec::new();
    while let Some(Reverse(u)) = heap.pop() {
        if u >= g.node_count() || !done.insert(u) {
            continue;
        }
        let desired = !g.adj(u).any(|v| v < u && mis.contains(&v));
        if desired == mis.contains(&u) {
            continue;
        }
        if desired {
            mis.insert(u);
        } else {
            mis.remove(&u);
        }
        flipped.push(u);
        for v in g.adj(u) {
            // pops are non-decreasing, so v > u has not been decided yet
            if v > u {
                heap.push(Reverse(v));
            }
        }
    }
    // pops were already ascending; flipped inherits the order
    debug_assert!(flipped.windows(2).all(|w| w.first() < w.last()));
    flipped
}

/// Algorithm II's bridge rule restricted to the pairs anchored at MIS
/// node `u`: for every MIS node `w > u` at hop distance exactly 3, the
/// smallest neighbor `v` of `u` with `hop(v, w) == 2`. Matches
/// `crate::algo2::select_additional_dominators` pair for pair, but runs
/// on radius-bounded searches (`O(|ball(u, 3)|)`, not `O(n + |E|)`).
/// The caller-provided [`BallScratch`] lets a repair that refreshes
/// many anchors amortize its allocation.
pub(crate) fn contributions_for_with(
    scratch: &mut BallScratch,
    g: &Graph,
    mis: &BTreeSet<NodeId>,
    u: NodeId,
) -> BTreeSet<NodeId> {
    contributions_for_pred(scratch, g, |w| mis.contains(&w), u)
}

/// [`contributions_for_with`] with MIS membership supplied as a
/// predicate, so batch callers (`crate::algo2`, the partitioned
/// construction) can pass an `O(1)` bitmap instead of a `BTreeSet`.
pub(crate) fn contributions_for_pred(
    scratch: &mut BallScratch,
    g: &Graph,
    in_mis: impl Fn(NodeId) -> bool,
    u: NodeId,
) -> BTreeSet<NodeId> {
    scratch.fill(g, u, 3);
    let mut out = BTreeSet::new();
    for &w in &scratch.visited {
        if scratch.dist.get(w).copied() != Some(3) || w <= u || !in_mis(w) {
            continue;
        }
        // the smallest v ∈ N(u) with hop(v, w) == 2; since hop(u, w) = 3
        // forces w ∉ N(u) (so v ≠ w), that is exactly: v not adjacent to
        // w but sharing a neighbor with it. The sorted-adjacency sweep
        // replaces a radius-2 ball per pair, which on dense graphs
        // re-walked most of the neighborhood for every pair.
        let nw = g.neighbors(w);
        let bridge = g
            .adj(u)
            .find(|&v| !g.has_edge(v, w) && sorted_intersects(g.neighbors(v), nw));
        debug_assert!(bridge.is_some(), "a 3-hop pair has an intermediate at distance (1, 2)");
        if let Some(v) = bridge {
            out.insert(v);
        }
    }
    out
}

/// Reusable dense scratch for the per-anchor radius-bounded searches of
/// one repair: a distance array reset through the visited list, so each
/// search costs `O(|ball|)` after a single `O(n)` allocation. The one
/// deliberate exception to this module's sparse-map convention — a
/// repair refreshes a few dozen anchors over heavily overlapping balls,
/// where per-anchor hash maps dominated the repair's running time on
/// dense graphs.
pub(crate) struct BallScratch {
    /// Hop distance per node; `u32::MAX` = not reached by the current
    /// search.
    dist: Vec<u32>,
    /// Nodes reached by the current search, in BFS order.
    visited: Vec<NodeId>,
    queue: VecDeque<NodeId>,
}

impl BallScratch {
    pub(crate) fn new(n: usize) -> Self {
        Self { dist: vec![u32::MAX; n], visited: Vec::new(), queue: VecDeque::new() }
    }

    /// Runs a BFS ball around `source` truncated at `radius` hops;
    /// results stay readable in `dist` / `visited` until the next call.
    fn fill(&mut self, g: &Graph, source: NodeId, radius: u32) {
        debug_assert_eq!(self.dist.len(), g.node_count(), "scratch sized for this graph");
        for &v in &self.visited {
            if let Some(d) = self.dist.get_mut(v) {
                *d = u32::MAX;
            }
        }
        self.visited.clear();
        self.queue.clear();
        let Some(d0) = self.dist.get_mut(source) else { return };
        *d0 = 0;
        self.visited.push(source);
        self.queue.push_back(source);
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist.get(u).copied().unwrap_or(u32::MAX);
            if du >= radius {
                continue;
            }
            for v in g.adj(u) {
                if let Some(dv) = self.dist.get_mut(v) {
                    if *dv == u32::MAX {
                        *dv = du + 1;
                        self.visited.push(v);
                        self.queue.push_back(v);
                    }
                }
            }
        }
    }
}

/// Whether two ascending slices share an element (two-pointer sweep).
fn sorted_intersects(mut a: &[u32], mut b: &[u32]) -> bool {
    debug_assert!(a.windows(2).all(|w| w.first() < w.last()));
    debug_assert!(b.windows(2).all(|w| w.first() < w.last()));
    while let (Some((&x, rest_a)), Some((&y, rest_b))) = (a.split_first(), b.split_first()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => a = rest_a,
            std::cmp::Ordering::Greater => b = rest_b,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// The per-node decomposition of Algorithm II's additional-dominator
/// selection, restricted to the MIS nodes inside `region`: each MIS node
/// `u` in `region` maps to the bridges its 3-hop pairs select (possibly
/// empty). Non-MIS region nodes are skipped.
///
/// With `region` = all nodes, the union of the returned sets equals
/// `crate::algo2::select_additional_dominators` exactly — Algorithm II's
/// rule is per-pair-deterministic, so it decomposes over anchors.
pub fn select_additional_dominators_in<I>(
    g: &Graph,
    mis: &BTreeSet<NodeId>,
    region: I,
) -> BTreeMap<NodeId, BTreeSet<NodeId>>
where
    I: IntoIterator<Item = NodeId>,
{
    let mut out = BTreeMap::new();
    let mut scratch = BallScratch::new(g.node_count());
    for u in region {
        if mis.contains(&u) {
            out.insert(u, contributions_for_with(&mut scratch, g, mis, u));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo2::{select_additional_dominators, select_additional_dominators_reference};
    use crate::mis::{greedy_mis, RankingMode};
    use wcds_geom::deploy;
    use wcds_graph::{generators, traversal, UnitDiskGraph};
    use wcds_rng::{ChaCha12Rng, Rng};

    fn lex_mis(g: &Graph) -> BTreeSet<NodeId> {
        greedy_mis(g, RankingMode::StaticId).into_iter().collect()
    }

    #[test]
    fn bounded_ball_matches_full_bfs_within_radius() {
        let udg = UnitDiskGraph::build(deploy::uniform(200, 6.0, 6.0, 9), 1.0);
        let g = udg.graph();
        for r in 0..4u32 {
            let ball = bounded_ball(g, [0, 17, 91], r);
            let full = traversal::multi_source_bfs(g, [0, 17, 91]);
            for u in g.nodes() {
                match full[u] {
                    Some(d) if d <= r => assert_eq!(ball.get(&u), Some(&d)),
                    _ => assert_eq!(ball.get(&u), None),
                }
            }
        }
    }

    #[test]
    fn cascade_reaches_the_greedy_fixpoint_from_scratch() {
        // seeding every node must reproduce greedy construction exactly,
        // even starting from an empty (wrong) membership
        let g = generators::gnp(120, 0.06, 5);
        let mut mis = BTreeSet::new();
        let seeds: Vec<NodeId> = g.nodes().collect();
        cascade_mis(&g, &mut mis, &seeds);
        assert_eq!(mis, lex_mis(&g));
    }

    #[test]
    fn cascade_tracks_greedy_across_random_moves() {
        let mut udg = wcds_graph::DynamicUdg::new(deploy::uniform(180, 5.0, 5.0, 21), 1.0);
        let mut mis = lex_mis(udg.graph());
        let mut rng = ChaCha12Rng::seed_from_u64(77);
        for _ in 0..80 {
            let u = rng.gen_range(0..udg.node_count());
            let p = wcds_geom::Point::new(rng.gen::<f64>() * 5.0, rng.gen::<f64>() * 5.0);
            let delta = udg.move_node(u, p);
            let flipped = cascade_mis(udg.graph(), &mut mis, &delta.seeds);
            assert_eq!(mis, lex_mis(udg.graph()), "cascade diverged (flipped {flipped:?})");
            for &f in &flipped {
                // a flip is either a seed or reachable from one through
                // the ascending chain — never an untouched far node
                assert!(f >= delta.seeds.first().copied().unwrap_or(0));
            }
        }
    }

    #[test]
    fn edge_removal_promotes_the_freed_node() {
        // path 0-1-2: lex MIS {0, 2}; drop edge (0, 1) and node 1 must
        // join, which in turn evicts 2 — exactly what a fresh greedy run
        // decides ({0, 1}), reached through the ascending chain
        let g3 = generators::path(3);
        let mut mis: BTreeSet<NodeId> = lex_mis(&g3);
        let g2 = {
            let mut b = wcds_graph::GraphBuilder::new(3);
            b.add_edge(1, 2);
            b.build()
        };
        let flipped = cascade_mis(&g2, &mut mis, &[0, 1]);
        assert_eq!(flipped, vec![1, 2]);
        assert_eq!(mis, lex_mis(&g2));
        assert_eq!(mis.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn contributions_union_equals_the_global_selection() {
        for seed in [3, 14, 60] {
            let udg = UnitDiskGraph::build(deploy::uniform(160, 7.0, 7.0, seed), 1.0);
            let g = udg.graph();
            let mis_vec = greedy_mis(g, RankingMode::StaticId);
            let mis: BTreeSet<NodeId> = mis_vec.iter().copied().collect();
            let per_node = select_additional_dominators_in(g, &mis, g.nodes());
            assert_eq!(per_node.len(), mis.len());
            let union: Vec<NodeId> = per_node
                .values()
                .flatten()
                .copied()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            // against the full-BFS oracle (independent derivation) and
            // the production bounded-local path (shared machinery)
            assert_eq!(union, select_additional_dominators_reference(g, &mis_vec));
            assert_eq!(union, select_additional_dominators(g, &mis_vec));
        }
    }

    #[test]
    fn contributions_skip_non_mis_region_nodes() {
        let g = generators::path(7);
        let mis = lex_mis(&g);
        let per_node = select_additional_dominators_in(&g, &mis, [1, 3, 5]);
        assert!(per_node.is_empty(), "path MIS is the even nodes only");
    }
}
