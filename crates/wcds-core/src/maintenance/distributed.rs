//! Distributed MIS/domination maintenance.
//!
//! The paper's §4.2 sketch: *"The key technique in our approach is to
//! maintain the MIS in the unit-disk graph at all times … the
//! algorithm can be applied locally, and the nodes that get affected
//! are within three-hop distance."* The details are deferred to a
//! follow-up paper; this module makes the sketch concrete as an
//! event-driven protocol on the simulator:
//!
//! * topology changes are applied between simulator runs
//!   ([`wcds_sim::Simulator::set_topology`]); on the next run every
//!   node compares its current neighbor list against the one it
//!   remembers — **only nodes whose neighborhood changed (or that are
//!   dragged in by a neighbor's announcement) send anything**, so
//!   repair locality is directly measurable from per-node message
//!   counts;
//! * independence repair: two dominators that become adjacent discover
//!   each other through `HELLO`s; the higher ID demotes;
//! * domination repair: a node left without an adjacent dominator
//!   announces `UNCOVERED` and polls its neighborhood (`QUERY` →
//!   `STATUS`); once it knows its neighbors' states it promotes itself
//!   iff it has the lowest ID among locally-uncovered nodes, otherwise
//!   it waits for the lower ones to resolve (their `PROMOTE` /
//!   `COVERED` announcements re-trigger the check);
//! * bridge (additional-dominator) refresh stays a deterministic local
//!   recomputation (see [`super::MaintainedWcds`]) — the protocol here
//!   maintains the *MIS layer*, which is the paper's stated key
//!   technique.
//!
//! Convergence: announcements only shrink the uncovered set or resolve
//! dominator conflicts in ID order; the globally lowest uncovered node
//! can always act, so every repair run quiesces with a valid
//! independent dominating set (asserted by [`DynamicBackbone`]).

use std::collections::{BTreeMap, BTreeSet};
use wcds_geom::Point;
use wcds_graph::{domination, Graph, NodeId, UnitDiskGraph};
use wcds_sim::{Context, ProcId, Protocol, Schedule, SimError, SimReport, Simulator};

/// Messages of the maintenance protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintMsg {
    /// Sent by a node whose neighborhood changed, announcing its
    /// current state to (possibly new) neighbors.
    Hello {
        /// Whether the sender is currently a dominator.
        dominator: bool,
    },
    /// "I currently have no adjacent dominator."
    Uncovered,
    /// "I was uncovered and now have a dominator again."
    Covered,
    /// "I join the MIS." (Also resolves `UNCOVERED` waits.)
    Promote,
    /// "I leave the MIS." (Independence repair; may uncover neighbors.)
    Demote,
    /// "Tell me your current state."
    Query,
    /// Reply to `QUERY`.
    Status {
        /// Whether the sender is a dominator.
        dominator: bool,
        /// Whether the sender currently lacks an adjacent dominator
        /// (meaningful for non-dominators).
        uncovered: bool,
    },
}

/// Per-node maintenance state.
#[derive(Debug)]
pub struct MaintNode {
    dominator: bool,
    /// Neighbor list as of the last completed run.
    known_neighbors: Vec<ProcId>,
    /// Adjacent dominators, as currently believed.
    adj_doms: BTreeSet<ProcId>,
    /// Neighbors believed uncovered.
    uncovered_neighbors: BTreeSet<ProcId>,
    /// Outstanding QUERY: neighbors whose STATUS is still missing.
    awaiting_status: BTreeSet<ProcId>,
    /// Whether this node has announced `UNCOVERED` without a matching
    /// `COVERED`/`PROMOTE` yet.
    announced_uncovered: bool,
}

impl MaintNode {
    /// A node seeded from a constructed backbone: `dominator` marks MIS
    /// membership; `adj_doms` its currently adjacent dominators;
    /// `neighbors` the topology at seed time.
    pub fn new(dominator: bool, adj_doms: BTreeSet<ProcId>, neighbors: Vec<ProcId>) -> Self {
        Self {
            dominator,
            known_neighbors: neighbors,
            adj_doms,
            uncovered_neighbors: BTreeSet::new(),
            awaiting_status: BTreeSet::new(),
            announced_uncovered: false,
        }
    }

    /// Whether this node is currently an MIS dominator.
    pub fn is_dominator(&self) -> bool {
        self.dominator
    }

    fn is_covered(&self) -> bool {
        self.dominator || !self.adj_doms.is_empty()
    }

    /// Becomes uncovered: announce and start polling the neighborhood.
    fn start_repair(&mut self, ctx: &mut Context<'_, MaintMsg>) {
        if self.is_covered() {
            return;
        }
        if !self.announced_uncovered {
            self.announced_uncovered = true;
            ctx.broadcast(MaintMsg::Uncovered);
        }
        self.awaiting_status = ctx.neighbors().iter().copied().collect();
        if self.awaiting_status.is_empty() {
            // isolated node: it must dominate itself
            self.promote(ctx);
        } else {
            ctx.broadcast(MaintMsg::Query);
        }
    }

    fn promote(&mut self, ctx: &mut Context<'_, MaintMsg>) {
        debug_assert!(!self.dominator);
        self.dominator = true;
        self.announced_uncovered = false;
        self.awaiting_status.clear();
        ctx.broadcast(MaintMsg::Promote);
    }

    fn demote(&mut self, ctx: &mut Context<'_, MaintMsg>) {
        debug_assert!(self.dominator);
        self.dominator = false;
        ctx.broadcast(MaintMsg::Demote);
        // we may now be uncovered ourselves
        self.start_repair(ctx);
    }

    /// Re-evaluates the promotion condition of an uncovered node.
    fn maybe_promote(&mut self, ctx: &mut Context<'_, MaintMsg>) {
        if self.is_covered() || self.dominator {
            return;
        }
        if !self.awaiting_status.is_empty() {
            return; // still polling
        }
        if self.announced_uncovered {
            let me = ctx.id();
            let has_lower_uncovered = self.uncovered_neighbors.iter().any(|&v| v < me);
            if !has_lower_uncovered {
                self.promote(ctx);
            }
        }
    }

    /// Marks this node covered again (after an uncovered spell).
    fn now_covered(&mut self, ctx: &mut Context<'_, MaintMsg>) {
        if self.announced_uncovered && self.is_covered() {
            self.announced_uncovered = false;
            self.awaiting_status.clear();
            ctx.broadcast(MaintMsg::Covered);
        }
    }
}

impl Protocol for MaintNode {
    type Message = MaintMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, MaintMsg>) {
        let current: Vec<ProcId> = ctx.neighbors().to_vec();
        if current == self.known_neighbors {
            // if a previous run left us mid-repair (shouldn't happen —
            // runs quiesce) the check below is a harmless no-op
            return;
        }
        let old: BTreeSet<ProcId> = self.known_neighbors.iter().copied().collect();
        let new: BTreeSet<ProcId> = current.iter().copied().collect();
        self.known_neighbors = current;
        // forget state about lost neighbors
        for lost in old.difference(&new) {
            self.adj_doms.remove(lost);
            self.uncovered_neighbors.remove(lost);
            self.awaiting_status.remove(lost);
        }
        // introduce ourselves to the (changed) neighborhood: gained
        // neighbors learn our color, and previously-known neighbors
        // rebuild any stale beliefs about us
        ctx.broadcast(MaintMsg::Hello { dominator: self.dominator });
        // we might have lost our last dominator
        self.start_repair(ctx);
    }

    fn on_message(&mut self, from: ProcId, msg: MaintMsg, ctx: &mut Context<'_, MaintMsg>) {
        match msg {
            MaintMsg::Hello { dominator } => {
                let me = ctx.id();
                if dominator {
                    self.adj_doms.insert(from);
                    self.uncovered_neighbors.remove(&from);
                    self.now_covered(ctx);
                    if self.dominator && me > from {
                        // independence violation: higher id yields
                        self.demote(ctx);
                    }
                } else {
                    self.adj_doms.remove(&from);
                    if self.dominator {
                        // make sure the (possibly new) neighbor knows us
                        ctx.send(from, MaintMsg::Status { dominator: true, uncovered: false });
                    }
                    if !self.is_covered() {
                        self.start_repair(ctx);
                    }
                }
            }
            MaintMsg::Uncovered => {
                self.uncovered_neighbors.insert(from);
            }
            MaintMsg::Covered => {
                self.uncovered_neighbors.remove(&from);
                self.maybe_promote(ctx);
            }
            MaintMsg::Promote => {
                self.adj_doms.insert(from);
                self.uncovered_neighbors.remove(&from);
                let me = ctx.id();
                if self.dominator && me > from {
                    self.demote(ctx);
                } else {
                    self.now_covered(ctx);
                }
            }
            MaintMsg::Demote => {
                self.adj_doms.remove(&from);
                if !self.is_covered() {
                    self.start_repair(ctx);
                }
            }
            MaintMsg::Query => {
                ctx.send(
                    from,
                    MaintMsg::Status {
                        dominator: self.dominator,
                        uncovered: !self.is_covered(),
                    },
                );
            }
            MaintMsg::Status { dominator, uncovered } => {
                if dominator {
                    self.adj_doms.insert(from);
                    self.uncovered_neighbors.remove(&from);
                    self.now_covered(ctx);
                } else if uncovered {
                    self.uncovered_neighbors.insert(from);
                } else {
                    self.uncovered_neighbors.remove(&from);
                }
                self.awaiting_status.remove(&from);
                self.maybe_promote(ctx);
            }
        }
    }

    fn message_kind(msg: &MaintMsg) -> &'static str {
        match msg {
            MaintMsg::Hello { .. } => "HELLO",
            MaintMsg::Uncovered => "UNCOVERED",
            MaintMsg::Covered => "COVERED",
            MaintMsg::Promote => "PROMOTE",
            MaintMsg::Demote => "DEMOTE",
            MaintMsg::Query => "QUERY",
            MaintMsg::Status { .. } => "STATUS",
        }
    }
}

/// The outcome of one distributed repair.
#[derive(Debug, Clone)]
pub struct RepairRun {
    /// Simulator accounting for the repair run.
    pub report: SimReport,
    /// Nodes that sent at least one message (the true "affected set").
    pub active_nodes: Vec<NodeId>,
    /// Maximum hop distance (new topology) from an active node to the
    /// nearest node whose neighborhood changed; `None` when no node
    /// sent anything.
    pub activity_radius: Option<u32>,
}

/// A mobile network whose MIS layer is maintained by the distributed
/// protocol.
///
/// # Examples
///
/// ```
/// use wcds_core::maintenance::distributed::DynamicBackbone;
/// use wcds_geom::{deploy, Point};
///
/// let mut net = DynamicBackbone::new(deploy::uniform(60, 4.0, 4.0, 1), 1.0);
/// let repair = net.apply_motion(&[(0, Point::new(2.0, 2.0))]).expect("quiesces");
/// assert!(net.mis_is_valid());
/// // untouched far-away regions never spoke
/// assert!(repair.active_nodes.len() < 60);
/// ```
#[derive(Debug)]
pub struct DynamicBackbone {
    udg: UnitDiskGraph,
    sim: Simulator<MaintNode>,
}

impl DynamicBackbone {
    /// Builds the initial MIS with the centralized greedy (the paper's
    /// construction phase) and seeds the maintenance protocol.
    pub fn new(points: Vec<Point>, radius: f64) -> Self {
        let udg = UnitDiskGraph::build(points, radius);
        let mis: BTreeSet<NodeId> =
            crate::mis::greedy_mis(udg.graph(), crate::mis::RankingMode::StaticId)
                .into_iter()
                .collect();
        let g = udg.graph();
        let sim = Simulator::new(g, |u| {
            let adj_doms: BTreeSet<ProcId> = g.adj(u).filter(|v| mis.contains(v)).collect();
            MaintNode::new(mis.contains(&u), adj_doms, g.adj(u).collect())
        });
        Self { udg, sim }
    }

    /// The current topology.
    pub fn graph(&self) -> &Graph {
        self.udg.graph()
    }

    /// The current node positions.
    pub fn points(&self) -> &[Point] {
        self.udg.points()
    }

    /// The current MIS (from the live protocol state).
    pub fn mis(&self) -> Vec<NodeId> {
        (0..self.sim.node_count()).filter(|&u| self.sim.node(u).is_dominator()).collect()
    }

    /// Whether the maintained set is a valid independent dominating set
    /// of the current topology.
    pub fn mis_is_valid(&self) -> bool {
        let mis = self.mis();
        domination::is_independent_set(self.udg.graph(), &mis)
            && domination::is_dominating_set(self.udg.graph(), &mis)
    }

    /// Moves the listed nodes and runs the repair protocol to
    /// quiescence (synchronous schedule).
    ///
    /// # Errors
    ///
    /// Propagates the simulator error when the protocol fails to
    /// quiesce within the event budget.
    ///
    /// # Panics
    ///
    /// Panics if a node id is out of range.
    pub fn apply_motion(&mut self, moves: &[(NodeId, Point)]) -> Result<RepairRun, SimError> {
        let mut points = self.udg.points().to_vec();
        for &(u, p) in moves {
            points[u] = p;
        }
        let old_edges: BTreeMap<NodeId, Vec<NodeId>> = self
            .udg
            .graph()
            .nodes()
            .map(|u| (u, self.udg.graph().adj(u).collect()))
            .collect();
        self.udg = UnitDiskGraph::build(points, self.udg.radius());
        self.sim.set_topology(self.udg.graph());
        let report = self.sim.run(Schedule::synchronous())?;

        let active_nodes: Vec<NodeId> = self
            .udg
            .graph()
            .nodes()
            .filter(|&u| report.messages.sent_by(u) > 0)
            .collect();
        let changed: Vec<NodeId> = self
            .udg
            .graph()
            .nodes()
            .filter(|&u| !old_edges[&u].iter().copied().eq(self.udg.graph().adj(u)))
            .collect();
        let activity_radius = if active_nodes.is_empty() || changed.is_empty() {
            None
        } else {
            let dist = wcds_graph::traversal::multi_source_bfs(
                self.udg.graph(),
                changed.iter().copied(),
            );
            active_nodes.iter().map(|&u| dist[u].unwrap_or(u32::MAX)).max()
        };
        Ok(RepairRun { report, active_nodes, activity_radius })
    }

    /// The full WCDS (MIS + deterministic bridges) over the current
    /// topology — the paper's two-layer backbone with the MIS layer
    /// maintained distributedly and the bridge layer re-derived.
    pub fn wcds(&self) -> crate::Wcds {
        let mis = self.mis();
        let bridges = crate::algo2::select_additional_dominators(self.udg.graph(), &mis);
        crate::Wcds::new(mis, bridges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_geom::{deploy, BoundingBox};

    #[test]
    fn initial_state_is_quiet_and_valid() {
        let mut net = DynamicBackbone::new(deploy::uniform(80, 4.5, 4.5, 1), 1.0);
        assert!(net.mis_is_valid());
        // a "motion" that moves nothing must produce zero messages
        let p0 = net.points()[0];
        let repair = net.apply_motion(&[(0, p0)]).expect("quiesces");
        assert_eq!(repair.report.messages.total(), 0);
        assert!(repair.active_nodes.is_empty());
    }

    #[test]
    fn single_walker_repairs_stay_valid_and_local() {
        let mut net = DynamicBackbone::new(deploy::uniform(150, 6.0, 6.0, 2), 1.0);
        assert!(net.mis_is_valid());
        let mut max_radius = 0;
        for step in 0..25 {
            let u = (step * 11) % 150;
            let old = net.points()[u];
            let target = Point::new((old.x + 0.5).min(6.0), (old.y + 0.2).min(6.0));
            let repair = net.apply_motion(&[(u, target)]).expect("quiesces");
            assert!(net.mis_is_valid(), "step {step} broke the MIS");
            if let Some(r) = repair.activity_radius {
                max_radius = max_radius.max(r);
            }
        }
        assert!(
            max_radius <= 3,
            "activity radius {max_radius} exceeds the paper's 3-hop locality"
        );
    }

    #[test]
    fn losing_the_only_dominator_promotes_someone() {
        // chain 0-1-2 (spacing 0.9): MIS {0, 2}; move 2 far away — node
        // 1 stays covered by 0, and 2 (isolated) must self-promote...
        // 2 is already a dominator; instead move dominator 0 away from
        // a 4-chain: MIS {0, 2}; 1 is covered by both 0 and 2; 3 by 2.
        // Move 2 away: 1 still covered by 0; 3 becomes uncovered and
        // must promote itself.
        let mut net = DynamicBackbone::new(deploy::chain(4, 0.9), 1.0);
        assert_eq!(net.mis(), vec![0, 2]);
        let repair = net.apply_motion(&[(2, Point::new(100.0, 100.0))]).expect("quiesces");
        assert!(net.mis_is_valid());
        assert!(net.mis().contains(&3), "node 3 must self-promote; MIS = {:?}", net.mis());
        // node 2, isolated, must also dominate itself
        assert!(net.mis().contains(&2));
        assert!(!repair.active_nodes.is_empty());
    }

    #[test]
    fn colliding_dominators_resolve_by_id() {
        // two far-apart dominators walk into adjacency: higher id demotes
        let pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        let mut net = DynamicBackbone::new(pts, 1.0);
        assert_eq!(net.mis(), vec![0, 1]);
        net.apply_motion(&[(1, Point::new(0.5, 0.0))]).expect("quiesces");
        assert!(net.mis_is_valid());
        assert_eq!(net.mis(), vec![0], "higher id must demote on collision");
    }

    #[test]
    fn global_jitter_trace_stays_valid() {
        let region = BoundingBox::with_size(5.0, 5.0);
        let mut net = DynamicBackbone::new(deploy::uniform(100, 5.0, 5.0, 3), 1.0);
        for step in 0..15 {
            let moved = deploy::perturb(net.points(), region, 0.15, 700 + step);
            let moves: Vec<(NodeId, Point)> = moved.iter().copied().enumerate().collect();
            net.apply_motion(&moves).expect("quiesces");
            assert!(net.mis_is_valid(), "step {step}");
        }
    }

    #[test]
    fn quiet_regions_never_speak() {
        // move one corner node; nodes in the far corner must be silent
        let mut net = DynamicBackbone::new(deploy::uniform(200, 8.0, 8.0, 5), 1.0);
        let corner_node = net
            .points()
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| (a.x + a.y).partial_cmp(&(b.x + b.y)).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let old = net.points()[corner_node];
        let repair = net.apply_motion(&[(corner_node, Point::new(old.x + 0.4, old.y))]).expect("quiesces");
        for &active in &repair.active_nodes {
            let p = net.points()[active];
            assert!(
                p.distance(old) < 6.0,
                "node {active} at {p} spoke about a change at {old}"
            );
        }
    }

    #[test]
    fn full_wcds_with_rederived_bridges_is_valid() {
        let mut net = DynamicBackbone::new(deploy::uniform(120, 5.5, 5.5, 7), 1.0);
        for step in 0..8 {
            let u = (step * 17) % 120;
            let old = net.points()[u];
            net.apply_motion(&[(u, Point::new((old.x + 0.6) % 5.5, old.y))]).expect("quiesces");
            if wcds_graph::traversal::is_connected(net.graph()) {
                assert!(net.wcds().is_valid(net.graph()), "step {step}");
            }
        }
    }
}
