//! Distributed leader election with spanning-tree construction.
//!
//! Algorithm I's first phase "elects a leader v and constructs a
//! spanning tree T rooted at the leader" (the paper adopts Cidon–Mokryn
//! `[9]`; any election with `O(n)` time and `O(n log n)` messages fits).
//! We implement the classic **extinction of echo waves**: every node
//! starts a propagate-information-with-feedback wave carrying its ID;
//! inferior waves are extinguished by superior (smaller-ID) ones; the
//! minimum-ID wave alone completes its echo, at which point its initiator
//! knows it is the leader and announces itself. The surviving wave's
//! propagation edges form the spanning tree.
//!
//! Message complexity is `O(|E|)` per surviving wave prefix; with
//! distinct random IDs the expected total is `O(|E| log n)` =
//! `O(n log n)` on a unit-disk graph with linear edges — the budget the
//! paper assumes. (Worst case, adversarially ordered IDs on a path, is
//! `O(n·|E|)`, the same worst case Cidon–Mokryn avoids; the experiments
//! in `wcds-bench` measure the realised count.)

use std::collections::BTreeSet;
use wcds_graph::spanning::SpanningTree;
use wcds_graph::{Graph, NodeId};
use wcds_sim::{Context, ProcId, Protocol, Schedule, SimReport, Simulator};

/// Messages of the election protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectionMsg {
    /// "Join my wave for candidate `c`."
    Propose { candidate: u64 },
    /// "I will not be your child in wave `c`"; carries the responder's
    /// own current candidate so the receiver learns about better waves
    /// it has not seen yet (without this, a locally-minimal node can
    /// complete its echo and wrongly declare victory before the global
    /// minimum's wave reaches it).
    Nack { candidate: u64, best: u64 },
    /// "My whole subtree has joined wave `c`."
    Done { candidate: u64 },
    /// "The election is over; `leader` won."
    Leader { leader: u64 },
}

/// Per-node election state machine.
#[derive(Debug)]
pub struct ElectionNode {
    id: u64,
    best: u64,
    /// The smallest candidate this node has ever seen in any message.
    /// While `smallest_heard < best`, a superior `Propose` is in flight
    /// (its sender already broadcast it), so the echo is withheld.
    smallest_heard: u64,
    parent: Option<ProcId>,
    children: BTreeSet<ProcId>,
    awaiting: BTreeSet<ProcId>,
    leader: Option<u64>,
    announced: bool,
    echoed: bool,
}

impl ElectionNode {
    /// A node whose protocol-level ID equals its topology index.
    pub fn new(id: ProcId) -> Self {
        Self::with_id(id as u64)
    }

    /// A node with an explicit protocol-level ID.
    pub fn with_id(id: u64) -> Self {
        Self {
            id,
            best: id,
            smallest_heard: id,
            parent: None,
            children: BTreeSet::new(),
            awaiting: BTreeSet::new(),
            leader: None,
            announced: false,
            echoed: false,
        }
    }

    /// The elected leader's ID, once known at this node.
    pub fn leader(&self) -> Option<u64> {
        self.leader
    }

    /// This node's parent in the winner's spanning tree (`None` at the
    /// leader).
    pub fn parent(&self) -> Option<ProcId> {
        self.parent
    }

    /// This node's children in the winner's spanning tree.
    pub fn children(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.children.iter().copied()
    }

    /// Checks whether the current wave's echo is complete and if so
    /// propagates it (or, at the initiator, declares victory).
    ///
    /// The echo is withheld while this node knows of a candidate smaller
    /// than its current wave: the superior wave's `Propose` is
    /// guaranteed to arrive (its sender already broadcast it), and
    /// echoing early would let a doomed wave complete.
    fn try_finish_wave(&mut self, ctx: &mut Context<'_, ElectionMsg>) {
        if !self.awaiting.is_empty() || self.smallest_heard < self.best || self.echoed {
            return;
        }
        match self.parent {
            Some(p) => {
                self.echoed = true;
                ctx.send(p, ElectionMsg::Done { candidate: self.best });
            }
            None if self.best == self.id && !self.announced => {
                // our own wave completed: we are the leader
                self.leader = Some(self.id);
                self.announced = true;
                self.echoed = true;
                ctx.broadcast(ElectionMsg::Leader { leader: self.id });
            }
            None => {}
        }
    }

    /// Adopts wave `candidate` learned from `via` (or our own wave when
    /// `via` is `None`) and re-propagates it.
    fn adopt(&mut self, candidate: u64, via: Option<ProcId>, ctx: &mut Context<'_, ElectionMsg>) {
        self.best = candidate;
        self.smallest_heard = self.smallest_heard.min(candidate);
        self.parent = via;
        self.children.clear();
        self.echoed = false;
        self.awaiting = ctx.neighbors().iter().copied().filter(|&n| Some(n) != via).collect();
        ctx.broadcast(ElectionMsg::Propose { candidate });
        self.try_finish_wave(ctx);
    }
}

impl Protocol for ElectionNode {
    type Message = ElectionMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ElectionMsg>) {
        let id = self.id;
        self.adopt(id, None, ctx);
    }

    fn on_message(&mut self, from: ProcId, msg: ElectionMsg, ctx: &mut Context<'_, ElectionMsg>) {
        match msg {
            ElectionMsg::Propose { candidate } => {
                self.smallest_heard = self.smallest_heard.min(candidate);
                if candidate < self.best {
                    self.adopt(candidate, Some(from), ctx);
                } else {
                    // refuse membership; the sender stops waiting for us
                    // and learns our candidate in case it is smaller
                    ctx.send(from, ElectionMsg::Nack { candidate, best: self.best });
                }
            }
            ElectionMsg::Nack { candidate, best } => {
                self.smallest_heard = self.smallest_heard.min(best);
                if candidate == self.best && self.awaiting.remove(&from) {
                    self.try_finish_wave(ctx);
                }
            }
            ElectionMsg::Done { candidate } => {
                if candidate == self.best && self.awaiting.remove(&from) {
                    self.children.insert(from);
                    self.try_finish_wave(ctx);
                }
            }
            ElectionMsg::Leader { leader } => {
                if self.leader.is_none() {
                    self.leader = Some(leader);
                    ctx.broadcast(ElectionMsg::Leader { leader });
                }
            }
        }
    }

    fn message_kind(msg: &ElectionMsg) -> &'static str {
        match msg {
            ElectionMsg::Propose { .. } => "PROPOSE",
            ElectionMsg::Nack { .. } => "NACK",
            ElectionMsg::Done { .. } => "DONE",
            ElectionMsg::Leader { .. } => "LEADER",
        }
    }
}

/// The outcome of a distributed election.
#[derive(Debug, Clone)]
pub struct ElectionOutcome {
    /// The winning node (topology index; equals the minimum protocol ID
    /// under the default ID assignment).
    pub leader: NodeId,
    /// The spanning tree rooted at the leader, built from the winning
    /// wave's propagation edges.
    pub tree: SpanningTree,
    /// Message/time accounting for the run.
    pub report: SimReport,
}

/// Runs the election protocol on a connected graph.
///
/// # Panics
///
/// Panics if `g` is disconnected (no spanning tree exists), or if the
/// protocol produced an inconsistent tree (a bug, guarded by
/// assertions).
pub fn elect(g: &Graph, schedule: Schedule) -> ElectionOutcome {
    assert!(wcds_graph::traversal::is_connected(g), "election requires a connected graph");
    let mut sim = Simulator::new(g, ElectionNode::new);
    let report = sim.run(schedule).expect("election protocol quiesces");
    let leader_id = sim.node(0).leader().expect("leader known after quiescence");
    // default IDs are topology indices, so the winner's index is its ID
    let leader = leader_id as NodeId;
    for u in g.nodes() {
        assert_eq!(sim.node(u).leader(), Some(leader_id), "node {u} disagrees on the leader");
    }
    let parents: Vec<Option<ProcId>> = g.nodes().map(|u| sim.node(u).parent()).collect();
    let tree = SpanningTree::from_parents(leader, &parents)
        .expect("winning wave edges form a spanning tree");
    assert!(tree.spans(g));
    ElectionOutcome { leader, tree, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_graph::generators;

    #[test]
    fn path_elects_node_zero() {
        let g = generators::path(10);
        let out = elect(&g, Schedule::synchronous());
        assert_eq!(out.leader, 0);
        assert_eq!(out.tree.root(), 0);
        assert_eq!(out.tree.level(9), 9);
    }

    #[test]
    fn election_works_on_random_graphs_sync_and_async() {
        for seed in 0..6 {
            let g = generators::connected_gnp(40, 0.08, seed);
            let sync = elect(&g, Schedule::synchronous());
            assert_eq!(sync.leader, 0);
            let asy = elect(&g, Schedule::asynchronous(seed * 7 + 1));
            assert_eq!(asy.leader, 0);
            assert!(asy.tree.spans(&g));
        }
    }

    #[test]
    fn async_tree_may_differ_but_always_spans() {
        let g = generators::connected_gnp(30, 0.15, 3);
        for seed in 0..5 {
            let out = elect(&g, Schedule::asynchronous(seed));
            assert!(out.tree.spans(&g));
            assert_eq!(out.tree.root(), 0);
        }
    }

    #[test]
    fn singleton_graph_elects_itself() {
        let g = Graph::empty(1);
        let out = elect(&g, Schedule::synchronous());
        assert_eq!(out.leader, 0);
        assert_eq!(out.tree.height(), 0);
    }

    #[test]
    fn complete_graph_tree_is_a_star() {
        let g = generators::complete(8);
        let out = elect(&g, Schedule::synchronous());
        assert_eq!(out.leader, 0);
        assert_eq!(out.tree.height(), 1);
        assert_eq!(out.tree.children(0).len(), 7);
    }

    #[test]
    fn message_kinds_are_reported() {
        let g = generators::path(6);
        let out = elect(&g, Schedule::synchronous());
        assert!(out.report.messages.of_kind("PROPOSE") > 0);
        assert!(out.report.messages.of_kind("LEADER") > 0);
        assert!(out.report.messages.of_kind("DONE") > 0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_panics() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let _ = elect(&g, Schedule::synchronous());
    }

    #[test]
    fn custom_ids_change_the_winner() {
        let g = generators::path(5);
        // give node 3 the smallest protocol ID
        let ids = [50u64, 40, 30, 10, 20];
        let mut sim = Simulator::new(&g, |u| ElectionNode::with_id(ids[u]));
        sim.run(Schedule::synchronous()).unwrap();
        for u in g.nodes() {
            assert_eq!(sim.node(u).leader(), Some(10));
        }
        assert_eq!(sim.node(3).parent(), None);
    }
}
