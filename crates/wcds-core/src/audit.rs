//! One-stop backbone quality audit.
//!
//! Combines every analysis in the crate — validity, sparseness
//! accounting (Theorems 8/10), dilation (Theorem 11), and fragility —
//! into a single report with a human-readable rendering, so examples,
//! the CLI, and downstream users get the full picture in one call.

use crate::dilation::DilationReport;
use crate::spanner::SpannerStats;
use crate::Wcds;
use wcds_geom::Point;
use wcds_graph::{connectivity, Graph};

/// A complete quality audit of a WCDS backbone over a deployment.
#[derive(Debug, Clone)]
pub struct BackboneAudit {
    /// Whether the set is a valid WCDS of the graph.
    pub valid: bool,
    /// Dominator count `|U|`.
    pub size: usize,
    /// Sparseness accounting of the weakly induced spanner.
    pub spanner: SpannerStats,
    /// Dilation of the spanner against the full graph.
    pub dilation: DilationReport,
    /// Articulation points of the spanner (single-node failure risks).
    pub spanner_cut_vertices: usize,
    /// How many of those cut vertices are dominators.
    pub cut_vertices_in_backbone: usize,
}

impl BackboneAudit {
    /// Runs the full audit. Costs `O(n·(n+|E|))` (dominated by the
    /// all-pairs dilation measurement).
    ///
    /// # Panics
    ///
    /// Panics if `points` does not match the graph's node count, or if
    /// the spanner disconnects a pair `g` connects (i.e. the WCDS is
    /// not valid — check [`BackboneAudit::valid`]-style preconditions
    /// with [`Wcds::is_valid`] first when unsure).
    pub fn measure(g: &Graph, points: &[Point], wcds: &Wcds) -> Self {
        let spanner_graph = wcds.weakly_induced_subgraph(g);
        let spanner = SpannerStats::compute(g, wcds);
        let dilation = DilationReport::measure(g, &spanner_graph, points);
        let cuts = connectivity::articulation_points(&spanner_graph);
        let in_backbone = cuts.iter().filter(|&&u| wcds.contains(u)).count();
        Self {
            valid: wcds.is_valid(g),
            size: wcds.len(),
            spanner,
            dilation,
            spanner_cut_vertices: cuts.len(),
            cut_vertices_in_backbone: in_backbone,
        }
    }

    /// Whether every proven bound (validity, Theorem 10 sparseness,
    /// Theorem 11 dilations) holds.
    ///
    /// Only meaningful for Algorithm II backbones on unit-disk graphs —
    /// other constructions never promised these bounds.
    pub fn all_bounds_hold(&self) -> bool {
        self.valid
            && self.spanner.satisfies_theorem10_bound()
            && self.dilation.satisfies_topological_bound()
            && self.dilation.satisfies_geometric_bound()
    }
}

impl std::fmt::Display for BackboneAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "backbone audit")?;
        writeln!(f, "  valid WCDS        : {}", self.valid)?;
        writeln!(f, "  dominators        : {}", self.size)?;
        writeln!(f, "  {}", self.spanner)?;
        writeln!(
            f,
            "  hop dilation      : {:.3} (3h+2 bound holds: {})",
            self.dilation.topological_ratio(),
            self.dilation.satisfies_topological_bound()
        )?;
        writeln!(
            f,
            "  length dilation   : {:.3} (6ℓ+5 bound holds: {})",
            self.dilation.geometric_ratio(),
            self.dilation.satisfies_geometric_bound()
        )?;
        write!(
            f,
            "  fragility         : {} spanner cut vertices ({} in backbone)",
            self.spanner_cut_vertices, self.cut_vertices_in_backbone
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo2::AlgorithmTwo;
    use crate::WcdsConstruction;
    use wcds_geom::deploy;
    use wcds_graph::{traversal, UnitDiskGraph};

    fn audited() -> (UnitDiskGraph, BackboneAudit) {
        let mut seed = 0;
        let udg = loop {
            let udg = UnitDiskGraph::build(deploy::uniform(120, 6.0, 6.0, seed), 1.0);
            if traversal::is_connected(udg.graph()) {
                break udg;
            }
            seed += 1;
        };
        let wcds = AlgorithmTwo::new().construct(udg.graph()).wcds;
        let audit = BackboneAudit::measure(udg.graph(), udg.points(), &wcds);
        (udg, audit)
    }

    #[test]
    fn algorithm2_audit_passes_all_bounds() {
        let (_, audit) = audited();
        assert!(audit.valid);
        assert!(audit.all_bounds_hold(), "{audit}");
        assert!(audit.size > 0);
    }

    #[test]
    fn display_covers_every_section() {
        let (_, audit) = audited();
        let s = format!("{audit}");
        for needle in ["valid WCDS", "dominators", "spanner:", "hop dilation", "fragility"] {
            assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
        }
    }

    #[test]
    fn cut_vertices_are_counted_consistently() {
        let (_, audit) = audited();
        assert!(audit.cut_vertices_in_backbone <= audit.spanner_cut_vertices);
    }
}
