//! Checkable forms of the paper's structural lemmas (§2).
//!
//! Each function turns a proof obligation into a measurement, so the
//! test suite and the experiment harness can *observe* the bounds
//! instead of trusting them:
//!
//! * Lemma 1 — on a UDG, a node outside an MIS has ≤ 5 MIS neighbors;
//! * Lemma 2 — an MIS node has ≤ 23 MIS nodes exactly two hops away and
//!   ≤ 47 within three hops (annulus packing; the provided paper text
//!   garbles the numerals — the bounds re-derived from its own area
//!   argument are `π·2.5²−π·0.5²)/(π·0.5²) = 24` exclusive and
//!   `(π·3.5²−π·0.5²)/(π·0.5²) = 48` exclusive);
//! * Lemma 3 — complementary subsets of any MIS are 2 or 3 hops apart;
//! * Theorem 4 — with level-based ranking, exactly 2.

use wcds_graph::{traversal, Graph, NodeId};

/// Lemma 1 measurement: the maximum number of MIS members adjacent to
/// any single non-member. On a unit-disk graph this is at most 5.
///
/// Returns 0 when every node is in `mis` or the graph is empty.
pub fn max_mis_neighbors(g: &Graph, mis: &[NodeId]) -> usize {
    let in_mis = g.membership(mis);
    g.nodes()
        .filter(|&u| !in_mis[u])
        .map(|u| g.adj(u).filter(|&v| in_mis[v]).count())
        .max()
        .unwrap_or(0)
}

/// Lemma 2 measurement for one MIS node `u`: the number of MIS members
/// at hop distance exactly `k` from `u`.
pub fn mis_nodes_at_exact_distance(g: &Graph, mis: &[NodeId], u: NodeId, k: u32) -> usize {
    let dist = traversal::bfs_distances(g, u);
    mis.iter().filter(|&&v| v != u && dist[v] == Some(k)).count()
}

/// Lemma 2 measurement for one MIS node `u`: the number of MIS members
/// within hop distance `k` (excluding `u`).
pub fn mis_nodes_within_distance(g: &Graph, mis: &[NodeId], u: NodeId, k: u32) -> usize {
    let dist = traversal::bfs_distances(g, u);
    mis.iter().filter(|&&v| v != u && matches!(dist[v], Some(d) if d <= k)).count()
}

/// Lemma 2 summary over every MIS node: `(max #exactly-2-hops,
/// max #within-3-hops)`. On a UDG the paper bounds these by 23 and 47.
pub fn lemma2_maxima(g: &Graph, mis: &[NodeId]) -> (usize, usize) {
    let mut max2 = 0;
    let mut max3 = 0;
    for &u in mis {
        let dist = traversal::bfs_distances(g, u);
        let mut at2 = 0;
        let mut within3 = 0;
        for &v in mis {
            if v == u {
                continue;
            }
            match dist[v] {
                Some(2) => {
                    at2 += 1;
                    within3 += 1;
                }
                Some(3) => within3 += 1,
                _ => {}
            }
        }
        max2 = max2.max(at2);
        max3 = max3.max(within3);
    }
    (max2, max3)
}

/// The exact worst-case distance between complementary subsets of `s`:
/// `max over bipartitions (A, S∖A) of min_{a∈A, b∈S∖A} hop(a, b)`.
///
/// Computed as the bottleneck (maximum edge) of a minimum spanning tree
/// over the complete graph on `s` weighted by pairwise hop distance —
/// the classic minimax-path identity — so it is exact without
/// enumerating `2^|s|` bipartitions.
///
/// Returns `None` if `|s| < 2` or some pair of `s` is disconnected in
/// `g`.
///
/// * Lemma 3: for any MIS of a connected graph this is 2 or 3.
/// * Theorem 4: for a level-ranked MIS it is exactly 2.
pub fn max_complementary_subset_distance(g: &Graph, s: &[NodeId]) -> Option<u32> {
    if s.len() < 2 {
        return None;
    }
    // Prim's algorithm on the implicit complete graph over `s`.
    let dist_from: Vec<Vec<Option<u32>>> =
        s.iter().map(|&u| traversal::bfs_distances(g, u)).collect();
    let k = s.len();
    let mut in_tree = vec![false; k];
    let mut best = vec![u32::MAX; k];
    in_tree[0] = true;
    for j in 1..k {
        best[j] = dist_from[0][s[j]]?;
    }
    let mut bottleneck = 0;
    for _ in 1..k {
        let (next, &w) = best
            .iter()
            .enumerate()
            .filter(|&(j, _)| !in_tree[j])
            .min_by_key(|&(_, &w)| w)
            .expect("non-tree node remains");
        if w == u32::MAX {
            return None; // disconnected pair
        }
        bottleneck = bottleneck.max(w);
        in_tree[next] = true;
        for j in 0..k {
            if !in_tree[j] {
                let d = dist_from[next][s[j]]?;
                best[j] = best[j].min(d);
            }
        }
    }
    Some(bottleneck)
}

/// Brute-force reference for [`max_complementary_subset_distance`]:
/// enumerates every bipartition. Exponential — test use only.
///
/// # Panics
///
/// Panics if `|s| > 20`.
pub fn max_complementary_subset_distance_exhaustive(g: &Graph, s: &[NodeId]) -> Option<u32> {
    assert!(s.len() <= 20, "exhaustive check limited to 20 nodes");
    if s.len() < 2 {
        return None;
    }
    let mut worst = 0;
    for mask in 1..(1u32 << (s.len() - 1)) {
        // fix s[last] on the B side to halve the enumeration
        let a: Vec<NodeId> =
            (0..s.len() - 1).filter(|&i| mask >> i & 1 == 1).map(|i| s[i]).collect();
        if a.is_empty() {
            continue;
        }
        let b: Vec<NodeId> = s.iter().copied().filter(|u| !a.contains(u)).collect();
        worst = worst.max(traversal::set_distance(g, &a, &b)?);
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::{greedy_mis, RankingMode};
    use wcds_geom::deploy;
    use wcds_graph::{generators, UnitDiskGraph};

    #[test]
    fn lemma1_holds_on_random_udgs() {
        for seed in 0..10 {
            let udg = UnitDiskGraph::build(deploy::uniform(200, 5.0, 5.0, seed), 1.0);
            let mis = greedy_mis(udg.graph(), RankingMode::StaticId);
            let m = max_mis_neighbors(udg.graph(), &mis);
            assert!(m <= 5, "seed {seed}: node with {m} MIS neighbors violates Lemma 1");
        }
    }

    #[test]
    fn lemma1_bound_is_tight_on_the_five_petal_configuration() {
        // the adversarial geometry achieves exactly 5 MIS neighbors
        let udg = UnitDiskGraph::build(deploy::five_petal(), 1.0);
        let mis = greedy_mis(udg.graph(), RankingMode::StaticId);
        assert_eq!(mis, vec![0, 1, 2, 3, 4], "all petals join the MIS");
        assert_eq!(max_mis_neighbors(udg.graph(), &mis), 5, "the center sees all five");
    }

    #[test]
    fn lemma1_can_be_violated_off_udg() {
        // a star is not (necessarily) a UDG: the center has 6 MIS
        // neighbors, showing the bound is UDG-specific
        let g = generators::star(6);
        let leaves: Vec<NodeId> = (1..=6).collect();
        assert_eq!(max_mis_neighbors(&g, &leaves), 6);
    }

    #[test]
    fn lemma2_bounds_hold_on_dense_udgs() {
        for seed in 0..6 {
            let udg = UnitDiskGraph::build(deploy::uniform(400, 5.0, 5.0, seed), 1.0);
            let mis = greedy_mis(udg.graph(), RankingMode::StaticId);
            let (max2, max3) = lemma2_maxima(udg.graph(), &mis);
            assert!(max2 <= 23, "seed {seed}: {max2} MIS nodes at exactly 2 hops");
            assert!(max3 <= 47, "seed {seed}: {max3} MIS nodes within 3 hops");
        }
    }

    #[test]
    fn exact_distance_helpers_agree() {
        let udg = UnitDiskGraph::build(deploy::uniform(150, 5.0, 5.0, 3), 1.0);
        let mis = greedy_mis(udg.graph(), RankingMode::StaticId);
        let u = mis[0];
        let at2 = mis_nodes_at_exact_distance(udg.graph(), &mis, u, 2);
        let at3 = mis_nodes_at_exact_distance(udg.graph(), &mis, u, 3);
        let within3 = mis_nodes_within_distance(udg.graph(), &mis, u, 3);
        // MIS nodes are never at distance 0 or 1 from u
        assert_eq!(at2 + at3, within3);
    }

    #[test]
    fn lemma3_arbitrary_mis_subset_distance_is_2_or_3() {
        for seed in 0..8 {
            let g = generators::connected_gnp(40, 0.08, seed);
            let mis = greedy_mis(&g, RankingMode::StaticId);
            if mis.len() < 2 {
                continue;
            }
            let d = max_complementary_subset_distance(&g, &mis).unwrap();
            assert!((2..=3).contains(&d), "seed {seed}: distance {d}");
        }
    }

    #[test]
    fn minimax_matches_exhaustive_enumeration() {
        for seed in 0..6 {
            let g = generators::connected_gnp(26, 0.1, seed);
            let mis = greedy_mis(&g, RankingMode::StaticId);
            if !(2..=14).contains(&mis.len()) {
                continue;
            }
            assert_eq!(
                max_complementary_subset_distance(&g, &mis),
                max_complementary_subset_distance_exhaustive(&g, &mis),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn subset_distance_none_for_small_or_split_sets() {
        let g = generators::path(4);
        assert_eq!(max_complementary_subset_distance(&g, &[0]), None);
        let split = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(max_complementary_subset_distance(&split, &[0, 2]), None);
    }

    #[test]
    fn subset_distance_on_known_topology() {
        // path 0-1-2-3-4-5-6 with MIS {0, 3, 6}: all gaps are 3 hops
        let g = generators::path(7);
        assert_eq!(max_complementary_subset_distance(&g, &[0, 3, 6]), Some(3));
        // MIS {0, 2, 4, 6}: all gaps are 2 hops
        assert_eq!(max_complementary_subset_distance(&g, &[0, 2, 4, 6]), Some(2));
    }

    use wcds_graph::Graph;
}
