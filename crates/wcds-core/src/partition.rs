//! Grid-partitioned parallel Algorithm II for city-scale inputs.
//!
//! From-scratch construction at n = 100k–1M cannot afford either the
//! quadratic bridge search or a single-threaded sweep. Both phases of
//! Algorithm II are decided by local neighborhoods (the locality ≤ 3
//! the maintenance engine asserts), so the plane is cut into grid
//! **super-cells** and each phase runs per cell on the dependency-free
//! thread engine in [`wcds_graph::parallel`]:
//!
//! * **MIS phase** — the lex-first greedy MIS is the unique fixpoint of
//!   "`u` is black iff no neighbor `v < u` is black" (the
//!   [`crate::maintenance::region`] module documents the proof), so any
//!   evaluation order converges to the same set. Cells decide their
//!   owned nodes in ascending-id order each round, reading only (a) the
//!   globally-published state from the end of the previous round and
//!   (b) their own decisions from the current round. A serial stitch
//!   between rounds publishes every cell's decisions. The minimum
//!   undecided node always has fully-decided lower neighbors, so every
//!   round makes progress and the loop terminates with exactly the
//!   sequential greedy MIS.
//! * **Bridge phase** — Algorithm II's 3-hop rule decomposes over MIS
//!   anchors (each pair `(u, w)` is charged to its smaller endpoint),
//!   so anchors are swept in parallel with a per-worker [`BallScratch`]
//!   and the per-anchor contributions are unioned serially in anchor
//!   order.
//!
//! Both phases are **thread-count invariant by construction**: the cell
//! layout depends only on the point set (never on the worker count),
//! workers own disjoint output slots, and every reduction is serial in
//! a fixed order. On top of that, at n ≤ [`ORACLE_MAX_NODES`] the result
//! is asserted — in release builds too — byte-identical to the
//! sequential [`AlgorithmTwo`].

use crate::algo2::AlgorithmTwo;
use crate::maintenance::region::{contributions_for_pred, BallScratch};
use crate::{ConstructionResult, Wcds};
use std::collections::BTreeSet;
use wcds_geom::Point;
use wcds_graph::{parallel, Graph, NodeId, UnitDiskGraph};

/// Largest input on which the partitioned construction cross-checks
/// itself against the sequential [`AlgorithmTwo`] (always, including
/// release builds). Beyond this the check would dominate the run it is
/// guarding.
pub const ORACLE_MAX_NODES: usize = 5000;

/// Target owned-node count per grid super-cell. Small enough that a
/// round's per-cell work parallelizes well past 8 workers at n = 100k,
/// large enough that cross-cell ascending chains (which cost one round
/// per cell hop) stay shallow.
const TARGET_NODES_PER_CELL: usize = 1024;

/// Node decision states of the MIS round protocol.
const UNDECIDED: u8 = 0;
const BLACK: u8 = 1;
const GRAY: u8 = 2;

/// Grid-partitioned parallel Algorithm II over a positioned topology.
///
/// Produces bit-for-bit the [`AlgorithmTwo`] output (same MIS, same
/// additional dominators, same spanner) for any thread count.
///
/// # Examples
///
/// ```
/// use wcds_core::partition::PartitionedTwo;
/// use wcds_geom::deploy;
/// use wcds_graph::UnitDiskGraph;
///
/// let udg = UnitDiskGraph::build(deploy::uniform(400, 10.0, 10.0, 7), 1.0);
/// let result = PartitionedTwo::new().construct(&udg);
/// assert!(result.wcds.is_valid(udg.graph()));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PartitionedTwo {
    nthreads: Option<usize>,
}

impl PartitionedTwo {
    /// Partitioned construction using [`parallel::threads`] workers.
    pub fn new() -> Self {
        Self { nthreads: None }
    }

    /// Partitioned construction pinned to `nthreads` workers (`0` is
    /// clamped to 1). Output does not depend on the choice.
    pub fn with_threads(nthreads: usize) -> Self {
        Self { nthreads: Some(nthreads.max(1)) }
    }

    fn threads(&self) -> usize {
        self.nthreads.unwrap_or_else(parallel::threads)
    }

    /// Returns `(mis, additional)` like [`AlgorithmTwo::construct_parts`].
    pub fn construct_parts(&self, udg: &UnitDiskGraph) -> (Vec<NodeId>, Vec<NodeId>) {
        let g = udg.graph();
        let nthreads = self.threads();
        let mis = mis_over_points(g, udg.points(), nthreads);
        let additional = partitioned_bridges(g, &mis, nthreads);
        if g.node_count() <= ORACLE_MAX_NODES {
            let (oracle_mis, oracle_add) = AlgorithmTwo::new().construct_parts(g);
            assert_eq!(mis, oracle_mis, "partitioned MIS diverged from the sequential oracle");
            assert_eq!(
                additional, oracle_add,
                "partitioned bridge selection diverged from the sequential oracle"
            );
        }
        (mis, additional)
    }

    /// Full construction: WCDS plus the weakly induced spanner.
    pub fn construct(&self, udg: &UnitDiskGraph) -> ConstructionResult {
        let (mis, additional) = self.construct_parts(udg);
        let wcds = Wcds::new(mis, additional);
        let spanner = wcds.weakly_induced_subgraph(udg.graph());
        ConstructionResult { wcds, spanner }
    }

    /// Display name, parallel to [`crate::WcdsConstruction::name`].
    pub fn name(&self) -> &'static str {
        "algorithm-2-partitioned"
    }
}

/// The partitioned lex-first MIS over a positioned topology: the cell
/// layout from the point set, then the round protocol. Equals
/// `greedy_mis(g, RankingMode::StaticId)` for any thread count; shared
/// with [`crate::maintenance::MaintainedWcds`]'s initial construction.
pub(crate) fn mis_over_points(g: &Graph, points: &[Point], nthreads: usize) -> Vec<NodeId> {
    let cells = grid_cells(points);
    partitioned_mis(g, &cells, nthreads)
}

/// Per-anchor bridge contributions, in ascending anchor order: the
/// parallel form of
/// [`crate::maintenance::region::select_additional_dominators_in`]
/// restricted to MIS anchors. Each anchor's set is computed on a worker
/// with its own [`BallScratch`]; the rule is per-pair deterministic, so
/// the list is thread-count invariant.
pub(crate) fn bridge_contributions(
    g: &Graph,
    mis: &[NodeId],
    nthreads: usize,
) -> Vec<(NodeId, BTreeSet<NodeId>)> {
    let in_mis = g.membership(mis);
    let in_mis_ref = &in_mis;
    parallel::map_indices(
        nthreads,
        mis.len(),
        || BallScratch::new(g.node_count()),
        |scratch, i| {
            // analyze: allow(slice-index, "i < mis.len() from map_indices; w < n, membership is n long")
            (mis[i], contributions_for_pred(scratch, g, |w| in_mis_ref[w], mis[i]))
        },
    )
}

/// Assigns every node to a grid super-cell and returns the owned-node
/// lists, each ascending. The layout is a pure function of the point
/// set: the bounding box is split into `gx × gy` equal cells sized for
/// [`TARGET_NODES_PER_CELL`] nodes each. Degenerate extents (all points
/// collinear or coincident) collapse to a single row or column.
fn grid_cells(points: &[Point]) -> Vec<Vec<NodeId>> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let (mut min_x, mut min_y, mut max_x, mut max_y) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
    for p in points {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let want = n.div_ceil(TARGET_NODES_PER_CELL);
    let side = (want as f64).sqrt().ceil() as usize;
    let span_x = max_x - min_x;
    let span_y = max_y - min_y;
    let gx = if span_x > 0.0 { side.max(1) } else { 1 };
    let gy = if span_y > 0.0 { side.max(1) } else { 1 };
    let mut cells = vec![Vec::new(); gx * gy];
    for (u, p) in points.iter().enumerate() {
        let ix = if span_x > 0.0 {
            (((p.x - min_x) / span_x * gx as f64) as usize).min(gx - 1)
        } else {
            0
        };
        let iy = if span_y > 0.0 {
            (((p.y - min_y) / span_y * gy as f64) as usize).min(gy - 1)
        } else {
            0
        };
        // analyze: allow(slice-index, "ix < gx and iy < gy by the min() clamps, so iy*gx+ix < gy*gx = cells.len()")
        cells[iy * gx + ix].push(u);
    }
    cells.retain(|c| !c.is_empty());
    cells
}

/// One cell's output for one round: the decisions to publish
/// (`(node, BLACK | GRAY)`) and the still-undecided remainder of its
/// worklist.
type CellRound = (Vec<(NodeId, u8)>, Vec<NodeId>);

/// The round protocol from the module docs: per-cell ascending scans
/// against the previous round's published state, serially stitched,
/// until every node is decided. Returns the lex-first greedy MIS.
fn partitioned_mis(g: &Graph, cells: &[Vec<NodeId>], nthreads: usize) -> Vec<NodeId> {
    let n = g.node_count();
    let mut state = vec![UNDECIDED; n];
    // worklists: the still-undecided owned nodes of each active cell
    let mut pending: Vec<Vec<NodeId>> = cells.to_vec();
    while !pending.is_empty() {
        let state_ref = &state;
        let pending_ref = &pending;
        // each slot i is owned by exactly one worker; decisions this
        // round read only state_ref (previous rounds) and the cell's
        // own overlay, so the outcome is independent of the thread count
        let rounds: Vec<CellRound> =
            parallel::map_indices(nthreads, pending.len(), Vec::new, |overlay, i| {
                // analyze: allow(slice-index, "i < pending.len() from map_indices")
                scan_cell(g, state_ref, &pending_ref[i], overlay)
            });
        // serial stitch: publish decisions (disjoint by ownership),
        // keep the shrunken worklists
        let mut progressed = false;
        let mut next_pending = Vec::with_capacity(rounds.len());
        for (updates, remaining) in rounds {
            progressed |= !updates.is_empty();
            for (u, decision) in updates {
                // analyze: allow(slice-index, "u is an owned node id < n = state.len()")
                state[u] = decision;
            }
            if !remaining.is_empty() {
                next_pending.push(remaining);
            }
        }
        assert!(
            progressed || next_pending.is_empty(),
            "MIS round stalled: the minimum undecided node is always decidable"
        );
        pending = next_pending;
    }
    // analyze: allow(slice-index, "u ranges over g.nodes(), state is n long")
    g.nodes().filter(|&u| state[u] == BLACK).collect()
}

/// One cell's round: decide what the previous round's knowledge allows,
/// in ascending-id order. `overlay` carries this cell's same-round
/// decisions (reused across rounds as worker scratch; `(node, state)`
/// pairs ascending, so lookups binary-search it).
fn scan_cell(
    g: &Graph,
    state: &[u8],
    pending: &[NodeId],
    overlay: &mut Vec<(NodeId, u8)>,
) -> (Vec<(NodeId, u8)>, Vec<NodeId>) {
    overlay.clear();
    let mut updates = Vec::new();
    let mut remaining = Vec::new();
    for &u in pending {
        let mut any_black = false;
        let mut any_undecided = false;
        // sorted adjacency: lower neighbors are the row prefix
        for v in g.adj(u) {
            if v >= u {
                break;
            }
            let s = match overlay.binary_search_by_key(&v, |&(w, _)| w) {
                // analyze: allow(slice-index, "slot is a binary_search hit")
                Ok(slot) => overlay[slot].1,
                // analyze: allow(slice-index, "v < u < n = state.len()")
                Err(_) => state[v],
            };
            match s {
                BLACK => {
                    any_black = true;
                    break; // verdict fixed: u cannot be black
                }
                UNDECIDED => any_undecided = true,
                _ => {}
            }
        }
        let decision = if any_black {
            GRAY
        } else if any_undecided {
            UNDECIDED
        } else {
            BLACK
        };
        if decision == UNDECIDED {
            remaining.push(u);
        } else {
            overlay.push((u, decision)); // pending ascending ⇒ overlay ascending
            updates.push((u, decision));
        }
    }
    (updates, remaining)
}

/// Parallel per-anchor bridge selection: each anchor's contribution
/// (its 3-hop pairs' chosen intermediates) is computed with a
/// per-worker [`BallScratch`]; the serial in-order union equals the
/// sequential selection because the rule is per-pair deterministic.
fn partitioned_bridges(g: &Graph, mis: &[NodeId], nthreads: usize) -> Vec<NodeId> {
    let mut additional = BTreeSet::new();
    for (_, contribution) in bridge_contributions(g, mis, nthreads) {
        additional.extend(contribution);
    }
    additional.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_geom::deploy;

    // the oracle assert inside construct_parts IS the correctness
    // check; these tests exercise it across layouts and thread counts
    // (the dedicated cross-seed sweep lives in
    // tests/partition_equivalence.rs at the workspace root)

    #[test]
    fn matches_sequential_for_every_thread_count() {
        let udg = UnitDiskGraph::build(deploy::uniform(600, 12.0, 12.0, 3), 1.0);
        let seq = AlgorithmTwo::new().construct_parts(udg.graph());
        for nthreads in [1, 2, 3, 8] {
            let got = PartitionedTwo::with_threads(nthreads).construct_parts(&udg);
            assert_eq!(got, seq, "nthreads {nthreads}");
        }
    }

    #[test]
    fn many_cells_still_agree() {
        // force a multi-cell layout despite a small n by clustering
        // points into far-apart islands joined by a sparse chain
        let mut pts = deploy::uniform(1500, 40.0, 40.0, 11);
        // chain across the field so the graph is still one component
        for i in 0..80 {
            pts.push(wcds_geom::Point::new(i as f64 * 0.5, 20.0));
        }
        let udg = UnitDiskGraph::build(pts, 1.0);
        let got = PartitionedTwo::new().construct_parts(&udg);
        let seq = AlgorithmTwo::new().construct_parts(udg.graph());
        assert_eq!(got, seq);
    }

    #[test]
    fn degenerate_layouts() {
        // empty
        let empty = UnitDiskGraph::build(Vec::new(), 1.0);
        assert_eq!(PartitionedTwo::new().construct_parts(&empty), (vec![], vec![]));
        // all points coincident (zero-extent bounding box)
        let pts = vec![wcds_geom::Point::new(2.0, 2.0); 40];
        let udg = UnitDiskGraph::build(pts, 1.0);
        let (mis, additional) = PartitionedTwo::new().construct_parts(&udg);
        assert_eq!(mis, vec![0], "a clique keeps only its smallest id");
        assert!(additional.is_empty());
        // collinear points (zero height)
        let pts: Vec<_> = (0..50).map(|i| wcds_geom::Point::new(i as f64 * 0.9, 1.0)).collect();
        let udg = UnitDiskGraph::build(pts, 1.0);
        let got = PartitionedTwo::new().construct_parts(&udg);
        assert_eq!(got, AlgorithmTwo::new().construct_parts(udg.graph()));
    }

    #[test]
    fn grid_layout_ignores_thread_count() {
        let udg = UnitDiskGraph::build(deploy::uniform(3000, 17.0, 17.0, 5), 1.0);
        let cells = grid_cells(udg.points());
        let total: usize = cells.iter().map(Vec::len).sum();
        assert_eq!(total, 3000, "every node owned by exactly one cell");
        for cell in &cells {
            assert!(cell.windows(2).all(|w| w[0] < w[1]), "owned lists ascend");
        }
    }
}
