//! Adversarial-contention property tests for the region-lease batch
//! path (DESIGN.md §4.4).
//!
//! Two extreme workloads bound the scheduler's behavior:
//!
//! * **one 3-ball** — every move lands in the same cell neighborhood,
//!   so every claim conflicts with every earlier claim: `plan_batch`
//!   must fully serialize (one claim per wave, peak concurrency 1);
//! * **maximally spread** — moves in clusters farther apart than two
//!   claim blocks, so no claims conflict: one wave, peak concurrency
//!   equal to the batch size.
//!
//! Both apply the batch exactly the way `Store::mutate_batch` does —
//! one coalesced `apply_motion` per planned wave — and assert the
//! final state is **byte-identical** to serial replay in batch order
//! at every engine thread count (1/2/4/8), plus the from-scratch
//! Algorithm II oracle. Runs under serial and `--features rayon`
//! builds unchanged.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use wcds_core::algo2::AlgorithmTwo;
use wcds_core::maintenance::lease::{claim_cells, plan_batch, BatchPlan, Scope};
use wcds_core::maintenance::MaintainedWcds;
use wcds_geom::{deploy, Point};
use wcds_graph::{io, NodeId, UnitDiskGraph};
use wcds_rng::{ChaCha12Rng, Rng};

const SEED: u64 = 42;
const RADIUS: f64 = 1.0;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Claims for a move batch exactly as the store computes them: the
/// ±`CLAIM_RADIUS_CELLS` blocks around both ends of each hop, at the
/// pre-batch positions.
fn claims_for(net: &MaintainedWcds, moves: &[(NodeId, Point)]) -> Vec<Scope> {
    moves
        .iter()
        .map(|&(u, q)| Scope::Cells(claim_cells(&[net.points()[u], q], net.radius())))
        .collect()
}

/// Applies `moves` the way `Store::mutate_batch` schedules a Move run:
/// one coalesced `apply_motion` per planned wave, waves in FIFO order.
fn apply_in_waves(net: &mut MaintainedWcds, moves: &[(NodeId, Point)], plan: &BatchPlan) {
    for wave in &plan.waves {
        let batch: Vec<(NodeId, Point)> = wave.iter().map(|&i| moves[i]).collect();
        net.apply_motion(&batch);
    }
}

/// The serial-replay oracle plus the from-scratch oracle: `net` must
/// be byte-identical to one-at-a-time application in batch order on a
/// fresh engine, and to Algorithm II on the final points.
fn assert_matches_serial(
    net: &MaintainedWcds,
    initial: &[Point],
    moves: &[(NodeId, Point)],
    label: &str,
) {
    let mut serial = MaintainedWcds::new(initial.to_vec(), RADIUS);
    for &(u, q) in moves {
        serial.apply_motion(&[(u, q)]);
    }
    assert_eq!(net.graph(), serial.graph(), "{label}: CSR diverged from serial replay");
    let (w, sw) = (net.wcds(), serial.wcds());
    assert_eq!(w.mis_dominators(), sw.mis_dominators(), "{label}: MIS diverged");
    assert_eq!(
        w.additional_dominators(),
        sw.additional_dominators(),
        "{label}: bridges diverged"
    );
    assert_eq!(
        io::to_text(net.graph(), Some(net.points())),
        io::to_text(serial.graph(), Some(serial.points())),
        "{label}: exported artifact not byte-identical to serial replay"
    );

    let scratch = UnitDiskGraph::build(net.points().to_vec(), RADIUS);
    assert_eq!(net.graph(), scratch.graph(), "{label}: CSR diverged from scratch build");
    let (mis, additional) = AlgorithmTwo::new().construct_parts(net.graph());
    assert_eq!(w.mis_dominators(), &mis[..], "{label}: MIS diverged from Algorithm II");
    assert_eq!(
        w.additional_dominators(),
        &additional[..],
        "{label}: bridges diverged from Algorithm II"
    );
}

/// Every move targets one 3-ball: total serialization, exact state.
#[test]
fn one_ball_batch_fully_serializes_and_matches_serial_replay() {
    const N: usize = 150;
    const SIDE: f64 = 6.0;
    const MOVES: usize = 12;

    let initial = deploy::uniform(N, SIDE, SIDE, SEED);
    let mut rng = ChaCha12Rng::seed_from_u64(SEED ^ 0xba11);
    let hot = Point::new(SIDE / 2.0, SIDE / 2.0);
    let moves: Vec<(NodeId, Point)> = (0..MOVES)
        .map(|_| {
            let u = rng.gen_range(0..N);
            // all destinations inside half a radius of the hot spot —
            // one shared 3-ball, every pair of claims conflicts
            let q = Point::new(
                hot.x + (rng.gen::<f64>() - 0.5) * RADIUS,
                hot.y + (rng.gen::<f64>() - 0.5) * RADIUS,
            );
            (u, q)
        })
        .collect();

    for threads in THREAD_SWEEP {
        let mut net = MaintainedWcds::with_threads(initial.clone(), RADIUS, threads);
        let plan = plan_batch(&claims_for(&net, &moves));
        assert_eq!(
            plan.max_concurrency, 1,
            "conflicting destinations must serialize completely"
        );
        assert_eq!(plan.waves.len(), MOVES, "one wave per claim under total conflict");
        assert_eq!(plan.waits, MOVES as u64 - 1);
        apply_in_waves(&mut net, &moves, &plan);
        assert_matches_serial(&net, &initial, &moves, &format!("one-ball, {threads} threads"));
    }
}

/// Moves in clusters farther apart than two claim blocks: one wave,
/// full concurrency, exact state.
#[test]
fn spread_batch_runs_one_wave_and_matches_serial_replay() {
    const CLUSTERS: usize = 8;
    const PER_CLUSTER: usize = 16;
    // cluster spacing: > 2·(2·CLAIM_RADIUS_CELLS + 1) cells keeps even
    // worst-aligned ±8-cell claim blocks disjoint across clusters
    const SPACING: f64 = 40.0;
    const CLUSTER_SIDE: f64 = 3.0;

    let mut initial = Vec::with_capacity(CLUSTERS * PER_CLUSTER);
    for c in 0..CLUSTERS {
        let blob = deploy::uniform(PER_CLUSTER, CLUSTER_SIDE, CLUSTER_SIDE, SEED + c as u64);
        initial.extend(blob.iter().map(|p| Point::new(p.x + c as f64 * SPACING, p.y)));
    }

    let mut rng = ChaCha12Rng::seed_from_u64(SEED ^ 0x5bead);
    let moves: Vec<(NodeId, Point)> = (0..CLUSTERS)
        .map(|c| {
            let u = c * PER_CLUSTER + rng.gen_range(0..PER_CLUSTER);
            let p = initial[u];
            // drift inside the home cluster so the claim stays local
            let q = Point::new(
                (p.x + (rng.gen::<f64>() - 0.5) * 0.8)
                    .clamp(c as f64 * SPACING, c as f64 * SPACING + CLUSTER_SIDE),
                (p.y + (rng.gen::<f64>() - 0.5) * 0.8).clamp(0.0, CLUSTER_SIDE),
            );
            (u, q)
        })
        .collect();

    for threads in THREAD_SWEEP {
        let mut net = MaintainedWcds::with_threads(initial.clone(), RADIUS, threads);
        let plan = plan_batch(&claims_for(&net, &moves));
        assert_eq!(plan.waves.len(), 1, "disjoint claims must share one wave");
        assert_eq!(
            plan.max_concurrency, CLUSTERS,
            "every spread claim proceeds concurrently"
        );
        assert_eq!((plan.waits, plan.conflicts), (0u64, 0u64));
        apply_in_waves(&mut net, &moves, &plan);
        assert_matches_serial(&net, &initial, &moves, &format!("spread, {threads} threads"));
    }
}

/// `RepairReport::changed()` is exactly "the WCDS partition changed":
/// true iff the (MIS, bridges) pair differs across the mutation. The
/// sharp direction is role swaps — a bridge absorbed into the MIS
/// while a nearby head drops to bridge leaves the dominator *union*
/// intact, and a union-only diff would report the repair as quiet.
/// `Store::mutate{,_batch}` gate their bundle-patch fast path on
/// `!changed()`, so a lying report ships routing tables derived from
/// the wrong head set (the "WCDS does not dominate the graph" panic).
#[test]
fn report_changed_iff_wcds_partition_changed() {
    const N: usize = 80;
    const SIDE: f64 = 4.0;
    const STEPS: usize = 300;
    const BATCH: usize = 16;
    const DRIFT: f64 = 0.15;
    // this seed's drift trace provokes both sides: ~16 quiet
    // (patchable) ticks and 2 union-preserving role swaps
    const TRACE_SEED: u64 = 12;

    let initial = deploy::uniform(N, SIDE, SIDE, SEED);
    let mut net = MaintainedWcds::new(initial, RADIUS);
    let mut rng = ChaCha12Rng::seed_from_u64(TRACE_SEED);
    let mut role_swaps = 0usize;
    let mut quiet = 0usize;
    for step in 0..STEPS {
        let before = net.wcds();
        let n = net.graph().node_count();
        let moves: Vec<(NodeId, Point)> = (0..BATCH)
            .map(|_| {
                let u = rng.gen_range(0..n);
                let p = net.points()[u];
                let q = Point::new(
                    (p.x + (rng.gen::<f64>() - 0.5) * 2.0 * DRIFT).clamp(0.0, SIDE),
                    (p.y + (rng.gen::<f64>() - 0.5) * 2.0 * DRIFT).clamp(0.0, SIDE),
                );
                (u, q)
            })
            .collect();
        let report = net.apply_motion(&moves);
        let after = net.wcds();
        assert_eq!(
            report.changed(),
            before != after,
            "step {step}: report says changed={}, partition equality says {}\n\
             promoted={:?} demoted={:?} role_changes={:?}",
            report.changed(),
            before != after,
            report.promoted,
            report.demoted,
            report.role_changes,
        );
        // a role swap keeps the union but moves nodes across the
        // MIS/bridge line — the case the union-only diff missed
        if !report.role_changes.is_empty() {
            let union = |w: &wcds_core::wcds::Wcds| -> std::collections::BTreeSet<usize> {
                w.mis_dominators().iter().chain(w.additional_dominators()).copied().collect()
            };
            if union(&before) == union(&after) {
                role_swaps += 1;
            }
        }
        if !report.changed() {
            quiet += 1;
        }
    }
    assert!(
        role_swaps > 0,
        "trace never exercised a union-preserving role swap — densify it"
    );
    assert!(quiet > 0, "trace never exercised the quiet (patchable) path");
}

/// A long randomized drift trace applied tick-by-tick through the wave
/// scheduler stays exact against serial replay at every thread count.
#[test]
fn randomized_drift_ticks_stay_exact_across_thread_counts() {
    const N: usize = 120;
    const SIDE: f64 = 5.0;
    const TICKS: usize = 12;
    const BATCH: usize = 8;

    let initial = deploy::uniform(N, SIDE, SIDE, SEED);
    let mut rng = ChaCha12Rng::seed_from_u64(SEED ^ 0xd41f7);
    let ticks: Vec<Vec<(NodeId, Point)>> = (0..TICKS)
        .map(|_| {
            (0..BATCH)
                .map(|_| {
                    let u = rng.gen_range(0..N);
                    let q = Point::new(
                        rng.gen::<f64>() * SIDE,
                        rng.gen::<f64>() * SIDE,
                    );
                    (u, q)
                })
                .collect()
        })
        .collect();

    // serial oracle: every move one at a time, in tick order
    let mut serial = MaintainedWcds::new(initial.clone(), RADIUS);
    for tick in &ticks {
        for &(u, q) in tick {
            serial.apply_motion(&[(u, q)]);
        }
    }

    for threads in THREAD_SWEEP {
        let mut net = MaintainedWcds::with_threads(initial.clone(), RADIUS, threads);
        for tick in &ticks {
            let plan = plan_batch(&claims_for(&net, tick));
            apply_in_waves(&mut net, tick, &plan);
        }
        assert_eq!(net.graph(), serial.graph(), "{threads} threads: CSR diverged");
        assert_eq!(
            io::to_text(net.graph(), Some(net.points())),
            io::to_text(serial.graph(), Some(serial.points())),
            "{threads} threads: export diverged"
        );
        let (w, sw) = (net.wcds(), serial.wcds());
        assert_eq!(w.mis_dominators(), sw.mis_dominators(), "{threads} threads: MIS");
        assert_eq!(
            w.additional_dominators(),
            sw.additional_dominators(),
            "{threads} threads: bridges"
        );
    }
}
