//! Property sweep for the (k, m)-resilient backbones (ISSUE 7
//! acceptance: m-fold coverage and backbone k-connectivity for
//! k, m ∈ {1, 2} across ≥ 20 seeds, plus the k = 3 flow checker on
//! denser instances).

use wcds_core::resilient::{ResilientBackbone, ResilientParams};
use wcds_geom::deploy;
use wcds_graph::{connectivity, domination, traversal, UnitDiskGraph};

fn udg(n: usize, side: f64, seed: u64) -> UnitDiskGraph {
    UnitDiskGraph::build(deploy::uniform(n, side, side, seed), 1.0)
}

#[test]
fn coverage_and_connectivity_hold_across_twenty_seeds() {
    for seed in 0..20u64 {
        let g = udg(180, 6.0, seed);
        for (k, m) in [(1, 1), (1, 2), (2, 1), (2, 2)] {
            let params = ResilientParams::new(k, m).unwrap();
            let b = ResilientBackbone::construct(g.graph(), params);
            assert!(
                domination::m_fold_coverage(g.graph(), b.dominators(), m as usize),
                "seed {seed} ({k},{m}): m-fold coverage violated"
            );
            // whenever the host supports level k, the construction must
            // reach it; either way the reported level must verify
            let host_k = (1..=k)
                .rev()
                .find(|&level| connectivity::is_k_connected(g.graph(), level))
                .unwrap_or(0);
            assert!(
                b.achieved_connectivity() >= host_k.min(k),
                "seed {seed} ({k},{m}): achieved {} < host-supported {host_k}",
                b.achieved_connectivity()
            );
            assert!(
                connectivity::backbone_k_connectivity(
                    g.graph(),
                    b.dominators(),
                    b.achieved_connectivity()
                ),
                "seed {seed} ({k},{m}): reported connectivity does not verify"
            );
            // layers stay pairwise disjoint and each layer's MIS is
            // independent in the host graph
            let mut seen = std::collections::BTreeSet::new();
            for layer in b.layers() {
                assert!(
                    domination::is_independent_set(g.graph(), layer.mis_dominators()),
                    "seed {seed} ({k},{m}): layer MIS not independent"
                );
                for &u in layer.nodes() {
                    assert!(seen.insert(u), "seed {seed} ({k},{m}): layers overlap");
                }
            }
            for &c in b.connectors() {
                assert!(seen.insert(c), "seed {seed} ({k},{m}): connector overlaps layer");
            }
        }
    }
}

#[test]
fn twenty_seeds_survive_any_single_dominator_loss_at_k2m2() {
    // the semantic payoff: with (k, m) = (2, 2), deleting ANY single
    // dominator leaves a backbone that still dominates and still has a
    // connected core
    for seed in 0..20u64 {
        let g = udg(150, 5.0, seed);
        if !traversal::is_connected(g.graph()) {
            continue;
        }
        let b =
            ResilientBackbone::construct(g.graph(), ResilientParams::new(2, 2).unwrap());
        if b.achieved_connectivity() < 2 {
            continue; // host graph itself had a cut vertex
        }
        for &dead in b.dominators() {
            let survivors: Vec<usize> =
                b.dominators().iter().copied().filter(|&u| u != dead).collect();
            assert!(
                domination::is_dominating_set(g.graph(), &survivors)
                    || domination::m_fold_deficient_nodes(g.graph(), &survivors, 1)
                        .iter()
                        .all(|&u| u == dead),
                "seed {seed}: killing dominator {dead} uncovered a third node"
            );
            assert!(
                connectivity::backbone_k_connectivity(g.graph(), &survivors, 1),
                "seed {seed}: killing dominator {dead} disconnected the core"
            );
        }
    }
}

#[test]
fn k3_backbone_on_dense_instances() {
    // denser deployments support 3-connected cores; the flow-based
    // checker must agree with the construction's report
    for seed in 0..5u64 {
        let g = udg(120, 3.4, seed);
        let b =
            ResilientBackbone::construct(g.graph(), ResilientParams::new(3, 1).unwrap());
        assert!(
            connectivity::backbone_k_connectivity(
                g.graph(),
                b.dominators(),
                b.achieved_connectivity()
            ),
            "seed {seed}: reported k={} does not verify",
            b.achieved_connectivity()
        );
        if connectivity::is_k_connected(g.graph(), 3) {
            assert_eq!(
                b.achieved_connectivity(),
                3,
                "seed {seed}: host is 3-connected but construction fell short"
            );
        }
    }
}

#[test]
fn m3_coverage_on_dense_instances() {
    for seed in 0..5u64 {
        let g = udg(150, 4.0, seed);
        let b =
            ResilientBackbone::construct(g.graph(), ResilientParams::new(1, 3).unwrap());
        assert!(
            domination::m_fold_coverage(g.graph(), b.dominators(), 3),
            "seed {seed}: 3-fold coverage violated"
        );
    }
}
