//! Trace replay: the incremental maintenance engine must be
//! indistinguishable from from-scratch Algorithm II at every step.
//!
//! A long random mutation trace — joins, leaves, small moves, plus
//! flings that disconnect the graph and moves that knit it back — is
//! replayed through [`MaintainedWcds`], and after **every** step:
//!
//! * the incremental MIS + bridge set equals a from-scratch
//!   `AlgorithmTwo` construction on the current graph;
//! * the spliced CSR equals a from-scratch `UnitDiskGraph` build
//!   (release-mode assertion — not only the debug_assert inside
//!   `DynamicUdg`);
//! * the WCDS is valid whenever the graph is connected;
//! * the repair's locality radius — the per-stage propagation distance
//!   (disturbed edges → MIS flips, then disturbance ∪ flips →
//!   dominator-status changes) — is ≤ 3 whenever both the pre- and
//!   post-mutation graphs are connected (the paper's §4.2 claim).
//!
//! The suite must pass serially and with `--features rayon` (CI runs
//! both); nothing here depends on the feature, which is the point —
//! results are engine-independent.

use wcds_core::algo2::AlgorithmTwo;
use wcds_core::maintenance::MaintainedWcds;
use wcds_geom::{deploy, Point};
use wcds_graph::{traversal, NodeId, UnitDiskGraph};
use wcds_rng::{ChaCha12Rng, Rng};

const SIDE: f64 = 6.0;
const RADIUS: f64 = 1.0;
const STEPS: usize = 220;

/// One full-equality checkpoint: incremental state vs from-scratch
/// constructions of everything.
fn assert_matches_from_scratch(net: &MaintainedWcds, step: usize) {
    let rebuilt = UnitDiskGraph::build(net.points().to_vec(), RADIUS);
    assert_eq!(
        net.graph(),
        rebuilt.graph(),
        "step {step}: spliced CSR diverged from a from-scratch build"
    );
    let (mis, additional) = AlgorithmTwo::new().construct_parts(net.graph());
    let w = net.wcds();
    assert_eq!(w.mis_dominators(), &mis[..], "step {step}: MIS diverged");
    assert_eq!(w.additional_dominators(), &additional[..], "step {step}: bridges diverged");
    if traversal::is_connected(net.graph()) {
        assert!(w.is_valid(net.graph()), "step {step}: invalid WCDS {w}");
    }
}

#[test]
fn long_mixed_trace_replays_algorithm_two_exactly() {
    let mut net = MaintainedWcds::new(deploy::uniform(200, SIDE, SIDE, 42), RADIUS);
    let mut rng = ChaCha12Rng::seed_from_u64(4242);
    assert_matches_from_scratch(&net, 0);

    let mut max_connected_radius = 0;
    let mut connected_repairs = 0;
    let mut exiled: Vec<NodeId> = Vec::new();

    for step in 1..=STEPS {
        let n = net.graph().node_count();
        let pre_connected = traversal::is_connected(net.graph());
        let report = match step % 11 {
            // joins: in-field, so the backbone absorbs them
            0 | 4 => net.apply_join(Point::new(
                rng.gen::<f64>() * SIDE,
                rng.gen::<f64>() * SIDE,
            )),
            // leaves: compaction renames every id above the victim
            2 | 7 => {
                let victim = rng.gen_range(0..n);
                exiled.retain(|&x| x != victim);
                for x in exiled.iter_mut() {
                    if *x > victim {
                        *x -= 1;
                    }
                }
                net.apply_leave(victim)
            }
            // fling: disconnects the walker from the component
            3 => {
                let u = rng.gen_range(0..n);
                if !exiled.contains(&u) {
                    exiled.push(u);
                }
                net.apply_motion(&[(
                    u,
                    Point::new(100.0 + rng.gen::<f64>(), 100.0 + rng.gen::<f64>()),
                )])
            }
            // return: an exiled node rejoins the field (reconnects)
            8 => match exiled.pop() {
                Some(u) => net.apply_motion(&[(
                    u,
                    Point::new(rng.gen::<f64>() * SIDE, rng.gen::<f64>() * SIDE),
                )]),
                None => {
                    let u = rng.gen_range(0..n);
                    let p = net.points()[u];
                    net.apply_motion(&[(u, p)]) // noop move
                }
            },
            // drift: one node takes a bounded step
            _ => {
                let u = rng.gen_range(0..n);
                let p = net.points()[u];
                let q = Point::new(
                    (p.x + (rng.gen::<f64>() - 0.5) * 0.6).clamp(0.0, SIDE),
                    (p.y + (rng.gen::<f64>() - 0.5) * 0.6).clamp(0.0, SIDE),
                );
                net.apply_motion(&[(u, q)])
            }
        };
        assert_matches_from_scratch(&net, step);

        let post_connected = traversal::is_connected(net.graph());
        if pre_connected && post_connected {
            if let Some(r) = report.locality_radius {
                connected_repairs += 1;
                max_connected_radius = max_connected_radius.max(r);
                assert!(
                    r <= 3,
                    "step {step}: locality radius {r} exceeds the 3-hop claim \
                     on a connected instance (report {report:?})"
                );
            }
        }
        // the counters must reflect a bounded region, never the graph
        if report.affected.is_empty() {
            assert_eq!(report.touched_nodes, 0, "step {step}");
        }
    }

    // the trace must actually have exercised the claim
    assert!(connected_repairs >= 20, "only {connected_repairs} connected repairs");
    assert!(max_connected_radius >= 1, "trace never moved a dominator");
}

#[test]
fn dense_churn_trace_stays_exact() {
    // a second, denser field with a different mutation mix: multi-node
    // motion batches interleaved with join/leave churn
    let mut net = MaintainedWcds::new(deploy::uniform(120, 4.0, 4.0, 7), RADIUS);
    let mut rng = ChaCha12Rng::seed_from_u64(99);
    for step in 1..=60 {
        let n = net.graph().node_count();
        match step % 4 {
            0 => {
                // batch motion: three walkers at once, deltas cancel or
                // compound — repair sees only the net disturbance
                let mut moves: Vec<(NodeId, Point)> = Vec::new();
                for _ in 0..3 {
                    let u = rng.gen_range(0..n);
                    let p = net.points()[u];
                    moves.push((
                        u,
                        Point::new(
                            (p.x + (rng.gen::<f64>() - 0.5) * 0.8).clamp(0.0, 4.0),
                            (p.y + (rng.gen::<f64>() - 0.5) * 0.8).clamp(0.0, 4.0),
                        ),
                    ));
                }
                net.apply_motion(&moves);
            }
            1 => {
                net.apply_join(Point::new(rng.gen::<f64>() * 4.0, rng.gen::<f64>() * 4.0));
            }
            _ => {
                let victim = rng.gen_range(0..n);
                net.apply_leave(victim);
            }
        }
        assert_matches_from_scratch(&net, step);
    }
}
