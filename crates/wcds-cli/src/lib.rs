//! Library backing the `wcds` command-line tool.
//!
//! Every subcommand is a pure function from parsed arguments to an
//! output string, so the whole CLI is unit-testable without spawning
//! processes; `main.rs` only does I/O.
//!
//! ```text
//! wcds generate --model uniform --n 200 --side 8 --seed 1 -o net.graph
//! wcds stats    -i net.graph
//! wcds construct --algo algo2 -i net.graph --prune
//! wcds validate -i net.graph --set 0,5,9
//! wcds route    -i net.graph --from 0 --to 42
//! wcds simulate -i net.graph --algo algo1
//! ```

pub mod args;
pub mod commands;

pub use args::{CliError, Command};

/// Parses an argument list (without the program name) and executes it,
/// reading/writing files as the command requires.
///
/// # Errors
///
/// Returns [`CliError`] on malformed arguments, unreadable input, or a
/// failed command (e.g. a disconnected graph handed to a construction).
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let cmd = args::parse(argv)?;
    commands::execute(cmd)
}
