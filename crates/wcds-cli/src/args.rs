//! Hand-rolled argument parsing (the approved dependency list has no
//! CLI parser; the grammar is small enough that one is not missed).

use std::error::Error;
use std::fmt;
use wcds_service::{Engine, Mutation};

/// A CLI failure: bad arguments, I/O, or command-level errors.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

/// Deployment models of `wcds generate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Uniform random in a square.
    Uniform,
    /// Gaussian clusters.
    Clustered,
    /// Jittered grid.
    Grid,
    /// A chain (the adversarial worst case).
    Chain,
}

/// Construction algorithms selectable on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Algorithm I (level-ranked MIS).
    Algo1,
    /// Algorithm II (localized MIS + bridges).
    Algo2,
    /// Chen–Liestman greedy WCDS.
    GreedyWcds,
    /// Guha–Khuller-style greedy CDS.
    GreedyCds,
    /// Wu–Li marking CDS.
    WuLi,
    /// MIS + spanning-tree connectors CDS.
    MisTree,
}

impl Algo {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "algo1" | "algorithm-1" => Ok(Algo::Algo1),
            "algo2" | "algorithm-2" => Ok(Algo::Algo2),
            "greedy-wcds" => Ok(Algo::GreedyWcds),
            "greedy-cds" => Ok(Algo::GreedyCds),
            "wu-li" => Ok(Algo::WuLi),
            "mis-tree" | "mis-tree-cds" => Ok(Algo::MisTree),
            other => Err(CliError(format!(
                "unknown algorithm `{other}` (try algo1, algo2, greedy-wcds, greedy-cds, wu-li, mis-tree)"
            ))),
        }
    }
}

/// A fully parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `wcds generate` — create a deployment and write the graph file.
    Generate {
        /// Deployment model.
        model: Model,
        /// Node count.
        n: usize,
        /// Region side length.
        side: f64,
        /// RNG seed.
        seed: u64,
        /// Output path (`-` = stdout).
        output: String,
    },
    /// `wcds stats` — topology metrics.
    Stats {
        /// Input graph file.
        input: String,
    },
    /// `wcds construct` — run a WCDS construction.
    Construct {
        /// Input graph file.
        input: String,
        /// Algorithm choice.
        algo: Algo,
        /// Apply the minimality pruning pass.
        prune: bool,
    },
    /// `wcds validate` — check DS/WCDS/CDS properties of a node set.
    Validate {
        /// Input graph file.
        input: String,
        /// The candidate node set.
        set: Vec<usize>,
    },
    /// `wcds route` — clusterhead-route one packet.
    Route {
        /// Input graph file.
        input: String,
        /// Source node.
        from: usize,
        /// Destination node.
        to: usize,
    },
    /// `wcds compare` — run every construction on one input and print
    /// a comparison table.
    Compare {
        /// Input graph file.
        input: String,
    },
    /// `wcds render` — draw the network (and optionally a backbone) as
    /// SVG.
    Render {
        /// Input graph file (must contain `point` lines).
        input: String,
        /// Construction whose backbone to overlay (`None` = plain UDG).
        algo: Option<Algo>,
        /// Output SVG path (`-` = stdout).
        output: String,
    },
    /// `wcds simulate` — run a distributed construction, with reports.
    Simulate {
        /// Input graph file.
        input: String,
        /// `algo1` or `algo2` (the distributed protocols).
        algo: Algo,
        /// Asynchronous schedule seed (synchronous when absent).
        async_seed: Option<u64>,
    },
    /// `wcds serve` — run the backbone service until a wire shutdown.
    Serve {
        /// Listen address (`host:port`; port 0 picks a free port).
        addr: String,
        /// Worker-pool size (or executor-pool size for the event loop).
        workers: usize,
        /// Serving engine.
        engine: Engine,
    },
    /// `wcds query` — request(s) against a running server.
    Query {
        /// Server address.
        addr: String,
        /// The action to perform.
        action: QueryAction,
        /// How many times to issue the request.
        repeat: u64,
        /// Send all repeats as one pipelined burst (one write, then
        /// drain the responses in order) instead of round-tripping.
        pipeline: bool,
    },
    /// `wcds help` / no arguments.
    Help,
}

/// One `wcds query` action (one request/response round trip).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAction {
    /// Liveness probe.
    Ping,
    /// Ingest a topology from a graph file.
    Create {
        /// Topology name.
        name: String,
        /// Graph file to upload.
        input: String,
    },
    /// Download the current topology as graph text.
    Export {
        /// Topology name.
        name: String,
        /// Output path (`-` = stdout).
        output: String,
    },
    /// Force the WCDS/spanner/routing bundle to be built.
    Construct {
        /// Topology name.
        name: String,
    },
    /// Clusterhead-route one packet.
    Route {
        /// Topology name.
        name: String,
        /// Source node.
        from: usize,
        /// Destination node.
        to: usize,
    },
    /// Simulate a backbone broadcast.
    Broadcast {
        /// Topology name.
        name: String,
        /// Broadcast source.
        source: usize,
    },
    /// Topology + cache statistics.
    Stats {
        /// Topology name.
        name: String,
    },
    /// Apply one maintenance mutation.
    Mutate {
        /// Topology name.
        name: String,
        /// The mutation (`--join X,Y`, `--leave N`, or `--move N,X,Y`).
        mutation: Mutation,
    },
    /// List stored topologies.
    List,
    /// Remove a topology.
    Drop {
        /// Topology name.
        name: String,
    },
    /// Upgrade a topology to a (k, m)-resilient backbone.
    Harden {
        /// Topology name.
        name: String,
        /// Target core connectivity.
        k: u64,
        /// Target coverage multiplicity.
        m: u64,
    },
    /// Ask the server to shut down gracefully.
    Shutdown,
}

/// Usage text.
pub const USAGE: &str = "\
wcds — weakly-connected dominating sets and sparse spanners (ICDCS 2003)

USAGE:
  wcds generate  --model uniform|clustered|grid|chain --n N [--side S] [--seed K] -o FILE
  wcds stats     -i FILE
  wcds construct -i FILE --algo algo1|algo2|greedy-wcds|greedy-cds|wu-li|mis-tree [--prune]
  wcds validate  -i FILE --set 0,5,9
  wcds route     -i FILE --from A --to B
  wcds compare   -i FILE
  wcds render    -i FILE [--algo ALGO] -o FILE.svg
  wcds simulate  -i FILE --algo algo1|algo2 [--async-seed K]
  wcds serve     [--addr HOST:PORT] [--workers N] [--engine event-loop|worker-pool]
  wcds query     ACTION --addr HOST:PORT [--repeat N] [--pipeline] [action flags]
  wcds help

QUERY ACTIONS:
  ping | list | shutdown
  create    --name T -i FILE
  export    --name T [-o FILE]
  construct --name T
  route     --name T --from A --to B
  broadcast --name T --source S
  stats     --name T
  mutate    --name T  --join X,Y | --leave N | --move N,X,Y
  harden    --name T --k K --m M
";

struct ArgScanner<'a> {
    argv: &'a [String],
    i: usize,
}

impl<'a> ArgScanner<'a> {
    fn new(argv: &'a [String]) -> Self {
        Self { argv, i: 0 }
    }

    fn value_of(&mut self, flag: &str) -> Option<&'a str> {
        self.argv
            .iter()
            .position(|a| a == flag)
            .and_then(|p| self.argv.get(p + 1))
            .map(String::as_str)
    }

    fn has_flag(&self, flag: &str) -> bool {
        self.argv.iter().any(|a| a == flag)
    }
}

fn required<'a>(s: &mut ArgScanner<'a>, flag: &str) -> Result<&'a str, CliError> {
    s.value_of(flag).ok_or_else(|| CliError(format!("missing required argument {flag}")))
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, CliError> {
    raw.parse().map_err(|_| CliError(format!("invalid value `{raw}` for {flag}")))
}

/// Parses an argument vector (excluding the program name).
///
/// # Errors
///
/// Returns [`CliError`] with a usage-style message on malformed input.
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let Some(sub) = argv.first() else {
        return Ok(Command::Help);
    };
    let rest = &argv[1..];
    let mut s = ArgScanner::new(rest);
    let _ = s.i;
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let model = match required(&mut s, "--model")? {
                "uniform" => Model::Uniform,
                "clustered" => Model::Clustered,
                "grid" => Model::Grid,
                "chain" => Model::Chain,
                other => return Err(CliError(format!("unknown model `{other}`"))),
            };
            let n = parse_num(required(&mut s, "--n")?, "--n")?;
            let side = match s.value_of("--side") {
                Some(v) => parse_num(v, "--side")?,
                None => 8.0,
            };
            let seed = match s.value_of("--seed") {
                Some(v) => parse_num(v, "--seed")?,
                None => 0,
            };
            let output = required(&mut s, "-o")?.to_string();
            Ok(Command::Generate { model, n, side, seed, output })
        }
        "stats" => Ok(Command::Stats { input: required(&mut s, "-i")?.to_string() }),
        "construct" => Ok(Command::Construct {
            input: required(&mut s, "-i")?.to_string(),
            algo: Algo::parse(required(&mut s, "--algo")?)?,
            prune: s.has_flag("--prune"),
        }),
        "validate" => {
            let input = required(&mut s, "-i")?.to_string();
            let raw = required(&mut s, "--set")?;
            let set = raw
                .split(',')
                .filter(|t| !t.is_empty())
                .map(|t| parse_num(t.trim(), "--set"))
                .collect::<Result<Vec<usize>, _>>()?;
            if set.is_empty() {
                return Err(CliError("--set must list at least one node".into()));
            }
            Ok(Command::Validate { input, set })
        }
        "route" => Ok(Command::Route {
            input: required(&mut s, "-i")?.to_string(),
            from: parse_num(required(&mut s, "--from")?, "--from")?,
            to: parse_num(required(&mut s, "--to")?, "--to")?,
        }),
        "compare" => Ok(Command::Compare { input: required(&mut s, "-i")?.to_string() }),
        "render" => {
            let input = required(&mut s, "-i")?.to_string();
            let algo = match s.value_of("--algo") {
                Some(v) => Some(Algo::parse(v)?),
                None => None,
            };
            let output = required(&mut s, "-o")?.to_string();
            Ok(Command::Render { input, algo, output })
        }
        "simulate" => {
            let input = required(&mut s, "-i")?.to_string();
            let algo = Algo::parse(required(&mut s, "--algo")?)?;
            if !matches!(algo, Algo::Algo1 | Algo::Algo2) {
                return Err(CliError("simulate supports only algo1 and algo2".into()));
            }
            let async_seed = match s.value_of("--async-seed") {
                Some(v) => Some(parse_num(v, "--async-seed")?),
                None => None,
            };
            Ok(Command::Simulate { input, algo, async_seed })
        }
        "serve" => {
            let addr = s.value_of("--addr").unwrap_or("127.0.0.1:7700").to_string();
            let workers = match s.value_of("--workers") {
                Some(v) => parse_num(v, "--workers")?,
                None => 4,
            };
            if workers == 0 {
                return Err(CliError("--workers must be at least 1".into()));
            }
            let engine = match s.value_of("--engine") {
                None | Some("event-loop") => Engine::EventLoop,
                Some("worker-pool") => Engine::WorkerPool,
                Some(other) => {
                    return Err(CliError(format!(
                        "unknown engine `{other}` (try event-loop or worker-pool)"
                    )));
                }
            };
            Ok(Command::Serve { addr, workers, engine })
        }
        "query" => {
            let action_name = rest
                .first()
                .ok_or_else(|| CliError(format!("query needs an action\n\n{USAGE}")))?;
            let addr = s.value_of("--addr").unwrap_or("127.0.0.1:7700").to_string();
            let action = parse_query_action(action_name, &mut s)?;
            let repeat = match s.value_of("--repeat") {
                Some(v) => parse_num(v, "--repeat")?,
                None => 1,
            };
            if repeat == 0 {
                return Err(CliError("--repeat must be at least 1".into()));
            }
            let pipeline = s.has_flag("--pipeline");
            Ok(Command::Query { addr, action, repeat, pipeline })
        }
        other => Err(CliError(format!("unknown subcommand `{other}`\n\n{USAGE}"))),
    }
}

/// Parses the numbers of `--join X,Y` / `--move N,X,Y` style values.
fn parse_csv<T: std::str::FromStr>(raw: &str, flag: &str, want: usize) -> Result<Vec<T>, CliError> {
    let parts: Vec<&str> = raw.split(',').map(str::trim).collect();
    if parts.len() != want {
        return Err(CliError(format!(
            "{flag} expects {want} comma-separated values, got `{raw}`"
        )));
    }
    parts.iter().map(|p| parse_num(p, flag)).collect()
}

fn parse_query_action(name: &str, s: &mut ArgScanner<'_>) -> Result<QueryAction, CliError> {
    let named = |s: &mut ArgScanner<'_>| -> Result<String, CliError> {
        Ok(required(s, "--name")?.to_string())
    };
    match name {
        "ping" => Ok(QueryAction::Ping),
        "list" => Ok(QueryAction::List),
        "shutdown" => Ok(QueryAction::Shutdown),
        "create" => Ok(QueryAction::Create {
            name: named(s)?,
            input: required(s, "-i")?.to_string(),
        }),
        "export" => Ok(QueryAction::Export {
            name: named(s)?,
            output: s.value_of("-o").unwrap_or("-").to_string(),
        }),
        "construct" => Ok(QueryAction::Construct { name: named(s)? }),
        "route" => Ok(QueryAction::Route {
            name: named(s)?,
            from: parse_num(required(s, "--from")?, "--from")?,
            to: parse_num(required(s, "--to")?, "--to")?,
        }),
        "broadcast" => Ok(QueryAction::Broadcast {
            name: named(s)?,
            source: parse_num(required(s, "--source")?, "--source")?,
        }),
        "stats" => Ok(QueryAction::Stats { name: named(s)? }),
        "drop" => Ok(QueryAction::Drop { name: named(s)? }),
        "harden" => Ok(QueryAction::Harden {
            name: named(s)?,
            k: parse_num(required(s, "--k")?, "--k")?,
            m: parse_num(required(s, "--m")?, "--m")?,
        }),
        "mutate" => {
            let name = named(s)?;
            let mutation = if let Some(raw) = s.value_of("--join") {
                let xy: Vec<f64> = parse_csv(raw, "--join", 2)?;
                Mutation::Join { x: xy[0], y: xy[1] }
            } else if let Some(raw) = s.value_of("--leave") {
                Mutation::Leave { node: parse_num(raw, "--leave")? }
            } else if let Some(raw) = s.value_of("--move") {
                let node: usize = parse_num(
                    raw.split(',').next().unwrap_or_default().trim(),
                    "--move",
                )?;
                let rest: Vec<&str> = raw.split(',').skip(1).map(str::trim).collect();
                if rest.len() != 2 {
                    return Err(CliError(format!(
                        "--move expects N,X,Y, got `{raw}`"
                    )));
                }
                Mutation::Move {
                    node,
                    x: parse_num(rest[0], "--move")?,
                    y: parse_num(rest[1], "--move")?,
                }
            } else {
                return Err(CliError(
                    "mutate needs one of --join X,Y / --leave N / --move N,X,Y".into(),
                ));
            };
            Ok(QueryAction::Mutate { name, mutation })
        }
        other => Err(CliError(format!(
            "unknown query action `{other}` (try ping, create, export, construct, route, broadcast, stats, mutate, harden, list, drop, shutdown)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_argv_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn generate_with_defaults() {
        let cmd = parse(&argv("generate --model uniform --n 50 -o out.graph")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                model: Model::Uniform,
                n: 50,
                side: 8.0,
                seed: 0,
                output: "out.graph".into()
            }
        );
    }

    #[test]
    fn generate_with_all_flags() {
        let cmd =
            parse(&argv("generate --model chain --n 9 --side 3.5 --seed 7 -o -")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                model: Model::Chain,
                n: 9,
                side: 3.5,
                seed: 7,
                output: "-".into()
            }
        );
    }

    #[test]
    fn construct_parses_algos_and_prune() {
        let cmd = parse(&argv("construct -i x.graph --algo algo2 --prune")).unwrap();
        assert_eq!(cmd, Command::Construct { input: "x.graph".into(), algo: Algo::Algo2, prune: true });
        for (name, want) in [
            ("algo1", Algo::Algo1),
            ("greedy-wcds", Algo::GreedyWcds),
            ("greedy-cds", Algo::GreedyCds),
            ("wu-li", Algo::WuLi),
            ("mis-tree", Algo::MisTree),
        ] {
            let cmd = parse(&argv(&format!("construct -i x --algo {name}"))).unwrap();
            match cmd {
                Command::Construct { algo, prune, .. } => {
                    assert_eq!(algo, want);
                    assert!(!prune);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn validate_parses_comma_set() {
        let cmd = parse(&argv("validate -i x --set 1,2,9")).unwrap();
        assert_eq!(cmd, Command::Validate { input: "x".into(), set: vec![1, 2, 9] });
    }

    #[test]
    fn route_and_simulate() {
        assert_eq!(
            parse(&argv("route -i x --from 3 --to 8")).unwrap(),
            Command::Route { input: "x".into(), from: 3, to: 8 }
        );
        assert_eq!(
            parse(&argv("simulate -i x --algo algo1 --async-seed 5")).unwrap(),
            Command::Simulate { input: "x".into(), algo: Algo::Algo1, async_seed: Some(5) }
        );
    }

    #[test]
    fn serve_and_query_parse() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve { addr: "127.0.0.1:7700".into(), workers: 4, engine: Engine::EventLoop }
        );
        assert_eq!(
            parse(&argv("serve --addr 0.0.0.0:9000 --workers 8")).unwrap(),
            Command::Serve { addr: "0.0.0.0:9000".into(), workers: 8, engine: Engine::EventLoop }
        );
        assert_eq!(
            parse(&argv("query ping --addr 127.0.0.1:7701")).unwrap(),
            Command::Query {
                addr: "127.0.0.1:7701".into(),
                action: QueryAction::Ping,
                repeat: 1,
                pipeline: false
            }
        );
        assert_eq!(
            parse(&argv("query create --addr h:1 --name net -i f.graph")).unwrap(),
            Command::Query {
                addr: "h:1".into(),
                action: QueryAction::Create { name: "net".into(), input: "f.graph".into() },
                repeat: 1,
                pipeline: false
            }
        );
        assert_eq!(
            parse(&argv("query route --name net --from 0 --to 9")).unwrap(),
            Command::Query {
                addr: "127.0.0.1:7700".into(),
                action: QueryAction::Route { name: "net".into(), from: 0, to: 9 },
                repeat: 1,
                pipeline: false
            }
        );
        assert_eq!(
            parse(&argv("query mutate --name net --join 1.5,2.5")).unwrap(),
            Command::Query {
                addr: "127.0.0.1:7700".into(),
                action: QueryAction::Mutate {
                    name: "net".into(),
                    mutation: Mutation::Join { x: 1.5, y: 2.5 }
                },
                repeat: 1,
                pipeline: false
            }
        );
        assert_eq!(
            parse(&argv("query mutate --name net --move 4,0.5,0.25")).unwrap(),
            Command::Query {
                addr: "127.0.0.1:7700".into(),
                action: QueryAction::Mutate {
                    name: "net".into(),
                    mutation: Mutation::Move { node: 4, x: 0.5, y: 0.25 }
                },
                repeat: 1,
                pipeline: false
            }
        );
        assert_eq!(
            parse(&argv("query mutate --name net --leave 7")).unwrap(),
            Command::Query {
                addr: "127.0.0.1:7700".into(),
                action: QueryAction::Mutate {
                    name: "net".into(),
                    mutation: Mutation::Leave { node: 7 }
                },
                repeat: 1,
                pipeline: false
            }
        );
        assert_eq!(
            parse(&argv("serve --engine worker-pool")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7700".into(),
                workers: 4,
                engine: Engine::WorkerPool
            }
        );
        assert_eq!(
            parse(&argv("query ping --repeat 32 --pipeline")).unwrap(),
            Command::Query {
                addr: "127.0.0.1:7700".into(),
                action: QueryAction::Ping,
                repeat: 32,
                pipeline: true
            }
        );
    }

    #[test]
    fn serve_and_query_errors() {
        assert!(parse(&argv("serve --workers 0")).unwrap_err().0.contains("--workers"));
        assert!(parse(&argv("serve --engine frob")).unwrap_err().0.contains("frob"));
        assert!(parse(&argv("query ping --repeat 0")).unwrap_err().0.contains("--repeat"));
        assert!(parse(&argv("query")).unwrap_err().0.contains("action"));
        assert!(parse(&argv("query frob")).unwrap_err().0.contains("frob"));
        assert!(parse(&argv("query mutate --name n")).unwrap_err().0.contains("--join"));
        assert!(parse(&argv("query mutate --name n --join 1")).unwrap_err().0.contains("--join"));
        assert!(parse(&argv("query mutate --name n --move 1,2")).unwrap_err().0.contains("--move"));
        assert!(parse(&argv("query route --name n --from 0")).unwrap_err().0.contains("--to"));
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse(&argv("generate --model nope --n 5 -o x")).unwrap_err().0.contains("nope"));
        assert!(parse(&argv("construct -i x --algo bogus")).unwrap_err().0.contains("bogus"));
        assert!(parse(&argv("frobnicate")).unwrap_err().0.contains("frobnicate"));
        assert!(parse(&argv("generate --model uniform -o x")).unwrap_err().0.contains("--n"));
        assert!(parse(&argv("simulate -i x --algo wu-li")).unwrap_err().0.contains("algo1"));
        assert!(parse(&argv("validate -i x --set ,")).is_err());
        assert!(parse(&argv("route -i x --from a --to 2")).unwrap_err().0.contains("--from"));
    }
}
