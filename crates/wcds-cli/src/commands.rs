//! Subcommand implementations: parsed [`Command`] → output string.

use crate::args::{Algo, CliError, Command, Model, QueryAction, USAGE};
use std::fmt::Write as _;
use wcds_baselines::{GreedyCds, GreedyWcds, MisTreeCds, WuLiCds};
use wcds_core::algo1::AlgorithmOne;
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::postprocess::{prune, PruneOrder};
use wcds_core::spanner::SpannerStats;
use wcds_core::{algo1, algo2, WcdsConstruction};
use wcds_geom::deploy;
use wcds_graph::io::GraphDocument;
use wcds_graph::metrics::GraphMetrics;
use wcds_graph::{domination, io, traversal, UnitDiskGraph};
use wcds_routing::BackboneRouter;
use wcds_service::{
    BroadcastOutcome, Client, ClientError, Engine, Request, Response, RouteOutcome, Server,
    ServerConfig, Store,
};
use wcds_sim::Schedule;

impl From<ClientError> for CliError {
    fn from(e: ClientError) -> Self {
        CliError(format!("service: {e}"))
    }
}

/// Executes a parsed command.
///
/// # Errors
///
/// Returns [`CliError`] for I/O failures or command-level problems
/// (disconnected inputs, out-of-range nodes, …).
pub fn execute(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Generate { model, n, side, seed, output } => generate(model, n, side, seed, &output),
        Command::Stats { input } => stats(&load(&input)?),
        Command::Construct { input, algo, prune } => construct(&load(&input)?, algo, prune),
        Command::Validate { input, set } => validate(&load(&input)?, &set),
        Command::Route { input, from, to } => route(&load(&input)?, from, to),
        Command::Compare { input } => compare(&load(&input)?),
        Command::Render { input, algo, output } => render(&load(&input)?, algo, &output),
        Command::Simulate { input, algo, async_seed } => simulate(&load(&input)?, algo, async_seed),
        Command::Serve { addr, workers, engine } => serve(&addr, workers, engine),
        Command::Query { addr, action, repeat, pipeline } => {
            query(&addr, action, repeat, pipeline)
        }
    }
}

fn load(path: &str) -> Result<GraphDocument, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    io::from_text(&text).map_err(|e| CliError(format!("cannot parse `{path}`: {e}")))
}

fn generate(model: Model, n: usize, side: f64, seed: u64, output: &str) -> Result<String, CliError> {
    let points = match model {
        Model::Uniform => deploy::uniform(n, side, side, seed),
        Model::Clustered => deploy::clustered(n, side, side, (n / 40).max(1), side / 12.0, seed),
        Model::Grid => {
            let cols = (n as f64).sqrt().ceil() as usize;
            let rows = n.div_ceil(cols.max(1));
            let pitch = side / cols.max(1) as f64;
            let mut pts = deploy::grid_jitter(cols, rows, pitch, pitch / 4.0, seed);
            pts.truncate(n);
            pts
        }
        Model::Chain => deploy::chain(n, 0.9),
    };
    let udg = UnitDiskGraph::build(points, 1.0);
    let text = io::to_text(udg.graph(), Some(udg.points()));
    if output == "-" {
        return Ok(text);
    }
    std::fs::write(output, &text)?;
    Ok(format!(
        "wrote {} nodes / {} edges to {output} (connected: {})\n",
        udg.node_count(),
        udg.graph().edge_count(),
        traversal::is_connected(udg.graph())
    ))
}

fn stats(doc: &GraphDocument) -> Result<String, CliError> {
    let m = GraphMetrics::compute(&doc.graph, doc.graph.node_count() <= 2000);
    let mut out = format!("{m}\n");
    if let Some(points) = &doc.points {
        let udg = UnitDiskGraph::build(points.clone(), 1.0);
        let _ = writeln!(out, "total link length: {:.2}", udg.total_edge_length());
    }
    Ok(out)
}

fn build_algo(algo: Algo) -> Box<dyn WcdsConstruction> {
    match algo {
        Algo::Algo1 => Box::new(AlgorithmOne::new()),
        Algo::Algo2 => Box::new(AlgorithmTwo::new()),
        Algo::GreedyWcds => Box::new(GreedyWcds::new()),
        Algo::GreedyCds => Box::new(GreedyCds::new()),
        Algo::WuLi => Box::new(WuLiCds::new()),
        Algo::MisTree => Box::new(MisTreeCds::new()),
    }
}

fn require_connected(doc: &GraphDocument) -> Result<(), CliError> {
    if traversal::is_connected(&doc.graph) {
        Ok(())
    } else {
        Err(CliError("input graph is not connected; constructions require connectivity".into()))
    }
}

fn construct(doc: &GraphDocument, algo: Algo, do_prune: bool) -> Result<String, CliError> {
    require_connected(doc)?;
    // Positioned Algorithm II inputs take the grid-partitioned parallel
    // path (bit-identical output, city-scale speed); everything else —
    // adjacency-only documents, positions inconsistent with the edge
    // list, other algorithms — goes through the sequential engines.
    let (name, result) = match (&doc.points, algo) {
        (Some(points), Algo::Algo2) => {
            let udg = UnitDiskGraph::build(points.clone(), 1.0);
            if udg.graph() == &doc.graph {
                let engine = wcds_core::partition::PartitionedTwo::new();
                (engine.name(), engine.construct(&udg))
            } else {
                let construction = build_algo(algo);
                (construction.name(), construction.construct(&doc.graph))
            }
        }
        _ => {
            let construction = build_algo(algo);
            (construction.name(), construction.construct(&doc.graph))
        }
    };
    let wcds = if do_prune {
        prune(&doc.graph, &result.wcds, PruneOrder::BridgesFirst)
    } else {
        result.wcds
    };
    let stats = SpannerStats::compute(&doc.graph, &wcds);
    let mut out = String::new();
    let _ = writeln!(out, "algorithm : {}{}", name, if do_prune { " + prune" } else { "" });
    let _ = writeln!(out, "result    : {wcds}");
    let _ = writeln!(out, "valid     : {}", wcds.is_valid(&doc.graph));
    let _ = writeln!(out, "{stats}");
    let _ = writeln!(out, "dominators: {:?}", wcds.nodes());
    Ok(out)
}

fn validate(doc: &GraphDocument, set: &[usize]) -> Result<String, CliError> {
    let g = &doc.graph;
    if let Some(&bad) = set.iter().find(|&&u| u >= g.node_count()) {
        return Err(CliError(format!("node {bad} out of range (n = {})", g.node_count())));
    }
    let mut sorted = set.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut out = String::new();
    let _ = writeln!(out, "set                 : {sorted:?}");
    let _ = writeln!(out, "dominating          : {}", domination::is_dominating_set(g, &sorted));
    let _ = writeln!(out, "independent         : {}", domination::is_independent_set(g, &sorted));
    let _ = writeln!(out, "maximal independent : {}", domination::is_maximal_independent_set(g, &sorted));
    let _ = writeln!(out, "weakly-connected DS : {}", domination::is_weakly_connected_dominating_set(g, &sorted));
    let _ = writeln!(out, "connected DS        : {}", domination::is_connected_dominating_set(g, &sorted));
    let undominated = domination::undominated_nodes(g, &sorted);
    if !undominated.is_empty() {
        let _ = writeln!(out, "undominated nodes   : {undominated:?}");
    }
    Ok(out)
}

fn route(doc: &GraphDocument, from: usize, to: usize) -> Result<String, CliError> {
    require_connected(doc)?;
    let g = &doc.graph;
    if from >= g.node_count() || to >= g.node_count() {
        return Err(CliError(format!("endpoint out of range (n = {})", g.node_count())));
    }
    let result = AlgorithmTwo::new().construct(g);
    let router = BackboneRouter::build(g, &result.wcds);
    let path = router
        .route(from, to)
        .ok_or_else(|| CliError("no backbone route (disconnected?)".into()))?;
    let shortest = traversal::hop_distance(g, from, to)
        .ok_or_else(|| CliError("endpoints disconnected".into()))?;
    let mut out = String::new();
    let _ = writeln!(out, "route   : {path:?}");
    let _ = writeln!(out, "hops    : {} (shortest in G: {shortest})", path.len() - 1);
    if shortest > 0 {
        let _ = writeln!(out, "stretch : {:.2}", (path.len() - 1) as f64 / shortest as f64);
    }
    let _ = writeln!(out, "clusterheads: {} -> {}", router.clusterhead(from), router.clusterhead(to));
    Ok(out)
}

fn compare(doc: &GraphDocument) -> Result<String, CliError> {
    require_connected(doc)?;
    let g = &doc.graph;
    let mut out = format!(
        "{:<14} {:>6} {:>6} {:>8} {:>12} {:>9} {:>7}\n",
        "algorithm", "|U|", "MIS", "bridges", "spanner |E'|", "E'/n", "valid"
    );
    for algo in [
        Algo::Algo1,
        Algo::Algo2,
        Algo::GreedyWcds,
        Algo::GreedyCds,
        Algo::WuLi,
        Algo::MisTree,
    ] {
        let construction = build_algo(algo);
        let result = construction.construct(g);
        let stats = SpannerStats::compute(g, &result.wcds);
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>6} {:>8} {:>12} {:>9.2} {:>7}",
            construction.name(),
            result.wcds.len(),
            result.wcds.mis_dominators().len(),
            result.wcds.additional_dominators().len(),
            stats.spanner_edges,
            stats.edges_per_node(),
            result.wcds.is_valid(g)
        );
    }
    if g.node_count() <= wcds_baselines::exact::EXACT_NODE_LIMIT {
        let opt = wcds_baselines::exact::minimum_wcds(g).len();
        let _ = writeln!(out, "\nexact minimum WCDS: {opt}");
    } else {
        let lb = wcds_baselines::exact::wcds_lower_bound_udg(g);
        let _ = writeln!(out, "\ncertified lower bound (UDG inputs only): {lb}");
    }
    Ok(out)
}

fn render(doc: &GraphDocument, algo: Option<Algo>, output: &str) -> Result<String, CliError> {
    let points = doc
        .points
        .clone()
        .ok_or_else(|| CliError("render needs node positions (`point` lines) in the input".into()))?;
    let udg = UnitDiskGraph::build(points, 1.0);
    let mut scene = wcds_vis::SceneBuilder::new(&udg).background_edges(&doc.graph);
    let caption = match algo {
        Some(a) => {
            require_connected(doc)?;
            let construction = build_algo(a);
            let result = construction.construct(&doc.graph);
            let spanner = result.wcds.weakly_induced_subgraph(&doc.graph);
            scene = scene.highlight_edges(&spanner, "#111111", 1.6).wcds(&result.wcds);
            format!("{} backbone: {}", construction.name(), result.wcds)
        }
        None => format!("unit-disk graph: {} nodes, {} edges", udg.node_count(), doc.graph.edge_count()),
    };
    let svg = scene.caption(caption).render();
    if output == "-" {
        return Ok(svg);
    }
    std::fs::write(output, &svg)?;
    Ok(format!("wrote {output} ({} bytes)\n", svg.len()))
}

fn simulate(doc: &GraphDocument, algo: Algo, async_seed: Option<u64>) -> Result<String, CliError> {
    require_connected(doc)?;
    let g = &doc.graph;
    let mut out = String::new();
    match algo {
        Algo::Algo1 => {
            let run = match async_seed {
                None => algo1::distributed::run_synchronous(g),
                Some(seed) => algo1::distributed::run_asynchronous(g, seed),
            };
            let _ = writeln!(out, "algorithm-1 distributed (leader = {})", run.leader);
            let _ = writeln!(out, "  election : {}", run.election_report);
            let _ = writeln!(out, "  levels   : {}", run.level_report);
            let _ = writeln!(out, "  marking  : {}", run.marking_report);
            let _ = writeln!(out, "  total    : {} messages, time {}", run.total_messages(), run.total_time());
            let _ = writeln!(out, "  result   : {}", run.result.wcds);
            let _ = writeln!(out, "  valid    : {}", run.result.wcds.is_valid(g));
        }
        Algo::Algo2 => {
            let run = match async_seed {
                None => algo2::distributed::run_synchronous(g),
                Some(seed) => algo2::distributed::run(g, Schedule::asynchronous(seed)),
            };
            let _ = writeln!(out, "algorithm-2 distributed");
            let _ = writeln!(out, "  report : {}", run.report);
            let _ = writeln!(out, "  result : {}", run.result.wcds);
            let _ = writeln!(out, "  valid  : {}", run.result.wcds.is_valid(g));
        }
        _ => unreachable!("parser restricts simulate to algo1/algo2"),
    }
    Ok(out)
}

fn serve(addr: &str, workers: usize, engine: Engine) -> Result<String, CliError> {
    let config = ServerConfig { workers, engine, ..ServerConfig::default() };
    let handle = Server::bind(addr, Store::new(), config)
        .map_err(|e| CliError(format!("cannot bind `{addr}`: {e}")))?;
    // announced before blocking so scripts know the server is up (and,
    // with port 0, which port it got)
    let engine_name = match engine {
        Engine::EventLoop => "event-loop",
        Engine::WorkerPool => "worker-pool",
    };
    println!(
        "wcds-service listening on {} ({engine_name}, {workers} workers)",
        handle.local_addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let served = handle.join(); // blocks until a wire shutdown request
    Ok(format!("server stopped after {served} requests\n"))
}

fn query(
    addr: &str,
    action: QueryAction,
    repeat: u64,
    pipeline: bool,
) -> Result<String, CliError> {
    let mut c = Client::connect(addr)
        .map_err(|e| CliError(format!("cannot connect to `{addr}`: {e}")))?;
    if pipeline || repeat > 1 {
        return query_repeated(&mut c, &action, repeat, pipeline);
    }
    query_once(&mut c, action)
}

/// Issues the action `repeat` times — as one pipelined burst when
/// `--pipeline` is set, as sequential round trips otherwise — and
/// reports the aggregate instead of `repeat` copies of the rendering.
fn query_repeated(
    c: &mut Client,
    action: &QueryAction,
    repeat: u64,
    pipeline: bool,
) -> Result<String, CliError> {
    let n = usize::try_from(repeat).map_err(|_| CliError("--repeat too large".into()))?;
    let req = to_request(action)?;
    let start = std::time::Instant::now();
    let responses: Vec<Response> = if pipeline {
        c.pipeline(&vec![req; n])?
    } else {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(c.request(&req)?);
        }
        out
    };
    let elapsed = start.elapsed();
    let errors = responses.iter().filter(|r| matches!(r, Response::Error { .. })).count();
    let rate = if elapsed.as_secs_f64() > 0.0 {
        responses.len() as f64 / elapsed.as_secs_f64()
    } else {
        f64::INFINITY
    };
    let mode = if pipeline { "pipelined" } else { "sequential" };
    Ok(format!(
        "{} responses ({mode}): {} ok, {errors} errors in {elapsed:.2?} ({rate:.0} req/s)\n",
        responses.len(),
        responses.len() - errors,
    ))
}

/// Maps a parsed CLI action to its wire request (`--repeat`/
/// `--pipeline` paths; the one-shot path uses the typed client API).
fn to_request(action: &QueryAction) -> Result<Request, CliError> {
    Ok(match action {
        QueryAction::Ping => Request::Ping,
        QueryAction::List => Request::List,
        QueryAction::Shutdown => Request::Shutdown,
        QueryAction::Create { name, input } => {
            let payload = std::fs::read_to_string(input)
                .map_err(|e| CliError(format!("cannot read `{input}`: {e}")))?;
            Request::Create { name: name.clone(), payload }
        }
        QueryAction::Export { name, .. } => Request::Export { name: name.clone() },
        QueryAction::Construct { name } => Request::Construct { name: name.clone() },
        QueryAction::Route { name, from, to } => {
            Request::Route { name: name.clone(), from: *from, to: *to }
        }
        QueryAction::Broadcast { name, source } => {
            Request::Broadcast { name: name.clone(), source: *source }
        }
        QueryAction::Stats { name } => Request::Stats { name: name.clone() },
        QueryAction::Mutate { name, mutation } => {
            Request::Mutate { name: name.clone(), mutation: mutation.clone() }
        }
        QueryAction::Drop { name } => Request::Drop { name: name.clone() },
        QueryAction::Harden { name, k, m } => {
            Request::Harden { name: name.clone(), k: *k, m: *m }
        }
    })
}

fn query_once(c: &mut Client, action: QueryAction) -> Result<String, CliError> {
    match action {
        QueryAction::Ping => {
            c.ping()?;
            Ok("pong\n".to_string())
        }
        QueryAction::Create { name, input } => {
            let payload = std::fs::read_to_string(&input)
                .map_err(|e| CliError(format!("cannot read `{input}`: {e}")))?;
            let (n, m, mobile) = c.create(&name, &payload)?;
            Ok(format!(
                "created `{name}`: {n} nodes, {m} edges, {}\n",
                if mobile { "mobile" } else { "static" }
            ))
        }
        QueryAction::Export { name, output } => {
            let payload = c.export(&name)?;
            if output == "-" {
                return Ok(payload);
            }
            std::fs::write(&output, &payload)?;
            Ok(format!("wrote {} bytes to {output}\n", payload.len()))
        }
        QueryAction::Construct { name } => {
            let (mis, bridges, spanner_edges, epoch) = c.construct(&name)?;
            Ok(format!(
                "constructed `{name}` @ epoch {epoch}: |MIS| = {mis}, bridges = {bridges}, spanner |E'| = {spanner_edges}\n"
            ))
        }
        QueryAction::Route { name, from, to } => match c.route(&name, from, to)? {
            RouteOutcome::Path(path) => {
                Ok(format!("route   : {path:?}\nhops    : {}\n", path.len().saturating_sub(1)))
            }
            RouteOutcome::Degraded { unreachable } => Ok(format!(
                "degraded: no surviving route {from} → {to} ({unreachable} nodes unreachable)\n"
            )),
        },
        QueryAction::Broadcast { name, source } => match c.broadcast(&name, source)? {
            BroadcastOutcome::Done { forwarders, informed } => Ok(format!(
                "broadcast from {source}: {forwarders} forwarders, {informed} informed\n"
            )),
            BroadcastOutcome::Degraded { unreachable } => Ok(format!(
                "degraded: topology partitioned ({unreachable} nodes unreachable from {source})\n"
            )),
        },
        QueryAction::Harden { name, k, m } => {
            let out = c.harden(&name, k, m)?;
            Ok(format!(
                "hardened `{name}` to ({}, {}): achieved k = {}, {} dominators, spanner |E'| = {} @ epoch {}\n",
                out.k, out.m, out.achieved_k, out.dominators, out.spanner_edges, out.epoch
            ))
        }
        QueryAction::Stats { name } => {
            let s = c.stats(&name)?;
            let mut out = String::new();
            let _ = writeln!(out, "topology     : {name} ({})", if s.mobile { "mobile" } else { "static" });
            let _ = writeln!(out, "nodes/edges  : {} / {}", s.nodes, s.edges);
            let _ = writeln!(out, "epoch        : {} (bundle cached: {})", s.epoch, s.cached);
            let _ = writeln!(out, "backbone     : |MIS| = {}, bridges = {}, spanner |E'| = {}", s.mis, s.bridges, s.spanner_edges);
            let _ = writeln!(out, "cache        : {} hits, {} misses, {} rebuilds", s.cache_hits, s.cache_misses, s.rebuilds);
            let _ = writeln!(out, "leases       : {} waits, {} conflicts, {} batched, {} peak concurrent", s.lease_waits, s.lease_conflicts, s.batched_mutations, s.concurrent_repairs_max);
            if s.hardened_k > 0 {
                let _ = writeln!(out, "resilience   : target ({}, {}), achieved k = {}", s.hardened_k, s.hardened_m, s.achieved_k);
                let _ = writeln!(out, "availability : {} ok, {} degraded, {} unreachable, {} heals", s.routes_ok, s.routes_degraded, s.routes_unreachable, s.heals);
            }
            Ok(out)
        }
        QueryAction::Mutate { name, mutation } => {
            let (epoch, promoted, demoted) = c.mutate(&name, mutation)?;
            Ok(format!(
                "mutated `{name}` → epoch {epoch} (promoted {promoted:?}, demoted {demoted:?})\n"
            ))
        }
        QueryAction::List => {
            let names = c.list()?;
            if names.is_empty() {
                Ok("(no topologies)\n".to_string())
            } else {
                Ok(names.join("\n") + "\n")
            }
        }
        QueryAction::Drop { name } => {
            c.drop_topology(&name)?;
            Ok(format!("dropped `{name}`\n"))
        }
        QueryAction::Shutdown => {
            c.shutdown_server()?;
            Ok("server shutting down\n".to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn temp_path(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("wcds-cli-test-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn run(s: &str) -> Result<String, CliError> {
        execute(parse(&argv(s)).expect("parses"))
    }

    #[test]
    fn generate_then_stats_then_construct() {
        let path = temp_path("pipeline.graph");
        let msg =
            run(&format!("generate --model uniform --n 80 --side 5 --seed 3 -o {path}")).unwrap();
        assert!(msg.contains("80 nodes"));

        let stats = run(&format!("stats -i {path}")).unwrap();
        assert!(stats.contains("n=80"));
        assert!(stats.contains("total link length"));

        let built = run(&format!("construct -i {path} --algo algo2")).unwrap();
        assert!(built.contains("algorithm-2"));
        assert!(built.contains("valid     : true"));

        let pruned = run(&format!("construct -i {path} --algo algo2 --prune")).unwrap();
        assert!(pruned.contains("+ prune"));
        assert!(pruned.contains("valid     : true"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn generate_to_stdout() {
        let text = run("generate --model chain --n 5 -o -").unwrap();
        assert!(text.starts_with("nodes 5"));
        assert!(text.contains("edge 0 1"));
        assert!(text.contains("point 4"));
    }

    #[test]
    fn validate_reports_all_predicates() {
        let path = temp_path("validate.graph");
        run(&format!("generate --model chain --n 5 -o {path}")).unwrap();
        let out = run(&format!("validate -i {path} --set 0,2,4")).unwrap();
        assert!(out.contains("dominating          : true"));
        assert!(out.contains("maximal independent : true"));
        assert!(out.contains("weakly-connected DS : true"));
        assert!(out.contains("connected DS        : false"));

        let bad = run(&format!("validate -i {path} --set 0")).unwrap();
        assert!(bad.contains("dominating          : false"));
        assert!(bad.contains("undominated nodes"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn route_prints_stretch() {
        let path = temp_path("route.graph");
        run(&format!("generate --model chain --n 9 -o {path}")).unwrap();
        let out = run(&format!("route -i {path} --from 0 --to 8")).unwrap();
        assert!(out.contains("route"));
        assert!(out.contains("stretch"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simulate_both_protocols() {
        let path = temp_path("simulate.graph");
        run(&format!("generate --model uniform --n 40 --side 3 --seed 1 -o {path}")).unwrap();
        let a1 = run(&format!("simulate -i {path} --algo algo1")).unwrap();
        assert!(a1.contains("election"));
        assert!(a1.contains("valid    : true"));
        let a2 = run(&format!("simulate -i {path} --algo algo2 --async-seed 4")).unwrap();
        assert!(a2.contains("valid  : true"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn useful_errors() {
        assert!(run("stats -i /nonexistent/file.graph").unwrap_err().0.contains("cannot read"));
        let path = temp_path("err.graph");
        run(&format!("generate --model uniform --n 30 --side 50 --seed 1 -o {path}")).unwrap();
        // side 50 with 30 nodes is almost surely disconnected
        let err = run(&format!("construct -i {path} --algo algo1")).unwrap_err();
        assert!(err.0.contains("not connected"));
        let err = run(&format!("validate -i {path} --set 999")).unwrap_err();
        assert!(err.0.contains("out of range"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compare_lists_all_algorithms_and_optimum() {
        let path = temp_path("compare.graph");
        run(&format!("generate --model uniform --n 16 --side 2.2 --seed 6 -o {path}")).unwrap();
        // resample until connected (tiny instances can split)
        let mut seed = 6;
        loop {
            let out = run(&format!("construct -i {path} --algo algo2"));
            if out.is_ok() {
                break;
            }
            seed += 1;
            run(&format!("generate --model uniform --n 16 --side 2.2 --seed {seed} -o {path}"))
                .unwrap();
        }
        let out = run(&format!("compare -i {path}")).unwrap();
        for name in ["algorithm-1", "algorithm-2", "greedy-wcds", "greedy-cds", "wu-li", "mis-tree-cds"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(out.contains("exact minimum WCDS"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn render_produces_svg() {
        let path = temp_path("render.graph");
        run(&format!("generate --model uniform --n 40 --side 3 --seed 1 -o {path}")).unwrap();
        let svg = run(&format!("render -i {path} -o -")).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("unit-disk graph"));
        let with_backbone = run(&format!("render -i {path} --algo algo2 -o -")).unwrap();
        assert!(with_backbone.contains("algorithm-2 backbone"));
        // graph files without points cannot be rendered
        let bare = temp_path("render-bare.graph");
        std::fs::write(&bare, "nodes 2\nedge 0 1\n").unwrap();
        let err = run(&format!("render -i {bare} -o -")).unwrap_err();
        assert!(err.0.contains("positions"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&bare);
    }

    #[test]
    fn help_prints_usage() {
        let out = execute(Command::Help).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("serve"));
        assert!(out.contains("query"));
    }

    /// The full serve/query session the CI smoke job scripts, run
    /// in-process: serve in a thread, drive it with `wcds query`
    /// invocations, shut it down over the wire, and check the serve
    /// command returns.
    #[test]
    fn serve_and_query_session() {
        // reserve a free port, then hand it to `wcds serve` (the gap is
        // a benign race: nothing else in this test suite binds ports)
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");

        let server = {
            let addr = addr.clone();
            std::thread::spawn(move || run(&format!("serve --addr {addr} --workers 2")))
        };
        // wait for the listener to come up
        let mut up = false;
        for _ in 0..100 {
            if std::net::TcpStream::connect(&addr).is_ok() {
                up = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(up, "server never started listening on {addr}");

        let graph = temp_path("serve-session.graph");
        run(&format!("generate --model uniform --n 50 --side 3.5 --seed 11 -o {graph}")).unwrap();

        assert_eq!(run(&format!("query ping --addr {addr}")).unwrap(), "pong\n");
        let created =
            run(&format!("query create --addr {addr} --name net -i {graph}")).unwrap();
        assert!(created.contains("50 nodes"), "{created}");
        assert!(created.contains("mobile"), "{created}");

        let constructed = run(&format!("query construct --addr {addr} --name net")).unwrap();
        assert!(constructed.contains("epoch 0"), "{constructed}");

        let routed =
            run(&format!("query route --addr {addr} --name net --from 0 --to 49")).unwrap();
        assert!(routed.contains("route"), "{routed}");

        let mutated =
            run(&format!("query mutate --addr {addr} --name net --join 1.0,1.0")).unwrap();
        assert!(mutated.contains("epoch 1"), "{mutated}");

        let rerouted =
            run(&format!("query route --addr {addr} --name net --from 0 --to 50")).unwrap();
        assert!(rerouted.contains("50"), "{rerouted}");

        let stats = run(&format!("query stats --addr {addr} --name net")).unwrap();
        assert!(stats.contains("epoch        : 1"), "{stats}");

        let listed = run(&format!("query list --addr {addr}")).unwrap();
        assert_eq!(listed, "net\n");

        let exported = run(&format!("query export --addr {addr} --name net")).unwrap();
        assert!(exported.starts_with("nodes 51"), "{exported}");

        // errors come back typed, not as hangs or dropped connections
        let err = run(&format!("query stats --addr {addr} --name ghost")).unwrap_err();
        assert!(err.0.contains("not-found"), "{err}");

        assert_eq!(
            run(&format!("query shutdown --addr {addr}")).unwrap(),
            "server shutting down\n"
        );
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("server stopped"), "{summary}");
        let _ = std::fs::remove_file(&graph);
    }

    #[test]
    fn every_algorithm_constructs_via_cli() {
        let path = temp_path("algos.graph");
        run(&format!("generate --model uniform --n 60 --side 4 --seed 2 -o {path}")).unwrap();
        for algo in ["algo1", "algo2", "greedy-wcds", "greedy-cds", "wu-li", "mis-tree"] {
            let out = run(&format!("construct -i {path} --algo {algo}")).unwrap();
            assert!(out.contains("valid     : true"), "{algo}: {out}");
        }
        let _ = std::fs::remove_file(&path);
    }
}
