//! The `wcds` command-line tool; all logic lives in the library so it
//! can be unit-tested (see `wcds_cli::run`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match wcds_cli::run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
