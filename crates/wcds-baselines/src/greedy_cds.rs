//! Guha–Khuller-style greedy connected dominating set.
//!
//! The classic "tree growing" spine construction behind the CDS-based
//! virtual backbones the paper cites (`[6]`, `[14]`): start from the
//! maximum-degree node, keep a connected black set, and repeatedly
//! blacken the gray node covering the most still-white nodes.
//! Approximation ratio `2(1 + H(Δ))` on general graphs.

use wcds_core::{ConstructionResult, Wcds, WcdsConstruction};
use wcds_graph::{domination, traversal, Graph, NodeId};

/// The greedy tree-growing CDS construction.
///
/// # Examples
///
/// ```
/// use wcds_baselines::GreedyCds;
/// use wcds_core::WcdsConstruction;
/// use wcds_graph::generators;
///
/// let g = generators::path(7);
/// let result = GreedyCds::new().construct(&g);
/// assert!(result.wcds.is_valid(&g));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyCds {
    _priv: (),
}

impl GreedyCds {
    /// Creates the construction.
    pub fn new() -> Self {
        Self { _priv: () }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum C {
    White,
    Gray,
    Black,
}

impl WcdsConstruction for GreedyCds {
    fn construct(&self, g: &Graph) -> ConstructionResult {
        assert!(traversal::is_connected(g), "greedy CDS requires a connected graph");
        let n = g.node_count();
        let mut color = vec![C::White; n];
        let mut black: Vec<NodeId> = Vec::new();

        if n == 1 {
            black.push(0);
            color[0] = C::Black;
        } else if n > 1 {
            // seed: maximum-degree node (lowest id on ties)
            let seed = g.nodes().max_by_key(|&u| (g.degree(u), std::cmp::Reverse(u))).expect("n > 1");
            color[seed] = C::Black;
            black.push(seed);
            for v in g.adj(seed) {
                color[v] = C::Gray;
            }
            // grow: blacken the gray node with the most white neighbors
            while color.contains(&C::White) {
                let pick = g
                    .nodes()
                    .filter(|&u| color[u] == C::Gray)
                    .max_by_key(|&u| {
                        let whites =
                            g.adj(u).filter(|&v| color[v] == C::White).count();
                        (whites, std::cmp::Reverse(u))
                    })
                    .expect("whites remain, so a gray frontier exists in a connected graph");
                let whites = g.adj(pick).filter(|&v| color[v] == C::White).count();
                assert!(whites > 0, "stalled: frontier node covers no white node");
                color[pick] = C::Black;
                black.push(pick);
                for v in g.adj(pick) {
                    if color[v] == C::White {
                        color[v] = C::Gray;
                    }
                }
            }
        }
        black.sort_unstable();
        debug_assert!(domination::is_connected_dominating_set(g, &black) || n == 0);
        let wcds = Wcds::from_mis(black);
        let spanner = wcds.weakly_induced_subgraph(g);
        ConstructionResult { wcds, spanner }
    }

    fn name(&self) -> &'static str {
        "greedy-cds"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_geom::deploy;
    use wcds_graph::{generators, UnitDiskGraph};

    #[test]
    fn star_picks_only_center() {
        let g = generators::star(10);
        let result = GreedyCds::new().construct(&g);
        assert_eq!(result.wcds.nodes(), &[0]);
    }

    #[test]
    fn path_cds_is_the_interior() {
        let g = generators::path(6);
        let result = GreedyCds::new().construct(&g);
        assert!(domination::is_connected_dominating_set(&g, result.wcds.nodes()));
        // a CDS of a path must contain all interior nodes
        assert!(result.wcds.len() >= 4);
    }

    #[test]
    fn output_is_cds_on_random_graphs() {
        for seed in 0..8 {
            let g = generators::connected_gnp(40, 0.1, seed);
            let result = GreedyCds::new().construct(&g);
            assert!(
                domination::is_connected_dominating_set(&g, result.wcds.nodes()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn cds_is_never_smaller_than_mwcds_relaxation_suggests() {
        // |MWCDS| ≤ |MCDS|: the greedy WCDS should not exceed the greedy
        // CDS by much on UDGs; check both run and validate
        use crate::GreedyWcds;
        for seed in 0..3 {
            let udg = UnitDiskGraph::build(deploy::uniform(70, 5.0, 5.0, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            let cds = GreedyCds::new().construct(udg.graph());
            let wcds = GreedyWcds::new().construct(udg.graph());
            assert!(cds.wcds.is_valid(udg.graph()));
            assert!(wcds.wcds.is_valid(udg.graph()));
        }
    }

    #[test]
    fn singleton_graph() {
        let g = Graph::empty(1);
        assert_eq!(GreedyCds::new().construct(&g).wcds.nodes(), &[0]);
    }

    #[test]
    fn two_node_graph() {
        let g = generators::path(2);
        let result = GreedyCds::new().construct(&g);
        assert!(domination::is_connected_dominating_set(&g, result.wcds.nodes()));
        assert_eq!(result.wcds.len(), 1);
    }
}
