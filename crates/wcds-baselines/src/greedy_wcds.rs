//! Chen–Liestman greedy WCDS (`O(ln Δ)` approximation).
//!
//! The "piece" abstraction: given a partial solution `S`, a *piece* is
//! either a still-undominated (white) vertex or a connected component of
//! the subgraph weakly induced by `S`. Each greedy step adds the vertex
//! that merges the most pieces; the algorithm stops when exactly one
//! piece remains, at which point `S` is a WCDS. This is the centralized
//! approximation the paper cites as its prior-art baseline `[8]`.

use wcds_core::{ConstructionResult, Wcds, WcdsConstruction};
use wcds_graph::{traversal, Graph, NodeId};

/// The Chen–Liestman greedy WCDS construction.
///
/// # Examples
///
/// ```
/// use wcds_baselines::GreedyWcds;
/// use wcds_core::WcdsConstruction;
/// use wcds_graph::generators;
///
/// let g = generators::path(9);
/// let result = GreedyWcds::new().construct(&g);
/// assert!(result.wcds.is_valid(&g));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyWcds {
    _priv: (),
}

impl GreedyWcds {
    /// Creates the construction.
    pub fn new() -> Self {
        Self { _priv: () }
    }
}

/// Union-find over pieces.
#[derive(Debug)]
struct Dsu {
    parent: Vec<usize>,
    count: usize,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self { parent: (0..n).collect(), count: n }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        self.count -= 1;
        true
    }
}

/// Number of pieces after hypothetically adding `v` to `s`.
///
/// Pieces are tracked with a union-find keyed by vertex: vertices
/// covered by `s` (dominated or in `s`) are unioned along black edges;
/// each white vertex is its own piece. Isolated covered vertices that
/// are *not* part of any black edge but are dominated... cannot exist —
/// a dominated vertex has a black edge to its dominator. So the piece
/// count is `#white + #components(weakly induced by s)` restricted to
/// touched vertices.
fn piece_count(g: &Graph, in_s: &[bool]) -> (usize, usize) {
    let n = g.node_count();
    let mut dsu = Dsu::new(n);
    let mut touched = vec![false; n];
    for u in g.nodes() {
        for v in g.adj(u) {
            if u < v && (in_s[u] || in_s[v]) {
                dsu.union(u, v);
                touched[u] = true;
                touched[v] = true;
            }
        }
    }
    for u in g.nodes() {
        if in_s[u] {
            touched[u] = true; // isolated member still forms a piece
        }
    }
    // every vertex is exactly one of: white (untouched) or in a black
    // component; count white vertices + distinct black roots
    let mut roots = std::collections::BTreeSet::new();
    let mut whites = 0;
    for u in g.nodes() {
        if touched[u] {
            roots.insert(dsu.find(u));
        } else {
            whites += 1;
        }
    }
    (whites + roots.len(), whites)
}

impl WcdsConstruction for GreedyWcds {
    fn construct(&self, g: &Graph) -> ConstructionResult {
        assert!(traversal::is_connected(g), "greedy WCDS requires a connected graph");
        let n = g.node_count();
        let mut in_s = vec![false; n];
        let mut chosen: Vec<NodeId> = Vec::new();

        if n > 0 {
            // all-white start: n pieces, n whites
            let mut state = piece_count(g, &in_s);
            // done when a single piece remains and it is black (no whites)
            while state.0 > 1 || state.1 > 0 {
                // pick the vertex whose addition minimises (pieces, whites)
                let mut best: Option<((usize, usize), NodeId)> = None;
                for v in g.nodes() {
                    if in_s[v] {
                        continue;
                    }
                    in_s[v] = true;
                    let p = piece_count(g, &in_s);
                    in_s[v] = false;
                    if best.is_none_or(|(bp, bv)| p < bp || (p == bp && v < bv)) {
                        best = Some((p, v));
                    }
                }
                let (p, v) = best.expect("a connected graph always has a merging vertex");
                assert!(p < state, "greedy made no progress; graph not connected?");
                in_s[v] = true;
                chosen.push(v);
                state = p;
            }
        }
        chosen.sort_unstable();
        let wcds = Wcds::from_mis(chosen);
        let spanner = wcds.weakly_induced_subgraph(g);
        ConstructionResult { wcds, spanner }
    }

    fn name(&self) -> &'static str {
        "greedy-wcds"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_geom::deploy;
    use wcds_graph::{generators, UnitDiskGraph};

    #[test]
    fn piece_count_baseline_is_n() {
        let g = generators::path(5);
        assert_eq!(piece_count(&g, &[false; 5]), (5, 5));
    }

    #[test]
    fn piece_count_with_one_member() {
        // path 0-1-2-3-4 with S={2}: black edges 1-2, 2-3 form one
        // piece; 0 and 4 stay white → 3 pieces, 2 of them white
        let g = generators::path(5);
        let mut in_s = vec![false; 5];
        in_s[2] = true;
        assert_eq!(piece_count(&g, &in_s), (3, 2));
    }

    #[test]
    fn star_needs_one_node() {
        let g = generators::star(8);
        let result = GreedyWcds::new().construct(&g);
        assert_eq!(result.wcds.nodes(), &[0]);
    }

    #[test]
    fn path9_greedy_is_small() {
        let g = generators::path(9);
        let result = GreedyWcds::new().construct(&g);
        assert!(result.wcds.is_valid(&g));
        // the optimum WCDS of P9 has 3 nodes ({1, 4, 7}); the myopic
        // piece-merging greedy lands at 5 — well within its O(ln Δ)
        // guarantee but visibly non-optimal
        assert!(result.wcds.len() <= 5, "greedy produced {}", result.wcds.len());
    }

    #[test]
    fn valid_on_random_graphs() {
        for seed in 0..8 {
            let g = generators::connected_gnp(30, 0.12, seed);
            let result = GreedyWcds::new().construct(&g);
            assert!(result.wcds.is_valid(&g), "seed {seed}");
        }
    }

    #[test]
    fn valid_on_udgs_and_not_larger_than_algorithm1() {
        use wcds_core::algo1::AlgorithmOne;
        for seed in 0..4 {
            let udg = UnitDiskGraph::build(deploy::uniform(80, 5.0, 5.0, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            let greedy = GreedyWcds::new().construct(udg.graph());
            let algo1 = AlgorithmOne::new().construct(udg.graph());
            assert!(greedy.wcds.is_valid(udg.graph()));
            // the global greedy typically beats the MIS-based bound;
            // allow slack but catch gross regressions
            assert!(
                greedy.wcds.len() <= algo1.wcds.len() + 2,
                "seed {seed}: greedy {} vs algo1 {}",
                greedy.wcds.len(),
                algo1.wcds.len()
            );
        }
    }

    #[test]
    fn singleton_graph() {
        let g = Graph::empty(1);
        let result = GreedyWcds::new().construct(&g);
        assert_eq!(result.wcds.nodes(), &[0]);
    }
}
