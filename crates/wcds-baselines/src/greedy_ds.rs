//! Plain greedy dominating set — the connectivity-free floor.
//!
//! The classic `(1 + ln Δ)` set-cover greedy for **domination only**.
//! It is not a WCDS construction (its output usually fails weak
//! connectivity); experiments use it as the lower reference point of
//! the DS ⊆ WCDS ⊆ CDS size hierarchy the paper leans on ("the size of
//! the MWCDS is trivially smaller than or equal to the size of the
//! MCDS").

use wcds_graph::{domination, Graph, NodeId};

/// Greedy minimum dominating set (not necessarily weakly connected).
///
/// At each step picks the node covering the most still-uncovered nodes
/// (lowest ID on ties) until everything is covered.
///
/// # Examples
///
/// ```
/// use wcds_baselines::greedy_ds::greedy_dominating_set;
/// use wcds_graph::{domination, generators};
///
/// let g = generators::star(6);
/// let ds = greedy_dominating_set(&g);
/// assert_eq!(ds, vec![0]);
/// assert!(domination::is_dominating_set(&g, &ds));
/// ```
pub fn greedy_dominating_set(g: &Graph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut covered = vec![false; n];
    let mut remaining = n;
    let mut ds = Vec::new();
    while remaining > 0 {
        // gain of u = uncovered nodes in N[u]
        let (best, gain) = g
            .nodes()
            .map(|u| {
                let mut gain = usize::from(!covered[u]);
                gain += g.adj(u).filter(|&v| !covered[v]).count();
                (u, gain)
            })
            .max_by_key(|&(u, gain)| (gain, std::cmp::Reverse(u)))
            .expect("remaining > 0 implies nodes exist");
        debug_assert!(gain > 0, "greedy stalled with uncovered nodes");
        ds.push(best);
        if !covered[best] {
            covered[best] = true;
            remaining -= 1;
        }
        for v in g.adj(best) {
            if !covered[v] {
                covered[v] = true;
                remaining -= 1;
            }
        }
    }
    ds.sort_unstable();
    debug_assert!(domination::is_dominating_set(g, &ds));
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_graph::generators;

    #[test]
    fn star_needs_only_center() {
        assert_eq!(greedy_dominating_set(&generators::star(9)), vec![0]);
    }

    #[test]
    fn path_greedy_is_near_optimal() {
        // γ(P9) = 3; greedy achieves it
        let ds = greedy_dominating_set(&generators::path(9));
        assert!(domination::is_dominating_set(&generators::path(9), &ds));
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn dominates_random_graphs() {
        for seed in 0..8 {
            let g = generators::connected_gnp(50, 0.08, seed);
            let ds = greedy_dominating_set(&g);
            assert!(domination::is_dominating_set(&g, &ds), "seed {seed}");
        }
    }

    #[test]
    fn ds_is_never_larger_than_wcds() {
        use wcds_core::algo2::AlgorithmTwo;
        use wcds_core::WcdsConstruction;
        for seed in 0..5 {
            let g = generators::connected_gnp(60, 0.08, seed);
            let ds = greedy_dominating_set(&g).len();
            let wcds = AlgorithmTwo::new().construct(&g).wcds.len();
            // not a theorem for the *greedy* sizes, but the hierarchy
            // should show through with generous slack
            assert!(ds <= wcds + 5, "seed {seed}: greedy DS {ds} vs WCDS {wcds}");
        }
    }

    #[test]
    fn handles_edgeless_graph() {
        let g = Graph::empty(4);
        assert_eq!(greedy_dominating_set(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_graph() {
        assert!(greedy_dominating_set(&Graph::empty(0)).is_empty());
    }
}
