//! Wu–Li marking + pruning CDS heuristic (the paper's citation `[16]`).
//!
//! *Marking*: a node is marked iff it has two neighbors that are not
//! adjacent to each other. On a connected, non-complete graph the marked
//! set is a connected dominating set.
//!
//! *Pruning* (Rules 1 and 2): a marked node `u` is unmarked when its
//! closed neighborhood is covered by one marked neighbor with larger ID
//! (Rule 1), or by two adjacent marked neighbors both with larger IDs
//! (Rule 2). Pruning preserves the CDS property while shrinking the set.
//!
//! Complete graphs have no marked nodes; the construction falls back to
//! the single node 0 (any single node dominates and trivially connects).

use wcds_core::{ConstructionResult, Wcds, WcdsConstruction};
use wcds_graph::{domination, traversal, Graph, NodeId};

/// The Wu–Li marking construction with both pruning rules.
///
/// # Examples
///
/// ```
/// use wcds_baselines::WuLiCds;
/// use wcds_core::WcdsConstruction;
/// use wcds_graph::generators;
///
/// let g = generators::cycle(8);
/// let result = WuLiCds::new().construct(&g);
/// assert!(result.wcds.is_valid(&g));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct WuLiCds {
    _priv: (),
}

impl WuLiCds {
    /// Creates the construction.
    pub fn new() -> Self {
        Self { _priv: () }
    }

    /// The marking step alone (before pruning), exposed for the
    /// ablation experiment comparing backbone sizes with and without
    /// the pruning rules.
    pub fn marked_set(&self, g: &Graph) -> Vec<NodeId> {
        g.nodes()
            .filter(|&u| {
                let nb: Vec<NodeId> = g.adj(u).collect();
                nb.iter().enumerate().any(|(i, &a)| {
                    nb[i + 1..].iter().any(|&b| !g.has_edge(a, b))
                })
            })
            .collect()
    }
}

/// Whether `cover` (closed neighborhoods of the given nodes) covers all
/// of `u`'s neighbors.
fn neighborhood_covered(g: &Graph, u: NodeId, cover: &[NodeId]) -> bool {
    g.adj(u).all(|x| {
        cover.iter().any(|&c| x == c || g.has_edge(c, x))
    })
}

impl WcdsConstruction for WuLiCds {
    fn construct(&self, g: &Graph) -> ConstructionResult {
        assert!(traversal::is_connected(g), "Wu–Li requires a connected graph");
        let mut marked: Vec<bool> = vec![false; g.node_count()];
        for u in self.marked_set(g) {
            marked[u] = true;
        }

        // Rule 1: unmark u if a single marked neighbor v with v > u
        // covers N(u).
        // Rule 2: unmark u if two adjacent marked neighbors v, w with
        // v, w > u cover N(u).
        // Applied in ascending id order; each node is unmarked at most
        // once and the rules only consult still-marked nodes, matching
        // the distributed formulation where coverage claims reference
        // current marker status.
        for u in g.nodes() {
            if !marked[u] {
                continue;
            }
            let higher_marked: Vec<NodeId> =
                g.adj(u).filter(|&v| marked[v] && v > u).collect();
            let rule1 = higher_marked.iter().any(|&v| neighborhood_covered(g, u, &[v]));
            let rule2 = !rule1
                && higher_marked.iter().enumerate().any(|(i, &v)| {
                    higher_marked[i + 1..]
                        .iter()
                        .any(|&w| g.has_edge(v, w) && neighborhood_covered(g, u, &[v, w]))
                });
            if rule1 || rule2 {
                marked[u] = false;
            }
        }

        let mut set: Vec<NodeId> = g.nodes().filter(|&u| marked[u]).collect();
        if set.is_empty() && g.node_count() > 0 {
            // complete graph (or single node): one node suffices
            set.push(0);
        }
        debug_assert!(
            g.node_count() == 0 || domination::is_connected_dominating_set(g, &set),
            "Wu–Li output is not a CDS"
        );
        let wcds = Wcds::from_mis(set);
        let spanner = wcds.weakly_induced_subgraph(g);
        ConstructionResult { wcds, spanner }
    }

    fn name(&self) -> &'static str {
        "wu-li"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_geom::deploy;
    use wcds_graph::{generators, UnitDiskGraph};

    #[test]
    fn path_marks_interior_nodes() {
        let g = generators::path(6);
        let marked = WuLiCds::new().marked_set(&g);
        assert_eq!(marked, vec![1, 2, 3, 4]);
    }

    #[test]
    fn complete_graph_marks_nothing_but_falls_back() {
        let g = generators::complete(5);
        assert!(WuLiCds::new().marked_set(&g).is_empty());
        let result = WuLiCds::new().construct(&g);
        assert_eq!(result.wcds.nodes(), &[0]);
        assert!(result.wcds.is_valid(&g));
    }

    #[test]
    fn output_is_cds_on_random_graphs() {
        for seed in 0..10 {
            let g = generators::connected_gnp(40, 0.12, seed);
            let result = WuLiCds::new().construct(&g);
            assert!(
                domination::is_connected_dominating_set(&g, result.wcds.nodes()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn pruning_never_grows_the_set() {
        for seed in 0..6 {
            let udg = UnitDiskGraph::build(deploy::uniform(100, 5.0, 5.0, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            let algo = WuLiCds::new();
            let marked = algo.marked_set(udg.graph());
            let pruned = algo.construct(udg.graph());
            assert!(pruned.wcds.len() <= marked.len().max(1), "seed {seed}");
        }
    }

    #[test]
    fn cycle_keeps_enough_nodes() {
        let g = generators::cycle(8);
        let result = WuLiCds::new().construct(&g);
        // a CDS of C8 needs at least 6 nodes... no: C8 CDS needs n-2 = 6
        assert!(result.wcds.len() >= 6);
        assert!(domination::is_connected_dominating_set(&g, result.wcds.nodes()));
    }

    #[test]
    fn grid_output_validates() {
        let g = generators::grid(5, 5);
        let result = WuLiCds::new().construct(&g);
        assert!(domination::is_connected_dominating_set(&g, result.wcds.nodes()));
    }
}
