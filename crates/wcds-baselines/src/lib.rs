//! Baseline dominating-set algorithms for comparison against the
//! paper's constructions.
//!
//! The paper positions its two algorithms against two families of prior
//! work, all of which are implemented here so the experiment harness can
//! reproduce the comparisons:
//!
//! * [`greedy_wcds`] — the Chen–Liestman piece-merging greedy for
//!   **WCDS** (the `O(ln Δ)`-approximation the paper cites as `[8]`);
//! * [`greedy_cds`] — the Guha–Khuller-style greedy for **CDS** (the
//!   spine construction behind `[6]` and `[14]`);
//! * [`wu_li`] — the Wu–Li marking + pruning CDS heuristic (`[16]`);
//! * [`mis_tree_cds`] — the MIS-plus-connectors CDS of Alzoubi, Wan and
//!   Frieder's companion papers (`[2]`–`[5]`);
//! * [`exact`] — exact minimum DS / CDS / WCDS by bounded subset search,
//!   plus certified lower bounds, so approximation ratios can be
//!   *measured* rather than estimated;
//! * [`proximity`] — the position-BASED sparse spanners of the related
//!   work (`[12]`, `[15]`): RNG and Gabriel graphs, for the position-less
//!   vs position-based comparison.
//!
//! Every baseline implements
//! [`WcdsConstruction`](wcds_core::WcdsConstruction) (a CDS is in
//! particular a WCDS), so experiments can sweep algorithms uniformly.

pub mod exact;
pub mod greedy_cds;
pub mod greedy_ds;
pub mod greedy_wcds;
pub mod mis_tree_cds;
pub mod proximity;
pub mod wu_li;

pub use greedy_cds::GreedyCds;
pub use greedy_wcds::GreedyWcds;
pub use mis_tree_cds::MisTreeCds;
pub use wu_li::WuLiCds;
