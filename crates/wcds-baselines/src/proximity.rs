//! Position-**based** proximity spanners: RNG and Gabriel graphs.
//!
//! The paper's pitch is a *position-less* sparse spanner; its related
//! work (`[12]` GPSR, `[15]` RNG broadcasting) builds spanners **from node
//! coordinates**. These classic constructions are implemented here so
//! the evaluation can put the WCDS spanner side by side with what
//! position information buys:
//!
//! * **Relative Neighborhood Graph** — keep edge `(u, v)` iff no
//!   witness `w` satisfies `max(d(u,w), d(w,v)) < d(u,v)`;
//! * **Gabriel Graph** — keep `(u, v)` iff no witness lies strictly
//!   inside the disk with diameter `uv`
//!   (`d(u,w)² + d(w,v)² < d(u,v)²`).
//!
//! Both are connected subgraphs of a connected UDG with `O(n)` edges
//! (`RNG ⊆ Gabriel`); neither is a *dominating-set* backbone — they
//! sparsify edges, not nodes, which is exactly the contrast the
//! comparison experiment draws.

use wcds_graph::{Graph, GraphBuilder, UnitDiskGraph};

/// The relative neighborhood graph restricted to UDG edges.
///
/// `O(n · Δ²)`: witnesses for an edge are sought among the endpoints'
/// UDG neighbors (any eliminating witness is within range of both
/// endpoints, hence a common neighbor).
///
/// # Examples
///
/// ```
/// use wcds_baselines::proximity::relative_neighborhood_graph;
/// use wcds_geom::deploy;
/// use wcds_graph::UnitDiskGraph;
///
/// let udg = UnitDiskGraph::build(deploy::uniform(100, 5.0, 5.0, 1), 1.0);
/// let rng = relative_neighborhood_graph(&udg);
/// assert!(rng.edge_count() <= udg.graph().edge_count());
/// ```
pub fn relative_neighborhood_graph(udg: &UnitDiskGraph) -> Graph {
    proximity_filter(udg, |duv2, duw2, dwv2| duw2 < duv2 && dwv2 < duv2)
}

/// The Gabriel graph restricted to UDG edges.
pub fn gabriel_graph(udg: &UnitDiskGraph) -> Graph {
    proximity_filter(udg, |duv2, duw2, dwv2| duw2 + dwv2 < duv2)
}

/// Shared edge filter: drop `(u, v)` when some common UDG neighbor `w`
/// satisfies `eliminates(d(u,v)², d(u,w)², d(w,v)²)`.
fn proximity_filter<F>(udg: &UnitDiskGraph, eliminates: F) -> Graph
where
    F: Fn(f64, f64, f64) -> bool,
{
    let g = udg.graph();
    let pts = udg.points();
    let mut b = GraphBuilder::new(g.node_count());
    for e in g.edges() {
        let (u, v) = e.endpoints();
        let duv2 = pts[u].distance_squared(pts[v]);
        // witnesses must be adjacent to both endpoints in the UDG
        // (they are within d(u,v) ≤ 1 of each)
        let killed = g.adj(u).any(|w| {
            w != v
                && g.has_edge(w, v)
                && eliminates(duv2, pts[u].distance_squared(pts[w]), pts[w].distance_squared(pts[v]))
        });
        if !killed {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_geom::{deploy, Point};
    use wcds_graph::traversal;

    fn dense_udg(seed: u64) -> UnitDiskGraph {
        UnitDiskGraph::build(deploy::uniform(200, 6.0, 6.0, seed), 1.0)
    }

    #[test]
    fn rng_is_subgraph_of_gabriel_is_subgraph_of_udg() {
        let udg = dense_udg(1);
        let rng = relative_neighborhood_graph(&udg);
        let gabriel = gabriel_graph(&udg);
        assert!(udg.graph().contains_subgraph(&gabriel));
        assert!(gabriel.contains_subgraph(&rng));
    }

    #[test]
    fn both_preserve_connectivity() {
        for seed in 0..6 {
            let udg = dense_udg(seed);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            assert!(
                traversal::is_connected(&relative_neighborhood_graph(&udg)),
                "RNG disconnected (seed {seed})"
            );
            assert!(
                traversal::is_connected(&gabriel_graph(&udg)),
                "Gabriel disconnected (seed {seed})"
            );
        }
    }

    #[test]
    fn rng_of_dense_clique_is_sparse() {
        // many points in a small disk: the UDG is complete, the RNG is
        // nearly a tree
        let udg = UnitDiskGraph::build(deploy::gaussian_blob(40, 1.0, 1.0, 0.15, 3), 1.0);
        let rng = relative_neighborhood_graph(&udg);
        assert!(udg.graph().edge_count() > 5 * rng.edge_count());
        assert!(rng.edge_count() < 3 * 40, "RNG must have O(n) edges");
    }

    #[test]
    fn triangle_loses_its_longest_edge_in_rng() {
        // isoceles triangle: the long edge has the apex as witness
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.9, 0.0), Point::new(0.45, 0.2)];
        let udg = UnitDiskGraph::build(pts, 1.0);
        assert_eq!(udg.graph().edge_count(), 3);
        let rng = relative_neighborhood_graph(&udg);
        assert!(!rng.has_edge(0, 1), "long edge must be eliminated");
        assert!(rng.has_edge(0, 2) && rng.has_edge(2, 1));
    }

    #[test]
    fn right_angle_witness_splits_gabriel_but_not_rng() {
        // w on the circle with diameter uv (right angle at w):
        // Gabriel keeps uv (strict inequality), RNG also keeps it
        // (max(duw, dwv) == duv/√2·… < duv though!) — pick w so that
        // it eliminates in Gabriel but not in RNG:
        // RNG eliminates iff max(duw, dwv) < duv; Gabriel iff
        // duw² + dwv² < duv². Take duv = 1, duw = 0.9, dwv = 0.3:
        // max = 0.9 < 1 → RNG eliminates too. Take duw = 0.8,
        // dwv = 0.55: 0.64+0.3025 = 0.9425 < 1 → Gabriel kills;
        // max = 0.8 < 1 → RNG kills as well (RNG ⊆ Gabriel). So just
        // assert the inclusion on a concrete instance instead:
        let udg = dense_udg(7);
        let rng = relative_neighborhood_graph(&udg);
        let gabriel = gabriel_graph(&udg);
        assert!(gabriel.edge_count() >= rng.edge_count());
    }

    #[test]
    fn edges_per_node_is_constant_at_scale() {
        for n in [100usize, 400] {
            let side = (n as f64 * std::f64::consts::PI / 14.0).sqrt();
            let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, 5), 1.0);
            let rng = relative_neighborhood_graph(&udg);
            let per_node = rng.edge_count() as f64 / n as f64;
            assert!(per_node < 3.0, "RNG edges/node = {per_node} at n = {n}");
        }
    }
}
