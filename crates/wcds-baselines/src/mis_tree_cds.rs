//! MIS-plus-connectors CDS (Alzoubi–Wan–Frieder's companion
//! construction, the paper's citations `[2]`–`[5]`).
//!
//! Compute an MIS `S` (an independent dominating set), then connect it:
//! build the auxiliary graph `H` over `S` with an edge between MIS nodes
//! at hop distance 2 or 3 (Lemma 3 guarantees `H` is connected), take a
//! spanning tree of `H`, and for each tree edge add the 1–2 intermediate
//! relay nodes of a shortest path. `S` plus the relays is a **connected**
//! dominating set with constant approximation ratio on UDGs — the
//! stronger (and larger) cousin of the paper's WCDS constructions.

use wcds_core::mis::{greedy_mis, RankingMode};
use wcds_core::{ConstructionResult, Wcds, WcdsConstruction};
use wcds_graph::{domination, traversal, Graph, NodeId};
use std::collections::BTreeSet;

/// The MIS + spanning-tree-connectors CDS construction.
///
/// # Examples
///
/// ```
/// use wcds_baselines::MisTreeCds;
/// use wcds_core::WcdsConstruction;
/// use wcds_graph::generators;
///
/// let g = generators::path(9);
/// let result = MisTreeCds::new().construct(&g);
/// assert!(result.wcds.is_valid(&g));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MisTreeCds {
    _priv: (),
}

impl MisTreeCds {
    /// Creates the construction.
    pub fn new() -> Self {
        Self { _priv: () }
    }

    /// Returns `(mis, connectors)` separately.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected.
    pub fn construct_parts(&self, g: &Graph) -> (Vec<NodeId>, Vec<NodeId>) {
        assert!(traversal::is_connected(g), "MIS-tree CDS requires a connected graph");
        let mis = greedy_mis(g, RankingMode::StaticId);
        if mis.len() <= 1 {
            return (mis, Vec::new());
        }

        // auxiliary graph H over MIS indices: edge iff hop distance ≤ 3
        let dist_from: Vec<Vec<Option<u32>>> =
            mis.iter().map(|&u| traversal::bfs_distances(g, u)).collect();
        let k = mis.len();
        // Prim over H, collecting the connector path of each tree edge
        let mut in_tree = vec![false; k];
        in_tree[0] = true;
        let mut connectors: BTreeSet<NodeId> = BTreeSet::new();
        for _ in 1..k {
            // smallest-hop H-edge leaving the tree (ties: smallest ids)
            let mut pick: Option<(u32, usize, usize)> = None;
            for a in 0..k {
                if !in_tree[a] {
                    continue;
                }
                for b in 0..k {
                    if in_tree[b] {
                        continue;
                    }
                    if let Some(d) = dist_from[a][mis[b]] {
                        if d <= 3 && pick.is_none_or(|(pd, pa, pb)| (d, a, b) < (pd, pa, pb)) {
                            pick = Some((d, a, b));
                        }
                    }
                }
            }
            let (_, a, b) = pick.expect(
                "Lemma 3: the ≤3-hop auxiliary graph over an MIS of a connected graph is connected",
            );
            in_tree[b] = true;
            // add the interior nodes of one shortest path mis[a] → mis[b]
            let (_, parents) = traversal::bfs_tree(g, mis[a]);
            let path = traversal::path_from_parents(&parents, mis[a], mis[b])
                .expect("connected graph");
            for &x in &path[1..path.len() - 1] {
                connectors.insert(x);
            }
        }
        let connectors: Vec<NodeId> =
            connectors.into_iter().filter(|c| !mis.contains(c)).collect();
        (mis, connectors)
    }
}

impl WcdsConstruction for MisTreeCds {
    fn construct(&self, g: &Graph) -> ConstructionResult {
        let (mis, connectors) = self.construct_parts(g);
        debug_assert!(
            {
                let mut all = mis.clone();
                all.extend(&connectors);
                all.sort_unstable();
                g.node_count() == 0 || domination::is_connected_dominating_set(g, &all)
            },
            "MIS-tree output is not a CDS"
        );
        let wcds = Wcds::new(mis, connectors);
        let spanner = wcds.weakly_induced_subgraph(g);
        ConstructionResult { wcds, spanner }
    }

    fn name(&self) -> &'static str {
        "mis-tree-cds"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_geom::deploy;
    use wcds_graph::{generators, UnitDiskGraph};

    #[test]
    fn path_gets_connected() {
        let g = generators::path(7);
        let (mis, connectors) = MisTreeCds::new().construct_parts(&g);
        assert_eq!(mis, vec![0, 2, 4, 6]);
        // each adjacent MIS pair is 2 apart: connectors {1, 3, 5}
        assert_eq!(connectors, vec![1, 3, 5]);
        let result = MisTreeCds::new().construct(&g);
        assert!(domination::is_connected_dominating_set(&g, result.wcds.nodes()));
    }

    #[test]
    fn output_is_cds_on_random_graphs() {
        for seed in 0..8 {
            let g = generators::connected_gnp(45, 0.09, seed);
            let result = MisTreeCds::new().construct(&g);
            assert!(
                domination::is_connected_dominating_set(&g, result.wcds.nodes()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn output_is_cds_on_udgs() {
        for seed in 0..5 {
            let udg = UnitDiskGraph::build(deploy::uniform(120, 6.0, 6.0, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            let result = MisTreeCds::new().construct(udg.graph());
            assert!(
                domination::is_connected_dominating_set(udg.graph(), result.wcds.nodes()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn cds_is_larger_than_wcds_on_average() {
        // |MWCDS| ≤ |MCDS|: weak connectivity is a relaxation, so the
        // *minimal* WCDS (Algorithm II + pruning) must generally beat the
        // CDS heuristic. Raw Algorithm II output carries redundant
        // connectors and can run a few percent larger than the CDS — the
        // relaxation's advantage shows once minimality is restored.
        use wcds_core::algo2::AlgorithmTwo;
        use wcds_core::postprocess::{prune, PruneOrder};
        let mut cds_total = 0usize;
        let mut wcds_total = 0usize;
        for seed in 0..10 {
            let udg = UnitDiskGraph::build(deploy::uniform(150, 7.0, 7.0, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            cds_total += MisTreeCds::new().construct(udg.graph()).wcds.len();
            let raw = AlgorithmTwo::new().construct(udg.graph()).wcds;
            wcds_total += prune(udg.graph(), &raw, PruneOrder::DescendingId).len();
        }
        assert!(
            wcds_total <= cds_total,
            "minimal WCDS total {wcds_total} should not exceed CDS total {cds_total}"
        );
    }

    #[test]
    fn star_and_singleton() {
        let g = generators::star(5);
        let result = MisTreeCds::new().construct(&g);
        assert_eq!(result.wcds.nodes(), &[0]);

        let g1 = Graph::empty(1);
        assert_eq!(MisTreeCds::new().construct(&g1).wcds.nodes(), &[0]);
    }
}
