//! Exact minimum dominating sets by bounded search, plus certified
//! lower bounds.
//!
//! Finding a minimum WCDS is NP-hard (Dunbar et al., the paper's
//! citation `[11]`), so approximation-ratio experiments need ground truth
//! on small instances and certified lower bounds on large ones:
//!
//! * [`minimum_dominating_set`], [`minimum_cds`], [`minimum_wcds`] —
//!   exact optima by increasing-cardinality combination search
//!   (practical to `n ≈ 22`);
//! * [`degree_lower_bound`] — `⌈n / (Δ+1)⌉ ≤ γ(G)` on any graph;
//! * [`mis_lower_bound`] — `⌈|MIS| / 5⌉ ≤ |MWCDS|` on **unit-disk**
//!   graphs (the Lemma 7 charging argument: every WCDS node dominates at
//!   most 5 independent nodes).

use wcds_core::mis::{greedy_mis, RankingMode};
use wcds_graph::{domination, Graph, NodeId};

/// Hard cap on exact-search instance size (`C(22, 11) ≈ 7·10⁵`
/// subsets per cardinality keeps runs interactive).
pub const EXACT_NODE_LIMIT: usize = 22;

/// Iterates `k`-subsets of `0..n` in lexicographic order, invoking `f`
/// until it returns `true`; returns that subset.
fn first_subset_satisfying<F>(n: usize, k: usize, mut f: F) -> Option<Vec<NodeId>>
where
    F: FnMut(&[NodeId]) -> bool,
{
    if k > n {
        return None;
    }
    let mut idx: Vec<NodeId> = (0..k).collect();
    loop {
        if f(&idx) {
            return Some(idx);
        }
        // advance to next combination
        let mut i = k;
        loop {
            if i == 0 {
                return None;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return None;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

fn minimum_satisfying<F>(g: &Graph, mut pred: F) -> Vec<NodeId>
where
    F: FnMut(&Graph, &[NodeId]) -> bool,
{
    assert!(
        g.node_count() <= EXACT_NODE_LIMIT,
        "exact search limited to {EXACT_NODE_LIMIT} nodes (got {})",
        g.node_count()
    );
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    for k in 1..=n {
        if let Some(s) = first_subset_satisfying(n, k, |s| pred(g, s)) {
            return s;
        }
    }
    unreachable!("the full vertex set satisfies every dominating predicate on a connected graph")
}

/// An exact minimum dominating set.
///
/// # Panics
///
/// Panics if `g` has more than [`EXACT_NODE_LIMIT`] nodes.
pub fn minimum_dominating_set(g: &Graph) -> Vec<NodeId> {
    minimum_satisfying(g, domination::is_dominating_set)
}

/// An exact minimum connected dominating set.
///
/// # Panics
///
/// Panics if `g` has more than [`EXACT_NODE_LIMIT`] nodes, or if `g` is
/// disconnected (no CDS exists).
pub fn minimum_cds(g: &Graph) -> Vec<NodeId> {
    assert!(wcds_graph::traversal::is_connected(g), "CDS requires a connected graph");
    minimum_satisfying(g, domination::is_connected_dominating_set)
}

/// An exact minimum weakly-connected dominating set — the paper's `opt`.
///
/// # Panics
///
/// Panics if `g` has more than [`EXACT_NODE_LIMIT`] nodes, or if `g` is
/// disconnected.
pub fn minimum_wcds(g: &Graph) -> Vec<NodeId> {
    assert!(wcds_graph::traversal::is_connected(g), "WCDS requires a connected graph");
    minimum_satisfying(g, domination::is_weakly_connected_dominating_set)
}

/// `⌈n / (Δ+1)⌉` — a lower bound on the domination number of any graph
/// (each chosen node covers at most `Δ+1` nodes), hence on `|MWCDS|`.
pub fn degree_lower_bound(g: &Graph) -> usize {
    let n = g.node_count();
    if n == 0 {
        0
    } else {
        n.div_ceil(g.max_degree() + 1)
    }
}

/// `⌈|MIS| / 5⌉` — Lemma 7's charging bound, valid on **unit-disk**
/// graphs only: every node of a UDG has at most 5 mutually independent
/// neighbors, so any dominating set (a fortiori any MWCDS) has at least
/// `|MIS|/5` nodes.
///
/// Calling this on a non-UDG yields an invalid bound; callers are
/// responsible for the geometry.
pub fn mis_lower_bound(g: &Graph) -> usize {
    greedy_mis(g, RankingMode::StaticId).len().div_ceil(5)
}

/// The best available lower bound on `|MWCDS|` for a UDG.
pub fn wcds_lower_bound_udg(g: &Graph) -> usize {
    degree_lower_bound(g).max(mis_lower_bound(g)).max(usize::from(g.node_count() > 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_core::algo1::AlgorithmOne;
    use wcds_core::algo2::AlgorithmTwo;
    use wcds_core::WcdsConstruction;
    use wcds_geom::deploy;
    use wcds_graph::{generators, traversal, UnitDiskGraph};

    #[test]
    fn star_optima_are_the_center() {
        let g = generators::star(6);
        assert_eq!(minimum_dominating_set(&g), vec![0]);
        assert_eq!(minimum_cds(&g), vec![0]);
        assert_eq!(minimum_wcds(&g), vec![0]);
    }

    #[test]
    fn path_optima_have_known_sizes() {
        // P7: γ = ⌈7/3⌉ = 3; MCDS = n−2 leaves... = 5; MWCDS known = 3
        let g = generators::path(7);
        assert_eq!(minimum_dominating_set(&g).len(), 3);
        assert_eq!(minimum_cds(&g).len(), 5);
        assert_eq!(minimum_wcds(&g).len(), 3);
    }

    #[test]
    fn wcds_opt_between_ds_and_cds() {
        for seed in 0..6 {
            let g = generators::connected_gnp(12, 0.2, seed);
            let ds = minimum_dominating_set(&g).len();
            let wcds = minimum_wcds(&g).len();
            let cds = minimum_cds(&g).len();
            assert!(ds <= wcds, "seed {seed}: γ = {ds} > MWCDS = {wcds}");
            assert!(wcds <= cds, "seed {seed}: MWCDS = {wcds} > MCDS = {cds}");
        }
    }

    #[test]
    fn returned_sets_actually_satisfy_their_predicates() {
        let g = generators::connected_gnp(14, 0.18, 3);
        assert!(domination::is_dominating_set(&g, &minimum_dominating_set(&g)));
        assert!(domination::is_connected_dominating_set(&g, &minimum_cds(&g)));
        assert!(domination::is_weakly_connected_dominating_set(&g, &minimum_wcds(&g)));
    }

    #[test]
    fn lemma7_ratio_holds_against_exact_optimum() {
        // |Algorithm I WCDS| ≤ 5·opt on small UDGs, checked exactly
        for seed in 0..8 {
            let udg = UnitDiskGraph::build(deploy::uniform(14, 2.5, 2.5, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            let opt = minimum_wcds(udg.graph()).len();
            let a1 = AlgorithmOne::new().construct(udg.graph()).wcds.len();
            assert!(a1 <= 5 * opt, "seed {seed}: {a1} > 5·{opt}");
            let a2 = AlgorithmTwo::new().construct(udg.graph()).wcds.len();
            assert!(a2 <= 123 * opt, "seed {seed}: {a2} > 122.5·{opt}");
        }
    }

    #[test]
    fn lower_bounds_never_exceed_optimum() {
        for seed in 0..8 {
            let udg = UnitDiskGraph::build(deploy::uniform(13, 2.5, 2.5, seed), 1.0);
            if !traversal::is_connected(udg.graph()) {
                continue;
            }
            let opt = minimum_wcds(udg.graph()).len();
            assert!(degree_lower_bound(udg.graph()) <= opt, "seed {seed}");
            assert!(mis_lower_bound(udg.graph()) <= opt, "seed {seed}");
            assert!(wcds_lower_bound_udg(udg.graph()) <= opt, "seed {seed}");
        }
    }

    #[test]
    fn degree_bound_on_known_graphs() {
        assert_eq!(degree_lower_bound(&generators::star(5)), 1);
        assert_eq!(degree_lower_bound(&generators::path(9)), 3);
        assert_eq!(degree_lower_bound(&Graph::empty(0)), 0);
    }

    #[test]
    #[should_panic(expected = "exact search limited")]
    fn oversized_instance_panics() {
        let g = generators::path(40);
        let _ = minimum_dominating_set(&g);
    }

    #[test]
    fn combination_iterator_visits_everything() {
        // count subsets of size 3 from 6 elements by a never-satisfied
        // predicate wrapped to count
        let mut count = 0;
        let res = first_subset_satisfying(6, 3, |_| {
            count += 1;
            false
        });
        assert_eq!(res, None);
        assert_eq!(count, 20);
    }

    #[test]
    fn combination_iterator_finds_last() {
        let res = first_subset_satisfying(5, 2, |s| s == [3, 4]);
        assert_eq!(res, Some(vec![3, 4]));
    }
}
