//! Seeded node-deployment generators.
//!
//! The paper evaluates nothing empirically — it reasons over arbitrary
//! node distributions in the plane. These generators stand in for real
//! wireless deployments: every experiment in the workspace draws its
//! topology from one of them (or from an adversarial construction) with an
//! explicit seed, so results are reproducible bit-for-bit.
//!
//! All generators use [`wcds_rng::ChaCha12Rng`] seeded from a `u64`, not
//! thread-local entropy, and are deterministic across platforms.

use crate::{BoundingBox, Point};
use wcds_rng::{ChaCha12Rng, Rng};

/// Creates the deterministic RNG used by every generator in this module.
fn rng(seed: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(seed)
}

/// `n` points uniformly at random in `[0, width] × [0, height]`.
///
/// This is the classic random-deployment model for ad hoc networks.
///
/// # Examples
///
/// ```
/// let pts = wcds_geom::deploy::uniform(50, 10.0, 10.0, 1);
/// assert_eq!(pts.len(), 50);
/// assert!(pts.iter().all(|p| p.x >= 0.0 && p.x <= 10.0));
/// ```
pub fn uniform(n: usize, width: f64, height: f64, seed: u64) -> Vec<Point> {
    let mut r = rng(seed);
    (0..n).map(|_| Point::new(r.gen::<f64>() * width, r.gen::<f64>() * height)).collect()
}

/// `n` points drawn from `clusters` Gaussian blobs whose centers are
/// themselves uniform in the region.
///
/// Models hotspot deployments (vehicles at intersections, sensors around
/// phenomena). `spread` is the per-cluster standard deviation; points are
/// clamped into the region.
///
/// # Panics
///
/// Panics if `clusters == 0` while `n > 0`.
pub fn clustered(n: usize, width: f64, height: f64, clusters: usize, spread: f64, seed: u64) -> Vec<Point> {
    if n == 0 {
        return Vec::new();
    }
    assert!(clusters > 0, "need at least one cluster for a non-empty deployment");
    let mut r = rng(seed);
    let centers: Vec<Point> =
        (0..clusters).map(|_| Point::new(r.gen::<f64>() * width, r.gen::<f64>() * height)).collect();
    (0..n)
        .map(|_| {
            let c = centers[r.gen_range(0..clusters)];
            let p = c + Point::new(gaussian(&mut r) * spread, gaussian(&mut r) * spread);
            p.clamped(width, height)
        })
        .collect()
}

/// Points on a `cols × rows` grid with per-point uniform jitter.
///
/// `pitch` is the grid spacing; `jitter` the maximum absolute displacement
/// per axis. With `jitter = 0` this is an exact lattice — useful for
/// predictable, dense worst cases.
pub fn grid_jitter(cols: usize, rows: usize, pitch: f64, jitter: f64, seed: u64) -> Vec<Point> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(cols * rows);
    for gy in 0..rows {
        for gx in 0..cols {
            let dx = if jitter > 0.0 { r.gen_range(-jitter..=jitter) } else { 0.0 };
            let dy = if jitter > 0.0 { r.gen_range(-jitter..=jitter) } else { 0.0 };
            out.push(Point::new(gx as f64 * pitch + dx, gy as f64 * pitch + dy));
        }
    }
    out
}

/// `n` points from an isotropic Gaussian centered in the region
/// (standard deviation `sigma`), clamped to the region.
///
/// Models deployments concentrated around a base station.
pub fn gaussian_blob(n: usize, width: f64, height: f64, sigma: f64, seed: u64) -> Vec<Point> {
    let mut r = rng(seed);
    let c = Point::new(width / 2.0, height / 2.0);
    (0..n)
        .map(|_| (c + Point::new(gaussian(&mut r) * sigma, gaussian(&mut r) * sigma)).clamped(width, height))
        .collect()
}

/// `n` points on a horizontal line with spacing `spacing`.
///
/// With `spacing < 1` consecutive nodes are UDG-adjacent and the topology
/// is a path — the adversarial input behind the paper's Theorem 12
/// worst-case `Θ(n)` running-time argument.
pub fn chain(n: usize, spacing: f64) -> Vec<Point> {
    (0..n).map(|i| Point::new(i as f64 * spacing, 0.0)).collect()
}

/// `n` points evenly spaced on a circle of radius `radius` centered at
/// `(radius, radius)`.
///
/// With chord length under one unit the topology is a cycle; a symmetric
/// input useful for tie-breaking tests (every node looks locally alike, so
/// only ranks break symmetry).
pub fn ring(n: usize, radius: f64) -> Vec<Point> {
    let c = Point::new(radius, radius);
    (0..n)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            c + Point::new(radius * theta.cos(), radius * theta.sin())
        })
        .collect()
}

/// The nine-node topology of the paper's Figure 2 (a WCDS of two nodes
/// whose weakly-induced subgraph spans the graph).
///
/// Node 1 sits at the center of a left star, node 2 at the center of a
/// right star, with one shared gray neighbor linking the two stars at
/// two hops. Returned positions are scaled so every drawn edge has length
/// ≤ 1 and every non-edge is longer than 1.
pub fn figure2() -> Vec<Point> {
    vec![
        Point::new(1.0, 1.0),   // 0: dominator "1" of the figure
        Point::new(2.6, 1.0),   // 1: dominator "2" of the figure
        Point::new(1.8, 1.0),   // 2: shared gray node between the stars
        Point::new(0.2, 1.0),   // 3: left leaf
        Point::new(1.0, 1.9),   // 4: top-left leaf
        Point::new(1.0, 0.1),   // 5: bottom-left leaf
        Point::new(3.4, 1.0),   // 6: right leaf
        Point::new(2.6, 1.9),   // 7: top-right leaf
        Point::new(2.6, 0.1),   // 8: bottom-right leaf
    ]
}

/// `n` points uniform over an **L-shaped** region: the `side × side`
/// square minus its upper-right `side/2 × side/2` quadrant.
///
/// A non-convex deployment: shortest paths must bend around the
/// missing corner, stressing spanner dilation and backbone shape in a
/// way convex regions cannot.
pub fn l_shape(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut r = rng(seed);
    let half = side / 2.0;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let p = Point::new(r.gen::<f64>() * side, r.gen::<f64>() * side);
        if !(p.x > half && p.y > half) {
            out.push(p);
        }
    }
    out
}

/// `n` points uniform over a thin `length × width` corridor.
///
/// With `width ≪ length` the topology is nearly one-dimensional:
/// large diameter, long dominator chains — the opposite regime from a
/// dense square, and close to the paper's chain worst case while
/// remaining random.
pub fn corridor(n: usize, length: f64, width: f64, seed: u64) -> Vec<Point> {
    let mut r = rng(seed);
    (0..n).map(|_| Point::new(r.gen::<f64>() * length, r.gen::<f64>() * width)).collect()
}

/// The tight configuration for Lemma 1: a center node with exactly
/// **five** mutually independent neighbors.
///
/// Five "petals" sit at distance 0.999 from the center at 72° spacing
/// (a hair under the unit range so floating-point rounding can never
/// drop the edge); adjacent petals are `2·0.999·sin 36° ≈ 1.174 > 1`
/// apart, so they are pairwise non-adjacent. The center is listed
/// **last** (highest ID), which makes every lowest-ID-first MIS pick
/// all five petals and leave the center gray with five MIS neighbors —
/// the Lemma 1 bound achieved exactly.
pub fn five_petal() -> Vec<Point> {
    let c = Point::new(2.0, 2.0);
    let r = 0.999;
    let mut pts: Vec<Point> = (0..5)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / 5.0;
            c + Point::new(r * theta.cos(), r * theta.sin())
        })
        .collect();
    pts.push(c);
    pts
}

/// A random-waypoint-style single step: moves every point by at most
/// `max_step` in a uniform random direction, clamped to the region.
///
/// Used by the mobility/maintenance experiments; calling it repeatedly
/// with increasing `seed` values yields a deterministic motion trace.
pub fn perturb(points: &[Point], region: BoundingBox, max_step: f64, seed: u64) -> Vec<Point> {
    let mut r = rng(seed);
    points
        .iter()
        .map(|&p| {
            let theta = r.gen::<f64>() * 2.0 * std::f64::consts::PI;
            let step = r.gen::<f64>() * max_step;
            region.clamp(p + Point::new(step * theta.cos(), step * theta.sin()))
        })
        .collect()
}

/// Standard normal sample via Box–Muller (keeps the workspace free of
/// any external distribution crate).
fn gaussian<R: Rng>(r: &mut R) -> f64 {
    let u1: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = r.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_per_seed() {
        assert_eq!(uniform(20, 5.0, 5.0, 9), uniform(20, 5.0, 5.0, 9));
        assert_ne!(uniform(20, 5.0, 5.0, 9), uniform(20, 5.0, 5.0, 10));
    }

    #[test]
    fn uniform_respects_region() {
        let pts = uniform(500, 3.0, 7.0, 1);
        assert!(pts.iter().all(|p| (0.0..=3.0).contains(&p.x) && (0.0..=7.0).contains(&p.y)));
    }

    #[test]
    fn clustered_respects_region_and_count() {
        let pts = clustered(200, 10.0, 10.0, 4, 0.5, 2);
        assert_eq!(pts.len(), 200);
        assert!(pts.iter().all(|p| (0.0..=10.0).contains(&p.x) && (0.0..=10.0).contains(&p.y)));
    }

    #[test]
    fn clustered_zero_n_allows_zero_clusters() {
        assert!(clustered(0, 1.0, 1.0, 0, 0.1, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn clustered_zero_clusters_panics() {
        let _ = clustered(5, 1.0, 1.0, 0, 0.1, 0);
    }

    #[test]
    fn grid_without_jitter_is_exact_lattice() {
        let pts = grid_jitter(3, 2, 1.5, 0.0, 0);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], Point::new(0.0, 0.0));
        assert_eq!(pts[5], Point::new(3.0, 1.5));
    }

    #[test]
    fn grid_jitter_bounded() {
        let pts = grid_jitter(4, 4, 2.0, 0.25, 5);
        for (i, p) in pts.iter().enumerate() {
            let gx = (i % 4) as f64 * 2.0;
            let gy = (i / 4) as f64 * 2.0;
            assert!((p.x - gx).abs() <= 0.25 + 1e-12);
            assert!((p.y - gy).abs() <= 0.25 + 1e-12);
        }
    }

    #[test]
    fn chain_spacing_is_exact() {
        let pts = chain(5, 0.9);
        for w in pts.windows(2) {
            assert!((w[0].distance(w[1]) - 0.9).abs() < 1e-12);
        }
    }

    #[test]
    fn ring_chord_is_uniform() {
        let pts = ring(12, 2.0);
        let chord = pts[0].distance(pts[1]);
        for i in 0..12 {
            let d = pts[i].distance(pts[(i + 1) % 12]);
            assert!((d - chord).abs() < 1e-9);
        }
    }

    #[test]
    fn figure2_adjacency_matches_paper() {
        let pts = figure2();
        // the two dominators are NOT adjacent (they are independent)...
        assert!(pts[0].distance(pts[1]) > 1.0);
        // ...but both are adjacent to the shared gray node 2,
        assert!(pts[0].distance(pts[2]) <= 1.0);
        assert!(pts[1].distance(pts[2]) <= 1.0);
        // and each leaf touches exactly its own star center.
        for leaf in [3, 4, 5] {
            assert!(pts[0].distance(pts[leaf]) <= 1.0);
            assert!(pts[1].distance(pts[leaf]) > 1.0);
        }
        for leaf in [6, 7, 8] {
            assert!(pts[1].distance(pts[leaf]) <= 1.0);
            assert!(pts[0].distance(pts[leaf]) > 1.0);
        }
    }

    #[test]
    fn l_shape_avoids_the_missing_quadrant() {
        let pts = l_shape(300, 8.0, 3);
        assert_eq!(pts.len(), 300);
        for p in &pts {
            assert!(!(p.x > 4.0 && p.y > 4.0), "point {p} in the cut-out quadrant");
            assert!((0.0..=8.0).contains(&p.x) && (0.0..=8.0).contains(&p.y));
        }
    }

    #[test]
    fn corridor_is_thin() {
        let pts = corridor(100, 20.0, 1.5, 4);
        assert!(pts.iter().all(|p| (0.0..=20.0).contains(&p.x) && (0.0..=1.5).contains(&p.y)));
    }

    #[test]
    fn five_petal_geometry_is_tight() {
        let pts = five_petal();
        let center = pts[5];
        for i in 0..5 {
            // each petal adjacent to the center...
            assert!(pts[i].distance(center) <= 1.0);
            assert!(pts[i].distance(center) > 0.99);
            for j in (i + 1)..5 {
                // ...and to no other petal
                assert!(pts[i].distance(pts[j]) > 1.0 + 1e-9, "petals {i},{j} too close");
            }
        }
    }

    #[test]
    fn perturb_moves_at_most_max_step() {
        let region = BoundingBox::with_size(10.0, 10.0);
        let pts = uniform(100, 10.0, 10.0, 3);
        let moved = perturb(&pts, region, 0.3, 4);
        for (a, b) in pts.iter().zip(&moved) {
            assert!(a.distance(*b) <= 0.3 + 1e-12);
            assert!(region.contains(*b));
        }
    }

    #[test]
    fn gaussian_blob_centers_mass() {
        let pts = gaussian_blob(2000, 10.0, 10.0, 1.0, 6);
        let mean_x: f64 = pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64;
        let mean_y: f64 = pts.iter().map(|p| p.y).sum::<f64>() / pts.len() as f64;
        assert!((mean_x - 5.0).abs() < 0.2, "mean_x = {mean_x}");
        assert!((mean_y - 5.0).abs() < 0.2, "mean_y = {mean_y}");
    }
}
