use crate::Point;
use std::collections::HashMap;

/// A uniform spatial hash over a point set for radius queries.
///
/// Cells have side length equal to the query radius, so a query only has
/// to inspect the 3×3 block of cells around the query point. Building the
/// index is `O(n)`; each query is `O(k)` in the number of candidates in
/// those nine cells. Constructing a unit-disk graph with it is
/// `O(n + |E|)` expected instead of the naive `O(n²)`.
///
/// The index stores point *indices* into the slice it was built from; the
/// caller keeps ownership of the coordinates and passes the same slice to
/// the query methods (checked by length in debug builds).
///
/// # Examples
///
/// ```
/// use wcds_geom::{GridIndex, Point};
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0), Point::new(3.0, 3.0)];
/// let idx = GridIndex::build(&pts, 1.0);
/// let mut near = idx.neighbors_within(&pts, pts[0], 1.0);
/// near.sort_unstable();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: f64,
    len: usize,
    cells: HashMap<(i64, i64), Vec<usize>>,
}

impl GridIndex {
    /// Builds an index over `points` with cell size `cell`.
    ///
    /// `cell` should equal the largest radius you intend to query with;
    /// larger radii still return correct results only via
    /// [`GridIndex::neighbors_within`]'s fallback scan, which is slower.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive and finite.
    pub fn build(points: &[Point], cell: f64) -> Self {
        assert!(cell.is_finite() && cell > 0.0, "cell size must be positive and finite");
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            cells.entry(Self::key(cell, *p)).or_default().push(i);
        }
        Self { cell, len: points.len(), cells }
    }

    /// The cell size this index was built with.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn key(cell: f64, p: Point) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Indices of all points within distance `r` of `center` (inclusive),
    /// including `center` itself if it is one of the indexed points.
    ///
    /// `points` must be the slice the index was built from.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `points.len()` differs from the build-time
    /// length.
    pub fn neighbors_within(&self, points: &[Point], center: Point, r: f64) -> Vec<usize> {
        debug_assert_eq!(points.len(), self.len, "index/point-set mismatch");
        let mut out = Vec::new();
        self.for_each_within(points, center, r, |i| out.push(i));
        out
    }

    /// Visits the index of every point within distance `r` of `center`.
    ///
    /// Visit order is deterministic for a fixed build (cells are scanned in
    /// row-major block order, points in insertion order within a cell).
    pub fn for_each_within<F: FnMut(usize)>(&self, points: &[Point], center: Point, r: f64, mut f: F) {
        debug_assert_eq!(points.len(), self.len, "index/point-set mismatch");
        let reach = (r / self.cell).ceil() as i64;
        let (cx, cy) = Self::key(self.cell, center);
        let r2 = r * r;
        for gx in (cx - reach)..=(cx + reach) {
            for gy in (cy - reach)..=(cy + reach) {
                if let Some(bucket) = self.cells.get(&(gx, gy)) {
                    for &i in bucket {
                        if points[i].distance_squared(center) <= r2 {
                            f(i);
                        }
                    }
                }
            }
        }
    }

    /// Counts the points within distance `r` of `center`.
    pub fn count_within(&self, points: &[Point], center: Point, r: f64) -> usize {
        let mut n = 0;
        self.for_each_within(points, center, r, |_| n += 1);
        n
    }

    /// Appends the next point index (`len()`) at position `p`, returning it.
    ///
    /// The caller must push `p` onto its point slice at the same time so the
    /// index and the coordinates stay in lockstep.
    pub fn push(&mut self, p: Point) -> usize {
        let i = self.len;
        self.cells.entry(Self::key(self.cell, p)).or_default().push(i);
        self.len += 1;
        i
    }

    /// Moves indexed point `i` from `old` to `new`, rebucketing it.
    ///
    /// `old` must be the position `i` currently occupies in the caller's
    /// slice; same-cell moves are free. Bucket order is not preserved
    /// (callers that need determinism must canonicalize query results).
    pub fn relocate(&mut self, i: usize, old: Point, new: Point) {
        debug_assert!(i < self.len, "relocate of unindexed point {i}");
        let from = Self::key(self.cell, old);
        let to = Self::key(self.cell, new);
        if from == to {
            return;
        }
        let mut now_empty = false;
        if let Some(bucket) = self.cells.get_mut(&from) {
            if let Some(pos) = bucket.iter().position(|&j| j == i) {
                bucket.swap_remove(pos);
            }
            now_empty = bucket.is_empty();
        }
        if now_empty {
            self.cells.remove(&from);
        }
        self.cells.entry(to).or_default().push(i);
    }
}

/// A batched, immutable spatial index: the counting-sort counterpart of
/// [`GridIndex`].
///
/// Where `GridIndex` hashes each point into a `HashMap` bucket (one heap
/// allocation per occupied cell, a hash probe per insert and per query
/// cell), `DenseGrid` lays the same cells out flat: integer cell
/// coordinates over the point set's bounding box, one counting pass, a
/// prefix sum, and one fill pass into a single `slots` array. Building is
/// two linear scans with zero hashing; a query walks the 3×3 block as
/// contiguous slices. This is the index behind the large-`n` static UDG
/// build — [`GridIndex`] remains the right structure when the point set
/// mutates (`push`/`relocate`).
///
/// The cell array is dense over the bounding box, so memory is
/// `O(cells)`, not `O(occupied cells)`: callers should prefer
/// [`GridIndex`] when the deployment is a sparse scatter over a huge
/// extent (see [`DenseGrid::cell_count`]).
///
/// # Examples
///
/// ```
/// use wcds_geom::{DenseGrid, Point};
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0), Point::new(3.0, 3.0)];
/// let idx = DenseGrid::build(&pts, 1.0);
/// let mut near = Vec::new();
/// idx.for_each_within(&pts, pts[0], 1.0, |i| near.push(i));
/// near.sort_unstable();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct DenseGrid {
    cell: f64,
    min_x: f64,
    min_y: f64,
    /// Grid dimensions; `gx * gy` cells cover the bounding box.
    gx: usize,
    gy: usize,
    /// CSR over cells: cell `c` owns `slots[offsets[c]..offsets[c + 1]]`.
    offsets: Vec<u32>,
    /// Point indices grouped by cell, in input order within each cell.
    slots: Vec<u32>,
}

impl DenseGrid {
    /// Builds the index over `points` with cell size `cell` (two linear
    /// passes, no hashing).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive and finite, or if the
    /// point count exceeds `u32::MAX`.
    pub fn build(points: &[Point], cell: f64) -> Self {
        assert!(cell.is_finite() && cell > 0.0, "cell size must be positive and finite");
        assert!(points.len() <= u32::MAX as usize, "point indices must fit u32");
        if points.is_empty() {
            return Self {
                cell,
                min_x: 0.0,
                min_y: 0.0,
                gx: 0,
                gy: 0,
                offsets: vec![0],
                slots: Vec::new(),
            };
        }
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let gx = ((max_x - min_x) / cell).floor() as usize + 1;
        let gy = ((max_y - min_y) / cell).floor() as usize + 1;
        let cell_of = |p: &Point| -> usize {
            // points exactly on the max boundary clamp into the last
            // row/column; queries over-scan by one cell, so clamped
            // points are still always found
            let cx = (((p.x - min_x) / cell) as usize).min(gx - 1);
            let cy = (((p.y - min_y) / cell) as usize).min(gy - 1);
            cx * gy + cy
        };
        let mut offsets = vec![0u32; gx * gy + 1];
        for p in points {
            offsets[cell_of(p) + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..gx * gy].to_vec();
        let mut slots = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            slots[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        Self { cell, min_x, min_y, gx, gy, offsets, slots }
    }

    /// The cell size this index was built with.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of grid cells allocated (dense over the bounding box).
    ///
    /// Callers deciding between this index and [`GridIndex`] can compare
    /// it against the point count: when `cell_count` dwarfs `len`, the
    /// deployment is a sparse scatter and the hash index wastes less.
    pub fn cell_count(&self) -> usize {
        self.gx * self.gy
    }

    /// Visits the index of every point within distance `r` of `center`
    /// (inclusive), including `center` itself if indexed.
    ///
    /// `points` must be the slice the index was built from (checked by
    /// length in debug builds). Visit order is deterministic for a fixed
    /// build: cells in row-major block order, points in input order
    /// within a cell. `center` may lie outside the bounding box (the
    /// scan window clamps to it).
    pub fn for_each_within<F: FnMut(usize)>(
        &self,
        points: &[Point],
        center: Point,
        r: f64,
        mut f: F,
    ) {
        debug_assert_eq!(points.len(), self.len(), "index/point-set mismatch");
        if self.slots.is_empty() {
            return;
        }
        let reach = (r / self.cell).ceil() as i64;
        let cx = ((center.x - self.min_x) / self.cell).floor() as i64;
        let cy = ((center.y - self.min_y) / self.cell).floor() as i64;
        let x0 = (cx - reach).max(0);
        let x1 = (cx + reach).min(self.gx as i64 - 1);
        let y0 = (cy - reach).max(0);
        let y1 = (cy + reach).min(self.gy as i64 - 1);
        let r2 = r * r;
        for bx in x0..=x1 {
            for by in y0..=y1 {
                let c = bx as usize * self.gy + by as usize;
                let row = &self.slots[self.offsets[c] as usize..self.offsets[c + 1] as usize];
                for &i in row {
                    if points[i as usize].distance_squared(center) <= r2 {
                        f(i as usize);
                    }
                }
            }
        }
    }

    /// Counts the points within distance `r` of `center`.
    pub fn count_within(&self, points: &[Point], center: Point, r: f64) -> usize {
        let mut n = 0;
        self.for_each_within(points, center, r, |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy;

    fn brute_force(points: &[Point], center: Point, r: f64) -> Vec<usize> {
        let mut v: Vec<usize> =
            (0..points.len()).filter(|&i| points[i].within(center, r)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let pts = deploy::uniform(300, 8.0, 8.0, 7);
        let idx = GridIndex::build(&pts, 1.0);
        for probe in 0..pts.len() {
            let mut got = idx.neighbors_within(&pts, pts[probe], 1.0);
            got.sort_unstable();
            assert_eq!(got, brute_force(&pts, pts[probe], 1.0), "probe {probe}");
        }
    }

    #[test]
    fn larger_radius_than_cell_still_correct() {
        let pts = deploy::uniform(200, 5.0, 5.0, 11);
        let idx = GridIndex::build(&pts, 1.0);
        let mut got = idx.neighbors_within(&pts, pts[0], 2.5);
        got.sort_unstable();
        assert_eq!(got, brute_force(&pts, pts[0], 2.5));
    }

    #[test]
    fn query_point_not_in_set() {
        let pts = vec![Point::new(0.2, 0.2), Point::new(5.0, 5.0)];
        let idx = GridIndex::build(&pts, 1.0);
        assert_eq!(idx.neighbors_within(&pts, Point::origin(), 1.0), vec![0]);
    }

    #[test]
    fn empty_index() {
        let pts: Vec<Point> = vec![];
        let idx = GridIndex::build(&pts, 1.0);
        assert!(idx.is_empty());
        assert!(idx.neighbors_within(&pts, Point::origin(), 1.0).is_empty());
    }

    #[test]
    fn count_matches_list_length() {
        let pts = deploy::uniform(150, 4.0, 4.0, 3);
        let idx = GridIndex::build(&pts, 1.0);
        for &p in pts.iter().take(20) {
            assert_eq!(idx.count_within(&pts, p, 1.0), idx.neighbors_within(&pts, p, 1.0).len());
        }
    }

    #[test]
    fn negative_coordinates_supported() {
        let pts = vec![Point::new(-0.5, -0.5), Point::new(-1.2, -0.6), Point::new(2.0, 2.0)];
        let idx = GridIndex::build(&pts, 1.0);
        let mut got = idx.neighbors_within(&pts, pts[0], 1.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_panics() {
        let _ = GridIndex::build(&[], 0.0);
    }

    #[test]
    fn push_and_relocate_match_fresh_build() {
        let mut pts = deploy::uniform(120, 5.0, 5.0, 19);
        let mut idx = GridIndex::build(&pts, 1.0);
        // append a few points, then shove some around (including cross-cell)
        for k in 0..10 {
            let p = Point::new(0.37 * k as f64, 4.9 - 0.41 * k as f64);
            let i = idx.push(p);
            pts.push(p);
            assert_eq!(i, pts.len() - 1);
        }
        for k in 0..40 {
            let i = (k * 7) % pts.len();
            let old = pts[i];
            let new = Point::new(old.y * 0.9 + 0.1, (old.x + 1.3) % 5.0);
            idx.relocate(i, old, new);
            pts[i] = new;
        }
        assert_eq!(idx.len(), pts.len());
        let fresh = GridIndex::build(&pts, 1.0);
        for probe in 0..pts.len() {
            let mut got = idx.neighbors_within(&pts, pts[probe], 1.0);
            got.sort_unstable();
            let mut want = fresh.neighbors_within(&pts, pts[probe], 1.0);
            want.sort_unstable();
            assert_eq!(got, want, "probe {probe}");
            assert_eq!(got, brute_force(&pts, pts[probe], 1.0), "probe {probe}");
        }
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let idx = GridIndex::build(&pts, 1.0);
        assert_eq!(idx.count_within(&pts, pts[0], 1.0), 2);
    }

    #[test]
    fn dense_matches_brute_force_on_random_points() {
        let pts = deploy::uniform(300, 8.0, 8.0, 7);
        let idx = DenseGrid::build(&pts, 1.0);
        for probe in 0..pts.len() {
            let mut got = Vec::new();
            idx.for_each_within(&pts, pts[probe], 1.0, |i| got.push(i));
            got.sort_unstable();
            assert_eq!(got, brute_force(&pts, pts[probe], 1.0), "probe {probe}");
        }
    }

    #[test]
    fn dense_and_hash_indices_agree_everywhere() {
        // same candidate sets for every probe, including off-grid
        // centers and radii exceeding the cell size
        for seed in [3, 19, 57] {
            let pts = deploy::uniform(250, 7.0, 5.0, seed);
            let dense = DenseGrid::build(&pts, 1.0);
            let hash = GridIndex::build(&pts, 1.0);
            let probes = [
                Point::new(-2.0, 3.0),
                Point::new(8.5, -1.0),
                Point::new(3.5, 2.5),
                pts[0],
                pts[249],
            ];
            for (k, &c) in probes.iter().enumerate() {
                for r in [0.7, 1.0, 2.3] {
                    let mut a = Vec::new();
                    dense.for_each_within(&pts, c, r, |i| a.push(i));
                    a.sort_unstable();
                    let mut b = hash.neighbors_within(&pts, c, r);
                    b.sort_unstable();
                    assert_eq!(a, b, "seed {seed} probe {k} r {r}");
                }
            }
        }
    }

    #[test]
    fn dense_boundary_points_are_found() {
        // points exactly on the bounding-box maxima clamp into the last
        // cell; queries centered there must still see them
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 2.0), // max corner
            Point::new(3.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(1.5, 1.0),
        ];
        let idx = DenseGrid::build(&pts, 1.0);
        for (i, &p) in pts.iter().enumerate() {
            let mut got = Vec::new();
            idx.for_each_within(&pts, p, 1.0, |j| got.push(j));
            assert!(got.contains(&i), "point {i} not found at its own position");
        }
        assert_eq!(idx.count_within(&pts, Point::new(3.0, 2.0), 1.0), 1);
    }

    #[test]
    fn dense_empty_and_degenerate() {
        let empty = DenseGrid::build(&[], 1.0);
        assert!(empty.is_empty());
        assert_eq!(empty.count_within(&[], Point::origin(), 5.0), 0);
        // all points coincident: one cell, everything within any radius
        let pts = vec![Point::new(2.0, 2.0); 17];
        let idx = DenseGrid::build(&pts, 1.0);
        assert_eq!(idx.cell_count(), 1);
        assert_eq!(idx.count_within(&pts, pts[0], 0.5), 17);
    }

    #[test]
    fn dense_negative_coordinates_supported() {
        let pts = vec![Point::new(-0.5, -0.5), Point::new(-1.2, -0.6), Point::new(2.0, 2.0)];
        let idx = DenseGrid::build(&pts, 1.0);
        let mut got = Vec::new();
        idx.for_each_within(&pts, pts[0], 1.0, |i| got.push(i));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn dense_zero_cell_panics() {
        let _ = DenseGrid::build(&[], 0.0);
    }

    #[test]
    fn dense_visit_order_is_stable() {
        // two builds over the same input produce the same visit sequence
        let pts = deploy::uniform(120, 5.0, 5.0, 23);
        let a = DenseGrid::build(&pts, 1.0);
        let b = DenseGrid::build(&pts, 1.0);
        for probe in (0..pts.len()).step_by(11) {
            let mut va = Vec::new();
            a.for_each_within(&pts, pts[probe], 1.0, |i| va.push(i));
            let mut vb = Vec::new();
            b.for_each_within(&pts, pts[probe], 1.0, |i| vb.push(i));
            assert_eq!(va, vb, "probe {probe}");
        }
    }
}
