//! 2-D geometry substrate for wireless ad hoc network modelling.
//!
//! The ICDCS 2003 WCDS paper assumes "all nodes are distributed in a
//! two-dimensional plane and have an equal maximum transmission range of
//! one unit", so the only geometry the rest of the workspace needs is:
//!
//! * [`Point`] — a position in the plane with exact, total ordering helpers;
//! * [`BoundingBox`] — deployment regions;
//! * [`deploy`] — seeded point-process generators (uniform, clustered,
//!   grid-with-jitter, Gaussian, chain/adversarial) standing in for real
//!   deployments;
//! * [`GridIndex`] — an `O(1)`-per-query spatial hash used to build
//!   unit-disk graphs in `O(n + |E|)` instead of `O(n²)`;
//! * [`DenseGrid`] — the batched counting-sort sibling of `GridIndex`:
//!   immutable, hash-free, built in two linear passes, used by the
//!   large-`n` static UDG construction.
//!
//! # Examples
//!
//! ```
//! use wcds_geom::{deploy, GridIndex, Point};
//!
//! let pts = deploy::uniform(100, 10.0, 10.0, 42);
//! let index = GridIndex::build(&pts, 1.0);
//! let near_origin = index.neighbors_within(&pts, Point::new(0.0, 0.0), 1.0);
//! assert!(near_origin.iter().all(|&i| pts[i].distance(Point::new(0.0, 0.0)) <= 1.0));
//! ```

mod bbox;
pub mod deploy;
mod grid;
mod point;

pub use bbox::BoundingBox;
pub use grid::{DenseGrid, GridIndex};
pub use point::Point;

/// Default unit-disk transmission radius used throughout the workspace.
///
/// The paper normalises the maximum transmission range to one unit; keeping
/// the constant here makes that normalisation explicit at call sites.
pub const UNIT_RADIUS: f64 = 1.0;
