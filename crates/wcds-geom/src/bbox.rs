use crate::Point;
use std::fmt;

/// An axis-aligned rectangular deployment region.
///
/// Regions are half-open nowhere: both boundaries are inclusive, matching
/// the convention of the deployment generators which may place nodes
/// exactly on the border.
///
/// # Examples
///
/// ```
/// use wcds_geom::{BoundingBox, Point};
///
/// let region = BoundingBox::new(0.0, 0.0, 10.0, 5.0);
/// assert!(region.contains(Point::new(10.0, 5.0)));
/// assert_eq!(region.area(), 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    min: Point,
    max: Point,
}

impl BoundingBox {
    /// Creates a region from its min/max corners.
    ///
    /// # Panics
    ///
    /// Panics if `min_x > max_x` or `min_y > max_y`.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(min_x <= max_x && min_y <= max_y, "degenerate bounding box");
        Self { min: Point::new(min_x, min_y), max: Point::new(max_x, max_y) }
    }

    /// A `width × height` region anchored at the origin.
    pub fn with_size(width: f64, height: f64) -> Self {
        Self::new(0.0, 0.0, width, height)
    }

    /// The smallest region containing every point in `points`.
    ///
    /// Returns `None` for an empty slice.
    pub fn enclosing(points: &[Point]) -> Option<Self> {
        let first = *points.first()?;
        let mut min = first;
        let mut max = first;
        for p in &points[1..] {
            min = Point::new(min.x.min(p.x), min.y.min(p.y));
            max = Point::new(max.x.max(p.x), max.y.max(p.y));
        }
        Some(Self { min, max })
    }

    /// Minimum corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Maximum corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width of the region.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the region.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the region.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center of the region.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside the region (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` onto the region.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.min.x, self.max.x), p.y.clamp(self.min.y, self.max.y))
    }

    /// Expands the region by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if a negative margin would invert the box.
    pub fn expanded(&self, margin: f64) -> Self {
        Self::new(self.min.x - margin, self.min.y - margin, self.max.x + margin, self.max.y + margin)
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_size_anchors_at_origin() {
        let b = BoundingBox::with_size(4.0, 3.0);
        assert_eq!(b.min(), Point::origin());
        assert_eq!(b.max(), Point::new(4.0, 3.0));
        assert_eq!(b.area(), 12.0);
    }

    #[test]
    fn contains_is_boundary_inclusive() {
        let b = BoundingBox::with_size(1.0, 1.0);
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(1.0, 1.0)));
        assert!(!b.contains(Point::new(1.0001, 0.5)));
    }

    #[test]
    fn enclosing_covers_all_points() {
        let pts = [Point::new(1.0, 5.0), Point::new(-2.0, 0.0), Point::new(3.0, 2.0)];
        let b = BoundingBox::enclosing(&pts).unwrap();
        assert!(pts.iter().all(|&p| b.contains(p)));
        assert_eq!(b.min(), Point::new(-2.0, 0.0));
        assert_eq!(b.max(), Point::new(3.0, 5.0));
    }

    #[test]
    fn enclosing_empty_is_none() {
        assert!(BoundingBox::enclosing(&[]).is_none());
    }

    #[test]
    fn clamp_projects_outside_points() {
        let b = BoundingBox::with_size(2.0, 2.0);
        assert_eq!(b.clamp(Point::new(-1.0, 3.0)), Point::new(0.0, 2.0));
        assert_eq!(b.clamp(Point::new(1.0, 1.0)), Point::new(1.0, 1.0));
    }

    #[test]
    fn expanded_grows_every_side() {
        let b = BoundingBox::with_size(1.0, 1.0).expanded(0.5);
        assert_eq!(b.min(), Point::new(-0.5, -0.5));
        assert_eq!(b.max(), Point::new(1.5, 1.5));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_box_panics() {
        let _ = BoundingBox::new(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn center_is_midpoint() {
        let b = BoundingBox::new(0.0, 0.0, 4.0, 2.0);
        assert_eq!(b.center(), Point::new(2.0, 1.0));
    }
}
