use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or vector) in the Euclidean plane.
///
/// Coordinates are finite `f64`s. Construction through [`Point::new`]
/// asserts finiteness in debug builds so NaNs cannot silently poison
/// distance comparisons downstream.
///
/// # Examples
///
/// ```
/// use wcds_geom::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either coordinate is not finite.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        debug_assert!(x.is_finite() && y.is_finite(), "non-finite coordinate ({x}, {y})");
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Cheaper than [`Point::distance`]; prefer it for threshold tests
    /// (`d² ≤ r²` avoids the square root entirely).
    #[inline]
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Whether `other` lies within (or exactly on) radius `r` of `self`.
    ///
    /// This is the unit-disk adjacency predicate: the paper's edge rule is
    /// "distance at most one".
    #[inline]
    pub fn within(self, other: Point, r: f64) -> bool {
        self.distance_squared(other) <= r * r
    }

    /// Euclidean norm when the point is interpreted as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Midpoint of the segment `self`–`other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Clamps the point into the axis-aligned rectangle
    /// `[0, width] × [0, height]`.
    #[inline]
    pub fn clamped(self, width: f64, height: f64) -> Point {
        Point::new(self.x.clamp(0.0, width), self.y.clamp(0.0, height))
    }

    /// Total lexicographic ordering `(x, then y)`.
    ///
    /// `f64` is only `PartialOrd`; deployments never contain NaNs (enforced
    /// at construction), so a total order is safe and lets point sets be
    /// sorted deterministically.
    #[inline]
    pub fn lex_cmp(self, other: Point) -> std::cmp::Ordering {
        self.x
            .partial_cmp(&other.x)
            .expect("finite coordinates")
            .then(self.y.partial_cmp(&other.y).expect("finite coordinates"))
    }
}

impl Add for Point {
    type Output = Point;

    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;

    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;

    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 0.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_345_triangle() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn distance_squared_matches_distance() {
        let a = Point::new(0.3, 0.7);
        let b = Point::new(1.9, -2.2);
        let d = a.distance(b);
        assert!((a.distance_squared(b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn within_is_inclusive_at_boundary() {
        let a = Point::origin();
        let b = Point::new(1.0, 0.0);
        assert!(a.within(b, 1.0));
        assert!(!a.within(Point::new(1.0 + 1e-9, 0.0), 1.0));
    }

    #[test]
    fn midpoint_halves_segment() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 6.0);
        let m = a.midpoint(b);
        assert_eq!(m, Point::new(1.0, 3.0));
        assert!((a.distance(m) - b.distance(m)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(5.0, -3.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn clamped_stays_in_region() {
        let p = Point::new(-1.0, 20.0).clamped(10.0, 10.0);
        assert_eq!(p, Point::new(0.0, 10.0));
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(0.5, -1.0);
        assert_eq!(a + b, Point::new(1.5, 1.0));
        assert_eq!(a - b, Point::new(0.5, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        use std::cmp::Ordering;
        assert_eq!(Point::new(0.0, 9.0).lex_cmp(Point::new(1.0, 0.0)), Ordering::Less);
        assert_eq!(Point::new(1.0, 0.0).lex_cmp(Point::new(1.0, 2.0)), Ordering::Less);
        assert_eq!(Point::new(1.0, 2.0).lex_cmp(Point::new(1.0, 2.0)), Ordering::Equal);
    }

    #[test]
    fn conversions_roundtrip() {
        let p: Point = (2.5, -1.5).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.5, -1.5));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::origin()).is_empty());
    }

    #[test]
    fn norm_of_unit_vectors() {
        assert!((Point::new(1.0, 0.0).norm() - 1.0).abs() < 1e-12);
        assert!((Point::new(0.0, -1.0).norm() - 1.0).abs() < 1e-12);
    }
}
