//! Dependency-free readiness primitives: epoll + eventfd over raw
//! syscalls.
//!
//! The service crate links no FFI (DESIGN.md §7: `std::net` +
//! `std::thread` only), so the event-loop engine cannot use `libc`.
//! This module issues the four syscalls the readiness loop needs —
//! `epoll_create1`, `epoll_ctl`, `epoll_wait` (`epoll_pwait` on
//! aarch64), `eventfd2` — plus `read`/`write`/`close` on the waker fd,
//! directly through inline `asm!`, on `x86_64` and `aarch64` Linux.
//! On any other target [`supported`] reports `false` and the server
//! falls back to the worker-pool engine; no stub poller pretends to
//! provide readiness it cannot.
//!
//! Everything here is level-triggered: the loop re-arms interest via
//! [`Poller::modify`] when it starts or stops caring about
//! writability, and a wake is re-delivered until the condition is
//! consumed — the simplest semantics to keep correct.
//!
//! This is an audited unsafe island (see `lib.rs`): `unsafe` appears
//! only in the two arch-specific `syscall4` trampolines and the calls
//! into them, each of which passes kernel-owned buffers that live for
//! the duration of the call.

#![cfg_attr(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))), allow(dead_code))]

use std::io;

/// Whether the raw-syscall readiness backend exists on this target.
pub const fn supported() -> bool {
    cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))
}

/// One readiness event, decoded from the kernel's `epoll_event`.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token registered with [`Poller::add`].
    pub token: u64,
    /// Read-readiness (or a pending accept on a listener).
    pub readable: bool,
    /// Write-readiness.
    pub writable: bool,
    /// Peer hangup or socket error: the connection is dead either way,
    /// and the loop should reap it after draining what remains.
    pub closed: bool,
}

const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;

/// `EPOLL_CLOEXEC` / `EFD_CLOEXEC` (== `O_CLOEXEC`).
const CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;

const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

/// The kernel's `struct epoll_event`. Packed on x86_64 (the one ABI
/// where the kernel expects the 12-byte layout), naturally aligned
/// elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const EPOLL_WAIT: usize = 232;
    pub const EPOLL_CTL: usize = 233;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    /// aarch64 has no plain `epoll_wait`; `epoll_pwait` with a null
    /// sigmask is identical.
    pub const EPOLL_PWAIT: usize = 22;
    pub const CLOSE: usize = 57;
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
}

/// Raw 4-argument syscall. Returns the kernel's raw result: negative
/// errno on failure.
///
/// SAFETY (caller): the arguments must be valid for the specific
/// syscall — any pointer passed must be live and sized as the kernel
/// expects for the duration of the call.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn syscall4(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    let ret: isize;
    // SAFETY: `syscall` with the x86_64 Linux ABI — args in
    // rdi/rsi/rdx/r10, number in rax, result in rax, rcx/r11
    // clobbered by the instruction itself.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// Raw 6-argument syscall (aarch64 needs the two extra slots for
/// `epoll_pwait`'s sigmask pair).
///
/// SAFETY (caller): as [`syscall4`].
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn syscall6(
    nr: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    // SAFETY: `svc 0` with the aarch64 Linux ABI — args in x0..x5,
    // number in x8, result in x0.
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn syscall4(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    // SAFETY: forwarded verbatim; unused slots are ignored by the
    // kernel for every syscall this module issues.
    unsafe { syscall6(nr, a1, a2, a3, a4, 0, 0) }
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(i32::try_from(-ret).unwrap_or(i32::MAX)))
    } else {
        Ok(usize::try_from(ret).unwrap_or(0))
    }
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    use super::*;

    fn interest_bits(readable: bool, writable: bool) -> u32 {
        let mut bits = EPOLLRDHUP;
        if readable {
            bits |= EPOLLIN;
        }
        if writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// A level-triggered epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: i32,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes a flag word, no pointers.
            let ret = unsafe { syscall4(nr::EPOLL_CREATE1, CLOEXEC, 0, 0, 0) };
            let epfd = i32::try_from(check(ret)?).unwrap_or(-1);
            Ok(Self { epfd })
        }

        fn ctl(&self, op: usize, fd: i32, ev: Option<EpollEvent>) -> io::Result<()> {
            let ev_ptr = ev
                .as_ref()
                .map_or(std::ptr::null(), std::ptr::from_ref)
                as usize;
            // SAFETY: `ev` (when present) lives on this stack frame for
            // the whole call; EPOLL_CTL_DEL passes null, which the
            // kernel accepts since 2.6.9.
            let ret = unsafe {
                syscall4(
                    nr::EPOLL_CTL,
                    self.epfd as usize,
                    op,
                    fd as usize,
                    ev_ptr,
                )
            };
            check(ret).map(|_| ())
        }

        /// Registers `fd` under `token` with the given interest.
        pub fn add(&self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            let ev = EpollEvent { events: interest_bits(readable, writable), data: token };
            self.ctl(EPOLL_CTL_ADD, fd, Some(ev))
        }

        /// Re-arms `fd`'s interest set (level-triggered).
        pub fn modify(
            &self,
            fd: i32,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let ev = EpollEvent { events: interest_bits(readable, writable), data: token };
            self.ctl(EPOLL_CTL_MOD, fd, Some(ev))
        }

        /// Deregisters `fd`.
        pub fn remove(&self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Waits up to `timeout_ms` (−1 = forever) and appends decoded
        /// events to `out`. `EINTR` is reported as zero events, not an
        /// error. Returns the number of events delivered.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            const MAX_EVENTS: usize = 256;
            let mut buf = [EpollEvent::default(); MAX_EVENTS];
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `buf` outlives the call and holds MAX_EVENTS
            // entries, exactly what the third argument promises.
            let ret = unsafe {
                syscall4(
                    nr::EPOLL_WAIT,
                    self.epfd as usize,
                    buf.as_mut_ptr() as usize,
                    MAX_EVENTS,
                    timeout_ms as usize,
                )
            };
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above; the null sigmask (arg 5) makes
            // epoll_pwait behave exactly like epoll_wait, and the
            // kernel ignores sigsetsize for a null mask.
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.epfd as usize,
                    buf.as_mut_ptr() as usize,
                    MAX_EVENTS,
                    timeout_ms as usize,
                    0,
                    8,
                )
            };
            let n = match check(ret) {
                Ok(n) => n.min(MAX_EVENTS),
                Err(e) if e.raw_os_error() == Some(EINTR) => 0,
                Err(e) => return Err(e),
            };
            for ev in buf.iter().take(n) {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing an owned fd; errors are unreportable in
            // drop and the fd is ours by construction.
            let _ = unsafe { syscall4(nr::CLOSE, self.epfd as usize, 0, 0, 0) };
        }
    }

    /// A nonblocking eventfd used to nudge a parked `epoll_wait` from
    /// another thread (executor completions, shutdown).
    #[derive(Debug)]
    pub struct Waker {
        fd: i32,
    }

    impl Waker {
        pub fn new() -> io::Result<Self> {
            // SAFETY: eventfd2 takes an initial count and flags, no
            // pointers.
            let ret = unsafe { syscall4(nr::EVENTFD2, 0, CLOEXEC | EFD_NONBLOCK, 0, 0) };
            let fd = i32::try_from(check(ret)?).unwrap_or(-1);
            Ok(Self { fd })
        }

        /// The fd to register with the poller (read interest).
        pub fn fd(&self) -> i32 {
            self.fd
        }

        /// Posts one wake. Safe from any thread; a full counter
        /// (`EAGAIN`) already means the loop has a pending wake.
        pub fn wake(&self) {
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a stack u64 that outlives
            // the call.
            let _ = unsafe {
                syscall4(
                    nr::WRITE,
                    self.fd as usize,
                    std::ptr::from_ref(&one) as usize,
                    8,
                    0,
                )
            };
        }

        /// Consumes all pending wakes (the eventfd counter resets).
        pub fn drain(&self) {
            let mut buf: u64 = 0;
            // SAFETY: reads 8 bytes into a stack u64 that outlives the
            // call; the fd is nonblocking so an empty counter returns
            // EAGAIN rather than parking.
            let ret = unsafe {
                syscall4(
                    nr::READ,
                    self.fd as usize,
                    std::ptr::from_mut(&mut buf) as usize,
                    8,
                    0,
                )
            };
            debug_assert!(ret == 8 || ret == -(EAGAIN as isize));
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: closing an owned fd (see Poller::drop).
            let _ = unsafe { syscall4(nr::CLOSE, self.fd as usize, 0, 0, 0) };
        }
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod imp {
    use super::*;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "readiness backend needs x86_64/aarch64 Linux; use Engine::WorkerPool",
        )
    }

    /// Stub poller for targets without the raw-syscall backend: every
    /// constructor fails with `Unsupported`, and `Server::bind` routes
    /// the event-loop engine to the worker pool instead.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        pub fn add(&self, _fd: i32, _token: u64, _r: bool, _w: bool) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn modify(&self, _fd: i32, _token: u64, _r: bool, _w: bool) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn remove(&self, _fd: i32) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn wait(&self, _out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    #[derive(Debug)]
    pub struct Waker {}

    impl Waker {
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        pub fn fd(&self) -> i32 {
            -1
        }

        pub fn wake(&self) {}

        pub fn drain(&self) {}
    }
}

pub use imp::{Poller, Waker};

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn poller_reports_eventfd_readability() {
        if !supported() {
            return;
        }
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), 42, true, false).unwrap();

        // nothing pending: a zero-timeout wait delivers nothing
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        waker.wake();
        waker.wake(); // coalesces into the same readiness
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        let ev = events.first().copied().unwrap();
        assert_eq!(ev.token, 42);
        assert!(ev.readable && !ev.closed);

        // drain resets the counter; readiness disappears
        waker.drain();
        events.clear();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        // interest can be re-armed off and back on
        poller.modify(waker.fd(), 42, false, false).unwrap();
        waker.wake();
        events.clear();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "no read interest armed");
        poller.modify(waker.fd(), 42, true, false).unwrap();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        poller.remove(waker.fd()).unwrap();
    }
}
