//! TCP front end with two serving engines behind one handle.
//!
//! [`Engine::EventLoop`] (the default on supported targets) serves
//! every connection from a single **readiness event loop**: epoll via
//! the raw-syscall bindings in `sys`, nonblocking sockets, incremental
//! per-connection framing, request pipelining, and write backpressure.
//! Slow or stalled peers cost a slab slot, not a thread. Requests that
//! can be answered from a fresh published snapshot are handled inline
//! on the loop (the lock-free store fast path); everything else is
//! offloaded to a small executor pool and the response is spliced back
//! in request order. See `eventloop.rs` and DESIGN.md §8.
//!
//! [`Engine::WorkerPool`] is the original blocking thread-per-
//! connection model, kept as the byte-identical replay oracle and as
//! the fallback where the raw epoll bindings are unavailable:
//!
//! * the **acceptor** thread owns the listener and hands accepted
//!   streams to a channel;
//! * `workers` **worker** threads pull connections off the channel and
//!   serve them to completion (a connection may carry any number of
//!   request frames);
//! * read/write **timeouts** bound every socket operation, so a stalled
//!   client mid-frame is dropped instead of wedging its worker, and an
//!   idle worker re-checks the shutdown flag every timeout tick.
//!
//! Both engines share **shutdown** semantics: a [`Request::Shutdown`]
//! frame or [`ServerHandle::shutdown`] flips a shared flag, nudges the
//! blocked acceptor (or parked event loop) awake with a loopback
//! connection, and joins every thread; the listener closes when the
//! serving thread returns. They also share [`handle`], the pure
//! request→response dispatcher, so a request log replayed through
//! either engine produces byte-identical responses.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameRead, Request, Response, WireError,
};
use crate::store::{BroadcastOutcome, RouteOutcome, Store, StoreError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Which serving engine [`Server::bind`] starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Readiness-driven event loop (epoll, nonblocking sockets,
    /// pipelining). The default; falls back to [`Engine::WorkerPool`]
    /// on targets where the raw epoll bindings are unavailable.
    #[default]
    EventLoop,
    /// Blocking thread-per-connection worker pool (the replay oracle).
    WorkerPool,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker-pool size (worker pool) or executor-pool size (event
    /// loop: threads running offloaded mutations and cache rebuilds).
    pub workers: usize,
    /// Socket read/write timeout; also the shutdown-poll period and
    /// the event loop's sweep tick.
    pub io_timeout: Duration,
    /// Consecutive idle timeout ticks before an open but silent
    /// connection is dropped (frees its worker for queued peers).
    pub idle_ticks: u32,
    /// Serving engine.
    pub engine: Engine,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            io_timeout: Duration::from_millis(100),
            idle_ticks: 300,
            engine: Engine::EventLoop,
        }
    }
}

pub(crate) struct Shared {
    pub(crate) store: Store,
    pub(crate) shutdown: AtomicBool,
    pub(crate) addr: SocketAddr,
    pub(crate) config: ServerConfig,
    pub(crate) served: AtomicU64,
}

impl Shared {
    /// Flips the flag and nudges the blocked acceptor (or parked event
    /// loop) awake.
    pub(crate) fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // a throwaway loopback connection unblocks `accept()` (worker
        // pool) or creates listener readiness (event loop); if it fails
        // the serving thread still exits on its next timeout tick
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }
}

/// A handle to a running server: its address, a way to stop it, and
/// the join point proving every thread exited.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// The backbone service.
pub struct Server;

impl Server {
    /// Binds `addr` (port 0 picks a free port) and starts the serving
    /// threads for the configured [`Engine`] over `store`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        store: Store,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store,
            shutdown: AtomicBool::new(false),
            addr: local,
            config: config.clone(),
            served: AtomicU64::new(0),
        });

        if config.engine == Engine::EventLoop && crate::sys::supported() {
            let (event_loop, executors) =
                crate::eventloop::spawn(listener, Arc::clone(&shared))?;
            return Ok(ServerHandle {
                shared,
                acceptor: Some(event_loop),
                workers: executors,
            });
        }

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        // a failed spawn propagates as io::Error; the threads already
        // running exit on their own once `tx` drops with this frame
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wcds-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
            })
            .collect::<io::Result<Vec<JoinHandle<()>>>>()?;

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wcds-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &tx, &shared))?
        };

        Ok(ServerHandle { shared, acceptor: Some(acceptor), workers })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Total request frames served so far.
    pub fn requests_served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// The shared topology store (for in-process inspection in tests
    /// and benchmarks).
    pub fn store(&self) -> &Store {
        &self.shared.store
    }

    /// Whether shutdown has been requested (by wire or locally).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown and waits for every thread to exit.
    pub fn shutdown(mut self) {
        self.shared.trigger_shutdown();
        self.join_threads();
    }

    /// Waits for the server to stop (a wire `Shutdown` request, or a
    /// prior [`ServerHandle::shutdown`] from another handle clone —
    /// there are none, so in practice: the wire). Joins every thread;
    /// returning proves no worker leaked. Returns the total number of
    /// request frames served over the server's lifetime.
    pub fn join(mut self) -> u64 {
        self.join_threads();
        self.shared.served.load(Ordering::Relaxed)
    }

    fn join_threads(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // dropping the handle without join()/shutdown() still stops the
        // server rather than leaking detached threads
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            self.shared.trigger_shutdown();
        }
        self.join_threads();
    }
}

fn acceptor_loop(listener: &TcpListener, tx: &mpsc::Sender<TcpStream>, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break; // the nudge connection, or a late arrival
                }
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // tx drops here: workers drain the queue and exit
}

fn worker_loop(rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>, shared: &Shared) {
    loop {
        let stream = {
            // a poisoned queue mutex means a sibling worker panicked
            // while *receiving*; the receiver itself is still sound, so
            // keep serving rather than killing the whole pool
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            // analyze: allow(hold-across-io, "the queue mutex exists only to share this receiver; waiting on it IS the guarded operation, and the bounded timeout re-opens the race window every io_timeout")
            match guard.recv_timeout(shared.config.io_timeout) {
                Ok(s) => Some(s),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        };
        match stream {
            Some(s) => serve_connection(s, shared),
            None if shared.shutdown.load(Ordering::SeqCst) => break,
            None => {}
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let timeout = shared.config.io_timeout;
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    // buffered reads pull a frame's length prefix and body out of one
    // syscall; writes go straight to the (NODELAY) socket
    let mut reader = io::BufReader::with_capacity(4096, &stream);
    let mut writer = &stream;
    let mut idle: u32 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(&mut reader) {
            Ok(FrameRead::Frame(frame)) => frame,
            Ok(FrameRead::Eof) => return, // clean EOF between frames
            Ok(FrameRead::IdleTimeout) => {
                idle += 1;
                if idle > shared.config.idle_ticks {
                    return; // silent connection: free the worker
                }
                continue;
            }
            Err(_) => return, // stalled mid-frame, reset, or garbage
        };
        idle = 0;
        shared.served.fetch_add(1, Ordering::Relaxed);
        let (response, close) = match Request::decode(&frame) {
            Ok(Request::Shutdown) => {
                shared.trigger_shutdown();
                (Response::ShuttingDown, true)
            }
            Ok(req) => (handle(&shared.store, &req), false),
            Err(e) => (wire_error_response(&e), true),
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return; // peer gone or write stalled
        }
        if close {
            return;
        }
    }
}

pub(crate) fn wire_error_response(e: &WireError) -> Response {
    Response::Error { code: ErrorCode::BadPayload, message: format!("malformed request: {e}") }
}

impl From<StoreError> for Response {
    fn from(e: StoreError) -> Self {
        Response::Error { code: e.code, message: e.message }
    }
}

/// Executes one decoded request against the store. Pure
/// request→response; all transport concerns live in the caller. Both
/// engines dispatch through this one function, which is what makes
/// their responses byte-identical on a replayed request log.
pub(crate) fn handle(store: &Store, req: &Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Create { name, payload } => match store.create(name, payload) {
            Ok((nodes, edges, mobile)) => Response::Created { nodes, edges, mobile },
            Err(e) => e.into(),
        },
        Request::Export { name } => match store.export(name) {
            Ok(payload) => Response::Exported { payload },
            Err(e) => e.into(),
        },
        Request::Construct { name } => match store.bundle(name) {
            Ok((bundle, _)) => Response::Constructed {
                mis: bundle.wcds.mis_dominators().len() as u64,
                bridges: bundle.wcds.additional_dominators().len() as u64,
                spanner_edges: bundle.spanner.edge_count() as u64,
                epoch: bundle.epoch,
            },
            Err(e) => e.into(),
        },
        Request::Route { name, from, to } => match store.route(name, *from, *to) {
            Ok(RouteOutcome::Path(path)) => Response::Routed { path },
            Ok(RouteOutcome::Degraded { unreachable }) => Response::Degraded { unreachable },
            Err(e) => e.into(),
        },
        Request::Broadcast { name, source } => match store.broadcast(name, *source) {
            Ok(BroadcastOutcome::Done { forwarders, informed }) => {
                Response::Broadcasted { forwarders, informed }
            }
            Ok(BroadcastOutcome::Degraded { unreachable }) => {
                Response::Degraded { unreachable }
            }
            Err(e) => e.into(),
        },
        Request::Stats { name } => match store.stats(name) {
            Ok(stats) => Response::StatsOk(stats),
            Err(e) => e.into(),
        },
        Request::Mutate { name, mutation } => match store.mutate(name, mutation) {
            Ok((epoch, report)) => {
                Response::Mutated { epoch, promoted: report.promoted, demoted: report.demoted }
            }
            Err(e) => e.into(),
        },
        Request::MutateBatch { name, mutations } => match store.mutate_batch(name, mutations) {
            Ok(out) => Response::BatchMutated {
                epoch: out.epoch,
                applied: out.applied,
                promoted: out.promoted,
                demoted: out.demoted,
                lease_wait_us: out.lease_wait_us,
            },
            Err(e) => e.into(),
        },
        Request::List => match store.list() {
            Ok(names) => Response::Topologies { names },
            Err(e) => e.into(),
        },
        Request::Drop { name } => match store.drop_topology(name) {
            Ok(()) => Response::Dropped,
            Err(e) => e.into(),
        },
        Request::Shutdown => Response::ShuttingDown, // handled by the caller
        Request::Harden { name, k, m } => match store.harden(name, *k, *m) {
            Ok(out) => Response::Hardened {
                k: out.k,
                m: out.m,
                achieved_k: out.achieved_k,
                dominators: out.dominators,
                spanner_edges: out.spanner_edges,
                epoch: out.epoch,
            },
            Err(e) => e.into(),
        },
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn handle_is_pure_request_to_response() {
        let store = Store::new();
        assert_eq!(handle(&store, &Request::Ping), Response::Pong);
        assert_eq!(handle(&store, &Request::List), Response::Topologies { names: vec![] });
        let resp = handle(&store, &Request::Stats { name: "ghost".into() });
        assert!(matches!(resp, Response::Error { code: ErrorCode::NotFound, .. }));
        let resp = handle(
            &store,
            &Request::Create { name: "t".into(), payload: "nodes 2\nedge 0 1\n".into() },
        );
        assert_eq!(resp, Response::Created { nodes: 2, edges: 1, mobile: false });
        let resp = handle(&store, &Request::Route { name: "t".into(), from: 0, to: 1 });
        assert_eq!(resp, Response::Routed { path: vec![0, 1] });
    }

    #[test]
    fn bind_and_shutdown_without_traffic() {
        // propagate bind failures as a diagnosed skip, not a panic: an
        // occupied or exhausted ephemeral port range is an environment
        // problem, not a server bug
        let handle = match Server::bind("127.0.0.1:0", Store::new(), ServerConfig::default()) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("skipping bind_and_shutdown_without_traffic: bind failed: {e}");
                return;
            }
        };
        let addr = handle.local_addr();
        assert_ne!(addr.port(), 0);
        handle.shutdown();
        // listener is closed: a fresh bind to the same port succeeds
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port not released: {rebound:?}");
    }
}
