//! Sharded, epoch-cached topology store with region-lease mutation
//! scheduling.
//!
//! Named topologies live in a fixed array of copy-on-write shards
//! (selected by name hash) behind lock-free [`SnapCell`] snapshots:
//! lookups never contend with anything, and create/drop clone the
//! small name map and publish the successor. Each topology carries:
//!
//! * a **mutation epoch**: a per-topology atomic, 0 at ingest,
//!   advanced once per applied maintenance mutation (join / leave /
//!   move, executed by `wcds_core::maintenance::MaintainedWcds`) in
//!   lease-commit order while the topology write lock is held;
//! * a **published artifact bundle** — Algorithm II WCDS, the
//!   weakly-induced spanner, clusterhead routing tables, and the
//!   backbone broadcast plan (itself derived only on the first
//!   broadcast query) — stamped with the epoch it was built at and
//!   published through a lock-free [`SnapCell`] snapshot, so readers
//!   never block on a repair and a cache hit takes **zero** locks;
//! * a **region-lease table** (`wcds_core::maintenance::lease`): a
//!   mutation claims the grid cells conservatively covering
//!   `ball(site, 3)` before touching the topology. Disjoint claims
//!   are admitted concurrently; overlapping claims queue FIFO on a
//!   condvar — crucially *without* holding the topology lock, so a
//!   queued mutation blocks neither readers nor disjoint writers,
//!   and the wait is accounted separately from service time.
//!
//! A query whose bundle stamp equals the current epoch is a **cache
//! hit** and is served entirely from the atomic snapshot — no
//! `RwLock` is acquired at all (release-asserted, counter-witnessed,
//! by `cache_hit_reads_take_zero_rwlocks`). A mutation
//! advances the epoch; the next query observes the stale stamp,
//! rebuilds under the topology write lock, and republishes.
//! [`Store::mutate_batch`] applies a whole drift tick under one
//! lease: its move-runs are planned into FIFO waves of pairwise
//! disjoint claims and each wave is coalesced into a single
//! `apply_motion` worklist pass (one cascade over the union of the
//! disturbed regions, refresh sweeps fanned out on the parallel
//! engine). Hit / miss / rebuild / lease counters are atomics so the
//! read path never needs a write lock.

use crate::protocol::{ErrorCode, Mutation, TopologyStats};
use crate::rebuild::{read_check, write_check, EpochView, ReadDecision, WriteDecision};
use crate::snapshot::SnapCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::maintenance::lease::{plan_batch, site_cells, Admission, LeaseTable, Scope, Ticket};
use wcds_core::maintenance::{MaintainedWcds, RepairReport};
use wcds_core::resilient::{ResilientBackbone, ResilientParams};
use wcds_core::Wcds;
use wcds_geom::Point;
use wcds_graph::{io, traversal, Graph, NodeId};
use wcds_routing::{BackboneRouter, BroadcastPlan};

/// Shard count (fixed; names hash onto shards).
pub const SHARDS: usize = 16;

/// Unit-disk radius used when a payload carries positions.
pub const UDG_RADIUS: f64 = 1.0;

/// A store-level failure, carrying the wire error category.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreError {
    /// Machine-readable category (maps onto the wire protocol).
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for StoreError {}

fn err(code: ErrorCode, message: impl Into<String>) -> StoreError {
    StoreError { code, message: message.into() }
}

std::thread_local! {
    /// Per-thread count of `RwLock` acquisitions made through
    /// [`read_guard`] / [`write_guard`] — the lock-freedom witness for
    /// the cache-hit serving path (asserted to stay flat across hits
    /// by `cache_hit_reads_take_zero_rwlocks`). Thread-local so one
    /// thread's measurement is immune to concurrent store activity —
    /// background heals, parallel tests — on other threads.
    static RWLOCK_ACQS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The calling thread's running count of store `RwLock` acquisitions.
pub fn rwlock_acquisitions() -> u64 {
    RWLOCK_ACQS.with(std::cell::Cell::get)
}

/// Acquires a read lock, mapping poisoning (a thread panicked while
/// holding the write lock, so the protected state may be torn) to a
/// typed `Internal` error instead of propagating the panic.
fn read_guard<T>(lock: &RwLock<T>) -> Result<RwLockReadGuard<'_, T>, StoreError> {
    RWLOCK_ACQS.with(|c| c.set(c.get() + 1));
    lock.read().map_err(|_| err(ErrorCode::Internal, "lock poisoned by a panicked writer"))
}

/// Write-lock counterpart of [`read_guard`].
fn write_guard<T>(lock: &RwLock<T>) -> Result<RwLockWriteGuard<'_, T>, StoreError> {
    RWLOCK_ACQS.with(|c| c.set(c.get() + 1));
    lock.write().map_err(|_| err(ErrorCode::Internal, "lock poisoned by a panicked writer"))
}

/// The cached artifact bundle: everything a query needs, derived from
/// one topology snapshot.
#[derive(Debug)]
pub struct Bundle {
    /// Epoch of the topology snapshot this bundle was built from.
    pub epoch: u64,
    /// The exact graph snapshot the bundle was built from (same
    /// epoch). When the bundle is fresh this *is* the live graph, so
    /// broadcast/stats can serve from it without touching the topology
    /// lock.
    pub graph: Arc<Graph>,
    /// The WCDS (Algorithm II construction, maintained under mutation).
    pub wcds: Wcds,
    /// The weakly-induced spanner.
    pub spanner: Graph,
    /// Clusterhead routing tables over the spanner.
    pub router: BackboneRouter,
    /// Whether a broadcast plan exists at this epoch (the topology is
    /// connected and the WCDS weakly valid) — mobility can legitimately
    /// partition a unit-disk graph. Checked eagerly; the plan itself is
    /// derived lazily (see [`Bundle::plan`]).
    broadcastable: bool,
    /// Present when the bundle holds a (k, m)-resilient backbone (the
    /// topology was hardened): `wcds` is then the merged multi-layer
    /// dominating set.
    pub resilient: Option<ResilientSummary>,
    /// Lazily derived broadcast plan, cached after the first use.
    plan: OnceLock<BroadcastPlan>,
}

/// Summary of the resilient construction backing a hardened bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilientSummary {
    /// The (k, m) target the backbone was built for.
    pub params: ResilientParams,
    /// Core connectivity the construction actually achieved (≤ `k`;
    /// lower only when the host graph falls short).
    pub achieved_k: u32,
    /// Number of disjoint coverage layers.
    pub layers: u64,
    /// Connector dominators added for k-connectivity.
    pub connectors: u64,
}

impl Bundle {
    /// The backbone broadcast plan for this epoch, or `None` when the
    /// topology was disconnected (or the WCDS invalid) at build time.
    ///
    /// Derived from the bundle's own cached spanner on first call and
    /// memoized, so mutations and route/stats queries never pay for
    /// plan construction — only the first broadcast query after a
    /// topology change does. The result is identical to building the
    /// plan eagerly at bundle-construction time: the spanner and WCDS
    /// it derives from are this epoch's.
    pub fn plan(&self) -> Option<&BroadcastPlan> {
        self.broadcastable.then(|| {
            self.plan.get_or_init(|| BroadcastPlan::for_backbone(&self.spanner, &self.wcds))
        })
    }
}

/// Adjacency plus (for mobile topologies) the maintenance state.
#[derive(Debug)]
enum Body {
    /// Edge-only ingest: immutable, WCDS built from the graph alone.
    Static(Graph),
    /// Position-carrying ingest: mutable through §4.2 maintenance.
    Mobile(MaintainedWcds),
}

impl Body {
    fn graph(&self) -> &Graph {
        match self {
            Body::Static(g) => g,
            Body::Mobile(m) => m.graph(),
        }
    }

    fn wcds(&self) -> Wcds {
        match self {
            // same deterministic rule as MaintainedWcds::new, so static
            // and mobile topologies answer identically at epoch 0
            Body::Static(g) => {
                let (mis, additional) = AlgorithmTwo::new().construct_parts(g);
                Wcds::new(mis, additional)
            }
            Body::Mobile(m) => m.wcds(),
        }
    }
}

#[derive(Debug)]
struct Topology {
    body: Body,
    /// `Some` once the topology has been hardened: every bundle build
    /// then produces a (k, m)-resilient backbone instead of the plain
    /// Algorithm II construction.
    resilience: Option<ResilientParams>,
    /// Whether a `Leave` has been applied since the published bundle
    /// was built. A leave renames every id above the victim, so the
    /// stale bundle's id-keyed state is meaningless and degraded
    /// serving must not touch it. Written only under the topology
    /// write lock.
    leave_since_bundle: bool,
}

/// A lock-free snapshot of the epoch / bundle-stamp pair: the shim the
/// `wcds-analyze` race checker model-checks. The store's cache
/// decisions are exactly `rebuild::{read_check, write_check}` over
/// this view.
struct CacheView {
    epoch: u64,
    stamp: Option<u64>,
}

impl EpochView for CacheView {
    fn current_epoch(&self) -> u64 {
        self.epoch
    }

    fn bundle_stamp(&self) -> Option<u64> {
        self.stamp
    }
}

/// What a bundle build derives its dominating set from. Snapshotting
/// this (plus a graph copy) under the read lock lets the expensive
/// build itself run without holding any lock (see [`Store::heal`]).
enum ArtifactSource {
    /// The maintained / statically derived plain WCDS.
    Plain(Wcds),
    /// Rebuild the (k, m)-resilient backbone from scratch.
    Resilient(ResilientParams),
}

/// Builds the full artifact bundle for one topology snapshot, from
/// scratch (no reuse of any stale bundle). Free function on purpose:
/// callable with or without a lock held.
fn build_artifacts(g: &Graph, source: &ArtifactSource, epoch: u64) -> Arc<Bundle> {
    let (wcds, resilient) = match source {
        ArtifactSource::Plain(w) => (w.clone(), None),
        ArtifactSource::Resilient(params) => {
            let b = ResilientBackbone::construct(g, *params);
            let summary = ResilientSummary {
                params: *params,
                achieved_k: b.achieved_connectivity(),
                layers: b.layers().len() as u64,
                connectors: b.connectors().len() as u64,
            };
            (b.merged_wcds(), Some(summary))
        }
    };
    let spanner = wcds.weakly_induced_subgraph(g);
    let router = BackboneRouter::build(g, &wcds);
    let broadcastable = traversal::is_connected(g) && wcds.is_valid(g);
    Arc::new(Bundle {
        epoch,
        graph: Arc::new(g.clone()),
        wcds,
        spanner,
        router,
        broadcastable,
        resilient,
        plan: OnceLock::new(),
    })
}

impl Topology {
    fn artifact_source(&self) -> ArtifactSource {
        match self.resilience {
            Some(params) => ArtifactSource::Resilient(params),
            None => ArtifactSource::Plain(self.body.wcds()),
        }
    }

    /// Builds the artifact bundle from the current snapshot, from
    /// scratch (no reuse of the stale bundle), stamped `epoch`.
    fn build_bundle(&self, epoch: u64) -> Arc<Bundle> {
        build_artifacts(self.body.graph(), &self.artifact_source(), epoch)
    }
}

/// One stored topology: maintained state behind its own `RwLock`, the
/// published bundle in a lock-free [`SnapCell`] (so readers never
/// block on a repair — or on anything), the lease table behind a
/// mutex + condvar, and counters outside all of them.
///
/// **Lock discipline:** no code path acquires one of this entry's
/// locks while holding another. Writers snapshot `published` *before*
/// taking the topology lock and publish *after* dropping it; lease
/// admission happens entirely before the topology lock is touched.
/// That ordering is what makes the nested-lock lint trivially clean
/// and deadlock impossible by construction.
#[derive(Debug)]
struct Entry {
    topo: RwLock<Topology>,
    /// Mutation epoch: 0 at ingest, advanced once per applied mutation
    /// (in lease-commit order) while the topology write lock is held —
    /// so it is frozen under that lock, and lock-free to read.
    epoch: AtomicU64,
    /// The published artifact bundle. Replaced only through
    /// [`publish`], which never installs a bundle older than the
    /// current one. Lock-free to read: the cache-hit path clones the
    /// `Arc` straight out of the cell.
    published: SnapCell<Bundle>,
    /// Epoch stamp of the published bundle ([`NO_BUNDLE`] when none):
    /// an atomic mirror updated right after an install, so freshness
    /// peeks need no snapshot load. May briefly *lag* the cell under a
    /// publish race, which only ever turns a would-be hit into a
    /// rebuild check — never the reverse.
    stamp: AtomicU64,
    /// Whether the topology ingested with positions (immutable after
    /// create; mirrored here so stats never needs the topology lock).
    mobile: bool,
    /// Hardening target mirrors (0 = not hardened), written under the
    /// topology write lock in `harden`, read lock-free by stats.
    hardened_k: AtomicU64,
    hardened_m: AtomicU64,
    /// Published-bundle snapshot loads ([`Entry::load_published`]):
    /// every read that resolved through the lock-free cell.
    snapshot_reads: AtomicU64,
    /// Region-lease table scheduling mutation admission (see
    /// [`wcds_core::maintenance::lease`]).
    leases: Mutex<LeaseTable>,
    /// Wakes queued claims when a lease release admits them.
    lease_cv: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    rebuilds: AtomicU64,
    /// Routes served from a fresh bundle.
    routes_ok: AtomicU64,
    /// Routes served over a stale resilient backbone (degraded mode).
    routes_degraded: AtomicU64,
    /// Route queries answered `Degraded` (no surviving path).
    routes_unreachable: AtomicU64,
    /// Background heals that installed a fresh bundle.
    heals: AtomicU64,
    /// Guards against stacking heal threads: only one in flight.
    healing: AtomicBool,
    /// Admissions that had to queue behind a conflicting claim (live
    /// requests) plus batch mutations planned into a wave later than
    /// the first.
    lease_waits: AtomicU64,
    /// Conflicting (claim, earlier-claim) pairs observed at admission
    /// and wave-planning time.
    lease_conflicts: AtomicU64,
    /// Mutations received through [`Store::mutate_batch`].
    batched_mutations: AtomicU64,
    /// High-water mark of concurrently admitted repairs (live leases in
    /// flight, or the widest batch wave).
    concurrent_repairs_max: AtomicU64,
}

/// `stamp` value meaning "no bundle has ever been published".
const NO_BUNDLE: u64 = u64::MAX;

impl Entry {
    fn new(topo: Topology) -> Self {
        let mobile = matches!(topo.body, Body::Mobile(_));
        Self {
            topo: RwLock::new(topo),
            epoch: AtomicU64::new(0),
            published: SnapCell::new(),
            stamp: AtomicU64::new(NO_BUNDLE),
            mobile,
            hardened_k: AtomicU64::new(0),
            hardened_m: AtomicU64::new(0),
            snapshot_reads: AtomicU64::new(0),
            leases: Mutex::new(LeaseTable::new()),
            lease_cv: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            routes_ok: AtomicU64::new(0),
            routes_degraded: AtomicU64::new(0),
            routes_unreachable: AtomicU64::new(0),
            heals: AtomicU64::new(0),
            healing: AtomicBool::new(false),
            lease_waits: AtomicU64::new(0),
            lease_conflicts: AtomicU64::new(0),
            batched_mutations: AtomicU64::new(0),
            concurrent_repairs_max: AtomicU64::new(0),
        }
    }

    /// The lock-free cache view (see [`CacheView`]). Exact whenever the
    /// caller holds the topology lock (the epoch is frozen there);
    /// otherwise a snapshot that may lag a racing publish, which only
    /// ever turns a would-be hit into a rebuild, never the reverse.
    fn view(&self) -> CacheView {
        let stamp = self.stamp.load(Ordering::Acquire);
        CacheView {
            epoch: self.epoch.load(Ordering::Acquire),
            stamp: (stamp != NO_BUNDLE).then_some(stamp),
        }
    }

    /// Clones the published bundle out of the lock-free cell, counting
    /// the load. Every serving path goes through here, so the
    /// `snapshot_reads` statistic is engine-independent (both the
    /// worker pool and the event loop execute this same code).
    fn load_published(&self) -> Option<Arc<Bundle>> {
        self.snapshot_reads.fetch_add(1, Ordering::Relaxed);
        self.published.load()
    }

    /// `true` when the published bundle is stamped with the current
    /// epoch — a pure atomic peek, no snapshot load, no lock.
    fn stamp_fresh(&self) -> bool {
        let stamp = self.stamp.load(Ordering::Acquire);
        stamp != NO_BUNDLE && stamp == self.epoch.load(Ordering::Acquire)
    }
}

/// Installs `bundle` as the entry's published bundle unless a newer one
/// (or a same-epoch replacement's successor) is already in place: the
/// install is skipped when the current stamp is strictly newer, so
/// out-of-order publishes from racing writers can never roll the cache
/// back. Same-epoch replacement is deliberate — `harden` republishes
/// the current epoch with resilient content.
///
/// The stamp mirror is updated *after* the swap, so it can lag the
/// cell (never lead it): a reader that peeks a fresh stamp is
/// guaranteed at least that epoch in the cell, while a lagging stamp
/// merely sends one read down the rebuild check, which re-verifies.
///
/// The caller must hold **no** entry lock.
fn publish(entry: &Entry, bundle: Arc<Bundle>) {
    let epoch = bundle.epoch;
    let installed = entry.published.update(|cur| {
        if cur.is_none_or(|c| c.epoch <= epoch) {
            (Some(Some(bundle)), true)
        } else {
            (None, false)
        }
    });
    if installed {
        entry.stamp.store(epoch, Ordering::Release);
    }
}

/// Claims `scope` on the entry's lease table. Disjoint claims are
/// admitted immediately; a conflicting claim queues FIFO on the
/// condvar until every older conflicting lease is released. Returns
/// the ticket and the admission wait in microseconds — queueing, not
/// service, reported separately so tail-latency numbers describe
/// repair work.
///
/// Deadlock-free by construction: acquisition is all-or-nothing (a
/// claim never holds some cells while waiting for others) and the
/// caller holds no other lock.
fn acquire_lease(entry: &Entry, scope: Scope) -> Result<(Ticket, u64), StoreError> {
    let poisoned = || err(ErrorCode::Internal, "lease table poisoned by a panicked holder");
    let mut table = entry.leases.lock().map_err(|_| poisoned())?;
    let (ticket, admission) = table.acquire(scope);
    if admission == Admission::Granted {
        entry.concurrent_repairs_max.fetch_max(table.in_flight() as u64, Ordering::Relaxed);
        return Ok((ticket, 0));
    }
    entry.lease_waits.fetch_add(1, Ordering::Relaxed);
    entry.lease_conflicts.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    while !table.is_granted(ticket) {
        table = entry.lease_cv.wait(table).map_err(|_| poisoned())?;
    }
    entry.concurrent_repairs_max.fetch_max(table.in_flight() as u64, Ordering::Relaxed);
    Ok((ticket, u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)))
}

/// Releases a lease and wakes the waiters the release admitted (the
/// condvar is notified after the table lock is dropped).
fn release_lease(entry: &Entry, ticket: Ticket) {
    let admitted = match entry.leases.lock() {
        Ok(mut table) => table.release(ticket),
        Err(_) => return, // poisoned: the store is already failing Internal
    };
    if !admitted.is_empty() {
        entry.lease_cv.notify_all();
    }
}

/// Outcome of a route query: a served path, or an honest account of a
/// partitioned (sub)network instead of a generic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteOutcome {
    /// A backbone route, inclusive of both endpoints; every hop is an
    /// edge of the **current** graph even in degraded mode.
    Path(Vec<NodeId>),
    /// No surviving path; `unreachable` counts the nodes the source
    /// cannot currently reach.
    Degraded {
        /// Nodes out of the source's reach.
        unreachable: u32,
    },
}

/// Outcome of a broadcast query (mirrors [`RouteOutcome`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BroadcastOutcome {
    /// The broadcast covered the source's component.
    Done {
        /// Retransmitting nodes.
        forwarders: u64,
        /// Nodes reached.
        informed: u64,
    },
    /// The topology is partitioned; no plan exists.
    Degraded {
        /// Nodes out of the source's reach.
        unreachable: u32,
    },
}

/// Summary returned by [`Store::harden`] (maps onto
/// `Response::Hardened`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardenOutcome {
    /// Target connectivity.
    pub k: u64,
    /// Target coverage multiplicity.
    pub m: u64,
    /// Core connectivity actually achieved (≤ `k`).
    pub achieved_k: u64,
    /// Total dominator count of the resilient backbone.
    pub dominators: u64,
    /// Spanner edge count of the resilient backbone.
    pub spanner_edges: u64,
    /// Epoch the hardened bundle was built at.
    pub epoch: u64,
}

/// Summary returned by [`Store::mutate_batch`] (maps onto
/// `Response::BatchMutated`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Epoch after the whole batch: a batch of `applied` mutations
    /// returning epoch `e` occupied epochs `e − applied + 1 ..= e`.
    pub epoch: u64,
    /// Mutations applied (the full batch on success).
    pub applied: u64,
    /// Total dominator promotions across the batch's repairs.
    pub promoted: u64,
    /// Total dominator demotions across the batch's repairs.
    pub demoted: u64,
    /// Time the batch spent queued for its lease, in microseconds —
    /// admission wait, excluded from service time.
    pub lease_wait_us: u64,
}

/// Saturating `usize → u32` for unreachable-node counts.
fn narrow_count(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// The "topology is static" rejection shared by every mutation path.
fn static_err(name: &str) -> StoreError {
    err(
        ErrorCode::Unsupported,
        format!("topology `{name}` is static (ingested without positions)"),
    )
}

fn oob_err(node: NodeId, n: usize) -> StoreError {
    err(ErrorCode::OutOfRange, format!("node {node} ≥ n = {n}"))
}

/// Computes the conservative grid-cell claim for one mutation against a
/// topology snapshot, validating what can be validated before the lease
/// is taken (mobility, id range). Claims use cell radius arithmetic
/// only — [`wcds_core::maintenance::lease::CLAIM_RADIUS_CELLS`] cells
/// around every disturbed site, the grid cell being the radio radius —
/// so no graph walk runs before admission, and the claim travels in
/// site form ([`Scope::Blocks`]) so admission never materializes the
/// block cells. A `Leave` claims [`Scope::All`]: id compaction renames
/// every node above the victim, so nothing may be admitted
/// concurrently with it.
fn claim_for(name: &str, topo: &Topology, mutation: &Mutation) -> Result<Scope, StoreError> {
    let Body::Mobile(m) = &topo.body else {
        return Err(static_err(name));
    };
    let cell = m.radius();
    match *mutation {
        Mutation::Join { x, y } => Ok(Scope::Blocks(site_cells(&[Point::new(x, y)], cell))),
        Mutation::Leave { node } => {
            if node >= m.graph().node_count() {
                return Err(oob_err(node, m.graph().node_count()));
            }
            Ok(Scope::All)
        }
        Mutation::Move { node, x, y } => {
            let old = m
                .points()
                .get(node)
                .copied()
                .ok_or_else(|| oob_err(node, m.graph().node_count()))?;
            Ok(Scope::Blocks(site_cells(&[old, Point::new(x, y)], cell)))
        }
    }
}

/// Validates a whole batch against a topology snapshot and computes
/// each mutation's claim. All-or-nothing: any invalid id rejects the
/// batch before anything is applied. Ids are interpreted in
/// batch-application order — a `Leave` shifts later ids exactly as the
/// serial replay would — by simulating the position vector on a local
/// clone, never touching the real state.
fn batch_claims(
    name: &str,
    topo: &Topology,
    mutations: &[Mutation],
) -> Result<Vec<Scope>, StoreError> {
    let Body::Mobile(m) = &topo.body else {
        return Err(static_err(name));
    };
    let cell = m.radius();
    let mut pts: Vec<Point> = m.points().to_vec();
    let mut claims = Vec::with_capacity(mutations.len());
    for mu in mutations {
        match *mu {
            Mutation::Join { x, y } => {
                let p = Point::new(x, y);
                pts.push(p);
                claims.push(Scope::Blocks(site_cells(&[p], cell)));
            }
            Mutation::Leave { node } => {
                if node >= pts.len() {
                    return Err(oob_err(node, pts.len()));
                }
                pts.remove(node);
                claims.push(Scope::All);
            }
            Mutation::Move { node, x, y } => {
                let p = Point::new(x, y);
                let n = pts.len();
                let slot = pts.get_mut(node).ok_or_else(|| oob_err(node, n))?;
                let old = *slot;
                *slot = p;
                claims.push(Scope::Blocks(site_cells(&[old, p], cell)));
            }
        }
    }
    Ok(claims)
}

/// Folds per-mutation claims into the single batch-level lease scope.
/// The store only emits site-form claims (`Blocks` / `All`), so the
/// union stays in site form — one sorted, deduplicated site list per
/// batch, never a materialized cell set. Explicit `Cells` claims (none
/// today) are widened to the blocks around them, which is conservative
/// and therefore safe for a scheduling predicate.
fn union_scope(claims: &[Scope]) -> Scope {
    let mut sites = Vec::new();
    for c in claims {
        match c {
            Scope::All => return Scope::All,
            Scope::Blocks(v) | Scope::Cells(v) => sites.extend_from_slice(v),
        }
    }
    // sorted + deduped is the Scope list invariant
    sites.sort_unstable();
    sites.dedup();
    Scope::Blocks(sites)
}

/// Splits a batch into maximal `Move` runs (coalesced into repair
/// waves) and single `Join` / `Leave` barriers (membership changes
/// alter the id space, so they serialize).
fn segments(mutations: &[Mutation]) -> Vec<&[Mutation]> {
    let mut out = Vec::new();
    let mut rest = mutations;
    while !rest.is_empty() {
        let run = rest.iter().take_while(|m| matches!(m, Mutation::Move { .. })).count();
        let take = run.max(1);
        let Some((seg, tail)) = rest.get(..take).zip(rest.get(take..)) else {
            break; // unreachable: take ≤ rest.len()
        };
        out.push(seg);
        rest = tail;
    }
    out
}

/// Splices a fresh bundle out of `prior` after a dominator-preserving
/// repair: WCDS carried over, router patched from the repair's net
/// edge delta, broadcast plan reset to its lazy unset state.
/// Byte-identical to a from-scratch build (release-asserted by the
/// store tests).
fn patch_bundle(g: &Graph, prior: &Bundle, report: &RepairReport, epoch: u64) -> Arc<Bundle> {
    let wcds = prior.wcds.clone();
    let router = prior.router.patched(g, &wcds, &report.edges_added, &report.edges_removed);
    let spanner = router.spanner().clone();
    let broadcastable = traversal::is_connected(g) && wcds.is_valid(g);
    Arc::new(Bundle {
        epoch,
        graph: Arc::new(g.clone()),
        wcds,
        spanner,
        router,
        broadcastable,
        resilient: None,
        plan: OnceLock::new(),
    })
}

/// Applies one mutation under the topology write lock (the caller
/// already holds the lease). Returns the post-mutation epoch, the
/// repair report, and — when the repair preserved every dominator and
/// the previously published bundle was exactly one epoch behind — a
/// patched bundle for the caller to publish after the lock is dropped.
///
/// The prior bundle is snapshotted *before* the topology lock is
/// taken; a racing publish in between merely disables the patch (the
/// `epoch + 1` filter fails) and the next query rebuilds lazily.
fn apply_one(
    entry: &Entry,
    name: &str,
    mutation: &Mutation,
) -> Result<(u64, RepairReport, Option<Arc<Bundle>>), StoreError> {
    let prior = entry.load_published();
    let mut topo = write_guard(&entry.topo)?;
    let t = &mut *topo;
    let resilience = t.resilience;
    let n = t.body.graph().node_count();
    let Body::Mobile(m) = &mut t.body else {
        return Err(static_err(name));
    };
    let report = match *mutation {
        Mutation::Join { x, y } => m.apply_join(Point::new(x, y)),
        Mutation::Leave { node } => {
            if node >= n {
                return Err(oob_err(node, n));
            }
            m.apply_leave(node)
        }
        Mutation::Move { node, x, y } => {
            if node >= n {
                return Err(oob_err(node, n));
            }
            m.apply_motion(&[(node, Point::new(x, y))])
        }
    };
    let epoch = entry.epoch.fetch_add(1, Ordering::AcqRel) + 1;
    let is_leave = matches!(*mutation, Mutation::Leave { .. });
    if is_leave {
        t.leave_since_bundle = true;
    }
    // a leave renames every id above the victim, which would invalidate
    // all id-keyed router state — let it rebuild. Hardened bundles also
    // rebuild: a plain repair report says nothing about the upper
    // coverage layers or connectors.
    let patch = prior
        .filter(|b| {
            b.epoch + 1 == epoch && resilience.is_none() && !report.changed() && !is_leave
        })
        .map(|b| patch_bundle(t.body.graph(), &b, &report, epoch));
    Ok((epoch, report, patch))
}

/// Applies a validated batch under the topology write lock, walking
/// its segments in order: each `Move` run is wave-planned for the
/// admission counters and then coalesced into **one** `apply_motion`
/// repair (one worklist pass over the union of the run's disturbed
/// regions); `Join` / `Leave` segments apply singly. Maintains a
/// running patched-bundle chain (dropped on dominator churn, a leave,
/// or a hardened topology) so a quiet batch still leaves the cache
/// hot.
fn apply_batch(
    entry: &Entry,
    name: &str,
    mutations: &[Mutation],
    claims: &[Scope],
) -> Result<(BatchOutcome, Option<Arc<Bundle>>), StoreError> {
    let prior = entry.load_published();
    let mut topo = write_guard(&entry.topo)?;
    let t = &mut *topo;
    let resilience = t.resilience;
    let Body::Mobile(m) = &mut t.body else {
        return Err(static_err(name));
    };
    let mut epoch = entry.epoch.load(Ordering::Acquire);
    // the chain invariant: `chain` is Some(b) only while b.epoch equals
    // the running epoch, i.e. the bundle is exactly current
    let mut chain = prior.filter(|b| b.epoch == epoch && resilience.is_none());
    let mut promoted = 0u64;
    let mut demoted = 0u64;
    let mut leave_seen = false;
    let mut off = 0usize;
    for seg in segments(mutations) {
        let seg_claims = claims.get(off..off + seg.len()).unwrap_or(&[]);
        off += seg.len();
        match seg.first() {
            Some(Mutation::Move { .. }) => {
                // the wave plan is *accounting*: what the live table
                // would have admitted had each move arrived alone
                // (waits, conflict pairs, peak admissible concurrency).
                // Application does not serialize on it — the maintained
                // state is a pure function of the final positions
                // (release-asserted against serial replay), so the
                // whole run coalesces into ONE worklist repair over the
                // union of its disturbed regions
                let plan = plan_batch(seg_claims);
                entry.lease_waits.fetch_add(plan.waits, Ordering::Relaxed);
                entry.lease_conflicts.fetch_add(plan.conflicts, Ordering::Relaxed);
                entry
                    .concurrent_repairs_max
                    .fetch_max(plan.max_concurrency as u64, Ordering::Relaxed);
                let mut moves = Vec::with_capacity(seg.len());
                for mu in seg {
                    if let Mutation::Move { node, x, y } = *mu {
                        let n = m.graph().node_count();
                        if node >= n {
                            return Err(oob_err(node, n));
                        }
                        moves.push((node, Point::new(x, y)));
                    }
                }
                let report = m.apply_motion(&moves);
                let step = moves.len() as u64;
                epoch = entry.epoch.fetch_add(step, Ordering::AcqRel) + step;
                promoted += report.promoted.len() as u64;
                demoted += report.demoted.len() as u64;
                chain = chain
                    .filter(|_| !report.changed())
                    .map(|b| patch_bundle(m.graph(), &b, &report, epoch));
            }
            Some(&Mutation::Join { x, y }) => {
                let report = m.apply_join(Point::new(x, y));
                epoch = entry.epoch.fetch_add(1, Ordering::AcqRel) + 1;
                promoted += report.promoted.len() as u64;
                demoted += report.demoted.len() as u64;
                chain = chain
                    .filter(|_| !report.changed())
                    .map(|b| patch_bundle(m.graph(), &b, &report, epoch));
            }
            Some(&Mutation::Leave { node }) => {
                let n = m.graph().node_count();
                if node >= n {
                    return Err(oob_err(node, n));
                }
                let report = m.apply_leave(node);
                epoch = entry.epoch.fetch_add(1, Ordering::AcqRel) + 1;
                promoted += report.promoted.len() as u64;
                demoted += report.demoted.len() as u64;
                leave_seen = true;
                chain = None; // id compaction invalidates id-keyed state
            }
            None => {}
        }
    }
    if leave_seen {
        t.leave_since_bundle = true;
    }
    let outcome = BatchOutcome {
        epoch,
        applied: mutations.len() as u64,
        promoted,
        demoted,
        lease_wait_us: 0,
    };
    Ok((outcome, chain))
}

/// Serves a route over the **surviving backbone**: a BFS over the stale
/// resilient spanner restricted to edges the live graph still has, so
/// every hop of a returned path is valid *now*. Pure function of its
/// arguments — the caller holds (only) the topology read lock.
///
/// Nodes that joined after the bundle was built have no spanner entry;
/// they are served only by the direct-edge shortcut.
fn surviving_backbone_route(
    g: &Graph,
    bundle: &Bundle,
    from: NodeId,
    to: NodeId,
) -> RouteOutcome {
    if from == to {
        return RouteOutcome::Path(vec![from]);
    }
    if g.has_edge(from, to) {
        return RouteOutcome::Path(vec![from, to]);
    }
    let n = bundle.spanner.node_count();
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    let mut reached = 0usize;
    if from < n {
        if let Some(p) = parent.get_mut(from) {
            *p = from;
        }
        queue.push_back(from);
        reached = 1;
    }
    while let Some(u) = queue.pop_front() {
        for v in bundle.spanner.adj(u) {
            // out-of-range defaults to 0 ≠ MAX, i.e. "already visited"
            if parent.get(v).copied().unwrap_or(0) != usize::MAX || !g.has_edge(u, v) {
                continue;
            }
            if let Some(p) = parent.get_mut(v) {
                *p = u;
            }
            reached += 1;
            if v == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = parent.get(cur).copied().unwrap_or(from);
                    path.push(cur);
                }
                path.reverse();
                return RouteOutcome::Path(path);
            }
            queue.push_back(v);
        }
    }
    RouteOutcome::Degraded { unreachable: narrow_count(g.node_count().saturating_sub(reached)) }
}

/// Serves a route wholly from a fresh published bundle — the zero-lock
/// fast path. The caller proved `bundle.epoch` equals the current
/// epoch, so the bundle's node-id space (and its graph snapshot) is
/// the live one.
fn route_fresh(
    entry: &Entry,
    bundle: &Bundle,
    from: NodeId,
    to: NodeId,
) -> Result<RouteOutcome, StoreError> {
    let n = bundle.graph.node_count();
    for u in [from, to] {
        if u >= n {
            return Err(err(ErrorCode::OutOfRange, format!("node {u} ≥ n = {n}")));
        }
    }
    entry.hits.fetch_add(1, Ordering::Relaxed);
    match bundle.router.route(from, to) {
        Some(path) => {
            entry.routes_ok.fetch_add(1, Ordering::Relaxed);
            Ok(RouteOutcome::Path(path))
        }
        None => {
            // the spanner preserves component structure, so its
            // component sizes are the graph's
            let reached = traversal::bfs_distances(&bundle.spanner, from)
                .iter()
                .filter(|d| d.is_some())
                .count();
            entry.routes_unreachable.fetch_add(1, Ordering::Relaxed);
            Ok(RouteOutcome::Degraded { unreachable: narrow_count(n.saturating_sub(reached)) })
        }
    }
}

/// Simulates a broadcast over `bundle` against graph `g`. On the
/// zero-lock fast path `g` is the bundle's own graph snapshot; on the
/// slow path it is the live graph under the topology read lock (and
/// the bundle was just rebuilt against it).
fn broadcast_from(
    bundle: &Bundle,
    g: &Graph,
    source: NodeId,
) -> Result<BroadcastOutcome, StoreError> {
    if source >= g.node_count() {
        return Err(err(
            ErrorCode::OutOfRange,
            format!("node {source} ≥ n = {}", g.node_count()),
        ));
    }
    match bundle.plan() {
        Some(plan) => {
            let outcome = plan.simulate(g, source);
            let informed = g.node_count() - outcome.uncovered.len();
            Ok(BroadcastOutcome::Done {
                forwarders: plan.forwarder_count() as u64,
                informed: informed as u64,
            })
        }
        None => {
            let reached = traversal::bfs_distances(g, source)
                .iter()
                .filter(|d| d.is_some())
                .count();
            Ok(BroadcastOutcome::Degraded {
                unreachable: narrow_count(g.node_count() - reached),
            })
        }
    }
}

/// One shard of the name → entry map, copy-on-write behind a
/// lock-free [`SnapCell`]: lookups clone an `Arc` and walk an
/// immutable map; create/drop (rare) clone the small map and publish
/// the successor under the cell's writer mutex.
type Shard = SnapCell<HashMap<String, Arc<Entry>>>;

/// Serving-engine diagnostics, shared across every clone of one store
/// lineage and reported through `stats` (engine-level, not
/// per-topology). The readiness event loop writes these; the
/// worker-pool engine leaves them at zero.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    /// Readiness-loop syscalls issued by the serving engine (epoll
    /// waits + ctls, reads, writes, accepts, waker nudges).
    pub syscalls: AtomicU64,
    /// Deepest request pipeline observed on one connection: complete
    /// frames decoded from a single readiness wake.
    pub pipeline_depth_max: AtomicU64,
}

/// The sharded topology store. Cheap to clone (`Arc` inside); one
/// instance is shared by every server worker.
#[derive(Debug, Clone)]
pub struct Store {
    shards: Arc<[Shard; SHARDS]>,
    service: Arc<ServiceCounters>,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            shards: Arc::new(std::array::from_fn(|_| {
                SnapCell::with_value(Arc::new(HashMap::new()))
            })),
            service: Arc::new(ServiceCounters::default()),
        }
    }

    /// The engine-level serving counters (shared by every clone).
    pub fn service(&self) -> &Arc<ServiceCounters> {
        &self.service
    }

    /// Lock-free freshness peek: `true` when `name` exists and its
    /// published bundle is stamped with the current epoch. The event
    /// loop uses this to decide whether a read can be answered inline
    /// on the loop thread; purely advisory — a racing mutation can
    /// stale the entry right after, and the full request path
    /// re-checks.
    pub fn is_fresh(&self, name: &str) -> bool {
        self.shard(name)
            .load()
            .is_some_and(|m| m.get(name).is_some_and(|e| e.stamp_fresh()))
    }

    fn shard(&self, name: &str) -> &Shard {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        let idx = (h.finish() % SHARDS as u64) as usize;
        // analyze: allow(slice-index, "idx = hash % SHARDS is < SHARDS by construction")
        &self.shards[idx]
    }

    fn entry(&self, name: &str) -> Result<Arc<Entry>, StoreError> {
        self.shard(name)
            .load()
            .and_then(|m| m.get(name).cloned())
            .ok_or_else(|| err(ErrorCode::NotFound, format!("no topology `{name}`")))
    }

    /// Ingests a topology from `wcds_graph::io` text. Payloads with
    /// positions become mobile; edge-only payloads are static.
    ///
    /// # Errors
    ///
    /// `BadPayload` on unparsable text, `AlreadyExists` on a name
    /// collision.
    pub fn create(&self, name: &str, payload: &str) -> Result<(u64, u64, bool), StoreError> {
        let doc = io::from_text(payload)
            .map_err(|e| err(ErrorCode::BadPayload, format!("payload: {e}")))?;
        let body = match doc.points {
            Some(points) => Body::Mobile(MaintainedWcds::new(points, UDG_RADIUS)),
            None => Body::Static(doc.graph),
        };
        let (n, m) = (body.graph().node_count() as u64, body.graph().edge_count() as u64);
        let mobile = matches!(body, Body::Mobile(_));
        let entry = Arc::new(Entry::new(Topology {
            body,
            resilience: None,
            leave_since_bundle: false,
        }));
        let inserted = self.shard(name).update(|cur| {
            if cur.is_some_and(|map| map.contains_key(name)) {
                return (None, false);
            }
            let mut next: HashMap<String, Arc<Entry>> =
                cur.map(|map| (**map).clone()).unwrap_or_default();
            next.insert(name.to_string(), entry);
            (Some(Some(Arc::new(next))), true)
        });
        if !inserted {
            return Err(err(ErrorCode::AlreadyExists, format!("topology `{name}` exists")));
        }
        Ok((n, m, mobile))
    }

    /// The current topology as `wcds_graph::io` text (with positions
    /// when mobile).
    ///
    /// # Errors
    ///
    /// `NotFound` for an unknown name.
    pub fn export(&self, name: &str) -> Result<String, StoreError> {
        let entry = self.entry(name)?;
        let topo = read_guard(&entry.topo)?;
        Ok(match &topo.body {
            Body::Static(g) => io::to_text(g, None),
            Body::Mobile(m) => io::to_text(m.graph(), Some(m.points())),
        })
    }

    /// Returns the artifact bundle for the topology's **current**
    /// epoch, building it if the cached one is missing or stale, plus
    /// whether this call was a cache hit.
    ///
    /// # Errors
    ///
    /// `NotFound` for an unknown name.
    pub fn bundle(&self, name: &str) -> Result<(Arc<Bundle>, bool), StoreError> {
        let entry = self.entry(name)?;
        // hit path: one lock-free snapshot load — a repair holding the
        // topology write lock never blocks this, and no lock of any
        // kind is acquired
        {
            let p = entry.load_published();
            let view = CacheView {
                epoch: entry.epoch.load(Ordering::Acquire),
                stamp: p.as_ref().map(|b| b.epoch),
            };
            if read_check(&view) == ReadDecision::Hit {
                if let Some(b) = p {
                    entry.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((b, true));
                }
            }
        }
        entry.misses.fetch_add(1, Ordering::Relaxed);
        // rebuild path: serialized on the topology write lock, which
        // freezes the epoch for the duration of the build
        let built = {
            let mut topo = write_guard(&entry.topo)?;
            // double-check: a racing query may have republished while
            // we waited for the lock
            if write_check(&entry.view()) == WriteDecision::FreshAlready {
                None
            } else {
                entry.rebuilds.fetch_add(1, Ordering::Relaxed);
                let b = topo.build_bundle(entry.epoch.load(Ordering::Acquire));
                topo.leave_since_bundle = false;
                Some(b)
            }
        };
        match built {
            Some(bundle) => {
                publish(&entry, Arc::clone(&bundle));
                Ok((bundle, false))
            }
            // a fresh stamp is stored only after its bundle was
            // installed in the cell, so the load always finds one
            None => entry
                .load_published()
                .map(|b| (b, false))
                .ok_or_else(|| {
                    err(ErrorCode::Internal, "fresh stamp with no published bundle")
                }),
        }
    }

    /// Applies one maintenance mutation, advancing the epoch.
    ///
    /// Admission goes through the entry's region-lease table first: the
    /// mutation claims the grid cells conservatively covering its 3-hop
    /// repair ball, proceeds immediately when no live claim overlaps,
    /// and otherwise queues FIFO on the lease condvar — *without*
    /// holding the topology lock, so a queued mutation blocks neither
    /// readers nor disjoint mutations, and its wait is accounted as
    /// queueing rather than service time.
    ///
    /// When the repair left every dominator in place (the common case
    /// for small motions and absorbed joins) and the published bundle
    /// was exactly one epoch behind, the bundle is **patched**: the
    /// WCDS is carried over, the router is spliced through
    /// [`BackboneRouter::patched`] from the repair's net edge delta,
    /// and the broadcast plan resets to its lazy unset state. The next
    /// query is then a cache hit with artifacts byte-identical to a
    /// from-scratch rebuild. Otherwise (dominator churn, a leave's id
    /// compaction, or an already-stale bundle) the published bundle is
    /// left in place and queries rebuild lazily on the epoch mismatch.
    ///
    /// # Errors
    ///
    /// `NotFound`, `Unsupported` (static topology), or `OutOfRange`.
    pub fn mutate(&self, name: &str, mutation: &Mutation) -> Result<(u64, RepairReport), StoreError> {
        let entry = self.entry(name)?;
        let scope = {
            let topo = read_guard(&entry.topo)?;
            claim_for(name, &topo, mutation)?
        };
        let (ticket, _wait_us) = acquire_lease(&entry, scope)?;
        let applied = apply_one(&entry, name, mutation);
        release_lease(&entry, ticket);
        let (epoch, report, patch) = applied?;
        if let Some(b) = patch {
            publish(&entry, b);
        }
        Ok((epoch, report))
    }

    /// Applies a whole mutation batch (a drift tick) under **one**
    /// region lease, coalescing its repairs.
    ///
    /// The batch is validated up front against a topology snapshot —
    /// all-or-nothing, ids interpreted in batch order exactly as a
    /// serial replay would — and claims one lease for the union of its
    /// per-mutation scopes. Maximal `Move` runs are planned into FIFO
    /// waves of pairwise-disjoint claims
    /// ([`wcds_core::maintenance::lease::plan_batch`]) for the
    /// admission counters (waits, conflict pairs, peak admissible
    /// concurrency), then applied as **one** `apply_motion` call — a
    /// single cascade worklist pass over the union of the run's
    /// disturbed regions with the refresh sweeps fanned out on the
    /// parallel engine. (The maintained state is a pure function of
    /// the final positions, so one coalesced pass is byte-identical to
    /// wave-by-wave or fully serial application.) `Join` / `Leave`
    /// mutations are their own single-mutation barriers (they change
    /// the id space). The epoch advances by each segment's size in
    /// commit order, so a batch of `k` returning epoch `e` occupied
    /// epochs `e − k + 1 ..= e`, and the final state is byte-identical
    /// to applying the same mutations serially in that order.
    ///
    /// # Errors
    ///
    /// `NotFound`, `Unsupported` (static topology), or `OutOfRange`
    /// (any invalid id in the batch; nothing is applied).
    pub fn mutate_batch(
        &self,
        name: &str,
        mutations: &[Mutation],
    ) -> Result<BatchOutcome, StoreError> {
        let entry = self.entry(name)?;
        entry.batched_mutations.fetch_add(mutations.len() as u64, Ordering::Relaxed);
        if mutations.is_empty() {
            return Ok(BatchOutcome {
                epoch: entry.epoch.load(Ordering::Acquire),
                applied: 0,
                promoted: 0,
                demoted: 0,
                lease_wait_us: 0,
            });
        }
        let claims = {
            let topo = read_guard(&entry.topo)?;
            batch_claims(name, &topo, mutations)?
        };
        let (ticket, lease_wait_us) = acquire_lease(&entry, union_scope(&claims))?;
        let applied = apply_batch(&entry, name, mutations, &claims);
        release_lease(&entry, ticket);
        let (outcome, patch) = applied?;
        if let Some(b) = patch {
            publish(&entry, b);
        }
        Ok(BatchOutcome { lease_wait_us, ..outcome })
    }

    /// Full statistics for one topology. Builds the bundle if stale, so
    /// the WCDS/spanner numbers always describe the current epoch;
    /// `cached` reports whether the bundle was already fresh.
    ///
    /// # Errors
    ///
    /// `NotFound` for an unknown name.
    pub fn stats(&self, name: &str) -> Result<TopologyStats, StoreError> {
        let entry = self.entry(name)?;
        let snap = entry.load_published();
        if let Some(b) =
            snap.as_ref().filter(|b| b.epoch == entry.epoch.load(Ordering::Acquire))
        {
            // fresh-snapshot fast path: every figure comes from the
            // bundle, the entry's atomics, or their mirrors — zero
            // locks
            entry.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(self.stats_for(&entry, b, true));
        }
        let (bundle, cached) = self.bundle(name)?;
        Ok(self.stats_for(&entry, &bundle, cached))
    }

    /// Assembles the stats row from a current-epoch bundle and the
    /// entry's lock-free counters/mirrors.
    fn stats_for(&self, entry: &Entry, bundle: &Bundle, cached: bool) -> TopologyStats {
        TopologyStats {
            nodes: bundle.graph.node_count() as u64,
            edges: bundle.graph.edge_count() as u64,
            epoch: bundle.epoch,
            mobile: entry.mobile,
            cached,
            mis: bundle.wcds.mis_dominators().len() as u64,
            bridges: bundle.wcds.additional_dominators().len() as u64,
            spanner_edges: bundle.spanner.edge_count() as u64,
            cache_hits: entry.hits.load(Ordering::Relaxed),
            cache_misses: entry.misses.load(Ordering::Relaxed),
            rebuilds: entry.rebuilds.load(Ordering::Relaxed),
            hardened_k: entry.hardened_k.load(Ordering::Relaxed),
            hardened_m: entry.hardened_m.load(Ordering::Relaxed),
            achieved_k: bundle.resilient.map_or(0, |r| u64::from(r.achieved_k)),
            routes_ok: entry.routes_ok.load(Ordering::Relaxed),
            routes_degraded: entry.routes_degraded.load(Ordering::Relaxed),
            routes_unreachable: entry.routes_unreachable.load(Ordering::Relaxed),
            heals: entry.heals.load(Ordering::Relaxed),
            lease_waits: entry.lease_waits.load(Ordering::Relaxed),
            lease_conflicts: entry.lease_conflicts.load(Ordering::Relaxed),
            batched_mutations: entry.batched_mutations.load(Ordering::Relaxed),
            concurrent_repairs_max: entry.concurrent_repairs_max.load(Ordering::Relaxed),
            snapshot_reads: entry.snapshot_reads.load(Ordering::Relaxed),
            pipeline_depth_max: self.service.pipeline_depth_max.load(Ordering::Relaxed),
            syscalls: self.service.syscalls.load(Ordering::Relaxed),
        }
    }

    /// Upgrades the topology to a (k, m)-resilient backbone and builds
    /// the hardened bundle eagerly. From here on every rebuild — lazy,
    /// eager, or healing — reconstructs the resilient backbone, and
    /// stale-bundle route queries are served in **degraded mode** over
    /// the surviving layers instead of blocking on a rebuild.
    ///
    /// # Errors
    ///
    /// `NotFound` for an unknown name, `OutOfRange` for k or m outside
    /// `1..=wcds_core::resilient::MAX_FOLD`.
    pub fn harden(&self, name: &str, k: u64, m: u64) -> Result<HardenOutcome, StoreError> {
        let narrow = |v: u64| u32::try_from(v).unwrap_or(u32::MAX);
        let params = ResilientParams::new(narrow(k), narrow(m))
            .map_err(|e| err(ErrorCode::OutOfRange, e.to_string()))?;
        let entry = self.entry(name)?;
        let bundle = {
            let mut topo = write_guard(&entry.topo)?;
            topo.resilience = Some(params);
            // lock-free stats mirrors, written under the same write
            // lock that guards `resilience` itself
            entry.hardened_k.store(u64::from(params.k), Ordering::Relaxed);
            entry.hardened_m.store(u64::from(params.m), Ordering::Relaxed);
            entry.rebuilds.fetch_add(1, Ordering::Relaxed);
            let b = topo.build_bundle(entry.epoch.load(Ordering::Acquire));
            topo.leave_since_bundle = false;
            b
        };
        // same-epoch replacement: publish swaps the plain bundle for
        // the hardened one at the unchanged epoch
        publish(&entry, Arc::clone(&bundle));
        match bundle.resilient {
            Some(s) => Ok(HardenOutcome {
                k: u64::from(params.k),
                m: u64::from(params.m),
                achieved_k: u64::from(s.achieved_k),
                dominators: (bundle.wcds.mis_dominators().len()
                    + bundle.wcds.additional_dominators().len()) as u64,
                spanner_edges: bundle.spanner.edge_count() as u64,
                epoch: bundle.epoch,
            }),
            None => Err(err(ErrorCode::Internal, "hardened bundle lost its summary")),
        }
    }

    /// Routes `from → to` over the cached backbone.
    ///
    /// Freshness tiers:
    ///
    /// * **fresh bundle** — routed from the cached tables (cache hit);
    /// * **stale bundle, hardened topology** — served **degraded**:
    ///   a BFS over the stale resilient spanner restricted to edges the
    ///   live graph still has. Runs entirely under the read lock (the
    ///   read path never rebuilds, never blocks on the write lock) and
    ///   kicks off a background heal;
    /// * **stale bundle, plain topology** — synchronous rebuild, as
    ///   before.
    ///
    /// An unreachable destination yields `Ok(RouteOutcome::Degraded)`
    /// (with the count of nodes out of the source's reach), not an
    /// error: a partitioned network is a state to report, not a request
    /// defect.
    ///
    /// # Errors
    ///
    /// `NotFound` or `OutOfRange`.
    pub fn route(
        &self,
        name: &str,
        from: NodeId,
        to: NodeId,
    ) -> Result<RouteOutcome, StoreError> {
        let entry = self.entry(name)?;
        // snapshot the published bundle *before* the topology lock (the
        // one-lock-at-a-time discipline); the stamp comparison below
        // rejects a snapshot made stale by a racing rebuild
        let snap = entry.load_published();
        if let Some(b) =
            snap.as_ref().filter(|b| b.epoch == entry.epoch.load(Ordering::Acquire))
        {
            // fresh-snapshot fast path: served wholly from the bundle,
            // zero locks
            return route_fresh(&entry, b, from, to);
        }
        let degraded = {
            let topo = read_guard(&entry.topo)?;
            let n = topo.body.graph().node_count();
            for u in [from, to] {
                if u >= n {
                    return Err(err(ErrorCode::OutOfRange, format!("node {u} ≥ n = {n}")));
                }
            }
            let view = entry.view();
            if read_check(&view) != ReadDecision::Hit
                && topo.resilience.is_some()
                && !topo.leave_since_bundle
            {
                // stamp == snap.epoch proves the snapshot is the bundle
                // currently published, whose id space the clear
                // leave_since_bundle flag vouches for
                snap.as_ref()
                    .filter(|b| view.bundle_stamp() == Some(b.epoch))
                    .map(|b| surviving_backbone_route(topo.body.graph(), b, from, to))
            } else {
                None
            }
        };
        if let Some(outcome) = degraded {
            let counter = match outcome {
                RouteOutcome::Path(_) => &entry.routes_degraded,
                RouteOutcome::Degraded { .. } => &entry.routes_unreachable,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            self.spawn_heal(&entry, name);
            return Ok(outcome);
        }
        let (bundle, _) = self.bundle(name)?;
        let n = bundle.spanner.node_count();
        for u in [from, to] {
            if u >= n {
                return Err(err(ErrorCode::OutOfRange, format!("node {u} ≥ n = {n}")));
            }
        }
        match bundle.router.route(from, to) {
            Some(path) => {
                entry.routes_ok.fetch_add(1, Ordering::Relaxed);
                Ok(RouteOutcome::Path(path))
            }
            None => {
                // the spanner preserves component structure, so its
                // component sizes are the graph's
                let reached = traversal::bfs_distances(&bundle.spanner, from)
                    .iter()
                    .filter(|d| d.is_some())
                    .count();
                entry.routes_unreachable.fetch_add(1, Ordering::Relaxed);
                Ok(RouteOutcome::Degraded { unreachable: narrow_count(n - reached) })
            }
        }
    }

    /// Simulates a backbone broadcast from `source`.
    ///
    /// A partitioned topology yields
    /// `Ok(BroadcastOutcome::Degraded { unreachable })` — the number of
    /// nodes outside the source's component — instead of the old
    /// generic `Unsupported` "is partitioned" error.
    ///
    /// # Errors
    ///
    /// `NotFound` or `OutOfRange`.
    pub fn broadcast(
        &self,
        name: &str,
        source: NodeId,
    ) -> Result<BroadcastOutcome, StoreError> {
        let entry = self.entry(name)?;
        let snap = entry.load_published();
        if let Some(b) =
            snap.as_ref().filter(|b| b.epoch == entry.epoch.load(Ordering::Acquire))
        {
            // fresh-snapshot fast path: the bundle's graph snapshot is
            // the live graph, so the simulation needs no lock
            entry.hits.fetch_add(1, Ordering::Relaxed);
            return broadcast_from(b, &b.graph, source);
        }
        let (bundle, _) = self.bundle(name)?;
        let topo = read_guard(&entry.topo)?;
        broadcast_from(&bundle, topo.body.graph(), source)
    }

    /// Spawns (at most one) background heal thread for `entry`.
    fn spawn_heal(&self, entry: &Arc<Entry>, name: &str) {
        if entry
            .healing
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return; // a heal is already in flight
        }
        let store = self.clone();
        let entry = Arc::clone(entry);
        let name = name.to_string();
        std::thread::spawn(move || {
            if store.heal(&name).unwrap_or(false) {
                entry.heals.fetch_add(1, Ordering::Relaxed);
            }
            entry.healing.store(false, Ordering::Release);
        });
    }

    /// One healing pass: snapshot the topology under the read lock,
    /// build fresh artifacts **outside any lock**, then install them
    /// under the write lock only if no mutation raced the build (the
    /// epoch is re-checked). Retries a bounded number of times under
    /// sustained mutation pressure; reads keep degrading meanwhile.
    ///
    /// Returns whether a fresh bundle was installed.
    ///
    /// # Errors
    ///
    /// `NotFound` if the topology was dropped mid-heal, `Internal` on a
    /// poisoned lock.
    pub fn heal(&self, name: &str) -> Result<bool, StoreError> {
        for _ in 0..3 {
            let entry = self.entry(name)?;
            let (epoch, graph, source) = {
                let topo = read_guard(&entry.topo)?;
                // the epoch is stable here: mutations advance it only
                // under the topology *write* lock
                if read_check(&entry.view()) == ReadDecision::Hit {
                    return Ok(false); // someone else already rebuilt
                }
                (
                    entry.epoch.load(Ordering::Acquire),
                    topo.body.graph().clone(),
                    topo.artifact_source(),
                )
            };
            let bundle = build_artifacts(&graph, &source, epoch);
            let installed = {
                let mut topo = write_guard(&entry.topo)?;
                if entry.epoch.load(Ordering::Acquire) == epoch {
                    entry.rebuilds.fetch_add(1, Ordering::Relaxed);
                    topo.leave_since_bundle = false;
                    true
                } else {
                    false
                }
            };
            if installed {
                // a mutation slipping in between the lock drop and this
                // publish simply outranks us (publish never rolls back)
                publish(&entry, bundle);
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Sorted names of all stored topologies. Lock-free (walks each
    /// shard's immutable snapshot); kept fallible for wire-level
    /// compatibility.
    ///
    /// # Errors
    ///
    /// Infallible today.
    pub fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for s in self.shards.iter() {
            if let Some(m) = s.load() {
                names.extend(m.keys().cloned());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Removes a topology.
    ///
    /// # Errors
    ///
    /// `NotFound` for an unknown name.
    pub fn drop_topology(&self, name: &str) -> Result<(), StoreError> {
        let removed = self.shard(name).update(|cur| match cur {
            Some(map) if map.contains_key(name) => {
                let mut next = (**map).clone();
                next.remove(name);
                (Some(Some(Arc::new(next))), true)
            }
            _ => (None, false),
        });
        removed
            .then_some(())
            .ok_or_else(|| err(ErrorCode::NotFound, format!("no topology `{name}`")))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use wcds_geom::deploy;
    use wcds_graph::UnitDiskGraph;

    fn payload(n: usize, side: f64, seed: u64) -> String {
        let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed), UDG_RADIUS);
        io::to_text(udg.graph(), Some(udg.points()))
    }

    #[test]
    fn create_query_drop_lifecycle() {
        let store = Store::new();
        let (n, m, mobile) = store.create("a", &payload(60, 4.0, 1)).unwrap();
        assert_eq!(n, 60);
        assert!(m > 0);
        assert!(mobile);
        assert_eq!(store.list().unwrap(), vec!["a".to_string()]);
        assert_eq!(store.create("a", &payload(10, 3.0, 2)).unwrap_err().code, ErrorCode::AlreadyExists);
        let stats = store.stats("a").unwrap();
        assert_eq!(stats.epoch, 0);
        assert!(!stats.cached, "first stats call builds the bundle");
        assert!(store.stats("a").unwrap().cached, "second call hits");
        store.drop_topology("a").unwrap();
        assert_eq!(store.stats("a").unwrap_err().code, ErrorCode::NotFound);
        assert_eq!(store.drop_topology("a").unwrap_err().code, ErrorCode::NotFound);
    }

    #[test]
    fn static_topologies_reject_mutation() {
        let store = Store::new();
        store.create("s", "nodes 3\nedge 0 1\nedge 1 2\n").unwrap();
        assert!(!store.stats("s").unwrap().mobile);
        let e = store.mutate("s", &Mutation::Join { x: 0.0, y: 0.0 }).unwrap_err();
        assert_eq!(e.code, ErrorCode::Unsupported);
        // queries still work
        assert_eq!(store.route("s", 0, 2).unwrap(), RouteOutcome::Path(vec![0, 1, 2]));
    }

    #[test]
    fn bad_payload_and_range_errors() {
        let store = Store::new();
        assert_eq!(store.create("x", "bogus 1\n").unwrap_err().code, ErrorCode::BadPayload);
        store.create("x", &payload(30, 3.0, 4)).unwrap();
        assert_eq!(store.route("x", 0, 999).unwrap_err().code, ErrorCode::OutOfRange);
        assert_eq!(
            store.mutate("x", &Mutation::Leave { node: 999 }).unwrap_err().code,
            ErrorCode::OutOfRange
        );
        assert_eq!(
            store.broadcast("x", 999).unwrap_err().code,
            ErrorCode::OutOfRange
        );
    }

    /// Satellite: interleave mutations with cached route queries; every
    /// post-mutation response must equal a from-scratch rebuild
    /// byte-for-byte, and no rebuild may happen between mutations.
    #[test]
    fn epoch_invalidation_matches_from_scratch_rebuild() {
        let store = Store::new();
        let initial = payload(80, 4.0, 7);
        store.create("net", &initial).unwrap();

        // the from-scratch oracle replays the same mutation log through
        // a private MaintainedWcds, fully outside the store and its
        // cache, and rebuilds fresh artifacts at every step
        let doc = io::from_text(&initial).unwrap();
        let mut oracle = MaintainedWcds::new(doc.points.expect("mobile payload"), UDG_RADIUS);

        let mutations = [
            Mutation::Join { x: 2.0, y: 2.0 },
            Mutation::Move { node: 5, x: 1.0, y: 1.0 },
            Mutation::Leave { node: 11 },
            Mutation::Join { x: 0.5, y: 3.5 },
            Mutation::Move { node: 40, x: 3.9, y: 0.1 },
        ];
        let pairs: &[(NodeId, NodeId)] = &[(0, 70), (3, 55), (12, 66), (7, 33)];

        for (step, mutation) in mutations.iter().enumerate() {
            let (epoch, _) = store.mutate("net", mutation).unwrap();
            assert_eq!(epoch, step as u64 + 1);
            match *mutation {
                Mutation::Join { x, y } => {
                    oracle.apply_join(Point::new(x, y));
                }
                Mutation::Leave { node } => {
                    oracle.apply_leave(node);
                }
                Mutation::Move { node, x, y } => {
                    oracle.apply_motion(&[(node, Point::new(x, y))]);
                }
            }

            // (a) byte-for-byte: exported topology and served routes
            // equal the from-scratch rebuild
            assert_eq!(
                store.export("net").unwrap(),
                io::to_text(oracle.graph(), Some(oracle.points())),
                "step {step}: topology diverged from replay"
            );
            let oracle_router = BackboneRouter::build(oracle.graph(), &oracle.wcds());
            let before = store.stats("net").unwrap().rebuilds;
            for &(s, t) in pairs {
                let n = oracle.graph().node_count();
                if s >= n || t >= n {
                    continue;
                }
                let served = match store.route("net", s, t) {
                    Ok(RouteOutcome::Path(p)) => Some(p),
                    _ => None,
                };
                let fresh = oracle_router.route(s, t);
                assert_eq!(served, fresh, "step {step}: route {s}→{t} diverged from rebuild");
            }

            // (b) exactly one rebuild per mutation (triggered by the
            // stats call above), then pure cache hits
            let after = store.stats("net").unwrap();
            assert!(
                after.rebuilds <= before + 1,
                "step {step}: {} rebuilds for one mutation",
                after.rebuilds - before
            );
            let r0 = after.rebuilds;
            for &(s, t) in pairs {
                let _ = store.route("net", s, t);
            }
            assert_eq!(
                store.stats("net").unwrap().rebuilds,
                r0,
                "step {step}: rebuild occurred with no intervening mutation"
            );
        }
        let final_stats = store.stats("net").unwrap();
        assert_eq!(final_stats.epoch, mutations.len() as u64);
        assert!(final_stats.cache_hits > 0);
    }

    /// Tentpole: mutations that leave the dominator set intact must
    /// patch the cached bundle in place — no rebuild ever fires, the
    /// next query is a cache hit, and every patched artifact (WCDS,
    /// router, spanner, broadcast plan) is byte-identical to a
    /// from-scratch build on the post-mutation graph.
    #[test]
    fn stable_backbone_mutations_patch_without_rebuild() {
        let store = Store::new();
        let initial = payload(80, 4.0, 7);
        store.create("net", &initial).unwrap();
        let doc = io::from_text(&initial).unwrap();
        let mut oracle = MaintainedWcds::new(doc.points.expect("mobile payload"), UDG_RADIUS);

        // warm the cache
        let mut expected_rebuilds = 1;
        assert_eq!(store.stats("net").unwrap().rebuilds, expected_rebuilds);

        let mut patched = 0;
        for u in 0..oracle.graph().node_count() {
            // a tiny nudge: usually disturbs no edges, and almost never
            // the dominator set
            let p = oracle.points()[u];
            let q = Point::new((p.x + 0.02).min(4.0), p.y);
            let report = oracle.apply_motion(&[(u, q)]);
            store.mutate("net", &Mutation::Move { node: u, x: q.x, y: q.y }).unwrap();

            let stats = store.stats("net").unwrap();
            if report.changed() {
                // dominator churn: lazy rebuild path (the stats call
                // above performed it)
                expected_rebuilds += 1;
                assert_eq!(stats.rebuilds, expected_rebuilds, "move {u}: rebuild miscount");
                continue;
            }
            patched += 1;
            assert!(stats.cached, "move {u}: patched bundle should be a cache hit");
            assert_eq!(stats.rebuilds, expected_rebuilds, "move {u}: patch must not rebuild");

            // byte-identical to from-scratch artifacts
            let (bundle, hit) = store.bundle("net").unwrap();
            assert!(hit);
            let g = oracle.graph();
            let wcds = oracle.wcds();
            assert_eq!(bundle.wcds, wcds, "move {u}: WCDS diverged");
            assert_eq!(bundle.spanner, wcds.weakly_induced_subgraph(g), "move {u}: spanner");
            assert_eq!(bundle.router, BackboneRouter::build(g, &wcds), "move {u}: router");
            let fresh_plan = (traversal::is_connected(g) && wcds.is_valid(g))
                .then(|| BroadcastPlan::for_wcds(g, &wcds));
            assert_eq!(bundle.plan(), fresh_plan.as_ref(), "move {u}: broadcast plan");
        }
        assert!(patched >= 40, "only {patched} patched mutations — trace too churny");

        // joins absorbed by an existing dominator also patch
        let before = store.stats("net").unwrap().rebuilds;
        let mut join_patches = 0;
        for i in 0..10 {
            let target = oracle.points()[i * 7 % oracle.graph().node_count()];
            let q = Point::new((target.x + 0.05).min(4.0), target.y);
            let report = oracle.apply_join(q);
            store.mutate("net", &Mutation::Join { x: q.x, y: q.y }).unwrap();
            if !report.changed() {
                join_patches += 1;
                let (bundle, hit) = store.bundle("net").unwrap();
                assert!(hit, "join {i}: patched bundle should hit");
                assert_eq!(bundle.wcds, oracle.wcds(), "join {i}: WCDS diverged");
                assert_eq!(
                    bundle.router,
                    BackboneRouter::build(oracle.graph(), &oracle.wcds()),
                    "join {i}: router"
                );
            } else {
                let _ = store.stats("net").unwrap();
            }
        }
        assert!(join_patches >= 5, "only {join_patches} absorbed joins");
        // leaves always take the lazy-rebuild path (id compaction)
        oracle.apply_leave(0);
        store.mutate("net", &Mutation::Leave { node: 0 }).unwrap();
        let stats = store.stats("net").unwrap();
        assert!(!stats.cached || stats.rebuilds > before, "leave must not patch");
        assert_eq!(
            store.export("net").unwrap(),
            io::to_text(oracle.graph(), Some(oracle.points()))
        );
    }

    /// The maintained WCDS after a mutation sequence equals what a
    /// serial replay of the same log produces (single-threaded sanity
    /// half of the concurrency satellite; the threaded version lives in
    /// the server tests).
    #[test]
    fn export_replay_reproduces_state() {
        let store = Store::new();
        let initial = payload(50, 3.5, 9);
        store.create("net", &initial).unwrap();
        let log = [
            Mutation::Join { x: 1.0, y: 2.0 },
            Mutation::Leave { node: 3 },
            Mutation::Move { node: 20, x: 0.2, y: 0.3 },
        ];
        for m in &log {
            store.mutate("net", m).unwrap();
        }
        let doc = io::from_text(&initial).unwrap();
        let mut replay = MaintainedWcds::new(doc.points.unwrap(), UDG_RADIUS);
        for m in &log {
            match *m {
                Mutation::Join { x, y } => {
                    replay.apply_join(Point::new(x, y));
                }
                Mutation::Leave { node } => {
                    replay.apply_leave(node);
                }
                Mutation::Move { node, x, y } => {
                    replay.apply_motion(&[(node, Point::new(x, y))]);
                }
            }
        }
        assert_eq!(
            store.export("net").unwrap(),
            io::to_text(replay.graph(), Some(replay.points()))
        );
    }

    /// Satellite: a partitioned topology answers route/broadcast with a
    /// typed `Degraded { unreachable }` outcome, not a generic error.
    #[test]
    fn partitioned_topologies_report_reach_deficit() {
        let store = Store::new();
        // two components: {0, 1} and {2, 3, 4}
        store.create("p", "nodes 5\nedge 0 1\nedge 2 3\nedge 3 4\n").unwrap();
        assert_eq!(
            store.broadcast("p", 0).unwrap(),
            BroadcastOutcome::Degraded { unreachable: 3 }
        );
        assert_eq!(
            store.broadcast("p", 2).unwrap(),
            BroadcastOutcome::Degraded { unreachable: 2 }
        );
        assert_eq!(
            store.route("p", 0, 3).unwrap(),
            RouteOutcome::Degraded { unreachable: 3 }
        );
        // same-component routes still work
        assert_eq!(store.route("p", 2, 4).unwrap(), RouteOutcome::Path(vec![2, 3, 4]));
        let stats = store.stats("p").unwrap();
        assert_eq!(stats.routes_unreachable, 1);
        assert_eq!(stats.routes_ok, 1);
    }

    #[test]
    fn harden_validates_params() {
        let store = Store::new();
        store.create("h", &payload(40, 3.5, 2)).unwrap();
        assert_eq!(store.harden("h", 0, 1).unwrap_err().code, ErrorCode::OutOfRange);
        assert_eq!(store.harden("h", 1, 9).unwrap_err().code, ErrorCode::OutOfRange);
        assert_eq!(store.harden("missing", 2, 2).unwrap_err().code, ErrorCode::NotFound);
        let out = store.harden("h", 2, 2).unwrap();
        assert_eq!((out.k, out.m), (2, 2));
        assert!(out.achieved_k >= 1 && out.achieved_k <= 2);
        assert!(out.dominators > 0);
    }

    /// Tentpole (service layer): hardening swaps the bundle to the
    /// merged resilient backbone; killing a dominator is then served in
    /// degraded mode under the read lock, and an explicit heal restores
    /// artifacts byte-identical to a from-scratch resilient build.
    #[test]
    fn hardened_topology_serves_degraded_and_heals() {
        let store = Store::new();
        let initial = payload(80, 4.0, 7);
        store.create("net", &initial).unwrap();
        let plain_stats = store.stats("net").unwrap();
        let out = store.harden("net", 2, 2).unwrap();
        assert!(
            out.dominators > plain_stats.mis + plain_stats.bridges,
            "a (2,2) backbone must be strictly larger than the plain WCDS"
        );
        let stats = store.stats("net").unwrap();
        assert!(stats.cached, "harden builds eagerly; stats must hit");
        assert_eq!((stats.hardened_k, stats.hardened_m), (2, 2));
        assert_eq!(stats.achieved_k, out.achieved_k);

        // fresh routes come off the hardened tables
        let RouteOutcome::Path(_) = store.route("net", 0, 70).unwrap() else {
            panic!("fresh hardened route failed");
        };

        // kill a dominator: move it out of radio range of everyone
        let (bundle, _) = store.bundle("net").unwrap();
        let dead = bundle.wcds.mis_dominators()[0];
        store
            .mutate("net", &Mutation::Move { node: dead, x: 1000.0, y: 1000.0 })
            .unwrap();

        // stale + hardened ⇒ degraded serving off the old bundle. The
        // background heal races the later route calls, so only the
        // *first* post-kill route is deterministically degraded; later
        // ones may already be fresh (both are valid service).
        let doc = io::from_text(&store.export("net").unwrap()).unwrap();
        let g = doc.graph;
        let mut served = 0;
        let mut first_seen = false;
        for (s, t) in [(0, 70), (3, 55), (12, 66), (7, 33)] {
            if s == dead || t == dead {
                continue;
            }
            match store.route("net", s, t).unwrap() {
                RouteOutcome::Path(path) => {
                    served += 1;
                    assert_eq!(path.first(), Some(&s));
                    assert_eq!(path.last(), Some(&t));
                    for w in path.windows(2) {
                        assert!(
                            g.has_edge(w[0], w[1]),
                            "degraded hop {}→{} is not a live edge",
                            w[0],
                            w[1]
                        );
                    }
                }
                RouteOutcome::Degraded { unreachable } => {
                    // the dead node itself is out of reach
                    assert!(unreachable >= 1);
                }
            }
            if !first_seen {
                first_seen = true;
                let entry = store.entry("net").unwrap();
                let degraded = entry.routes_degraded.load(Ordering::Relaxed)
                    + entry.routes_unreachable.load(Ordering::Relaxed);
                assert!(
                    degraded >= 1,
                    "first post-kill route must be served degraded, not rebuilt inline"
                );
            }
        }
        assert!(served >= 3, "only {served} post-kill routes served");

        // an explicit heal installs artifacts byte-identical to a
        // from-scratch resilient build on the live graph
        while store.heal("net").unwrap() {}
        let (healed, hit) = store.bundle("net").unwrap();
        assert!(hit, "healed bundle must be fresh");
        let oracle = ResilientBackbone::construct(&g, ResilientParams::new(2, 2).unwrap());
        assert_eq!(healed.wcds, oracle.merged_wcds(), "healed WCDS diverged from oracle");
        assert_eq!(
            healed.router,
            BackboneRouter::build(&g, &oracle.merged_wcds()),
            "healed router diverged from oracle"
        );
    }

    /// Tentpole: the cache-hit serving path is provably lock-free —
    /// route, broadcast, stats, and bundle on a fresh snapshot acquire
    /// **zero** `RwLock`s (witnessed by the thread-local acquisition
    /// counter threaded through `read_guard` / `write_guard`).
    #[test]
    fn cache_hit_reads_take_zero_rwlocks() {
        let store = Store::new();
        store.create("z", &payload(60, 4.0, 3)).unwrap();
        // first stats call takes the miss path (locks allowed)
        assert!(!store.stats("z").unwrap().cached);
        let before = rwlock_acquisitions();
        let s1 = store.stats("z").unwrap();
        assert!(s1.cached);
        let r = store.route("z", 0, 59).unwrap();
        assert!(matches!(r, RouteOutcome::Path(_) | RouteOutcome::Degraded { .. }));
        store.broadcast("z", 0).unwrap();
        let (_b, hit) = store.bundle("z").unwrap();
        assert!(hit);
        assert_eq!(
            rwlock_acquisitions(),
            before,
            "a cache-hit route/broadcast/stats/bundle acquired an RwLock"
        );
        // the snapshot-read counter moved: the hits were served through
        // the lock-free cell
        assert!(store.stats("z").unwrap().snapshot_reads > s1.snapshot_reads);
    }
}
