//! Sharded, epoch-cached topology store.
//!
//! Named topologies live behind a fixed array of `RwLock` shards
//! (selected by name hash), so requests for different topologies —
//! and, for different names within one shard, everything except the
//! brief map access — never contend. Each topology carries:
//!
//! * a **mutation epoch**: 0 at ingest, +1 per applied maintenance
//!   mutation (join / leave / move, executed by
//!   `wcds_core::maintenance::MaintainedWcds`);
//! * a lazily built **artifact bundle** — Algorithm II WCDS, the
//!   weakly-induced spanner, clusterhead routing tables, and the
//!   backbone broadcast plan (itself derived only on the first
//!   broadcast query) — stamped with the epoch it was built at.
//!
//! A query whose bundle stamp equals the current epoch is a **cache
//! hit** and runs under the topology's read lock (queries on one
//! topology proceed in parallel). A mutation bumps the epoch without
//! touching the bundle; the next query observes the stale stamp,
//! rebuilds under the write lock, and re-stamps. Hit / miss / rebuild
//! counters are atomics so the read path never needs a write lock.

use crate::protocol::{ErrorCode, Mutation, TopologyStats};
use crate::rebuild::{read_check, write_check, EpochView, ReadDecision, WriteDecision};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use wcds_core::algo2::AlgorithmTwo;
use wcds_core::maintenance::{MaintainedWcds, RepairReport};
use wcds_core::Wcds;
use wcds_geom::Point;
use wcds_graph::{io, traversal, Graph, NodeId};
use wcds_routing::{BackboneRouter, BroadcastPlan};

/// Shard count (fixed; names hash onto shards).
pub const SHARDS: usize = 16;

/// Unit-disk radius used when a payload carries positions.
pub const UDG_RADIUS: f64 = 1.0;

/// A store-level failure, carrying the wire error category.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreError {
    /// Machine-readable category (maps onto the wire protocol).
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for StoreError {}

fn err(code: ErrorCode, message: impl Into<String>) -> StoreError {
    StoreError { code, message: message.into() }
}

/// Acquires a read lock, mapping poisoning (a thread panicked while
/// holding the write lock, so the protected state may be torn) to a
/// typed `Internal` error instead of propagating the panic.
fn read_guard<T>(lock: &RwLock<T>) -> Result<RwLockReadGuard<'_, T>, StoreError> {
    lock.read().map_err(|_| err(ErrorCode::Internal, "lock poisoned by a panicked writer"))
}

/// Write-lock counterpart of [`read_guard`].
fn write_guard<T>(lock: &RwLock<T>) -> Result<RwLockWriteGuard<'_, T>, StoreError> {
    lock.write().map_err(|_| err(ErrorCode::Internal, "lock poisoned by a panicked writer"))
}

/// The cached artifact bundle: everything a query needs, derived from
/// one topology snapshot.
#[derive(Debug)]
pub struct Bundle {
    /// Epoch of the topology snapshot this bundle was built from.
    pub epoch: u64,
    /// The WCDS (Algorithm II construction, maintained under mutation).
    pub wcds: Wcds,
    /// The weakly-induced spanner.
    pub spanner: Graph,
    /// Clusterhead routing tables over the spanner.
    pub router: BackboneRouter,
    /// Whether a broadcast plan exists at this epoch (the topology is
    /// connected and the WCDS weakly valid) — mobility can legitimately
    /// partition a unit-disk graph. Checked eagerly; the plan itself is
    /// derived lazily (see [`Bundle::plan`]).
    broadcastable: bool,
    /// Lazily derived broadcast plan, cached after the first use.
    plan: OnceLock<BroadcastPlan>,
}

impl Bundle {
    /// The backbone broadcast plan for this epoch, or `None` when the
    /// topology was disconnected (or the WCDS invalid) at build time.
    ///
    /// Derived from the bundle's own cached spanner on first call and
    /// memoized, so mutations and route/stats queries never pay for
    /// plan construction — only the first broadcast query after a
    /// topology change does. The result is identical to building the
    /// plan eagerly at bundle-construction time: the spanner and WCDS
    /// it derives from are this epoch's.
    pub fn plan(&self) -> Option<&BroadcastPlan> {
        self.broadcastable.then(|| {
            self.plan.get_or_init(|| BroadcastPlan::for_backbone(&self.spanner, &self.wcds))
        })
    }
}

/// Adjacency plus (for mobile topologies) the maintenance state.
#[derive(Debug)]
enum Body {
    /// Edge-only ingest: immutable, WCDS built from the graph alone.
    Static(Graph),
    /// Position-carrying ingest: mutable through §4.2 maintenance.
    Mobile(MaintainedWcds),
}

impl Body {
    fn graph(&self) -> &Graph {
        match self {
            Body::Static(g) => g,
            Body::Mobile(m) => m.graph(),
        }
    }

    fn wcds(&self) -> Wcds {
        match self {
            // same deterministic rule as MaintainedWcds::new, so static
            // and mobile topologies answer identically at epoch 0
            Body::Static(g) => {
                let (mis, additional) = AlgorithmTwo::new().construct_parts(g);
                Wcds::new(mis, additional)
            }
            Body::Mobile(m) => m.wcds(),
        }
    }
}

#[derive(Debug)]
struct Topology {
    body: Body,
    epoch: u64,
    bundle: Option<Arc<Bundle>>,
}

/// The shim the `wcds-analyze` race checker model-checks: the store's
/// cache decisions are exactly `rebuild::{read_check, write_check}`
/// over this view.
impl EpochView for Topology {
    fn current_epoch(&self) -> u64 {
        self.epoch
    }

    fn bundle_stamp(&self) -> Option<u64> {
        self.bundle.as_ref().map(|b| b.epoch)
    }
}

impl Topology {
    /// Builds the artifact bundle from the current snapshot, from
    /// scratch (no reuse of the stale bundle).
    fn build_bundle(&self) -> Arc<Bundle> {
        let g = self.body.graph();
        let wcds = self.body.wcds();
        let spanner = wcds.weakly_induced_subgraph(g);
        let router = BackboneRouter::build(g, &wcds);
        let broadcastable = traversal::is_connected(g) && wcds.is_valid(g);
        Arc::new(Bundle {
            epoch: self.epoch,
            wcds,
            spanner,
            router,
            broadcastable,
            plan: OnceLock::new(),
        })
    }
}

/// One stored topology: state behind its own `RwLock`, counters
/// outside it.
#[derive(Debug)]
struct Entry {
    topo: RwLock<Topology>,
    hits: AtomicU64,
    misses: AtomicU64,
    rebuilds: AtomicU64,
}

type Shard = RwLock<HashMap<String, Arc<Entry>>>;

/// The sharded topology store. Cheap to clone (`Arc` inside); one
/// instance is shared by every server worker.
#[derive(Debug, Clone)]
pub struct Store {
    shards: Arc<[Shard; SHARDS]>,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Self { shards: Arc::new(std::array::from_fn(|_| RwLock::new(HashMap::new()))) }
    }

    fn shard(&self, name: &str) -> &Shard {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        let idx = (h.finish() % SHARDS as u64) as usize;
        // analyze: allow(slice-index, "idx = hash % SHARDS is < SHARDS by construction")
        &self.shards[idx]
    }

    fn entry(&self, name: &str) -> Result<Arc<Entry>, StoreError> {
        read_guard(self.shard(name))?
            .get(name)
            .cloned()
            .ok_or_else(|| err(ErrorCode::NotFound, format!("no topology `{name}`")))
    }

    /// Ingests a topology from `wcds_graph::io` text. Payloads with
    /// positions become mobile; edge-only payloads are static.
    ///
    /// # Errors
    ///
    /// `BadPayload` on unparsable text, `AlreadyExists` on a name
    /// collision.
    pub fn create(&self, name: &str, payload: &str) -> Result<(u64, u64, bool), StoreError> {
        let doc = io::from_text(payload)
            .map_err(|e| err(ErrorCode::BadPayload, format!("payload: {e}")))?;
        let body = match doc.points {
            Some(points) => Body::Mobile(MaintainedWcds::new(points, UDG_RADIUS)),
            None => Body::Static(doc.graph),
        };
        let (n, m) = (body.graph().node_count() as u64, body.graph().edge_count() as u64);
        let mobile = matches!(body, Body::Mobile(_));
        let entry = Arc::new(Entry {
            topo: RwLock::new(Topology { body, epoch: 0, bundle: None }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
        });
        let mut shard = write_guard(self.shard(name))?;
        if shard.contains_key(name) {
            return Err(err(ErrorCode::AlreadyExists, format!("topology `{name}` exists")));
        }
        shard.insert(name.to_string(), entry);
        Ok((n, m, mobile))
    }

    /// The current topology as `wcds_graph::io` text (with positions
    /// when mobile).
    ///
    /// # Errors
    ///
    /// `NotFound` for an unknown name.
    pub fn export(&self, name: &str) -> Result<String, StoreError> {
        let entry = self.entry(name)?;
        let topo = read_guard(&entry.topo)?;
        Ok(match &topo.body {
            Body::Static(g) => io::to_text(g, None),
            Body::Mobile(m) => io::to_text(m.graph(), Some(m.points())),
        })
    }

    /// Returns the artifact bundle for the topology's **current**
    /// epoch, building it if the cached one is missing or stale, plus
    /// whether this call was a cache hit.
    ///
    /// # Errors
    ///
    /// `NotFound` for an unknown name.
    pub fn bundle(&self, name: &str) -> Result<(Arc<Bundle>, bool), StoreError> {
        let entry = self.entry(name)?;
        {
            let topo = read_guard(&entry.topo)?;
            if read_check(&*topo) == ReadDecision::Hit {
                if let Some(b) = &topo.bundle {
                    entry.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(b), true));
                }
            }
        }
        let mut topo = write_guard(&entry.topo)?;
        // double-check: a racing query may have rebuilt while we waited
        if write_check(&*topo) == WriteDecision::FreshAlready {
            if let Some(b) = &topo.bundle {
                entry.misses.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(b), false));
            }
        }
        entry.misses.fetch_add(1, Ordering::Relaxed);
        entry.rebuilds.fetch_add(1, Ordering::Relaxed);
        let bundle = topo.build_bundle();
        topo.bundle = Some(Arc::clone(&bundle));
        Ok((bundle, false))
    }

    /// Applies one maintenance mutation, bumping the epoch.
    ///
    /// When the repair left every dominator in place (the common case
    /// for small motions and absorbed joins) and the cached bundle was
    /// fresh, the bundle is **patched in place** under the same write
    /// lock: the WCDS is carried over, the router is spliced through
    /// [`BackboneRouter::patched`] from the repair's net edge delta, and
    /// the broadcast plan resets to its lazy unset state. The next
    /// query is then a cache hit with artifacts byte-identical to a
    /// from-scratch
    /// rebuild. Otherwise (dominator churn, a leave's id compaction, or
    /// an already-stale bundle) the stale bundle is left in place and
    /// queries rebuild lazily on the epoch mismatch.
    ///
    /// # Errors
    ///
    /// `NotFound`, `Unsupported` (static topology), or `OutOfRange`.
    pub fn mutate(&self, name: &str, mutation: &Mutation) -> Result<(u64, RepairReport), StoreError> {
        let entry = self.entry(name)?;
        let mut topo = write_guard(&entry.topo)?;
        let n = topo.body.graph().node_count();
        let Body::Mobile(m) = &mut topo.body else {
            return Err(err(
                ErrorCode::Unsupported,
                format!("topology `{name}` is static (ingested without positions)"),
            ));
        };
        let report = match *mutation {
            Mutation::Join { x, y } => m.apply_join(Point::new(x, y)),
            Mutation::Leave { node } => {
                if node >= n {
                    return Err(err(ErrorCode::OutOfRange, format!("node {node} ≥ n = {n}")));
                }
                m.apply_leave(node)
            }
            Mutation::Move { node, x, y } => {
                if node >= n {
                    return Err(err(ErrorCode::OutOfRange, format!("node {node} ≥ n = {n}")));
                }
                m.apply_motion(&[(node, Point::new(x, y))])
            }
        };
        topo.epoch += 1;
        let fresh = topo.bundle.as_ref().filter(|b| b.epoch + 1 == topo.epoch).map(Arc::clone);
        if let Some(b) = fresh {
            // a leave renames every id above the victim, which would
            // invalidate all id-keyed router state — let it rebuild
            if !report.changed() && !matches!(*mutation, Mutation::Leave { .. }) {
                let g = topo.body.graph();
                let wcds = b.wcds.clone();
                let router =
                    b.router.patched(g, &wcds, &report.edges_added, &report.edges_removed);
                let spanner = router.spanner().clone();
                let broadcastable = traversal::is_connected(g) && wcds.is_valid(g);
                topo.bundle = Some(Arc::new(Bundle {
                    epoch: topo.epoch,
                    wcds,
                    spanner,
                    router,
                    broadcastable,
                    plan: OnceLock::new(),
                }));
            }
        }
        Ok((topo.epoch, report))
    }

    /// Full statistics for one topology. Builds the bundle if stale, so
    /// the WCDS/spanner numbers always describe the current epoch;
    /// `cached` reports whether the bundle was already fresh.
    ///
    /// # Errors
    ///
    /// `NotFound` for an unknown name.
    pub fn stats(&self, name: &str) -> Result<TopologyStats, StoreError> {
        let (bundle, cached) = self.bundle(name)?;
        let entry = self.entry(name)?;
        let topo = read_guard(&entry.topo)?;
        Ok(TopologyStats {
            nodes: topo.body.graph().node_count() as u64,
            edges: topo.body.graph().edge_count() as u64,
            epoch: topo.epoch,
            mobile: matches!(topo.body, Body::Mobile(_)),
            cached,
            mis: bundle.wcds.mis_dominators().len() as u64,
            bridges: bundle.wcds.additional_dominators().len() as u64,
            spanner_edges: bundle.spanner.edge_count() as u64,
            cache_hits: entry.hits.load(Ordering::Relaxed),
            cache_misses: entry.misses.load(Ordering::Relaxed),
            rebuilds: entry.rebuilds.load(Ordering::Relaxed),
        })
    }

    /// Routes `from → to` over the (possibly rebuilt) cached backbone.
    ///
    /// # Errors
    ///
    /// `NotFound`, `OutOfRange`, or `Unroutable` (no dominator-level
    /// path, e.g. a partitioned topology).
    pub fn route(&self, name: &str, from: NodeId, to: NodeId) -> Result<Vec<NodeId>, StoreError> {
        let (bundle, _) = self.bundle(name)?;
        let n = bundle.spanner.node_count();
        for u in [from, to] {
            if u >= n {
                return Err(err(ErrorCode::OutOfRange, format!("node {u} ≥ n = {n}")));
            }
        }
        bundle
            .router
            .route(from, to)
            .ok_or_else(|| err(ErrorCode::Unroutable, format!("no backbone route {from} → {to}")))
    }

    /// Simulates a backbone broadcast from `source`, returning
    /// `(forwarder count, informed count)`.
    ///
    /// # Errors
    ///
    /// `NotFound`, `OutOfRange`, or `Unsupported` when the topology is
    /// currently partitioned (no broadcast plan).
    pub fn broadcast(&self, name: &str, source: NodeId) -> Result<(u64, u64), StoreError> {
        let (bundle, _) = self.bundle(name)?;
        let entry = self.entry(name)?;
        let topo = read_guard(&entry.topo)?;
        let g = topo.body.graph();
        if source >= g.node_count() {
            return Err(err(
                ErrorCode::OutOfRange,
                format!("node {source} ≥ n = {}", g.node_count()),
            ));
        }
        let plan = bundle.plan().ok_or_else(|| {
            err(ErrorCode::Unsupported, format!("topology `{name}` is partitioned"))
        })?;
        let outcome = plan.simulate(g, source);
        let informed = g.node_count() - outcome.uncovered.len();
        Ok((plan.forwarder_count() as u64, informed as u64))
    }

    /// Sorted names of all stored topologies.
    ///
    /// # Errors
    ///
    /// `Internal` if a shard lock is poisoned.
    pub fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for s in self.shards.iter() {
            names.extend(read_guard(s)?.keys().cloned());
        }
        names.sort();
        Ok(names)
    }

    /// Removes a topology.
    ///
    /// # Errors
    ///
    /// `NotFound` for an unknown name.
    pub fn drop_topology(&self, name: &str) -> Result<(), StoreError> {
        write_guard(self.shard(name))?
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| err(ErrorCode::NotFound, format!("no topology `{name}`")))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use wcds_geom::deploy;
    use wcds_graph::UnitDiskGraph;

    fn payload(n: usize, side: f64, seed: u64) -> String {
        let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed), UDG_RADIUS);
        io::to_text(udg.graph(), Some(udg.points()))
    }

    #[test]
    fn create_query_drop_lifecycle() {
        let store = Store::new();
        let (n, m, mobile) = store.create("a", &payload(60, 4.0, 1)).unwrap();
        assert_eq!(n, 60);
        assert!(m > 0);
        assert!(mobile);
        assert_eq!(store.list().unwrap(), vec!["a".to_string()]);
        assert_eq!(store.create("a", &payload(10, 3.0, 2)).unwrap_err().code, ErrorCode::AlreadyExists);
        let stats = store.stats("a").unwrap();
        assert_eq!(stats.epoch, 0);
        assert!(!stats.cached, "first stats call builds the bundle");
        assert!(store.stats("a").unwrap().cached, "second call hits");
        store.drop_topology("a").unwrap();
        assert_eq!(store.stats("a").unwrap_err().code, ErrorCode::NotFound);
        assert_eq!(store.drop_topology("a").unwrap_err().code, ErrorCode::NotFound);
    }

    #[test]
    fn static_topologies_reject_mutation() {
        let store = Store::new();
        store.create("s", "nodes 3\nedge 0 1\nedge 1 2\n").unwrap();
        assert!(!store.stats("s").unwrap().mobile);
        let e = store.mutate("s", &Mutation::Join { x: 0.0, y: 0.0 }).unwrap_err();
        assert_eq!(e.code, ErrorCode::Unsupported);
        // queries still work
        assert_eq!(store.route("s", 0, 2).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn bad_payload_and_range_errors() {
        let store = Store::new();
        assert_eq!(store.create("x", "bogus 1\n").unwrap_err().code, ErrorCode::BadPayload);
        store.create("x", &payload(30, 3.0, 4)).unwrap();
        assert_eq!(store.route("x", 0, 999).unwrap_err().code, ErrorCode::OutOfRange);
        assert_eq!(
            store.mutate("x", &Mutation::Leave { node: 999 }).unwrap_err().code,
            ErrorCode::OutOfRange
        );
        assert_eq!(
            store.broadcast("x", 999).unwrap_err().code,
            ErrorCode::OutOfRange
        );
    }

    /// Satellite: interleave mutations with cached route queries; every
    /// post-mutation response must equal a from-scratch rebuild
    /// byte-for-byte, and no rebuild may happen between mutations.
    #[test]
    fn epoch_invalidation_matches_from_scratch_rebuild() {
        let store = Store::new();
        let initial = payload(80, 4.0, 7);
        store.create("net", &initial).unwrap();

        // the from-scratch oracle replays the same mutation log through
        // a private MaintainedWcds, fully outside the store and its
        // cache, and rebuilds fresh artifacts at every step
        let doc = io::from_text(&initial).unwrap();
        let mut oracle = MaintainedWcds::new(doc.points.expect("mobile payload"), UDG_RADIUS);

        let mutations = [
            Mutation::Join { x: 2.0, y: 2.0 },
            Mutation::Move { node: 5, x: 1.0, y: 1.0 },
            Mutation::Leave { node: 11 },
            Mutation::Join { x: 0.5, y: 3.5 },
            Mutation::Move { node: 40, x: 3.9, y: 0.1 },
        ];
        let pairs: &[(NodeId, NodeId)] = &[(0, 70), (3, 55), (12, 66), (7, 33)];

        for (step, mutation) in mutations.iter().enumerate() {
            let (epoch, _) = store.mutate("net", mutation).unwrap();
            assert_eq!(epoch, step as u64 + 1);
            match *mutation {
                Mutation::Join { x, y } => {
                    oracle.apply_join(Point::new(x, y));
                }
                Mutation::Leave { node } => {
                    oracle.apply_leave(node);
                }
                Mutation::Move { node, x, y } => {
                    oracle.apply_motion(&[(node, Point::new(x, y))]);
                }
            }

            // (a) byte-for-byte: exported topology and served routes
            // equal the from-scratch rebuild
            assert_eq!(
                store.export("net").unwrap(),
                io::to_text(oracle.graph(), Some(oracle.points())),
                "step {step}: topology diverged from replay"
            );
            let oracle_router = BackboneRouter::build(oracle.graph(), &oracle.wcds());
            let before = store.stats("net").unwrap().rebuilds;
            for &(s, t) in pairs {
                let n = oracle.graph().node_count();
                if s >= n || t >= n {
                    continue;
                }
                let served = store.route("net", s, t).ok();
                let fresh = oracle_router.route(s, t);
                assert_eq!(served, fresh, "step {step}: route {s}→{t} diverged from rebuild");
            }

            // (b) exactly one rebuild per mutation (triggered by the
            // stats call above), then pure cache hits
            let after = store.stats("net").unwrap();
            assert!(
                after.rebuilds <= before + 1,
                "step {step}: {} rebuilds for one mutation",
                after.rebuilds - before
            );
            let r0 = after.rebuilds;
            for &(s, t) in pairs {
                let _ = store.route("net", s, t);
            }
            assert_eq!(
                store.stats("net").unwrap().rebuilds,
                r0,
                "step {step}: rebuild occurred with no intervening mutation"
            );
        }
        let final_stats = store.stats("net").unwrap();
        assert_eq!(final_stats.epoch, mutations.len() as u64);
        assert!(final_stats.cache_hits > 0);
    }

    /// Tentpole: mutations that leave the dominator set intact must
    /// patch the cached bundle in place — no rebuild ever fires, the
    /// next query is a cache hit, and every patched artifact (WCDS,
    /// router, spanner, broadcast plan) is byte-identical to a
    /// from-scratch build on the post-mutation graph.
    #[test]
    fn stable_backbone_mutations_patch_without_rebuild() {
        let store = Store::new();
        let initial = payload(80, 4.0, 7);
        store.create("net", &initial).unwrap();
        let doc = io::from_text(&initial).unwrap();
        let mut oracle = MaintainedWcds::new(doc.points.expect("mobile payload"), UDG_RADIUS);

        // warm the cache
        let mut expected_rebuilds = 1;
        assert_eq!(store.stats("net").unwrap().rebuilds, expected_rebuilds);

        let mut patched = 0;
        for u in 0..oracle.graph().node_count() {
            // a tiny nudge: usually disturbs no edges, and almost never
            // the dominator set
            let p = oracle.points()[u];
            let q = Point::new((p.x + 0.02).min(4.0), p.y);
            let report = oracle.apply_motion(&[(u, q)]);
            store.mutate("net", &Mutation::Move { node: u, x: q.x, y: q.y }).unwrap();

            let stats = store.stats("net").unwrap();
            if report.changed() {
                // dominator churn: lazy rebuild path (the stats call
                // above performed it)
                expected_rebuilds += 1;
                assert_eq!(stats.rebuilds, expected_rebuilds, "move {u}: rebuild miscount");
                continue;
            }
            patched += 1;
            assert!(stats.cached, "move {u}: patched bundle should be a cache hit");
            assert_eq!(stats.rebuilds, expected_rebuilds, "move {u}: patch must not rebuild");

            // byte-identical to from-scratch artifacts
            let (bundle, hit) = store.bundle("net").unwrap();
            assert!(hit);
            let g = oracle.graph();
            let wcds = oracle.wcds();
            assert_eq!(bundle.wcds, wcds, "move {u}: WCDS diverged");
            assert_eq!(bundle.spanner, wcds.weakly_induced_subgraph(g), "move {u}: spanner");
            assert_eq!(bundle.router, BackboneRouter::build(g, &wcds), "move {u}: router");
            let fresh_plan = (traversal::is_connected(g) && wcds.is_valid(g))
                .then(|| BroadcastPlan::for_wcds(g, &wcds));
            assert_eq!(bundle.plan(), fresh_plan.as_ref(), "move {u}: broadcast plan");
        }
        assert!(patched >= 40, "only {patched} patched mutations — trace too churny");

        // joins absorbed by an existing dominator also patch
        let before = store.stats("net").unwrap().rebuilds;
        let mut join_patches = 0;
        for i in 0..10 {
            let target = oracle.points()[i * 7 % oracle.graph().node_count()];
            let q = Point::new((target.x + 0.05).min(4.0), target.y);
            let report = oracle.apply_join(q);
            store.mutate("net", &Mutation::Join { x: q.x, y: q.y }).unwrap();
            if !report.changed() {
                join_patches += 1;
                let (bundle, hit) = store.bundle("net").unwrap();
                assert!(hit, "join {i}: patched bundle should hit");
                assert_eq!(bundle.wcds, oracle.wcds(), "join {i}: WCDS diverged");
                assert_eq!(
                    bundle.router,
                    BackboneRouter::build(oracle.graph(), &oracle.wcds()),
                    "join {i}: router"
                );
            } else {
                let _ = store.stats("net").unwrap();
            }
        }
        assert!(join_patches >= 5, "only {join_patches} absorbed joins");
        // leaves always take the lazy-rebuild path (id compaction)
        oracle.apply_leave(0);
        store.mutate("net", &Mutation::Leave { node: 0 }).unwrap();
        let stats = store.stats("net").unwrap();
        assert!(!stats.cached || stats.rebuilds > before, "leave must not patch");
        assert_eq!(
            store.export("net").unwrap(),
            io::to_text(oracle.graph(), Some(oracle.points()))
        );
    }

    /// The maintained WCDS after a mutation sequence equals what a
    /// serial replay of the same log produces (single-threaded sanity
    /// half of the concurrency satellite; the threaded version lives in
    /// the server tests).
    #[test]
    fn export_replay_reproduces_state() {
        let store = Store::new();
        let initial = payload(50, 3.5, 9);
        store.create("net", &initial).unwrap();
        let log = [
            Mutation::Join { x: 1.0, y: 2.0 },
            Mutation::Leave { node: 3 },
            Mutation::Move { node: 20, x: 0.2, y: 0.3 },
        ];
        for m in &log {
            store.mutate("net", m).unwrap();
        }
        let doc = io::from_text(&initial).unwrap();
        let mut replay = MaintainedWcds::new(doc.points.unwrap(), UDG_RADIUS);
        for m in &log {
            match *m {
                Mutation::Join { x, y } => {
                    replay.apply_join(Point::new(x, y));
                }
                Mutation::Leave { node } => {
                    replay.apply_leave(node);
                }
                Mutation::Move { node, x, y } => {
                    replay.apply_motion(&[(node, Point::new(x, y))]);
                }
            }
        }
        assert_eq!(
            store.export("net").unwrap(),
            io::to_text(replay.graph(), Some(replay.points()))
        );
    }
}
