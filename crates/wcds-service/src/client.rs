//! Blocking client for the backbone service.
//!
//! One [`Client`] wraps one TCP connection and issues synchronous
//! request/response round trips. Connections are persistent — any
//! number of requests may flow over one client — and every socket
//! operation is bounded by a timeout so a dead server surfaces as a
//! typed error instead of a hang.
//!
//! [`Client::pipeline`] amortizes round trips: it writes a whole batch
//! of request frames in one burst and then drains exactly as many
//! responses, in request order. The one-shot API is unchanged and the
//! two styles may be mixed freely on the same connection.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameRead, Mutation, Request, Response, TopologyStats,
    WireError,
};
use crate::store::{BatchOutcome, BroadcastOutcome, HardenOutcome, RouteOutcome};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use wcds_graph::NodeId;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// Undecodable response bytes.
    Wire(WireError),
    /// The server answered with an error response.
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response of the wrong kind, or closed
    /// the connection instead of answering.
    Protocol(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server { code, message } => write!(f, "server [{code}]: {message}"),
            ClientError::Protocol(what) => write!(f, "protocol: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to a backbone server.
#[derive(Debug)]
pub struct Client {
    /// Read side is buffered so a response's length prefix and body
    /// arrive in one syscall; writes go through [`io::BufReader::get_mut`]
    /// straight to the (NODELAY) socket.
    stream: io::BufReader<TcpStream>,
}

impl Client {
    /// Default per-operation socket timeout.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

    /// Connects with [`Client::DEFAULT_TIMEOUT`].
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] on resolution or connection failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Self::DEFAULT_TIMEOUT)
    }

    /// Connects with an explicit connect/read/write timeout.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] on resolution or connection failure.
    pub fn connect_with_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut last: Option<io::Error> = None;
        for a in &addrs {
            match TcpStream::connect_timeout(a, timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(Self { stream: io::BufReader::with_capacity(4096, stream) });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::AddrNotAvailable, "no address resolved")
        })))
    }

    /// One raw request/response round trip.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure (a quiet server beyond
    /// the timeout included), [`ClientError::Wire`] on an undecodable
    /// response, [`ClientError::Protocol`] if the server closes instead
    /// of answering. Server-side error *responses* are returned as
    /// `Ok(Response::Error { .. })` here; the typed helpers below remap
    /// them to [`ClientError::Server`].
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(self.stream.get_mut(), &req.encode())?;
        match read_frame(&mut self.stream)? {
            FrameRead::Frame(body) => Ok(Response::decode(&body)?),
            FrameRead::Eof => Err(ClientError::Protocol("server closed before responding")),
            FrameRead::IdleTimeout => {
                Err(ClientError::Io(io::Error::new(io::ErrorKind::TimedOut, "response timeout")))
            }
        }
    }

    /// Sends every request as one contiguous burst of frames, then
    /// reads back exactly `reqs.len()` responses, in request order
    /// (both serving engines answer a connection's frames in the order
    /// they arrived).
    ///
    /// One buffered write replaces `reqs.len()` round trips; the
    /// event-loop server drains the whole burst on a single readiness
    /// wake. Note that a [`Request::Shutdown`] or a malformed frame
    /// makes the server close the connection after answering it, so
    /// requests queued behind one will fail with
    /// [`ClientError::Protocol`].
    ///
    /// # Errors
    ///
    /// As [`Client::request`]. On error the connection state is
    /// indeterminate (responses may remain unread); drop the client
    /// rather than reusing it. Per-request server errors are returned
    /// in place as `Response::Error`, not remapped.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>, ClientError> {
        use std::io::Write;
        let mut burst = Vec::new();
        for req in reqs {
            write_frame(&mut burst, &req.encode())?;
        }
        self.stream.get_mut().write_all(&burst)?;
        let mut responses = Vec::with_capacity(reqs.len());
        for _ in reqs {
            match read_frame(&mut self.stream)? {
                FrameRead::Frame(body) => responses.push(Response::decode(&body)?),
                FrameRead::Eof => {
                    return Err(ClientError::Protocol("server closed mid-pipeline"));
                }
                FrameRead::IdleTimeout => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "pipelined response timeout",
                    )));
                }
            }
        }
        Ok(responses)
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.request(req)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Protocol("expected Pong")),
        }
    }

    /// Ingests a topology from `wcds_graph::io` text; returns
    /// `(nodes, edges, mobile)`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; server errors include `already-exists`
    /// and `bad-payload`.
    pub fn create(&mut self, name: &str, payload: &str) -> Result<(u64, u64, bool), ClientError> {
        let req = Request::Create { name: name.into(), payload: payload.into() };
        match self.call(&req)? {
            Response::Created { nodes, edges, mobile } => Ok((nodes, edges, mobile)),
            _ => Err(ClientError::Protocol("expected Created")),
        }
    }

    /// Dumps the current topology as `wcds_graph::io` text.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn export(&mut self, name: &str) -> Result<String, ClientError> {
        match self.call(&Request::Export { name: name.into() })? {
            Response::Exported { payload } => Ok(payload),
            _ => Err(ClientError::Protocol("expected Exported")),
        }
    }

    /// Forces the artifact bundle to exist; returns
    /// `(mis, bridges, spanner_edges, epoch)`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn construct(&mut self, name: &str) -> Result<(u64, u64, u64, u64), ClientError> {
        match self.call(&Request::Construct { name: name.into() })? {
            Response::Constructed { mis, bridges, spanner_edges, epoch } => {
                Ok((mis, bridges, spanner_edges, epoch))
            }
            _ => Err(ClientError::Protocol("expected Constructed")),
        }
    }

    /// Routes `from → to` over the backbone. An unreachable destination
    /// comes back as `Ok(RouteOutcome::Degraded { unreachable })`, not
    /// an error.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; server errors include `out-of-range`.
    pub fn route(
        &mut self,
        name: &str,
        from: NodeId,
        to: NodeId,
    ) -> Result<RouteOutcome, ClientError> {
        match self.call(&Request::Route { name: name.into(), from, to })? {
            Response::Routed { path } => Ok(RouteOutcome::Path(path)),
            Response::Degraded { unreachable } => Ok(RouteOutcome::Degraded { unreachable }),
            _ => Err(ClientError::Protocol("expected Routed or Degraded")),
        }
    }

    /// Backbone broadcast from `source`. A partitioned topology comes
    /// back as `Ok(BroadcastOutcome::Degraded { unreachable })`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn broadcast(
        &mut self,
        name: &str,
        source: NodeId,
    ) -> Result<BroadcastOutcome, ClientError> {
        match self.call(&Request::Broadcast { name: name.into(), source })? {
            Response::Broadcasted { forwarders, informed } => {
                Ok(BroadcastOutcome::Done { forwarders, informed })
            }
            Response::Degraded { unreachable } => {
                Ok(BroadcastOutcome::Degraded { unreachable })
            }
            _ => Err(ClientError::Protocol("expected Broadcasted or Degraded")),
        }
    }

    /// Upgrades the topology to a (k, m)-resilient backbone (degraded-
    /// mode serving included).
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; server errors include `out-of-range`
    /// for k or m outside the supported fold range.
    pub fn harden(&mut self, name: &str, k: u64, m: u64) -> Result<HardenOutcome, ClientError> {
        match self.call(&Request::Harden { name: name.into(), k, m })? {
            Response::Hardened { k, m, achieved_k, dominators, spanner_edges, epoch } => {
                Ok(HardenOutcome { k, m, achieved_k, dominators, spanner_edges, epoch })
            }
            _ => Err(ClientError::Protocol("expected Hardened")),
        }
    }

    /// Topology + cache statistics.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn stats(&mut self, name: &str) -> Result<TopologyStats, ClientError> {
        match self.call(&Request::Stats { name: name.into() })? {
            Response::StatsOk(stats) => Ok(stats),
            _ => Err(ClientError::Protocol("expected StatsOk")),
        }
    }

    /// Applies one maintenance mutation; returns
    /// `(epoch, promoted, demoted)`. Epochs are serialized per
    /// topology, so the returned epoch is this mutation's global
    /// position in the topology's mutation log.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; server errors include `unsupported`
    /// (static topology) and `out-of-range`.
    pub fn mutate(
        &mut self,
        name: &str,
        mutation: Mutation,
    ) -> Result<(u64, Vec<NodeId>, Vec<NodeId>), ClientError> {
        match self.call(&Request::Mutate { name: name.into(), mutation })? {
            Response::Mutated { epoch, promoted, demoted } => Ok((epoch, promoted, demoted)),
            _ => Err(ClientError::Protocol("expected Mutated")),
        }
    }

    /// Ships a whole mutation batch (a drift tick) in one frame,
    /// applied under a single region lease with coalesced repairs.
    /// All-or-nothing: any invalid id rejects the batch server-side
    /// before anything is applied. The returned outcome's epoch is the
    /// batch's final position in the topology's mutation log — a batch
    /// of `applied` mutations occupied epochs
    /// `epoch − applied + 1 ..= epoch` — and `lease_wait_us` is the
    /// admission queueing time, excluded from service time.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; server errors include `unsupported`
    /// (static topology) and `out-of-range`.
    pub fn mutate_batch(
        &mut self,
        name: &str,
        mutations: &[Mutation],
    ) -> Result<BatchOutcome, ClientError> {
        let req = Request::MutateBatch { name: name.into(), mutations: mutations.to_vec() };
        match self.call(&req)? {
            Response::BatchMutated { epoch, applied, promoted, demoted, lease_wait_us } => {
                Ok(BatchOutcome { epoch, applied, promoted, demoted, lease_wait_us })
            }
            _ => Err(ClientError::Protocol("expected BatchMutated")),
        }
    }

    /// Sorted names of all stored topologies.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        match self.call(&Request::List)? {
            Response::Topologies { names } => Ok(names),
            _ => Err(ClientError::Protocol("expected Topologies")),
        }
    }

    /// Removes a topology.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn drop_topology(&mut self, name: &str) -> Result<(), ClientError> {
        match self.call(&Request::Drop { name: name.into() })? {
            Response::Dropped => Ok(()),
            _ => Err(ClientError::Protocol("expected Dropped")),
        }
    }

    /// Asks the server to shut down gracefully; the server acknowledges
    /// and then closes this connection.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Protocol("expected ShuttingDown")),
        }
    }
}
