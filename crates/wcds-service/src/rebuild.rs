//! The epoch / double-checked-rebuild decision protocol, factored out
//! of [`Store`](crate::Store) so it can be model-checked.
//!
//! [`Store::bundle`](crate::Store::bundle) promises two invariants:
//!
//! 1. **freshness** — a bundle is only ever served while its stamp
//!    equals the topology's current epoch (no stale artifacts for a
//!    newer epoch);
//! 2. **≤ 1 rebuild per epoch** — when several queries race on a stale
//!    bundle, exactly one of them rebuilds; the rest observe the fresh
//!    stamp under the write lock and serve without rebuilding.
//!
//! Both hinge on two tiny decisions — "is the cached stamp current?"
//! evaluated once under the read lock and once again (the double check)
//! under the write lock. This module is that logic, behind the
//! [`EpochView`] shim trait, with **no** locks or artifacts attached:
//! the store implements `EpochView` over its real `Topology`, and the
//! `wcds-analyze` race checker implements it over a model state whose
//! every interleaving is enumerated exhaustively. The code path the
//! checker proves is the code path the store runs.

/// A view of one topology's cache-relevant state: its mutation epoch
/// and the epoch stamped on the cached bundle (if any).
pub trait EpochView {
    /// The topology's current mutation epoch.
    fn current_epoch(&self) -> u64;

    /// The epoch the cached bundle was built at, or `None` before the
    /// first build.
    fn bundle_stamp(&self) -> Option<u64>;
}

/// What a query decides under the **read** lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadDecision {
    /// The cached bundle is stamped with the current epoch: serve it.
    Hit,
    /// Missing or stale bundle: release the read lock and take the
    /// write lock.
    Stale,
}

/// What a query decides under the **write** lock (the double check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteDecision {
    /// A racing query rebuilt while this one waited for the write
    /// lock: serve the (now fresh) bundle without rebuilding.
    FreshAlready,
    /// Still stale: rebuild, stamp with the current epoch, serve.
    Rebuild,
}

/// The read-lock decision: hit iff the stamp equals the current epoch.
pub fn read_check(view: &impl EpochView) -> ReadDecision {
    if view.bundle_stamp() == Some(view.current_epoch()) {
        ReadDecision::Hit
    } else {
        ReadDecision::Stale
    }
}

/// The write-lock double check: rebuild iff the stamp (still) differs
/// from the current epoch.
pub fn write_check(view: &impl EpochView) -> WriteDecision {
    if view.bundle_stamp() == Some(view.current_epoch()) {
        WriteDecision::FreshAlready
    } else {
        WriteDecision::Rebuild
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    struct V(u64, Option<u64>);
    impl EpochView for V {
        fn current_epoch(&self) -> u64 {
            self.0
        }
        fn bundle_stamp(&self) -> Option<u64> {
            self.1
        }
    }

    #[test]
    fn decisions_follow_the_stamp() {
        assert_eq!(read_check(&V(0, None)), ReadDecision::Stale);
        assert_eq!(read_check(&V(3, Some(2))), ReadDecision::Stale);
        assert_eq!(read_check(&V(3, Some(3))), ReadDecision::Hit);
        assert_eq!(write_check(&V(0, None)), WriteDecision::Rebuild);
        assert_eq!(write_check(&V(3, Some(2))), WriteDecision::Rebuild);
        assert_eq!(write_check(&V(3, Some(3))), WriteDecision::FreshAlready);
    }
}
