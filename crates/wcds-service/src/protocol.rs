//! The versioned, length-prefixed binary wire protocol.
//!
//! Every message on the wire is one **frame**:
//!
//! ```text
//! [len: u32 LE] [version: u8] [tag: u8] [body…]      (len counts from `version`)
//! ```
//!
//! Bodies are flat sequences of little-endian scalars and
//! length-prefixed strings — no self-description, no external codec.
//! Graph payloads reuse the `wcds_graph::io` text format (already the
//! repo's persistence format, so server and CLI round-trip the same
//! bytes), carried as a length-prefixed string.
//!
//! Decoding is total: truncated frames, unknown tags, wrong versions,
//! oversized lengths, and trailing bytes all come back as typed
//! [`WireError`]s, never panics — the server feeds these buffers
//! straight from untrusted sockets.

use std::fmt;
use std::io::{self, Read, Write};
use wcds_graph::NodeId;

/// Protocol revision carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame body; larger declared lengths are rejected
/// before allocation so a hostile peer cannot trigger an OOM abort.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// A decoding failure (always a peer-side defect, never a panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame or field ended before its declared length.
    Truncated,
    /// Frame version byte differs from [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// Unknown message/enum discriminant.
    UnknownTag { what: &'static str, tag: u8 },
    /// Declared frame length beyond [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// Bytes left over after a complete decode.
    TrailingBytes(usize),
    /// A length-prefixed string that is not UTF-8.
    InvalidUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadVersion(v) => {
                write!(f, "protocol version {v} (expected {PROTOCOL_VERSION})")
            }
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN} limit")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// A topology mutation, applied through `wcds_core::maintenance`.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// A node joins at `(x, y)` (it receives the next free id).
    Join { x: f64, y: f64 },
    /// Node `node` leaves; higher ids shift down by one.
    Leave { node: NodeId },
    /// Node `node` moves to `(x, y)`.
    Move { node: NodeId, x: f64, y: f64 },
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Ingest a topology under `name`; `payload` is `wcds_graph::io`
    /// text. Payloads with `point` lines become mobile (mutable)
    /// topologies; edge-only payloads are static.
    Create { name: String, payload: String },
    /// Dump the current topology as `wcds_graph::io` text.
    Export { name: String },
    /// Force the artifact bundle (WCDS + spanner + routing tables) to
    /// be built now and return its summary.
    Construct { name: String },
    /// Clusterhead-route a packet over the cached backbone.
    Route { name: String, from: NodeId, to: NodeId },
    /// Backbone-broadcast from `source`, returning forwarder counts.
    Broadcast { name: String, source: NodeId },
    /// Topology + cache statistics.
    Stats { name: String },
    /// Apply one maintenance mutation (bumps the topology epoch).
    Mutate { name: String, mutation: Mutation },
    /// Names of all stored topologies.
    List,
    /// Remove a topology.
    Drop { name: String },
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// Upgrade the topology to a (k, m)-resilient backbone: non-
    /// dominators covered by ≥ m dominators, induced core k-connected.
    /// Rebuilds the bundle eagerly and enables degraded-mode serving.
    Harden { name: String, k: u64, m: u64 },
    /// Apply a whole vector of mutations in one frame (a drift tick).
    /// The batch is admitted through the region-lease scheduler:
    /// mutations on disjoint 3-balls coalesce into concurrent repair
    /// waves, conflicting ones apply in FIFO order, and the final state
    /// is byte-identical to applying the same mutations one
    /// [`Request::Mutate`] at a time. Validation is all-or-nothing: an
    /// out-of-range node id anywhere in the batch rejects the whole
    /// frame before any mutation applies.
    MutateBatch { name: String, mutations: Vec<Mutation> },
}

/// Machine-readable failure category in an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Unknown topology name.
    NotFound,
    /// `Create` for a name already in the store.
    AlreadyExists,
    /// Unparsable graph payload.
    BadPayload,
    /// Operation the topology cannot do (mutating a static one).
    Unsupported,
    /// Node id outside the topology.
    OutOfRange,
    /// No backbone route between the endpoints.
    Unroutable,
    /// Anything else (server-side defect).
    Internal,
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::NotFound => "not-found",
            ErrorCode::AlreadyExists => "already-exists",
            ErrorCode::BadPayload => "bad-payload",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::OutOfRange => "out-of-range",
            ErrorCode::Unroutable => "unroutable",
            ErrorCode::Internal => "internal",
        };
        write!(f, "{s}")
    }
}

/// Per-topology statistics reported by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TopologyStats {
    /// Node count.
    pub nodes: u64,
    /// Edge count.
    pub edges: u64,
    /// Mutation epoch (0 at ingest, +1 per applied mutation).
    pub epoch: u64,
    /// Whether the topology accepts mutations (was ingested with
    /// positions).
    pub mobile: bool,
    /// Whether the artifact bundle was already fresh when this request
    /// arrived (i.e. this very request was a cache hit).
    pub cached: bool,
    /// MIS dominator count of the current WCDS.
    pub mis: u64,
    /// Additional (bridge) dominator count.
    pub bridges: u64,
    /// Edge count of the weakly-induced spanner.
    pub spanner_edges: u64,
    /// Lifetime artifact-cache hits for this topology.
    pub cache_hits: u64,
    /// Lifetime artifact-cache misses.
    pub cache_misses: u64,
    /// Lifetime artifact rebuilds (≤ misses; a miss that finds the
    /// bundle already rebuilt by a racing request does not rebuild).
    pub rebuilds: u64,
    /// Resilience target `k` (0 when the topology is not hardened).
    pub hardened_k: u64,
    /// Resilience target `m` (0 when the topology is not hardened).
    pub hardened_m: u64,
    /// Core connectivity the last built backbone actually achieved
    /// (≤ `hardened_k`; lower only when the host graph falls short).
    pub achieved_k: u64,
    /// Routes served from a fresh bundle.
    pub routes_ok: u64,
    /// Routes served over a stale resilient backbone while a heal was
    /// pending (degraded mode).
    pub routes_degraded: u64,
    /// Route queries answered `Degraded { unreachable }` because no
    /// surviving backbone path existed.
    pub routes_unreachable: u64,
    /// Background heals that installed a fresh bundle.
    pub heals: u64,
    /// Mutations that had to wait behind a conflicting earlier claim in
    /// the region-lease scheduler (queued live admissions plus batch
    /// mutations scheduled into a later repair wave).
    pub lease_waits: u64,
    /// Conflicting (claim, earlier-claim) pairs the lease scheduler
    /// detected.
    pub lease_conflicts: u64,
    /// Mutations received through [`Request::MutateBatch`] frames.
    pub batched_mutations: u64,
    /// Peak number of repairs admitted concurrently (widest batch wave
    /// or largest granted lease set observed).
    pub concurrent_repairs_max: u64,
    /// Lock-free published-bundle snapshot loads for this topology
    /// (every read that resolved through the atomic snapshot cell).
    pub snapshot_reads: u64,
    /// Deepest request pipeline observed on one connection (complete
    /// frames decoded from a single readiness wake). Engine
    /// diagnostics: 0 under the worker-pool engine.
    pub pipeline_depth_max: u64,
    /// Readiness-loop syscalls issued by the serving engine (epoll
    /// waits + ctls, reads, writes, accepts). Engine diagnostics: 0
    /// under the worker-pool engine.
    pub syscalls: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Topology ingested.
    Created {
        /// Node count.
        nodes: u64,
        /// Edge count.
        edges: u64,
        /// Whether it accepts mutations.
        mobile: bool,
    },
    /// The topology as `wcds_graph::io` text.
    Exported {
        /// Text-format document (graph + points when mobile).
        payload: String,
    },
    /// Artifact bundle summary.
    Constructed {
        /// MIS dominator count.
        mis: u64,
        /// Additional (bridge) dominator count.
        bridges: u64,
        /// Spanner edge count.
        spanner_edges: u64,
        /// Epoch the bundle was built at.
        epoch: u64,
    },
    /// A backbone route.
    Routed {
        /// Node path, inclusive of both endpoints.
        path: Vec<NodeId>,
    },
    /// Broadcast outcome.
    Broadcasted {
        /// Retransmitting nodes.
        forwarders: u64,
        /// Nodes reached.
        informed: u64,
    },
    /// Reply to [`Request::Stats`].
    StatsOk(TopologyStats),
    /// Mutation applied.
    Mutated {
        /// Epoch after the mutation; mutations are serialized per
        /// topology, so epoch `k` is the `k`-th applied mutation.
        epoch: u64,
        /// Nodes that became dominators.
        promoted: Vec<NodeId>,
        /// Nodes that stopped being dominators.
        demoted: Vec<NodeId>,
    },
    /// Reply to [`Request::List`].
    Topologies {
        /// Sorted topology names.
        names: Vec<String>,
    },
    /// Topology removed.
    Dropped,
    /// Acknowledgement of [`Request::Shutdown`]; the server stops
    /// accepting connections after sending it.
    ShuttingDown,
    /// Request-level failure.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Reply to [`Request::Harden`].
    Hardened {
        /// Target connectivity.
        k: u64,
        /// Target coverage multiplicity.
        m: u64,
        /// Core connectivity actually achieved (≤ `k`).
        achieved_k: u64,
        /// Total dominator count of the resilient backbone.
        dominators: u64,
        /// Spanner edge count of the resilient backbone.
        spanner_edges: u64,
        /// Epoch the hardened bundle was built at.
        epoch: u64,
    },
    /// The query was answered in **degraded mode**: the topology (or
    /// its surviving backbone) is partitioned, so part of the network
    /// is out of reach. For a route query this replaces the old
    /// generic `Unroutable` error; for a broadcast it replaces the
    /// generic "partitioned" error.
    Degraded {
        /// How many nodes the source cannot currently reach.
        unreachable: u32,
    },
    /// Reply to [`Request::MutateBatch`]. Reports counts, not per-node
    /// vectors — a drift tick over thousands of nodes should not echo
    /// a proportional payload back.
    BatchMutated {
        /// Epoch after the whole batch; the batch's mutations occupy
        /// epochs `epoch - applied + 1 ..= epoch` in lease-commit
        /// order.
        epoch: u64,
        /// Mutations applied (the full batch; admission is
        /// all-or-nothing).
        applied: u64,
        /// Nodes that became dominators over the whole batch.
        promoted: u64,
        /// Nodes that stopped being dominators over the whole batch.
        demoted: u64,
        /// Microseconds the batch spent queued behind conflicting
        /// leases before its repairs ran — excluded from service time
        /// by accounting clients.
        lease_wait_us: u64,
    },
}

// ---------------------------------------------------------------------
// encoding primitives

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_nodes(out: &mut Vec<u8>, nodes: &[NodeId]) {
    put_u64(out, nodes.len() as u64);
    for &u in nodes {
        put_u64(out, u as u64);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        self.take(1)?.first().copied().ok_or(WireError::Truncated)
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let bytes: [u8; 8] = self.take(8)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn node(&mut self) -> Result<NodeId, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Truncated)
    }

    fn len(&mut self) -> Result<usize, WireError> {
        let n = self.node()?;
        // any honest length fits in what remains of the frame
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(left))
        }
    }
}

fn read_nodes(r: &mut Reader<'_>) -> Result<Vec<NodeId>, WireError> {
    let count = r.node()?;
    // each element is 8 bytes; bound before allocating
    if count > r.buf.len().saturating_sub(r.pos) / 8 {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(r.node()?);
    }
    Ok(out)
}

fn read_strings(r: &mut Reader<'_>) -> Result<Vec<String>, WireError> {
    let count = r.node()?;
    if count > r.buf.len().saturating_sub(r.pos) {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(r.string()?);
    }
    Ok(out)
}

fn put_strings(out: &mut Vec<u8>, strings: &[String]) {
    put_u64(out, strings.len() as u64);
    for s in strings {
        put_str(out, s);
    }
}

fn header(tag: u8) -> Vec<u8> {
    vec![PROTOCOL_VERSION, tag]
}

fn open(buf: &[u8]) -> Result<(u8, Reader<'_>), WireError> {
    let mut r = Reader::new(buf);
    let version = r.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let tag = r.u8()?;
    Ok((tag, r))
}

// ---------------------------------------------------------------------
// message encodings

impl Mutation {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Mutation::Join { x, y } => {
                out.push(0);
                put_f64(out, *x);
                put_f64(out, *y);
            }
            Mutation::Leave { node } => {
                out.push(1);
                put_u64(out, *node as u64);
            }
            Mutation::Move { node, x, y } => {
                out.push(2);
                put_u64(out, *node as u64);
                put_f64(out, *x);
                put_f64(out, *y);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Mutation::Join { x: r.f64()?, y: r.f64()? }),
            1 => Ok(Mutation::Leave { node: r.node()? }),
            2 => Ok(Mutation::Move { node: r.node()?, x: r.f64()?, y: r.f64()? }),
            tag => Err(WireError::UnknownTag { what: "mutation", tag }),
        }
    }
}

fn put_mutations(out: &mut Vec<u8>, mutations: &[Mutation]) {
    put_u64(out, mutations.len() as u64);
    for m in mutations {
        m.encode_into(out);
    }
}

fn read_mutations(r: &mut Reader<'_>) -> Result<Vec<Mutation>, WireError> {
    let count = r.node()?;
    // the smallest mutation (Leave) is 9 bytes; bound before allocating
    if count > r.buf.len().saturating_sub(r.pos) / 9 {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(Mutation::decode_from(r)?);
    }
    Ok(out)
}

impl Request {
    /// Serialises the request into a frame body (version + tag + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Ping => header(0),
            Request::Create { name, payload } => {
                let mut out = header(1);
                put_str(&mut out, name);
                put_str(&mut out, payload);
                out
            }
            Request::Export { name } => {
                let mut out = header(2);
                put_str(&mut out, name);
                out
            }
            Request::Construct { name } => {
                let mut out = header(3);
                put_str(&mut out, name);
                out
            }
            Request::Route { name, from, to } => {
                let mut out = header(4);
                put_str(&mut out, name);
                put_u64(&mut out, *from as u64);
                put_u64(&mut out, *to as u64);
                out
            }
            Request::Broadcast { name, source } => {
                let mut out = header(5);
                put_str(&mut out, name);
                put_u64(&mut out, *source as u64);
                out
            }
            Request::Stats { name } => {
                let mut out = header(6);
                put_str(&mut out, name);
                out
            }
            Request::Mutate { name, mutation } => {
                let mut out = header(7);
                put_str(&mut out, name);
                mutation.encode_into(&mut out);
                out
            }
            Request::List => header(8),
            Request::Drop { name } => {
                let mut out = header(9);
                put_str(&mut out, name);
                out
            }
            Request::Shutdown => header(10),
            Request::Harden { name, k, m } => {
                let mut out = header(11);
                put_str(&mut out, name);
                put_u64(&mut out, *k);
                put_u64(&mut out, *m);
                out
            }
            Request::MutateBatch { name, mutations } => {
                let mut out = header(12);
                put_str(&mut out, name);
                put_mutations(&mut out, mutations);
                out
            }
        }
    }

    /// Decodes a frame body produced by [`Request::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, version or tag mismatch,
    /// bad UTF-8, or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let (tag, mut r) = open(buf)?;
        let req = match tag {
            0 => Request::Ping,
            1 => Request::Create { name: r.string()?, payload: r.string()? },
            2 => Request::Export { name: r.string()? },
            3 => Request::Construct { name: r.string()? },
            4 => Request::Route { name: r.string()?, from: r.node()?, to: r.node()? },
            5 => Request::Broadcast { name: r.string()?, source: r.node()? },
            6 => Request::Stats { name: r.string()? },
            7 => Request::Mutate { name: r.string()?, mutation: Mutation::decode_from(&mut r)? },
            8 => Request::List,
            9 => Request::Drop { name: r.string()? },
            10 => Request::Shutdown,
            11 => Request::Harden { name: r.string()?, k: r.u64()?, m: r.u64()? },
            12 => Request::MutateBatch {
                name: r.string()?,
                mutations: read_mutations(&mut r)?,
            },
            tag => return Err(WireError::UnknownTag { what: "request", tag }),
        };
        r.finish()?;
        Ok(req)
    }
}

impl ErrorCode {
    fn to_tag(self) -> u8 {
        match self {
            ErrorCode::NotFound => 0,
            ErrorCode::AlreadyExists => 1,
            ErrorCode::BadPayload => 2,
            ErrorCode::Unsupported => 3,
            ErrorCode::OutOfRange => 4,
            ErrorCode::Unroutable => 5,
            ErrorCode::Internal => 6,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => ErrorCode::NotFound,
            1 => ErrorCode::AlreadyExists,
            2 => ErrorCode::BadPayload,
            3 => ErrorCode::Unsupported,
            4 => ErrorCode::OutOfRange,
            5 => ErrorCode::Unroutable,
            6 => ErrorCode::Internal,
            tag => return Err(WireError::UnknownTag { what: "error code", tag }),
        })
    }
}

impl TopologyStats {
    fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            self.nodes,
            self.edges,
            self.epoch,
            self.mis,
            self.bridges,
            self.spanner_edges,
            self.cache_hits,
            self.cache_misses,
            self.rebuilds,
            self.hardened_k,
            self.hardened_m,
            self.achieved_k,
            self.routes_ok,
            self.routes_degraded,
            self.routes_unreachable,
            self.heals,
            self.lease_waits,
            self.lease_conflicts,
            self.batched_mutations,
            self.concurrent_repairs_max,
            self.snapshot_reads,
            self.pipeline_depth_max,
            self.syscalls,
        ] {
            put_u64(out, v);
        }
        out.push(u8::from(self.mobile));
        out.push(u8::from(self.cached));
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut s = TopologyStats {
            nodes: r.u64()?,
            edges: r.u64()?,
            epoch: r.u64()?,
            mis: r.u64()?,
            bridges: r.u64()?,
            spanner_edges: r.u64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            rebuilds: r.u64()?,
            hardened_k: r.u64()?,
            hardened_m: r.u64()?,
            achieved_k: r.u64()?,
            routes_ok: r.u64()?,
            routes_degraded: r.u64()?,
            routes_unreachable: r.u64()?,
            heals: r.u64()?,
            lease_waits: r.u64()?,
            lease_conflicts: r.u64()?,
            batched_mutations: r.u64()?,
            concurrent_repairs_max: r.u64()?,
            snapshot_reads: r.u64()?,
            pipeline_depth_max: r.u64()?,
            syscalls: r.u64()?,
            ..TopologyStats::default()
        };
        s.mobile = r.u8()? != 0;
        s.cached = r.u8()? != 0;
        Ok(s)
    }
}

impl Response {
    /// Serialises the response into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Pong => header(0),
            Response::Created { nodes, edges, mobile } => {
                let mut out = header(1);
                put_u64(&mut out, *nodes);
                put_u64(&mut out, *edges);
                out.push(u8::from(*mobile));
                out
            }
            Response::Exported { payload } => {
                let mut out = header(2);
                put_str(&mut out, payload);
                out
            }
            Response::Constructed { mis, bridges, spanner_edges, epoch } => {
                let mut out = header(3);
                put_u64(&mut out, *mis);
                put_u64(&mut out, *bridges);
                put_u64(&mut out, *spanner_edges);
                put_u64(&mut out, *epoch);
                out
            }
            Response::Routed { path } => {
                let mut out = header(4);
                put_nodes(&mut out, path);
                out
            }
            Response::Broadcasted { forwarders, informed } => {
                let mut out = header(5);
                put_u64(&mut out, *forwarders);
                put_u64(&mut out, *informed);
                out
            }
            Response::StatsOk(stats) => {
                let mut out = header(6);
                stats.encode_into(&mut out);
                out
            }
            Response::Mutated { epoch, promoted, demoted } => {
                let mut out = header(7);
                put_u64(&mut out, *epoch);
                put_nodes(&mut out, promoted);
                put_nodes(&mut out, demoted);
                out
            }
            Response::Topologies { names } => {
                let mut out = header(8);
                put_strings(&mut out, names);
                out
            }
            Response::Dropped => header(9),
            Response::ShuttingDown => header(10),
            Response::Error { code, message } => {
                let mut out = header(11);
                out.push(code.to_tag());
                put_str(&mut out, message);
                out
            }
            Response::Hardened { k, m, achieved_k, dominators, spanner_edges, epoch } => {
                let mut out = header(12);
                for v in [k, m, achieved_k, dominators, spanner_edges, epoch] {
                    put_u64(&mut out, *v);
                }
                out
            }
            Response::Degraded { unreachable } => {
                let mut out = header(13);
                put_u64(&mut out, u64::from(*unreachable));
                out
            }
            Response::BatchMutated { epoch, applied, promoted, demoted, lease_wait_us } => {
                let mut out = header(14);
                for v in [epoch, applied, promoted, demoted, lease_wait_us] {
                    put_u64(&mut out, *v);
                }
                out
            }
        }
    }

    /// Decodes a frame body produced by [`Response::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, version or tag mismatch,
    /// bad UTF-8, or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let (tag, mut r) = open(buf)?;
        let resp = match tag {
            0 => Response::Pong,
            1 => Response::Created {
                nodes: r.u64()?,
                edges: r.u64()?,
                mobile: r.u8()? != 0,
            },
            2 => Response::Exported { payload: r.string()? },
            3 => Response::Constructed {
                mis: r.u64()?,
                bridges: r.u64()?,
                spanner_edges: r.u64()?,
                epoch: r.u64()?,
            },
            4 => Response::Routed { path: read_nodes(&mut r)? },
            5 => Response::Broadcasted { forwarders: r.u64()?, informed: r.u64()? },
            6 => Response::StatsOk(TopologyStats::decode_from(&mut r)?),
            7 => Response::Mutated {
                epoch: r.u64()?,
                promoted: read_nodes(&mut r)?,
                demoted: read_nodes(&mut r)?,
            },
            8 => Response::Topologies { names: read_strings(&mut r)? },
            9 => Response::Dropped,
            10 => Response::ShuttingDown,
            11 => Response::Error {
                code: ErrorCode::from_tag(r.u8()?)?,
                message: r.string()?,
            },
            12 => Response::Hardened {
                k: r.u64()?,
                m: r.u64()?,
                achieved_k: r.u64()?,
                dominators: r.u64()?,
                spanner_edges: r.u64()?,
                epoch: r.u64()?,
            },
            // decoding stays total: a count beyond u32 saturates rather
            // than erroring (an honest peer never sends one)
            13 => Response::Degraded {
                unreachable: u32::try_from(r.u64()?).unwrap_or(u32::MAX),
            },
            14 => Response::BatchMutated {
                epoch: r.u64()?,
                applied: r.u64()?,
                promoted: r.u64()?,
                demoted: r.u64()?,
                lease_wait_us: r.u64()?,
            },
            tag => return Err(WireError::UnknownTag { what: "response", tag }),
        };
        r.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// framing

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// `InvalidInput` (wrapping [`WireError::FrameTooLarge`]) if `body`
/// exceeds [`MAX_FRAME_LEN`] — nothing is written in that case — plus
/// any I/O error from the underlying stream.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    // MAX_FRAME_LEN < u32::MAX, so the bound check also proves the cast
    let len = u32::try_from(body.len())
        .ok()
        .filter(|_| body.len() <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, WireError::FrameTooLarge(body.len()))
        })?;
    // one coalesced write: prefix and body leave in a single
    // syscall/packet, so a NODELAY peer never wakes up for a bare
    // 4-byte length and then sleeps again waiting for the body
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)?;
    w.flush()
}

/// Outcome of [`read_frame`] on a timeout-capable stream.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete frame body.
    Frame(Vec<u8>),
    /// Clean EOF before any byte of a frame (peer closed between
    /// messages).
    Eof,
    /// A read timeout fired before any byte of a frame arrived — the
    /// peer is connected but idle. The stream is still in sync; the
    /// caller may poll a flag and retry.
    IdleTimeout,
}

/// Reads one length-prefixed frame.
///
/// A timeout **between** frames comes back as
/// [`FrameRead::IdleTimeout`] (safe to retry); a timeout **inside** a
/// frame is an error, because the stream position is unknowable and
/// the connection must be dropped — this is how a stalled client is
/// prevented from wedging a server worker. EOF inside a frame is an
/// `UnexpectedEof` error; an oversized length prefix is `InvalidData`
/// (wrapping [`WireError::FrameTooLarge`]) and is rejected before any
/// allocation.
///
/// # Errors
///
/// Propagates I/O errors (including mid-frame timeouts, as above).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    match read_full(r, &mut len_buf) {
        FullRead::Eof => return Ok(FrameRead::Eof),
        FullRead::Idle => return Ok(FrameRead::IdleTimeout),
        FullRead::Err(e) => return Err(e),
        FullRead::Ok => {}
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, WireError::FrameTooLarge(len)));
    }
    let mut body = vec![0u8; len];
    match read_full(r, &mut body) {
        FullRead::Eof => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF inside frame")),
        // the length prefix was consumed: a quiet peer here is stalled
        // mid-frame, not idle
        FullRead::Idle => Err(io::Error::new(io::ErrorKind::TimedOut, "stalled inside frame")),
        FullRead::Err(e) => Err(e),
        FullRead::Ok => Ok(FrameRead::Frame(body)),
    }
}

enum FullRead {
    Ok,
    /// Clean EOF before the first byte.
    Eof,
    /// Timeout before the first byte.
    Idle,
    Err(io::Error),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> FullRead {
    let mut filled = 0;
    loop {
        let rest = match buf.get_mut(filled..) {
            Some(rest) if !rest.is_empty() => rest,
            _ => return FullRead::Ok, // filled the whole buffer
        };
        let capacity = rest.len();
        match r.read(rest) {
            Ok(0) if filled == 0 => return FullRead::Eof,
            Ok(0) => {
                return FullRead::Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame",
                ))
            }
            Ok(n) if n <= capacity => filled += n,
            // a Read impl reporting more bytes than the buffer holds is
            // broken; fail the frame, never panic
            Ok(_) => {
                return FullRead::Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "reader overran the frame buffer",
                ))
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) && filled == 0 => return FullRead::Idle,
            // a timeout after partial progress means a stalled peer:
            // surface it (the caller drops the connection) instead of
            // spinning forever on a half-frame
            Err(e) => return FullRead::Err(e),
        }
    }
}

// ---------------------------------------------------------------------
// incremental framing

/// Incremental, nonblocking counterpart of [`read_frame`]: a
/// per-connection framing state machine for readiness-driven servers.
///
/// Bytes arrive in whatever chunks the socket produced via
/// [`FrameDecoder::feed`]; [`FrameDecoder::next_frame`] then yields
/// complete frame bodies in arrival order — zero, one, or many per
/// feed, which is what makes request pipelining work. The decoder
/// enforces the same hostility rules as the blocking reader: an
/// oversized length prefix is rejected with
/// [`WireError::FrameTooLarge`] as soon as the four header bytes are
/// present, before a single body byte is buffered.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Raw received bytes not yet consumed by a yielded frame.
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted lazily so a
    /// pipelined burst doesn't memmove once per frame).
    pos: usize,
}

impl FrameDecoder {
    /// A fresh decoder with nothing buffered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received bytes to the framing buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 64 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame body, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed. After an error
    /// the stream position is unknowable and the connection must be
    /// dropped — exactly as with [`read_frame`].
    ///
    /// # Errors
    ///
    /// [`WireError::FrameTooLarge`] if the length prefix exceeds
    /// [`MAX_FRAME_LEN`]; nothing past the prefix is buffered or
    /// inspected in that case.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let Some(hdr) = self.buf.get(self.pos..self.pos.saturating_add(4)) else {
            return Ok(None);
        };
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(hdr); // the range above is exactly 4 bytes
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge(len));
        }
        let start = self.pos.saturating_add(4);
        let Some(body) = self.buf.get(start..start.saturating_add(len)) else {
            return Ok(None);
        };
        let frame = body.to_vec();
        self.pos = start.saturating_add(len);
        Ok(Some(frame))
    }

    /// True when consumed bytes of an incomplete frame (or an unread
    /// header) are buffered — a quiet peer in this state is stalled
    /// *mid-frame*, not idle, and should be dropped on timeout.
    pub fn mid_frame(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Bytes currently buffered and not yet consumed by a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let buf = req.encode();
        assert_eq!(Request::decode(&buf).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let buf = resp.encode();
        assert_eq!(Response::decode(&buf).unwrap(), resp);
    }

    #[test]
    fn every_request_roundtrips() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Create {
            name: "net".into(),
            payload: "nodes 2\nedge 0 1\n".into(),
        });
        roundtrip_request(Request::Export { name: "net".into() });
        roundtrip_request(Request::Construct { name: "net".into() });
        roundtrip_request(Request::Route { name: "net".into(), from: 3, to: 99 });
        roundtrip_request(Request::Broadcast { name: "net".into(), source: 0 });
        roundtrip_request(Request::Stats { name: "net".into() });
        for mutation in [
            Mutation::Join { x: 1.5, y: -2.25 },
            Mutation::Leave { node: 7 },
            Mutation::Move { node: 4, x: 0.0, y: 9.75 },
        ] {
            roundtrip_request(Request::Mutate { name: "n".into(), mutation });
        }
        roundtrip_request(Request::List);
        roundtrip_request(Request::Drop { name: "n".into() });
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Harden { name: "net".into(), k: 2, m: 2 });
        roundtrip_request(Request::MutateBatch {
            name: "net".into(),
            mutations: vec![
                Mutation::Move { node: 4, x: 0.5, y: 1.5 },
                Mutation::Join { x: -1.0, y: 2.0 },
                Mutation::Leave { node: 2 },
                Mutation::Move { node: 0, x: 3.25, y: -0.75 },
            ],
        });
        roundtrip_request(Request::MutateBatch { name: "net".into(), mutations: vec![] });
    }

    #[test]
    fn every_response_roundtrips() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Created { nodes: 10, edges: 20, mobile: true });
        roundtrip_response(Response::Exported { payload: "nodes 1\n".into() });
        roundtrip_response(Response::Constructed { mis: 4, bridges: 2, spanner_edges: 31, epoch: 5 });
        roundtrip_response(Response::Routed { path: vec![0, 4, 2, 9] });
        roundtrip_response(Response::Routed { path: vec![] });
        roundtrip_response(Response::Broadcasted { forwarders: 6, informed: 50 });
        roundtrip_response(Response::StatsOk(TopologyStats {
            nodes: 100,
            edges: 400,
            epoch: 3,
            mobile: true,
            cached: false,
            mis: 12,
            bridges: 5,
            spanner_edges: 210,
            cache_hits: 40,
            cache_misses: 4,
            rebuilds: 4,
            hardened_k: 2,
            hardened_m: 2,
            achieved_k: 2,
            routes_ok: 31,
            routes_degraded: 7,
            routes_unreachable: 1,
            heals: 3,
            lease_waits: 9,
            lease_conflicts: 14,
            batched_mutations: 640,
            concurrent_repairs_max: 6,
            snapshot_reads: 77,
            pipeline_depth_max: 32,
            syscalls: 5120,
        }));
        roundtrip_response(Response::Mutated { epoch: 9, promoted: vec![3], demoted: vec![1, 2] });
        roundtrip_response(Response::Topologies { names: vec!["a".into(), "b".into()] });
        roundtrip_response(Response::Dropped);
        roundtrip_response(Response::ShuttingDown);
        for code in [
            ErrorCode::NotFound,
            ErrorCode::AlreadyExists,
            ErrorCode::BadPayload,
            ErrorCode::Unsupported,
            ErrorCode::OutOfRange,
            ErrorCode::Unroutable,
            ErrorCode::Internal,
        ] {
            roundtrip_response(Response::Error { code, message: format!("{code}") });
        }
        roundtrip_response(Response::Hardened {
            k: 2,
            m: 3,
            achieved_k: 2,
            dominators: 44,
            spanner_edges: 161,
            epoch: 9,
        });
        roundtrip_response(Response::Degraded { unreachable: 17 });
        roundtrip_response(Response::Degraded { unreachable: 0 });
        roundtrip_response(Response::BatchMutated {
            epoch: 640,
            applied: 16,
            promoted: 2,
            demoted: 1,
            lease_wait_us: 350,
        });
    }

    #[test]
    fn mutate_batch_with_hostile_count_is_rejected_before_allocation() {
        // declares 2^60 mutations but carries none: must come back as
        // Truncated without attempting the allocation
        let mut buf = vec![PROTOCOL_VERSION, 12];
        put_str(&mut buf, "net");
        put_u64(&mut buf, 1 << 60);
        assert_eq!(Request::decode(&buf).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn degraded_count_beyond_u32_saturates() {
        let mut buf = vec![PROTOCOL_VERSION, 13];
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            Response::decode(&buf).unwrap(),
            Response::Degraded { unreachable: u32::MAX }
        );
    }

    #[test]
    fn truncation_at_every_prefix_is_a_typed_error() {
        let buf = Request::Mutate {
            name: "topology".into(),
            mutation: Mutation::Move { node: 3, x: 1.0, y: 2.0 },
        }
        .encode();
        for cut in 0..buf.len() {
            let e = Request::decode(&buf[..cut]).unwrap_err();
            assert!(
                matches!(e, WireError::Truncated | WireError::InvalidUtf8),
                "cut at {cut}: {e:?}"
            );
        }
        let buf = Response::Mutated { epoch: 2, promoted: vec![1, 5], demoted: vec![0] }.encode();
        for cut in 0..buf.len() {
            assert!(Response::decode(&buf[..cut]).is_err(), "cut at {cut} decoded");
        }
        let buf = Request::MutateBatch {
            name: "drift".into(),
            mutations: vec![
                Mutation::Move { node: 1, x: 0.5, y: 0.5 },
                Mutation::Join { x: 2.0, y: 2.0 },
            ],
        }
        .encode();
        for cut in 0..buf.len() {
            assert!(Request::decode(&buf[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn bad_version_and_tags_rejected() {
        let mut buf = Request::Ping.encode();
        buf[0] = 77;
        assert_eq!(Request::decode(&buf).unwrap_err(), WireError::BadVersion(77));
        let buf = vec![PROTOCOL_VERSION, 250];
        assert!(matches!(
            Request::decode(&buf).unwrap_err(),
            WireError::UnknownTag { what: "request", tag: 250 }
        ));
        assert!(matches!(
            Response::decode(&buf).unwrap_err(),
            WireError::UnknownTag { what: "response", tag: 250 }
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Request::List.encode();
        buf.push(0);
        assert_eq!(Request::decode(&buf).unwrap_err(), WireError::TrailingBytes(1));
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // Create with a declared string length of u64::MAX
        let mut buf = vec![PROTOCOL_VERSION, 1];
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(Request::decode(&buf).unwrap_err(), WireError::Truncated);
        // Routed with a declared element count far beyond the frame
        let mut buf = vec![PROTOCOL_VERSION, 4];
        buf.extend_from_slice(&(1u64 << 40).to_le_bytes());
        assert_eq!(Response::decode(&buf).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        write_frame(&mut wire, &Request::List.encode()).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let FrameRead::Frame(a) = read_frame(&mut cursor).unwrap() else { panic!("frame") };
        let FrameRead::Frame(b) = read_frame(&mut cursor).unwrap() else { panic!("frame") };
        assert_eq!(Request::decode(&a).unwrap(), Request::Ping);
        assert_eq!(Request::decode(&b).unwrap(), Request::List);
        assert_eq!(read_frame(&mut cursor).unwrap(), FrameRead::Eof);
    }

    #[test]
    fn eof_inside_frame_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[1, 2, 3, 4, 5]).unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor = std::io::Cursor::new(wire);
        let e = read_frame(&mut cursor).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_outgoing_frame_is_an_error_not_a_panic() {
        let body = vec![0u8; MAX_FRAME_LEN + 1];
        let mut out = Vec::new();
        let e = write_frame(&mut out, &body).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
        assert!(out.is_empty(), "nothing may reach the wire for an oversized frame");
    }

    #[test]
    fn oversized_frame_length_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        let e = read_frame(&mut cursor).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn incremental_decoder_yields_frames_across_arbitrary_splits() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        write_frame(&mut wire, &Request::Stats { name: "net".into() }.encode()).unwrap();
        write_frame(&mut wire, &Request::List.encode()).unwrap();
        for chunk in [1, 2, 3, 5, 7, wire.len()] {
            let mut dec = FrameDecoder::new();
            let mut frames = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.feed(piece);
                while let Some(body) = dec.next_frame().unwrap() {
                    frames.push(body);
                }
            }
            assert_eq!(frames.len(), 3, "chunk size {chunk}");
            assert_eq!(Request::decode(&frames[0]).unwrap(), Request::Ping);
            assert_eq!(
                Request::decode(&frames[1]).unwrap(),
                Request::Stats { name: "net".into() }
            );
            assert_eq!(Request::decode(&frames[2]).unwrap(), Request::List);
            assert!(!dec.mid_frame(), "chunk size {chunk}: residue left");
        }
    }

    #[test]
    fn incremental_decoder_pipelines_a_coalesced_burst_in_one_feed() {
        let mut wire = Vec::new();
        for _ in 0..32 {
            write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let mut n = 0;
        while let Some(body) = dec.next_frame().unwrap() {
            assert_eq!(Request::decode(&body).unwrap(), Request::Ping);
            n += 1;
        }
        assert_eq!(n, 32);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn incremental_decoder_rejects_oversize_header_before_body_arrives() {
        let mut dec = FrameDecoder::new();
        // header declares u32::MAX bytes; only the header is fed
        dec.feed(&u32::MAX.to_le_bytes());
        assert_eq!(dec.next_frame().unwrap_err(), WireError::FrameTooLarge(u32::MAX as usize));
        // the boundary case one past the cap is also rejected
        let mut dec = FrameDecoder::new();
        dec.feed(&u32::try_from(MAX_FRAME_LEN + 1).unwrap().to_le_bytes());
        assert_eq!(dec.next_frame().unwrap_err(), WireError::FrameTooLarge(MAX_FRAME_LEN + 1));
        // exactly at the cap the header itself is fine — just incomplete
        let mut dec = FrameDecoder::new();
        dec.feed(&u32::try_from(MAX_FRAME_LEN).unwrap().to_le_bytes());
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(dec.mid_frame());
    }

    #[test]
    fn incremental_decoder_reports_mid_frame_for_partial_bodies() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[1, 2, 3, 4, 5]).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..wire.len() - 2]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(dec.mid_frame(), "a half-delivered body is a stalled frame");
        dec.feed(&wire[wire.len() - 2..]);
        assert_eq!(dec.next_frame().unwrap(), Some(vec![1, 2, 3, 4, 5]));
        assert!(!dec.mid_frame());
    }
}
