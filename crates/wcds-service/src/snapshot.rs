//! Lock-free epoch snapshot cell: the store's publication primitive.
//!
//! [`SnapCell`] holds an optional `Arc<T>` behind an atomic pointer.
//! Readers ([`SnapCell::load`]) clone the `Arc` without taking any
//! lock — the cache-hit serving path in `store.rs` rides on this, so a
//! burst of route/broadcast/stats requests never contends on a
//! `RwLock`. Writers ([`SnapCell::update`]) are serialized by a small
//! mutex (publication is rare: one per rebuild/patch install) and swap
//! the pointer atomically.
//!
//! # Reclamation protocol (userspace RCU, parity grace periods)
//!
//! The swapped-out `Arc` box cannot be freed while a reader is between
//! "loaded the pointer" and "cloned the `Arc`". Readers therefore
//! announce themselves on one of two *parity sides* chosen by the low
//! bit of a generation counter:
//!
//! 1. reader: `g ← gen`; increment `enters` on side `g & 1`;
//!    re-read `gen` — if the parity moved, back out (increment
//!    `exits`) and retry; otherwise load + clone the pointer and
//!    increment `exits`.
//! 2. writer (mutex-held): install the new pointer with an atomic
//!    `swap`, *then* flip `gen`, then spin until the **old** parity
//!    side's `enters == exits`, then free the old box.
//!
//! Any reader that passed its parity recheck before the flip is
//! counted on the old side, so the writer's drain waits for it; any
//! reader that enters after the flip rechecks against the new parity
//! and can only observe the new (valid) pointer. Two back-to-back
//! updates reuse a parity side only after its drain completed, and the
//! writer mutex serializes updates, so a side never carries readers
//! from two different grace periods.
//!
//! This is one of the service crate's two audited `unsafe` islands —
//! the other is the raw-syscall `sys` module; workspace policy denies
//! `unsafe_code` everywhere else (DESIGN.md §9) — and every `unsafe`
//! block below cites the protocol invariant that justifies it.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One parity side of the reader-announcement protocol.
#[derive(Default)]
struct Side {
    enters: AtomicUsize,
    exits: AtomicUsize,
}

/// An atomically publishable `Option<Arc<T>>` with lock-free reads.
pub struct SnapCell<T> {
    /// Box-leaked `Arc<T>`; null encodes `None`.
    ptr: AtomicPtr<Arc<T>>,
    /// Generation counter; the low bit selects the reader parity side.
    gen: AtomicUsize,
    even: Side,
    odd: Side,
    /// Serializes writers; poisoning is survivable because the cell's
    /// shared state is all atomics (a writer that panicked mid-update
    /// has either fully installed the new pointer or not at all).
    writer: Mutex<()>,
    /// The cell owns an `Arc<T>`, so `Send`/`Sync` must require
    /// `T: Send + Sync` exactly as `Arc` does.
    marker: PhantomData<Arc<T>>,
}

impl<T> Default for SnapCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SnapCell<T> {
    /// An empty cell (`load` returns `None`).
    pub fn new() -> Self {
        Self {
            ptr: AtomicPtr::new(ptr::null_mut()),
            gen: AtomicUsize::new(0),
            even: Side::default(),
            odd: Side::default(),
            writer: Mutex::new(()),
            marker: PhantomData,
        }
    }

    /// A cell already holding `value`.
    pub fn with_value(value: Arc<T>) -> Self {
        let cell = Self::new();
        cell.ptr.store(Box::into_raw(Box::new(value)), Ordering::SeqCst);
        cell
    }

    fn side(&self, parity: usize) -> &Side {
        if parity & 1 == 0 {
            &self.even
        } else {
            &self.odd
        }
    }

    /// Clones the current snapshot without taking any lock.
    ///
    /// Wait-free in the absence of writers; under a concurrent
    /// publication it retries at most once per generation flip.
    pub fn load(&self) -> Option<Arc<T>> {
        loop {
            let g = self.gen.load(Ordering::SeqCst);
            let side = self.side(g);
            side.enters.fetch_add(1, Ordering::SeqCst);
            if self.gen.load(Ordering::SeqCst) & 1 != g & 1 {
                // a writer flipped parity between our gen read and our
                // announcement: back out and re-announce on the side
                // the drain isn't (or is no longer) waiting on
                side.exits.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            let p = self.ptr.load(Ordering::SeqCst);
            // SAFETY: `p` was installed by `with_value`/`update` from
            // `Box::into_raw` (or is null). We are announced on the
            // parity side that was current when `p` was loaded, and a
            // writer frees a swapped-out box only after flipping
            // parity and draining this side — which cannot complete
            // until our `exits` increment below. So `p` is live here.
            let out = unsafe { p.as_ref().cloned() };
            side.exits.fetch_add(1, Ordering::SeqCst);
            return out;
        }
    }

    /// Read-modify-write under the writer mutex.
    ///
    /// `f` sees the current snapshot and returns
    /// `(replacement, result)`: `None` keeps the current snapshot
    /// untouched, `Some(next)` publishes `next` (which may itself be
    /// `None` to clear the cell). Readers are never blocked; the old
    /// snapshot is freed after the RCU grace period above.
    pub fn update<R>(
        &self,
        f: impl FnOnce(Option<&Arc<T>>) -> (Option<Option<Arc<T>>>, R),
    ) -> R {
        let guard = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let cur_ptr = self.ptr.load(Ordering::SeqCst);
        // SAFETY: we hold the writer mutex, so no other writer can swap
        // or free `cur_ptr` for the lifetime of this borrow; it was
        // created by `Box::into_raw` (or is null).
        let cur = unsafe { cur_ptr.as_ref() };
        let (replace, out) = f(cur);
        if let Some(next) = replace {
            let new_ptr = match next {
                Some(arc) => Box::into_raw(Box::new(arc)),
                None => ptr::null_mut(),
            };
            let old = self.ptr.swap(new_ptr, Ordering::SeqCst);
            // flip parity *after* the swap: late readers on the old
            // parity can only have seen `old` (kept until drain) or
            // `new_ptr` (live); post-flip readers recheck and land on
            // the new side
            let flipped = self.gen.fetch_add(1, Ordering::SeqCst);
            let old_side = self.side(flipped);
            while old_side.enters.load(Ordering::SeqCst)
                != old_side.exits.load(Ordering::SeqCst)
            {
                std::hint::spin_loop();
            }
            if !old.is_null() {
                // SAFETY: `old` came from `Box::into_raw`, was swapped
                // out above, and every reader announced on its parity
                // side has exited — no live reference remains.
                drop(unsafe { Box::from_raw(old) });
            }
        }
        drop(guard);
        out
    }

    /// Publishes `value` unconditionally.
    pub fn store(&self, value: Arc<T>) {
        self.update(|_| (Some(Some(value)), ()));
    }
}

impl<T> Drop for SnapCell<T> {
    fn drop(&mut self) {
        let p = self.ptr.load(Ordering::SeqCst);
        if !p.is_null() {
            // SAFETY: `&mut self` proves no reader or writer is live;
            // the pointer came from `Box::into_raw`.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapCell").field("value", &self.load()).finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::thread;

    #[test]
    fn empty_cell_loads_none_and_store_publishes() {
        let cell: SnapCell<u64> = SnapCell::new();
        assert_eq!(cell.load(), None);
        cell.store(Arc::new(7));
        assert_eq!(cell.load().as_deref(), Some(&7));
        cell.store(Arc::new(8));
        assert_eq!(cell.load().as_deref(), Some(&8));
    }

    #[test]
    fn update_keep_leaves_the_snapshot_and_returns_the_result() {
        let cell = SnapCell::with_value(Arc::new(5u64));
        let seen = cell.update(|cur| (None, cur.map(|a| **a)));
        assert_eq!(seen, Some(5));
        assert_eq!(cell.load().as_deref(), Some(&5));
        // clearing publishes None
        cell.update(|_| (Some(None), ()));
        assert_eq!(cell.load(), None);
    }

    #[test]
    fn old_snapshots_are_freed_after_replacement() {
        let first = Arc::new(1u64);
        let cell = SnapCell::with_value(first.clone());
        assert_eq!(Arc::strong_count(&first), 2);
        cell.store(Arc::new(2));
        // the cell's clone of `first` was dropped by the grace period
        assert_eq!(Arc::strong_count(&first), 1);
        drop(cell);
    }

    /// Readers hammer `load` while a writer republishes; every loaded
    /// snapshot must be internally consistent (pair fields equal) —
    /// a use-after-free or torn read shows up as a mismatch or crash,
    /// and loom-free stress is the best a unit test can do here.
    #[test]
    fn concurrent_readers_never_observe_a_freed_or_torn_snapshot() {
        const WRITES: u64 = 2_000;
        let cell = Arc::new(SnapCell::with_value(Arc::new((0u64, 0u64))));
        let loads = Arc::new(AtomicU64::new(0));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let loads = Arc::clone(&loads);
            readers.push(thread::spawn(move || {
                loop {
                    let snap = cell.load().expect("never cleared in this test");
                    assert_eq!(snap.0, snap.1, "torn or stale-freed snapshot");
                    loads.fetch_add(1, Ordering::Relaxed);
                    if snap.0 == WRITES {
                        return;
                    }
                }
            }));
        }
        for i in 1..=WRITES {
            cell.store(Arc::new((i, i)));
        }
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert!(loads.load(Ordering::Relaxed) >= 4);
    }
}
