//! Readiness-driven serving engine: one epoll loop, many connections.
//!
//! The loop thread owns every socket. Connections live in a slab
//! (`Vec<Option<Conn>>` plus a free list); the slab index is the epoll
//! token. Each readiness wake drains *all* complete frames buffered on
//! the connection ([`crate::protocol::FrameDecoder`]) and answers them
//! in request order — that is the pipelining path: a client that
//! writes N frames back-to-back costs one wake, not N round trips.
//!
//! Work placement:
//!
//! * requests servable from a **fresh published snapshot** (`Ping`,
//!   `List`, and `Route`/`Broadcast`/`Stats`/`Construct` when
//!   [`crate::store::Store::is_fresh`] says the cached bundle matches
//!   the live epoch) are handled inline on the loop thread — the
//!   store's lock-free fast path makes them a few atomic loads;
//! * everything else (mutations, cache misses that rebuild, exports)
//!   is offloaded to a small **executor pool** over per-executor
//!   channels. At most one request per connection is in flight at a
//!   time, so responses stay in request order; frames queued behind an
//!   offloaded request wait in the decoder. Executors push completions
//!   into a shared vector and nudge the loop awake through the
//!   [`crate::sys::Waker`] eventfd — the completion mutex is dropped
//!   *before* the wake, so no lock is ever held across a syscall.
//!
//! Flow control:
//!
//! * a connection whose unflushed response backlog exceeds
//!   [`MAX_OUT_BACKLOG`] stops being read until the peer drains it
//!   (write backpressure — a slow reader cannot balloon the server);
//! * a connection stalled **mid-frame** with no forward progress is
//!   dropped after roughly two sweep ticks, so a slow-loris peer costs
//!   a slab slot for ~2×`io_timeout`, never a thread;
//! * silent idle connections are reaped after `idle_ticks` sweeps,
//!   matching the worker-pool engine's idle policy.
//!
//! Both engines answer through [`crate::server::handle`], so replaying
//! a request log through either produces byte-identical responses; the
//! loop's extra freshness peek ([`crate::store::Store::is_fresh`])
//! deliberately touches no counters.

#![cfg_attr(
    not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))),
    allow(dead_code)
)]

use crate::protocol::{write_frame, FrameDecoder, Request, Response};
use crate::server::{handle, wire_error_response, Shared};
use crate::store::{ServiceCounters, Store};
use crate::sys::{Event, Poller, Waker};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Epoll token for the listening socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Epoll token for the executor-completion waker eventfd.
const WAKER_TOKEN: u64 = u64::MAX - 1;
/// Unflushed response bytes above which a connection stops being read
/// until the peer drains its socket (write backpressure).
const MAX_OUT_BACKLOG: usize = 1 << 20;
/// Undecoded request bytes buffered while a request is already in
/// flight on the executors; above this the loop stops reading the
/// connection (a pipelining client cannot balloon the decoder).
const MAX_DECODER_BACKLOG: usize = 256 * 1024;

/// A request offloaded from the loop to an executor.
pub(crate) struct Job {
    slot: usize,
    gen: u64,
    request: Request,
}

/// An executor's finished response, routed back by (slot, gen).
pub(crate) struct Completion {
    slot: usize,
    gen: u64,
    response: Response,
}

/// One connection's state in the slab.
struct Conn {
    stream: TcpStream,
    fd: i32,
    /// Guards against a stale completion landing in a recycled slot.
    gen: u64,
    decoder: FrameDecoder,
    /// Encoded response frames not yet fully written, in request order.
    out: Vec<u8>,
    out_pos: usize,
    /// Whether a request from this connection is on the executors.
    in_flight: bool,
    /// Close once `out` drains (shutdown response, protocol error).
    close_after_flush: bool,
    /// Peer half-closed; serve what is buffered, then reap.
    eof: bool,
    /// Sweep ticks since the last forward progress.
    ticks: u32,
    armed_read: bool,
    armed_write: bool,
}

enum ReadOutcome {
    /// Kernel buffer drained (or backpressure paused the read).
    More,
    /// Clean EOF.
    Eof,
    /// Unrecoverable socket error; reap now.
    Dead,
}

/// Starts the event-loop engine: the loop thread plus the executor
/// pool. Returns their join handles (loop first).
pub(crate) fn spawn(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> io::Result<(JoinHandle<()>, Vec<JoinHandle<()>>)> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let waker = Arc::new(Waker::new()?);
    poller.add(listener_fd(&listener), LISTENER_TOKEN, true, false)?;
    poller.add(waker.fd(), WAKER_TOKEN, true, false)?;

    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
    let mut senders = Vec::new();
    let mut executors = Vec::new();
    for i in 0..shared.config.workers.max(1) {
        let (tx, rx) = mpsc::channel::<Job>();
        senders.push(tx);
        let shared = Arc::clone(&shared);
        let completions = Arc::clone(&completions);
        let waker = Arc::clone(&waker);
        executors.push(
            std::thread::Builder::new()
                .name(format!("wcds-exec-{i}"))
                .spawn(move || executor_loop(&rx, &shared.store, &completions, &waker))?,
        );
    }

    let loop_thread = std::thread::Builder::new().name("wcds-eventloop".into()).spawn(
        move || {
            event_loop(&listener, &poller, &waker, &senders, &completions, &shared);
            // senders drop here: executors drain their queues and exit
        },
    )?;
    Ok((loop_thread, executors))
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
fn listener_fd(listener: &TcpListener) -> i32 {
    use std::os::fd::AsRawFd;
    listener.as_raw_fd()
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
fn stream_fd(stream: &TcpStream) -> i32 {
    use std::os::fd::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
fn listener_fd(_listener: &TcpListener) -> i32 {
    -1 // unreachable in practice: Server::bind gates on sys::supported()
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
fn stream_fd(_stream: &TcpStream) -> i32 {
    -1
}

/// The readiness loop. Returns when shutdown is requested (by a wire
/// `Shutdown` frame or [`Shared::trigger_shutdown`]); the loopback
/// nudge from the trigger creates listener readiness, so a parked
/// `epoll_wait` wakes promptly, and the sweep tick bounds the worst
/// case either way.
pub(crate) fn event_loop(
    listener: &TcpListener,
    poller: &Poller,
    waker: &Waker,
    senders: &[mpsc::Sender<Job>],
    completions: &Mutex<Vec<Completion>>,
    shared: &Shared,
) {
    let counters = Arc::clone(shared.store.service());
    let tick = shared.config.io_timeout;
    let tick_ms = i32::try_from(tick.as_millis()).unwrap_or(100).max(1);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut next_gen: u64 = 0;
    let mut rr: usize = 0;
    let mut last_sweep = Instant::now();

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // best-effort final flush so in-flight responses (notably
            // the ShuttingDown ack, already queued and almost always
            // already written) reach their peers
            for entry in conns.iter_mut() {
                if let Some(c) = entry.as_mut() {
                    let _ = flush_conn(c, &counters);
                }
            }
            return;
        }

        events.clear();
        counters.syscalls.fetch_add(1, Ordering::Relaxed);
        if poller.wait(&mut events, tick_ms).is_err() {
            return; // the epoll fd itself failed: unrecoverable
        }

        for ev in events.iter().copied() {
            match ev.token {
                LISTENER_TOKEN => {
                    accept_all(listener, poller, &mut conns, &mut free, &mut next_gen, &counters);
                }
                WAKER_TOKEN => {
                    counters.syscalls.fetch_add(1, Ordering::Relaxed);
                    waker.drain();
                }
                _ => {
                    handle_conn_event(
                        ev, &mut conns, &mut free, poller, shared, senders, &mut rr, &counters,
                    );
                }
            }
        }

        // executor completions are checked every iteration, not only on
        // waker events: a wake posted while we were already awake
        // coalesces into readiness we may have just drained
        let done: Vec<Completion> = {
            let mut guard = completions.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut guard)
        };
        for completion in done {
            apply_completion(
                completion, &mut conns, &mut free, poller, shared, senders, &mut rr, &counters,
            );
        }

        if last_sweep.elapsed() >= tick {
            last_sweep = Instant::now();
            sweep(&mut conns, &mut free, poller, shared.config.idle_ticks);
        }
    }
}

/// Executor thread: pull offloaded requests, answer through the shared
/// dispatcher, post the completion, nudge the loop. The completion
/// guard is dropped before the wake so no lock is held across the
/// eventfd write.
pub(crate) fn executor_loop(
    rx: &mpsc::Receiver<Job>,
    store: &Store,
    completions: &Mutex<Vec<Completion>>,
    waker: &Waker,
) {
    while let Ok(job) = rx.recv() {
        let response = handle(store, &job.request);
        let mut guard = completions.lock().unwrap_or_else(PoisonError::into_inner);
        guard.push(Completion { slot: job.slot, gen: job.gen, response });
        drop(guard);
        waker.wake();
    }
    // channel disconnected: the loop thread exited and dropped our
    // sender — nothing left to serve
}

fn accept_all(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    next_gen: &mut u64,
    counters: &ServiceCounters,
) {
    loop {
        counters.syscalls.fetch_add(1, Ordering::Relaxed);
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue; // misconfigurable socket: drop it
                }
                let fd = stream_fd(&stream);
                *next_gen += 1;
                let conn = Conn {
                    stream,
                    fd,
                    gen: *next_gen,
                    decoder: FrameDecoder::new(),
                    out: Vec::new(),
                    out_pos: 0,
                    in_flight: false,
                    close_after_flush: false,
                    eof: false,
                    ticks: 0,
                    armed_read: true,
                    armed_write: false,
                };
                let slot = install(conns, free, conn);
                counters.syscalls.fetch_add(1, Ordering::Relaxed);
                if poller.add(fd, slot_token(slot), true, false).is_err() {
                    // registration failed: release the slot; the stream
                    // closes on drop
                    if let Some(entry) = conns.get_mut(slot) {
                        *entry = None;
                    }
                    free.push(slot);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break, // listener failure: the loop keeps serving
        }
    }
}

fn install(conns: &mut Vec<Option<Conn>>, free: &mut Vec<usize>, conn: Conn) -> usize {
    match free.pop() {
        Some(slot) => {
            if let Some(entry) = conns.get_mut(slot) {
                *entry = Some(conn);
            }
            slot
        }
        None => {
            conns.push(Some(conn));
            conns.len() - 1
        }
    }
}

fn slot_token(slot: usize) -> u64 {
    slot as u64
}

#[allow(clippy::too_many_arguments)]
fn handle_conn_event(
    ev: Event,
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    poller: &Poller,
    shared: &Shared,
    senders: &[mpsc::Sender<Job>],
    rr: &mut usize,
    counters: &ServiceCounters,
) {
    let Ok(slot) = usize::try_from(ev.token) else {
        return;
    };
    let mut keep = true;
    {
        let Some(c) = conns.get_mut(slot).and_then(Option::as_mut) else {
            return; // reaped earlier (e.g. by a sweep) — stale event
        };
        if ev.writable {
            // the peer drained its socket: writes can make progress
            // again, so the stall clock restarts
            c.ticks = 0;
        }
        if ev.readable || ev.closed {
            match do_read(c, counters) {
                ReadOutcome::More => {}
                ReadOutcome::Eof => c.eof = true,
                ReadOutcome::Dead => keep = false,
            }
        }
        if keep {
            keep = drain_frames(c, slot, shared, senders, rr, counters);
        }
        if keep {
            keep = settle(c, slot, poller, counters);
        }
    }
    if !keep {
        reap(conns, free, poller, slot);
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_completion(
    completion: Completion,
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    poller: &Poller,
    shared: &Shared,
    senders: &[mpsc::Sender<Job>],
    rr: &mut usize,
    counters: &ServiceCounters,
) {
    let slot = completion.slot;
    let mut keep = true;
    {
        let Some(c) = conns.get_mut(slot).and_then(Option::as_mut) else {
            return; // connection died while its request was in flight
        };
        if c.gen != completion.gen {
            return; // slot recycled: the completion's peer is gone
        }
        c.in_flight = false;
        c.ticks = 0;
        if push_response(c, &completion.response).is_err() {
            keep = false;
        }
        if keep {
            // the executor slot is free again: drain any frames that
            // queued up behind the offloaded request
            keep = drain_frames(c, slot, shared, senders, rr, counters);
        }
        if keep {
            keep = settle(c, slot, poller, counters);
        }
    }
    if !keep {
        reap(conns, free, poller, slot);
    }
}

/// Reads until the kernel buffer drains, EOF, or backpressure pauses
/// the connection.
fn do_read(c: &mut Conn, counters: &ServiceCounters) -> ReadOutcome {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if c.decoder.buffered() > MAX_DECODER_BACKLOG
            || c.out.len().saturating_sub(c.out_pos) > MAX_OUT_BACKLOG
        {
            return ReadOutcome::More; // leave the rest in the kernel
        }
        counters.syscalls.fetch_add(1, Ordering::Relaxed);
        match (&c.stream).read(&mut buf) {
            Ok(0) => return ReadOutcome::Eof,
            Ok(n) => {
                c.ticks = 0;
                c.decoder.feed(buf.get(..n).unwrap_or(&[]));
                if n < buf.len() {
                    // short read: the kernel buffer is (almost surely)
                    // empty, and level-triggered epoll re-arms if not
                    return ReadOutcome::More;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::More,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Dead,
        }
    }
}

/// Decodes and answers every complete frame buffered on `c`, stopping
/// when a request goes in flight on the executors (responses must stay
/// in request order). Returns `false` when the connection is beyond
/// saving (framing violation, oversized response).
fn drain_frames(
    c: &mut Conn,
    slot: usize,
    shared: &Shared,
    senders: &[mpsc::Sender<Job>],
    rr: &mut usize,
    counters: &ServiceCounters,
) -> bool {
    let mut depth: u64 = 0;
    while !c.in_flight && !c.close_after_flush {
        let frame = match c.decoder.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            // oversized or garbage length prefix: hard close with no
            // response, exactly like the blocking engine's read_frame
            Err(_) => return false,
        };
        depth += 1;
        shared.served.fetch_add(1, Ordering::Relaxed);
        match Request::decode(&frame) {
            Ok(Request::Shutdown) => {
                shared.trigger_shutdown();
                if push_response(c, &Response::ShuttingDown).is_err() {
                    return false;
                }
                c.close_after_flush = true;
            }
            Ok(req) => {
                if let Some(response) = inline_response(&shared.store, &req) {
                    if push_response(c, &response).is_err() {
                        return false;
                    }
                } else if !offload(c, slot, req, shared, senders, rr) {
                    return false;
                }
            }
            Err(e) => {
                // a frame that decodes to no request poisons the
                // stream: answer with the typed error, then close
                if push_response(c, &wire_error_response(&e)).is_err() {
                    return false;
                }
                c.close_after_flush = true;
            }
        }
    }
    if depth > 0 {
        counters.pipeline_depth_max.fetch_max(depth, Ordering::Relaxed);
    }
    true
}

/// Requests the loop may answer inline: always-cheap ones, plus any
/// read whose topology has a fresh published snapshot (the store's
/// zero-lock path). The freshness peek touches no counters, so both
/// engines observe identical store statistics on a replayed log.
fn inline_response(store: &Store, req: &Request) -> Option<Response> {
    let fast = match req {
        Request::Ping | Request::List => true,
        Request::Construct { name }
        | Request::Stats { name }
        | Request::Route { name, .. }
        | Request::Broadcast { name, .. } => store.is_fresh(name),
        _ => false,
    };
    fast.then(|| handle(store, req))
}

/// Hands `req` to an executor (round-robin). Falls back to answering
/// inline if the pool is gone (an executor thread panicked and the
/// channel disconnected) — slower, but the peer still gets served.
fn offload(
    c: &mut Conn,
    slot: usize,
    req: Request,
    shared: &Shared,
    senders: &[mpsc::Sender<Job>],
    rr: &mut usize,
) -> bool {
    *rr = rr.wrapping_add(1);
    let job = Job { slot, gen: c.gen, request: req };
    let sent = match senders.get(*rr % senders.len().max(1)) {
        Some(tx) => tx.send(job).map_err(|mpsc::SendError(job)| job),
        None => Err(job),
    };
    match sent {
        Ok(()) => {
            c.in_flight = true;
            true
        }
        Err(job) => {
            let response = handle(&shared.store, &job.request);
            push_response(c, &response).is_ok()
        }
    }
}

/// Appends one encoded response frame to the connection's write queue.
fn push_response(c: &mut Conn, response: &Response) -> Result<(), ()> {
    write_frame(&mut c.out, &response.encode()).map_err(|_| ())
}

/// Writes as much of the queue as the socket accepts right now.
/// `Ok(true)` means fully flushed.
fn flush_conn(c: &mut Conn, counters: &ServiceCounters) -> Result<bool, ()> {
    while c.out_pos < c.out.len() {
        let chunk = c.out.get(c.out_pos..).unwrap_or(&[]);
        counters.syscalls.fetch_add(1, Ordering::Relaxed);
        match (&c.stream).write(chunk) {
            Ok(0) => return Err(()),
            Ok(n) => {
                c.out_pos += n;
                c.ticks = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
    if c.out_pos >= c.out.len() {
        c.out.clear();
        c.out_pos = 0;
        return Ok(true);
    }
    if c.out_pos > MAX_DECODER_BACKLOG {
        // compact a large flushed prefix so a long pipelined burst
        // doesn't pin its whole history in memory
        c.out.drain(..c.out_pos);
        c.out_pos = 0;
    }
    Ok(false)
}

/// Flushes, decides whether the connection survives, and re-arms its
/// epoll interest. Returns `false` to reap.
fn settle(c: &mut Conn, slot: usize, poller: &Poller, counters: &ServiceCounters) -> bool {
    let Ok(flushed) = flush_conn(c, counters) else {
        return false;
    };
    if flushed && !c.in_flight && (c.close_after_flush || c.eof) {
        // everything owed has been written: close. On eof, leftover
        // decoder bytes can only be a truncated trailing frame.
        return false;
    }
    let backlog = c.out.len().saturating_sub(c.out_pos);
    // a connection waiting on its offloaded request may buffer only a
    // bounded run-ahead of undecoded frames before reads pause
    let run_ahead_full = c.in_flight && c.decoder.buffered() > MAX_DECODER_BACKLOG;
    let want_read =
        !c.eof && !c.close_after_flush && backlog <= MAX_OUT_BACKLOG && !run_ahead_full;
    let want_write = backlog > 0;
    if want_read != c.armed_read || want_write != c.armed_write {
        counters.syscalls.fetch_add(1, Ordering::Relaxed);
        if poller.modify(c.fd, slot_token(slot), want_read, want_write).is_err() {
            return false;
        }
        c.armed_read = want_read;
        c.armed_write = want_write;
    }
    true
}

/// Ages every connection one tick; reaps mid-frame stalls fast
/// (slow-loris defence) and idle or wedged peers after `idle_ticks`.
fn sweep(
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    poller: &Poller,
    idle_ticks: u32,
) {
    let mut victims = Vec::new();
    for (slot, entry) in conns.iter_mut().enumerate() {
        if let Some(c) = entry.as_mut() {
            c.ticks = c.ticks.saturating_add(1);
            let stalled_mid_frame = !c.in_flight && c.decoder.mid_frame() && c.ticks >= 2;
            if stalled_mid_frame || c.ticks > idle_ticks {
                victims.push(slot);
            }
        }
    }
    for slot in victims {
        reap(conns, free, poller, slot);
    }
}

fn reap(conns: &mut [Option<Conn>], free: &mut Vec<usize>, poller: &Poller, slot: usize) {
    if let Some(c) = conns.get_mut(slot).and_then(Option::take) {
        let _ = poller.remove(c.fd);
        free.push(slot);
        // the TcpStream closes on drop here
    }
}
