//! Backbone-as-a-service: serve WCDS backbones over TCP.
//!
//! This crate turns the static pipeline (`wcds-core` construction,
//! `wcds-routing` backbone routing, `wcds-core::maintenance` mobility)
//! into a long-running concurrent service:
//!
//! * [`protocol`] — a versioned, length-prefixed binary wire protocol.
//!   Every message decodes totally: malformed bytes produce a typed
//!   [`protocol::WireError`], never a panic, and length prefixes are
//!   validated before allocation.
//! * [`store`] — a sharded, epoch-cached topology store. Named
//!   topologies live behind striped `RwLock`s; each carries an epoch
//!   counter bumped by every mutation and a lazily built artifact
//!   bundle (Algorithm II WCDS + spanner + routing tables) stamped with
//!   its build epoch. Reads hit the cache while the stamp matches;
//!   mutations invalidate by bumping the epoch.
//! * [`server`] — a multi-threaded TCP front end: one acceptor plus a
//!   fixed worker pool, per-connection framing, socket timeouts so a
//!   stalled client cannot wedge a worker, and graceful shutdown that
//!   joins every thread.
//! * [`client`] — a blocking client with one typed method per request.
//! * [`rebuild`] — the store's epoch / double-checked-rebuild decision
//!   logic behind a shim trait, so the `wcds-analyze` race checker can
//!   exhaustively model-check the exact code path the store runs.
//!
//! The crate is dependency-free beyond the workspace compute crates:
//! `std::net` + `std::thread` only (DESIGN.md §7).
//!
//! # Quick start
//!
//! ```
//! use wcds_service::{Client, RouteOutcome, Server, ServerConfig, Store};
//!
//! let handle = Server::bind("127.0.0.1:0", Store::new(), ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! client.create("demo", "nodes 3\nedge 0 1\nedge 1 2\n").unwrap();
//! let RouteOutcome::Path(path) = client.route("demo", 0, 2).unwrap() else {
//!     panic!("connected topology must route");
//! };
//! assert_eq!(path.first(), Some(&0));
//! assert_eq!(path.last(), Some(&2));
//! client.shutdown_server().unwrap();
//! handle.join(); // returns once every worker thread has exited
//! ```

pub mod client;
pub mod protocol;
pub mod rebuild;
pub mod server;
pub mod store;

pub use client::{Client, ClientError};
pub use protocol::{ErrorCode, Mutation, Request, Response, TopologyStats, WireError};
pub use server::{Server, ServerConfig, ServerHandle};
pub use store::{
    BroadcastOutcome, HardenOutcome, ResilientSummary, RouteOutcome, Store, StoreError,
};
