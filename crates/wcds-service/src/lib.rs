//! Backbone-as-a-service: serve WCDS backbones over TCP.
//!
//! This crate turns the static pipeline (`wcds-core` construction,
//! `wcds-routing` backbone routing, `wcds-core::maintenance` mobility)
//! into a long-running concurrent service:
//!
//! * [`protocol`] — a versioned, length-prefixed binary wire protocol.
//!   Every message decodes totally: malformed bytes produce a typed
//!   [`protocol::WireError`], never a panic, and length prefixes are
//!   validated before allocation.
//! * [`store`] — a sharded, epoch-cached topology store. Named
//!   topologies live in lock-free copy-on-write shards; each carries
//!   an epoch counter bumped by every mutation and a lazily built
//!   artifact bundle (Algorithm II WCDS + spanner + routing tables)
//!   stamped with its build epoch and published through a lock-free
//!   [`snapshot::SnapCell`]. Reads hit the cache while the stamp
//!   matches — acquiring **zero** locks — and mutations invalidate by
//!   bumping the epoch.
//! * [`snapshot`] — the userspace-RCU snapshot cell behind the store's
//!   publication protocol (one of the crate's two audited `unsafe`
//!   islands, with the raw-syscall `sys` module).
//! * [`server`] — the TCP front end, with two engines behind one
//!   handle: the default **readiness event loop** (epoll via raw
//!   syscalls, nonblocking sockets, per-connection incremental framing,
//!   request pipelining, write backpressure) and the legacy blocking
//!   **worker pool**, kept as the byte-identical replay oracle.
//! * [`client`] — a blocking client with one typed method per request,
//!   plus a pipelined mode (send N frames, drain N responses in order).
//! * [`rebuild`] — the store's epoch / double-checked-rebuild decision
//!   logic behind a shim trait, so the `wcds-analyze` race checker can
//!   exhaustively model-check the exact code path the store runs.
//!
//! The crate is dependency-free beyond the workspace compute crates:
//! `std::net` + `std::thread` only (DESIGN.md §7).
//!
//! # Quick start
//!
//! ```
//! use wcds_service::{Client, RouteOutcome, Server, ServerConfig, Store};
//!
//! let handle = Server::bind("127.0.0.1:0", Store::new(), ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! client.create("demo", "nodes 3\nedge 0 1\nedge 1 2\n").unwrap();
//! let RouteOutcome::Path(path) = client.route("demo", 0, 2).unwrap() else {
//!     panic!("connected topology must route");
//! };
//! assert_eq!(path.first(), Some(&0));
//! assert_eq!(path.last(), Some(&2));
//! client.shutdown_server().unwrap();
//! handle.join(); // returns once every worker thread has exited
//! ```

pub mod client;
mod eventloop;
pub mod protocol;
// Audited unsafe island: dependency-free epoll/eventfd bindings need
// raw `asm!` syscalls (DESIGN.md §8 — the service crate links no FFI).
// Confined to `sys`; everything above it is safe code.
#[allow(unsafe_code)]
mod sys;
pub mod rebuild;
pub mod server;
// Audited unsafe island: the userspace-RCU snapshot cell needs raw
// pointer loads/frees for its lock-free reader path. `unsafe` is
// permitted only here and in `sys`; every block carries a SAFETY
// comment citing the grace-period invariant.
#[allow(unsafe_code)]
pub mod snapshot;
pub mod store;

pub use client::{Client, ClientError};
pub use protocol::{ErrorCode, Mutation, Request, Response, TopologyStats, WireError};
pub use server::{Engine, Server, ServerConfig, ServerHandle};
pub use store::{
    BroadcastOutcome, HardenOutcome, ResilientSummary, RouteOutcome, Store, StoreError,
};
