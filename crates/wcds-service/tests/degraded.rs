//! Degraded-mode serving under dominator kill storms (resilience
//! satellite): dominators die through the ordinary mutation API while
//! routes keep being served; after healing, the installed artifacts are
//! byte-identical to a from-scratch resilient build on the surviving
//! graph. Runs identically with and without `--features rayon`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use wcds_core::resilient::{ResilientBackbone, ResilientParams};
use wcds_geom::deploy;
use wcds_graph::{io, Graph, NodeId, UnitDiskGraph};
use wcds_rng::{ChaCha12Rng, Rng};
use wcds_routing::BackboneRouter;
use wcds_service::store::UDG_RADIUS;
use wcds_service::{Mutation, RouteOutcome, Store};

fn payload(n: usize, side: f64, seed: u64) -> String {
    let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed), UDG_RADIUS);
    io::to_text(udg.graph(), Some(udg.points()))
}

/// Moves `node` far outside everyone's radio range — the mutation-API
/// equivalent of a crash. Distinct parking spots keep dead nodes
/// isolated from each other too.
fn kill(store: &Store, node: NodeId, slot: usize) {
    let x = 1_000.0 + 10.0 * slot as f64;
    store.mutate("net", &Mutation::Move { node, x, y: 1_000.0 }).unwrap();
}

/// A live MIS dominator of the current bundle. Killed nodes are
/// isolated, which makes each its own MIS dominator in any rebuilt
/// bundle — the `killed` filter keeps the storm aimed at the backbone.
fn pick_victim(store: &Store, killed: &HashSet<NodeId>) -> Option<NodeId> {
    let (bundle, _) = store.bundle("net").unwrap();
    bundle.wcds.mis_dominators().iter().copied().find(|d| !killed.contains(d))
}

/// After healing, the cached artifacts must be byte-identical to a
/// from-scratch (2, 2) construction on the exported survivor graph.
fn assert_healed_matches_oracle(store: &Store) -> Graph {
    while store.heal("net").unwrap() {}
    let (healed, hit) = store.bundle("net").unwrap();
    assert!(hit, "healed bundle must be fresh");
    let doc = io::from_text(&store.export("net").unwrap()).unwrap();
    let g = doc.graph;
    let oracle = ResilientBackbone::construct(&g, ResilientParams::new(2, 2).unwrap());
    assert_eq!(healed.wcds, oracle.merged_wcds(), "healed WCDS diverged from oracle");
    assert_eq!(
        healed.router,
        BackboneRouter::build(&g, &oracle.merged_wcds()),
        "healed router diverged from oracle"
    );
    let summary = healed.resilient.expect("hardened bundle carries a resilient summary");
    assert_eq!(summary.achieved_k, oracle.achieved_connectivity());
    g
}

/// Serial storm: kill five dominators one at a time, checking after
/// every kill that each served route is a genuine path of the *current*
/// graph (degraded or fresh), then heal and compare to the oracle.
#[test]
fn serial_dominator_kill_storm_serves_valid_routes_and_heals() {
    const N: usize = 150;
    let store = Store::new();
    store.create("net", &payload(N, 5.0, 41)).unwrap();
    store.harden("net", 2, 2).unwrap();

    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let mut killed: HashSet<NodeId> = HashSet::new();
    let mut attempted = 0u64;
    let mut served = 0u64;
    for round in 0..5 {
        let dead = pick_victim(&store, &killed).expect("a live dominator remains");
        kill(&store, dead, round);
        killed.insert(dead);

        // the graph is stable between kills: hop validity is exact
        let doc = io::from_text(&store.export("net").unwrap()).unwrap();
        let g = doc.graph;
        for _ in 0..9 {
            let s = rng.gen_range(0..N);
            let t = rng.gen_range(0..N);
            if killed.contains(&s) || killed.contains(&t) {
                continue;
            }
            attempted += 1;
            match store.route("net", s, t).unwrap() {
                RouteOutcome::Path(path) => {
                    served += 1;
                    assert_eq!(path.first(), Some(&s));
                    assert_eq!(path.last(), Some(&t));
                    for w in path.windows(2) {
                        assert!(
                            g.has_edge(w[0], w[1]),
                            "round {round}: hop {}→{} is not a live edge",
                            w[0],
                            w[1]
                        );
                    }
                }
                RouteOutcome::Degraded { unreachable } => {
                    // at minimum the isolated dead nodes are out of reach
                    assert!(unreachable >= killed.len() as u32);
                }
            }
        }
    }
    assert!(attempted >= 30, "storm sampled only {attempted} pairs");
    assert!(
        served * 2 >= attempted,
        "(2,2) backbone served only {served}/{attempted} routes through the storm"
    );

    assert_healed_matches_oracle(&store);
    let stats = store.stats("net").unwrap();
    assert_eq!(stats.routes_ok + stats.routes_degraded + stats.routes_unreachable, attempted);
}

/// Concurrent storm: reader threads hammer `route` while a killer
/// thread drops dominators through the mutation API mid-flight. No
/// route errors, every served path is endpoint-correct, the outcome
/// counters account for every query, and the healed artifacts match
/// the from-scratch oracle.
#[test]
fn concurrent_dominator_kills_mid_stress_heal_to_oracle() {
    const N: usize = 120;
    const READERS: usize = 6;
    const OPS: usize = 50;
    const KILLS: usize = 4;

    let store = Store::new();
    store.create("net", &payload(N, 4.5, 77)).unwrap();
    store.harden("net", 2, 2).unwrap();

    let failed = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let store_ref = &store;
        let failed_ref = &failed;
        scope.spawn(move || {
            let mut killed: HashSet<NodeId> = HashSet::new();
            for round in 0..KILLS {
                match pick_victim(store_ref, &killed) {
                    Some(dead) => {
                        kill(store_ref, dead, round);
                        killed.insert(dead);
                    }
                    None => break,
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        for t in 0..READERS {
            scope.spawn(move || {
                let mut rng = ChaCha12Rng::seed_from_u64(900 + t as u64);
                for _ in 0..OPS {
                    let s = rng.gen_range(0..N);
                    let d = rng.gen_range(0..N);
                    match store_ref.route("net", s, d) {
                        Ok(RouteOutcome::Path(path)) => {
                            assert_eq!(path.first(), Some(&s));
                            assert_eq!(path.last(), Some(&d));
                        }
                        Ok(RouteOutcome::Degraded { .. }) => {}
                        Err(e) => {
                            eprintln!("route({s}, {d}) failed: {e}");
                            failed_ref.store(true, Ordering::SeqCst);
                            return;
                        }
                    }
                }
            });
        }
    });
    assert!(!failed.load(Ordering::SeqCst), "a reader hit an unexpected route error");

    let g = assert_healed_matches_oracle(&store);
    assert!(g.node_count() == N, "moves never change the node count");
    let stats = store.stats("net").unwrap();
    assert_eq!(
        stats.routes_ok + stats.routes_degraded + stats.routes_unreachable,
        (READERS * OPS) as u64,
        "every route query lands in exactly one availability counter"
    );
}
