//! End-to-end tests over real TCP: a full scripted session, and the
//! concurrency stress satellite (≥ 8 client threads, mixed reads and
//! mutations, serial-replay equivalence).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wcds_core::maintenance::MaintainedWcds;
use wcds_geom::{deploy, Point};
use wcds_graph::{io, UnitDiskGraph};
use wcds_rng::{ChaCha12Rng, Rng};
use wcds_service::store::UDG_RADIUS;
use wcds_service::{
    BroadcastOutcome, Client, ClientError, ErrorCode, Mutation, RouteOutcome, Server,
    ServerConfig, Store,
};

fn unwrap_path(outcome: RouteOutcome) -> Vec<usize> {
    match outcome {
        RouteOutcome::Path(p) => p,
        RouteOutcome::Degraded { unreachable } => {
            panic!("expected a route, got Degraded {{ unreachable: {unreachable} }}")
        }
    }
}

fn payload(n: usize, side: f64, seed: u64) -> String {
    let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed), UDG_RADIUS);
    io::to_text(udg.graph(), Some(udg.points()))
}

/// One client walks the whole API over a real socket: ingest, query,
/// mutate, re-query, administer, shut down. The post-join assertions
/// are the graceful-shutdown acceptance check — `join()` returning
/// proves no worker thread leaked, and a rebind proves the listener
/// closed.
#[test]
fn tcp_session_end_to_end() {
    let handle = Server::bind("127.0.0.1:0", Store::new(), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut c = Client::connect_with_timeout(addr, Duration::from_secs(10)).unwrap();

    c.ping().unwrap();
    let initial = payload(70, 4.0, 21);
    let (n, m, mobile) = c.create("net", &initial).unwrap();
    assert_eq!(n, 70);
    assert!(m > 0);
    assert!(mobile);
    assert!(matches!(
        c.create("net", &initial),
        Err(ClientError::Server { code: ErrorCode::AlreadyExists, .. })
    ));

    let (mis, _bridges, spanner_edges, epoch) = c.construct("net").unwrap();
    assert!(mis > 0);
    assert!(spanner_edges > 0);
    assert_eq!(epoch, 0);

    let path = unwrap_path(c.route("net", 0, 69).unwrap());
    assert_eq!(path.first(), Some(&0));
    assert_eq!(path.last(), Some(&69));
    let BroadcastOutcome::Done { forwarders, informed } = c.broadcast("net", 0).unwrap() else {
        panic!("connected deployment must broadcast");
    };
    assert!(forwarders > 0);
    assert_eq!(informed, 70, "connected deployment: broadcast reaches everyone");

    let stats = c.stats("net").unwrap();
    assert_eq!(stats.nodes, 70);
    assert_eq!(stats.epoch, 0);
    assert!(stats.cached, "route/broadcast left a fresh bundle behind");

    // mutate, then check the next query observes the new epoch
    let (epoch, _, _) = c.mutate("net", Mutation::Join { x: 2.0, y: 2.0 }).unwrap();
    assert_eq!(epoch, 1);
    let stats = c.stats("net").unwrap();
    assert_eq!(stats.nodes, 71);
    assert_eq!(stats.epoch, 1);
    let path = unwrap_path(c.route("net", 0, 70).unwrap());
    assert_eq!(path.last(), Some(&70), "post-mutation route reaches the joined node");

    // harden over the wire, then check the stats surface the target
    let out = c.harden("net", 2, 2).unwrap();
    assert_eq!((out.k, out.m), (2, 2));
    assert!(out.achieved_k >= 1);
    let stats = c.stats("net").unwrap();
    assert_eq!((stats.hardened_k, stats.hardened_m), (2, 2));
    assert_eq!(stats.achieved_k, out.achieved_k);
    assert!(matches!(
        c.harden("net", 0, 1),
        Err(ClientError::Server { code: ErrorCode::OutOfRange, .. })
    ));

    // export equals a serial replay of the one-mutation log
    let doc = io::from_text(&initial).unwrap();
    let mut replay = MaintainedWcds::new(doc.points.unwrap(), UDG_RADIUS);
    replay.apply_join(Point::new(2.0, 2.0));
    assert_eq!(c.export("net").unwrap(), io::to_text(replay.graph(), Some(replay.points())));

    assert_eq!(c.list().unwrap(), vec!["net".to_string()]);
    c.drop_topology("net").unwrap();
    assert!(matches!(
        c.route("net", 0, 1),
        Err(ClientError::Server { code: ErrorCode::NotFound, .. })
    ));

    assert!(handle.requests_served() > 10);
    c.shutdown_server().unwrap();
    handle.join(); // returns ⇒ acceptor and every worker exited
    assert!(
        std::net::TcpListener::bind(addr).is_ok(),
        "listener not closed after graceful shutdown"
    );
}

/// A second connection opened mid-session sees the same store, and a
/// malformed frame gets a typed error without killing the server.
#[test]
fn tcp_concurrent_clients_share_state_and_survive_garbage() {
    let handle = Server::bind("127.0.0.1:0", Store::new(), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    let mut a = Client::connect(addr).unwrap();
    a.create("shared", "nodes 3\nedge 0 1\nedge 1 2\n").unwrap();

    let mut b = Client::connect(addr).unwrap();
    assert_eq!(unwrap_path(b.route("shared", 0, 2).unwrap()), vec![0, 1, 2]);

    // hand-rolled garbage frame: valid length prefix, junk body — the
    // server answers with a typed error and closes that connection only
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        raw.write_all(&3u32.to_le_bytes()).unwrap();
        raw.write_all(&[0xFF, 0xFF, 0xFF]).unwrap();
        let mut buf = Vec::new();
        raw.read_to_end(&mut buf).unwrap();
        assert!(!buf.is_empty(), "expected an error frame before close");
    }

    // both real clients still work afterwards
    a.ping().unwrap();
    assert_eq!(unwrap_path(b.route("shared", 0, 2).unwrap()), vec![0, 1, 2]);
    handle.shutdown();
}

/// Stress satellite: ≥ 8 client threads hammer one mobile topology with
/// a mixed read/mutation workload over TCP. Afterwards:
///
/// * no deadlock (the test finishes) and no poisoned lock (the server
///   keeps answering);
/// * the final exported state equals a **serial replay** of the applied
///   mutation log. Mutations serialize per topology, so the epoch each
///   `Mutated` response carries is that mutation's position in the
///   global order — collecting (epoch, mutation) pairs across threads
///   and sorting by epoch reconstructs the exact applied sequence.
#[test]
fn stress_mixed_readers_and_mutators_match_serial_replay() {
    const CLIENTS: usize = 8;
    const OPS_PER_CLIENT: usize = 40;

    // workers ≥ client threads, so no client waits on a busy pool
    let config = ServerConfig { workers: CLIENTS + 2, ..ServerConfig::default() };
    let handle = Server::bind("127.0.0.1:0", Store::new(), config).unwrap();
    let addr = handle.local_addr();

    let initial = payload(60, 4.0, 33);
    Client::connect(addr).unwrap().create("net", &initial).unwrap();

    let log: Arc<Mutex<Vec<(u64, Mutation)>>> = Arc::new(Mutex::new(Vec::new()));
    let failed = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let log = Arc::clone(&log);
            let failed = Arc::clone(&failed);
            let initial_n = 60usize;
            scope.spawn(move || {
                let mut rng = ChaCha12Rng::seed_from_u64(1000 + t as u64);
                let mut c = Client::connect_with_timeout(addr, Duration::from_secs(30))
                    .expect("stress client connect");
                for _ in 0..OPS_PER_CLIENT {
                    // half the threads mutate 1-in-4 ops; the rest only read
                    let mutator = t % 2 == 0;
                    if mutator && rng.gen_range(0..4usize) == 0 {
                        let mutation = match rng.gen_range(0..3usize) {
                            0 => Mutation::Join {
                                x: rng.gen::<f64>() * 4.0,
                                y: rng.gen::<f64>() * 4.0,
                            },
                            // keep indices small so most leaves/moves
                            // stay in range as concurrent leaves shrink n
                            1 => Mutation::Leave { node: rng.gen_range(0..20usize) },
                            _ => Mutation::Move {
                                node: rng.gen_range(0..20usize),
                                x: rng.gen::<f64>() * 4.0,
                                y: rng.gen::<f64>() * 4.0,
                            },
                        };
                        match c.mutate("net", mutation.clone()) {
                            Ok((epoch, _, _)) => {
                                log.lock().unwrap().push((epoch, mutation));
                            }
                            Err(ClientError::Server {
                                code: ErrorCode::OutOfRange, ..
                            }) => {} // racing leave shrank n first; not applied
                            Err(e) => {
                                eprintln!("mutate failed: {e}");
                                failed.store(true, Ordering::SeqCst);
                                return;
                            }
                        }
                    } else {
                        let s = rng.gen_range(0..initial_n);
                        let d = rng.gen_range(0..initial_n);
                        match rng.gen_range(0..3usize) {
                            0 => match c.route("net", s, d) {
                                Ok(RouteOutcome::Path(path)) => {
                                    assert_eq!(path.first(), Some(&s));
                                    assert_eq!(path.last(), Some(&d));
                                }
                                // partitioned mid-flight: typed outcome
                                Ok(RouteOutcome::Degraded { .. }) => {}
                                Err(ClientError::Server {
                                    code: ErrorCode::OutOfRange, ..
                                }) => {} // a racing leave shrank n first
                                Err(e) => {
                                    eprintln!("route failed: {e}");
                                    failed.store(true, Ordering::SeqCst);
                                    return;
                                }
                            },
                            1 => {
                                let stats = c.stats("net").expect("stats");
                                assert!(stats.mobile);
                                assert!(stats.nodes > 0);
                            }
                            _ => {
                                assert!(!c.export("net").expect("export").is_empty());
                            }
                        }
                    }
                }
            });
        }
    });
    assert!(!failed.load(Ordering::SeqCst), "a stress client hit an unexpected error");

    // server is still healthy: no poisoned lock, no wedged worker
    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();
    let final_export = c.export("net").unwrap();
    let final_stats = c.stats("net").unwrap();

    // reconstruct the applied order from the epochs and replay serially
    let mut applied = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
    applied.sort_by_key(|&(epoch, _)| epoch);
    let epochs: HashSet<u64> = applied.iter().map(|&(e, _)| e).collect();
    assert_eq!(epochs.len(), applied.len(), "mutation epochs must be unique");
    assert_eq!(final_stats.epoch, applied.len() as u64, "every applied mutation bumped once");

    let doc = io::from_text(&initial).unwrap();
    let mut replay = MaintainedWcds::new(doc.points.unwrap(), UDG_RADIUS);
    for (_, mutation) in &applied {
        match *mutation {
            Mutation::Join { x, y } => {
                replay.apply_join(Point::new(x, y));
            }
            Mutation::Leave { node } => {
                replay.apply_leave(node);
            }
            Mutation::Move { node, x, y } => {
                replay.apply_motion(&[(node, Point::new(x, y))]);
            }
        }
    }
    assert_eq!(
        final_export,
        io::to_text(replay.graph(), Some(replay.points())),
        "concurrent final state diverged from serial replay of the mutation log"
    );

    c.shutdown_server().unwrap();
    handle.join();
}

/// `MutateBatch` over the wire: all-or-nothing validation, commit-order
/// epoch range accounting, lease counters, and a final state
/// byte-identical to applying the same mutations one `Mutate` request
/// at a time.
#[test]
fn mutate_batch_matches_serial_replay_and_is_atomic() {
    let handle = Server::bind("127.0.0.1:0", Store::new(), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut c = Client::connect_with_timeout(addr, Duration::from_secs(10)).unwrap();

    let initial = payload(60, 4.0, 33);
    c.create("batch", &initial).unwrap();
    c.create("serial", &initial).unwrap();

    // two moves into one hot region (a guaranteed lease conflict inside
    // the batch), a join, a spread move, and a leave barrier
    let mutations = vec![
        Mutation::Move { node: 3, x: 2.0, y: 2.0 },
        Mutation::Move { node: 7, x: 2.1, y: 2.1 },
        Mutation::Join { x: 0.5, y: 3.5 },
        Mutation::Move { node: 11, x: 3.8, y: 0.3 },
        Mutation::Leave { node: 5 },
        Mutation::Move { node: 0, x: 1.0, y: 1.0 },
    ];

    let out = c.mutate_batch("batch", &mutations).unwrap();
    assert_eq!(out.applied, mutations.len() as u64);
    // a batch of k starting at epoch 0 occupies epochs 1..=k
    assert_eq!(out.epoch, mutations.len() as u64);

    for m in &mutations {
        c.mutate("serial", m.clone()).unwrap();
    }
    assert_eq!(
        c.export("batch").unwrap(),
        c.export("serial").unwrap(),
        "batched application diverged from serial replay"
    );

    let batch_stats = c.stats("batch").unwrap();
    let serial_stats = c.stats("serial").unwrap();
    assert_eq!(batch_stats.epoch, serial_stats.epoch, "same epoch accounting");
    assert_eq!(batch_stats.mis, serial_stats.mis);
    assert_eq!(batch_stats.bridges, serial_stats.bridges);
    assert_eq!(batch_stats.spanner_edges, serial_stats.spanner_edges);
    assert_eq!(batch_stats.batched_mutations, mutations.len() as u64);
    assert_eq!(serial_stats.batched_mutations, 0);
    assert!(
        batch_stats.lease_waits >= 1,
        "the two hot-region moves must have planned a wait"
    );
    assert!(batch_stats.lease_conflicts >= 1);
    assert!(batch_stats.concurrent_repairs_max >= 1);

    // all-or-nothing: one out-of-range mutation rejects the whole
    // batch with nothing applied
    let before = c.export("batch").unwrap();
    let bad = vec![
        Mutation::Move { node: 1, x: 0.1, y: 0.1 },
        Mutation::Move { node: 10_000, x: 0.2, y: 0.2 },
    ];
    assert!(matches!(
        c.mutate_batch("batch", &bad),
        Err(ClientError::Server { code: ErrorCode::OutOfRange, .. })
    ));
    assert_eq!(c.export("batch").unwrap(), before, "rejected batch must apply nothing");
    assert_eq!(c.stats("batch").unwrap().epoch, out.epoch, "rejected batch must not bump");

    // an empty batch is a no-op acknowledged at the current epoch
    let empty = c.mutate_batch("batch", &[]).unwrap();
    assert_eq!((empty.applied, empty.epoch), (0, out.epoch));

    c.shutdown_server().unwrap();
    handle.join();
}
