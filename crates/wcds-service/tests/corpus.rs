//! Frozen hostile-frame corpus replay (regression gate).
//!
//! Every `.bin` under `tests/corpus/` is a raw client byte stream
//! (`[len: u32 LE][body…]`) that once probed a distinct failure mode
//! of the framing layer or the body decoders. The bytes are committed
//! verbatim so the exact historical inputs stay in the gate forever:
//! each must keep failing with a *typed* error — never a panic, never
//! an unbounded allocation, and never a silent accept.
//!
//! The structure-aware enumeration lives in `wcds-analyze totality`;
//! this test is the frozen complement (DESIGN.md §9).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{self, Cursor};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use wcds_service::protocol::{read_frame, FrameDecoder, FrameRead, Request, Response, WireError};

/// What a corpus entry must keep doing when replayed.
enum Expect {
    /// `read_frame` itself rejects the stream with this error kind.
    FrameErr(io::ErrorKind),
    /// The frame is read whole but both decoders reject the body.
    BodyRejected,
}

/// The frozen corpus: file name → required outcome. Adding a file to
/// the directory without listing it here fails the inventory test, so
/// the corpus cannot silently rot.
const CORPUS: &[(&str, Expect)] = &[
    // stream-level hostility
    ("eof_mid_frame.bin", Expect::FrameErr(io::ErrorKind::UnexpectedEof)),
    ("oversize_len.bin", Expect::FrameErr(io::ErrorKind::InvalidData)),
    ("oversize_len_boundary.bin", Expect::FrameErr(io::ErrorKind::InvalidData)),
    // body-level hostility
    ("empty_frame.bin", Expect::BodyRejected),
    ("badversion.bin", Expect::BodyRejected),
    ("badtag.bin", Expect::BodyRejected),
    ("trunc_create_name.bin", Expect::BodyRejected),
    ("hostile_string_len.bin", Expect::BodyRejected),
    ("hostile_count_routed.bin", Expect::BodyRejected),
    ("nonutf8_name.bin", Expect::BodyRejected),
    ("trailing_bytes.bin", Expect::BodyRejected),
    ("mutation_badtag.bin", Expect::BodyRejected),
];

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_corpus_file_is_listed_and_vice_versa() {
    let on_disk: Vec<String> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory present")
        .map(|e| e.expect("corpus entry readable").file_name().into_string().unwrap())
        .collect();
    for (name, _) in CORPUS {
        assert!(on_disk.iter().any(|f| f == name), "corpus file {name} missing from disk");
    }
    for f in &on_disk {
        assert!(
            CORPUS.iter().any(|(name, _)| name == f),
            "corpus file {f} on disk but not replayed — add it to CORPUS"
        );
    }
}

/// The event-loop server frames with [`FrameDecoder`], not
/// [`read_frame`], so the frozen corpus must hold against it too — and
/// against every adversarial delivery pattern: byte-by-byte, small
/// prime-sized chunks (so length prefixes straddle reads), and one
/// coalesced burst. The incremental decoder must agree with the
/// blocking reader on every file: same frame bytes out, or the same
/// class of typed rejection, regardless of how the stream is split.
#[test]
fn incremental_framing_survives_the_corpus_under_any_chunking() {
    for &chunk in &[1usize, 2, 3, 7, usize::MAX] {
        for (name, expect) in CORPUS {
            let bytes = std::fs::read(corpus_dir().join(name))
                .unwrap_or_else(|e| panic!("{name}: unreadable: {e}"));
            let mut dec = FrameDecoder::new();
            let mut frames: Vec<Vec<u8>> = Vec::new();
            let mut err: Option<WireError> = None;
            'feed: for piece in bytes.chunks(chunk.min(bytes.len().max(1))) {
                dec.feed(piece);
                loop {
                    let step = catch_unwind(AssertUnwindSafe(|| dec.next_frame()))
                        .unwrap_or_else(|_| panic!("{name}/{chunk}: next_frame PANICKED"));
                    match step {
                        Ok(Some(frame)) => frames.push(frame),
                        Ok(None) => break,
                        Err(e) => {
                            err = Some(e);
                            break 'feed;
                        }
                    }
                }
            }
            match expect {
                // a truncated stream yields no frame and no error —
                // the decoder just reports an unfinished frame, which
                // the event loop's stall sweep turns into a drop
                Expect::FrameErr(io::ErrorKind::UnexpectedEof) => {
                    assert!(err.is_none(), "{name}/{chunk}: unexpected {err:?}");
                    assert!(frames.is_empty(), "{name}/{chunk}: yielded a partial frame");
                    assert!(dec.mid_frame(), "{name}/{chunk}: truncation went unnoticed");
                }
                // a hostile length prefix must be rejected before any
                // body byte is buffered, whatever the chunking
                Expect::FrameErr(_) => {
                    assert!(
                        matches!(err, Some(WireError::FrameTooLarge(_))),
                        "{name}/{chunk}: expected FrameTooLarge, got {err:?} / {frames:?}"
                    );
                }
                // hostile bodies still frame correctly: exactly the
                // bytes read_frame sees, handed to the same decoders
                Expect::BodyRejected => {
                    assert!(err.is_none(), "{name}/{chunk}: framing error {err:?}");
                    assert_eq!(frames.len(), 1, "{name}/{chunk}: frame count");
                    let whole = match read_frame(&mut Cursor::new(&bytes)) {
                        Ok(FrameRead::Frame(b)) => b,
                        other => panic!("{name}: read_frame disagrees: {other:?}"),
                    };
                    assert_eq!(frames.first(), Some(&whole), "{name}/{chunk}: body bytes");
                }
            }
        }
    }
}

#[test]
fn replaying_the_corpus_yields_typed_errors_never_panics() {
    for (name, expect) in CORPUS {
        let bytes = std::fs::read(corpus_dir().join(name))
            .unwrap_or_else(|e| panic!("{name}: unreadable: {e}"));
        let read = catch_unwind(AssertUnwindSafe(|| read_frame(&mut Cursor::new(&bytes))))
            .unwrap_or_else(|_| panic!("{name}: read_frame PANICKED"));
        match expect {
            Expect::FrameErr(kind) => {
                let err = read.expect_err(&format!("{name}: stream must be rejected"));
                assert_eq!(err.kind(), *kind, "{name}: wrong error kind: {err}");
            }
            Expect::BodyRejected => {
                let body = match read.unwrap_or_else(|e| panic!("{name}: frame error: {e}")) {
                    FrameRead::Frame(b) => b,
                    other => panic!("{name}: expected a whole frame, got {other:?}"),
                };
                let req = catch_unwind(AssertUnwindSafe(|| Request::decode(&body)))
                    .unwrap_or_else(|_| panic!("{name}: Request::decode PANICKED"));
                let resp = catch_unwind(AssertUnwindSafe(|| Response::decode(&body)))
                    .unwrap_or_else(|_| panic!("{name}: Response::decode PANICKED"));
                assert!(req.is_err(), "{name}: request decoder accepted hostile bytes");
                assert!(resp.is_err(), "{name}: response decoder accepted hostile bytes");
            }
        }
    }
}
