//! Event-loop engine acceptance tests: byte-identical replay against
//! the worker-pool oracle, pipelined in-order responses, slow-loris
//! isolation, and a dominator kill storm served entirely over TCP.
//!
//! The worker-pool engine is the semantic oracle: both engines funnel
//! every request through the same `handle` dispatcher, so a serial
//! replay of one request log must produce byte-identical response
//! frames — the only permitted divergence is the engine-diagnostic
//! counters (`syscalls`, `pipeline_depth_max`) inside `StatsOk`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use wcds_geom::deploy;
use wcds_graph::{io, UnitDiskGraph};
use wcds_rng::{ChaCha12Rng, Rng};
use wcds_service::protocol::{read_frame, write_frame, FrameRead, Request, Response};
use wcds_service::store::UDG_RADIUS;
use wcds_service::{
    BroadcastOutcome, Client, Engine, Mutation, RouteOutcome, Server, ServerConfig, Store,
};

fn payload(n: usize, side: f64, seed: u64) -> String {
    let udg = UnitDiskGraph::build(deploy::uniform(n, side, side, seed), UDG_RADIUS);
    io::to_text(udg.graph(), Some(udg.points()))
}

/// A deterministic request log walking the whole API, including typed
/// failures: exactly what a client session might replay for audit.
fn replay_log() -> Vec<Request> {
    let name = "net".to_string();
    let mut log = vec![
        Request::Ping,
        Request::Create { name: name.clone(), payload: payload(70, 4.0, 21) },
        Request::Create { name: name.clone(), payload: payload(70, 4.0, 21) }, // AlreadyExists
        Request::Construct { name: name.clone() },
        Request::Route { name: name.clone(), from: 0, to: 69 },
        Request::Broadcast { name: name.clone(), source: 0 },
        Request::Stats { name: name.clone() },
        Request::Mutate { name: name.clone(), mutation: Mutation::Join { x: 2.0, y: 2.0 } },
        Request::Stats { name: name.clone() },
        Request::Route { name: name.clone(), from: 0, to: 70 },
        Request::Harden { name: name.clone(), k: 2, m: 2 },
        Request::Stats { name: name.clone() },
        Request::MutateBatch {
            name: name.clone(),
            mutations: vec![
                Mutation::Move { node: 3, x: 2.0, y: 2.0 },
                Mutation::Move { node: 7, x: 2.1, y: 2.1 },
                Mutation::Join { x: 0.5, y: 3.5 },
            ],
        },
        Request::Stats { name: name.clone() },
        Request::Export { name: name.clone() },
        Request::List,
        Request::Route { name: "ghost".to_string(), from: 0, to: 1 }, // NotFound
        Request::Route { name: name.clone(), from: 0, to: 9_999 },    // OutOfRange
    ];
    // a read burst at the end: cache hits resolve through the snapshot
    // cell on both engines, so `snapshot_reads` must advance in lockstep
    for k in 1..8 {
        log.push(Request::Route { name: name.clone(), from: 0, to: k });
    }
    log.push(Request::Stats { name });
    log
}

/// Serially replays `log` over one raw TCP connection against a server
/// running `engine`, returning every response frame's bytes.
fn replay(engine: Engine, log: &[Request]) -> Vec<Vec<u8>> {
    let config = ServerConfig { engine, ..ServerConfig::default() };
    let handle = Server::bind("127.0.0.1:0", Store::new(), config).unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut frames = Vec::with_capacity(log.len());
    for req in log {
        write_frame(&mut stream, &req.encode()).unwrap();
        match read_frame(&mut stream).unwrap() {
            FrameRead::Frame(body) => frames.push(body),
            other => panic!("replay expected a response frame, got {other:?}"),
        }
    }
    drop(stream);
    handle.shutdown();
    frames
}

/// Zeroes the engine-diagnostic counters inside a `StatsOk` frame;
/// every other frame (and every other `StatsOk` field, including
/// `snapshot_reads`) passes through byte-for-byte.
fn normalize(raw: &[u8]) -> Vec<u8> {
    match Response::decode(raw) {
        Ok(Response::StatsOk(mut stats)) => {
            stats.syscalls = 0;
            stats.pipeline_depth_max = 0;
            Response::StatsOk(stats).encode()
        }
        _ => raw.to_vec(),
    }
}

/// Acceptance: the two engines answer a serial replay of the same
/// request log byte-identically (modulo the two engine-diagnostic
/// counters in `StatsOk`, which are zeroed on both sides before the
/// comparison — `snapshot_reads` is compared raw).
#[test]
fn engines_answer_a_serial_replay_byte_identically() {
    let log = replay_log();
    let pool = replay(Engine::WorkerPool, &log);
    let evented = replay(Engine::EventLoop, &log);
    assert_eq!(pool.len(), evented.len());
    for (i, (a, b)) in pool.iter().zip(&evented).enumerate() {
        assert_eq!(
            normalize(a),
            normalize(b),
            "response {i} to {:?} diverged between engines:\n  pool:  {:?}\n  event: {:?}",
            log.get(i),
            Response::decode(a),
            Response::decode(b),
        );
    }
}

/// Pipelining property: send a burst of requests with pairwise-distinct
/// answers in one write, drain the responses, and check each answer
/// sits at its request's position — in-order, none dropped, none
/// duplicated.
#[test]
fn pipelined_responses_arrive_in_request_order() {
    let handle = Server::bind("127.0.0.1:0", Store::new(), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut c = Client::connect_with_timeout(addr, Duration::from_secs(30)).unwrap();

    c.create("pipe", &payload(40, 3.0, 5)).unwrap();
    let BroadcastOutcome::Done { informed, .. } = c.broadcast("pipe", 0).unwrap() else {
        panic!("deployment must be connected for the order check");
    };
    assert_eq!(informed, 40, "pick a connected seed: every route below must succeed");

    // depth 36: routes to 32 distinct destinations, punctuated by pings
    let mut reqs = Vec::new();
    for k in 1..=32u64 {
        if k % 8 == 0 {
            reqs.push(Request::Ping);
        }
        reqs.push(Request::Route { name: "pipe".to_string(), from: 0, to: k as usize });
    }
    let responses = c.pipeline(&reqs).unwrap();
    assert_eq!(responses.len(), reqs.len());
    for (req, resp) in reqs.iter().zip(&responses) {
        match (req, resp) {
            (Request::Ping, Response::Pong) => {}
            (Request::Route { to, .. }, Response::Routed { path }) => {
                assert_eq!(path.first(), Some(&0));
                assert_eq!(path.last(), Some(to), "response out of order or misrouted");
            }
            other => panic!("mismatched (request, response) pair: {other:?}"),
        }
    }

    // the burst was decoded from few readiness wakes: the engine must
    // have observed a multi-frame pipeline on this connection
    let stats = c.stats("pipe").unwrap();
    assert!(
        stats.pipeline_depth_max >= 2,
        "pipelined burst never exceeded depth 1 (got {})",
        stats.pipeline_depth_max
    );
    c.shutdown_server().unwrap();
    handle.join();
}

/// Slow-loris isolation: a peer that sends half a frame and stalls must
/// not degrade anyone else's latency — and the stall sweep must drop it
/// instead of letting it hold its slot forever. Under the old
/// thread-per-connection engine a stalled peer pinned a worker thread
/// for the whole idle window; under the event loop it costs one slab
/// slot and two sweep ticks.
#[test]
fn a_stalled_mid_frame_peer_is_dropped_and_does_not_slow_others() {
    use std::io::{Read as _, Write as _};
    let handle = Server::bind("127.0.0.1:0", Store::new(), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut c = Client::connect_with_timeout(addr, Duration::from_secs(30)).unwrap();
    c.create("net", &payload(40, 3.0, 5)).unwrap();
    c.construct("net").unwrap();

    // the loris: a valid length prefix promising 64 bytes, then silence
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(&64u32.to_le_bytes()).unwrap();
    loris.write_all(&[0xAB, 0xCD]).unwrap();
    loris.flush().unwrap();

    // while the loris stalls, a well-behaved client's requests must keep
    // completing promptly: the stalled fd costs readiness wakes nothing
    let mut worst = Duration::ZERO;
    for k in 0..50usize {
        let t0 = Instant::now();
        if k % 2 == 0 {
            c.ping().unwrap();
        } else {
            let _ = c.route("net", 0, k % 40).unwrap();
        }
        worst = worst.max(t0.elapsed());
    }
    assert!(
        worst < Duration::from_secs(1),
        "a stalled peer degraded a healthy client's worst-case latency to {worst:?}"
    );

    // the sweep drops a mid-frame staller after ~2 io_timeout ticks;
    // observing EOF on the loris socket proves the reap
    loris.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 16];
    match loris.read(&mut buf) {
        Ok(0) => {} // clean EOF: the server reaped the connection
        Ok(n) => panic!("server answered a half-frame with {n} bytes"),
        Err(e) => panic!("expected EOF from the stall sweep, got {e}"),
    }

    c.shutdown_server().unwrap();
    handle.join();
}

/// Dominator kill storm served entirely over event-loop TCP: a killer
/// client parks backbone nodes out of radio range through the ordinary
/// mutation API (victims harvested from route interiors — clusterhead
/// paths travel the backbone) while reader clients keep routing. The
/// hardened (2, 2) backbone must keep serving typed outcomes — never an
/// error — and the availability counters must account for every query.
#[test]
fn kill_storm_over_tcp_keeps_routes_servable() {
    const N: usize = 120;
    const READERS: usize = 4;
    const OPS: usize = 40;
    const KILLS: usize = 4;

    let handle = Server::bind("127.0.0.1:0", Store::new(), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut admin = Client::connect_with_timeout(addr, Duration::from_secs(30)).unwrap();
    admin.create("net", &payload(N, 4.5, 77)).unwrap();
    let out = admin.harden("net", 2, 2).unwrap();
    assert!(out.achieved_k >= 1);

    let attempted = AtomicU64::new(0);
    let failed = AtomicBool::new(false);
    let kills: Mutex<Vec<usize>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let attempted = &attempted;
        let failed = &failed;
        let kills = &kills;
        scope.spawn(move || {
            let mut rng = ChaCha12Rng::seed_from_u64(13);
            let mut c = Client::connect_with_timeout(addr, Duration::from_secs(30))
                .expect("killer connect");
            for round in 0..KILLS {
                // probe routes until one crosses the backbone, then
                // park an interior hop (a dominator) out of range
                let victim = loop {
                    let s = rng.gen_range(0..N);
                    let d = rng.gen_range(0..N);
                    attempted.fetch_add(1, Ordering::SeqCst);
                    match c.route("net", s, d) {
                        Ok(RouteOutcome::Path(p)) if p.len() >= 3 => {
                            let mid = p[p.len() / 2];
                            if !kills.lock().unwrap().contains(&mid) {
                                break mid;
                            }
                        }
                        Ok(_) => {}
                        Err(e) => {
                            eprintln!("killer probe failed: {e}");
                            failed.store(true, Ordering::SeqCst);
                            return;
                        }
                    }
                };
                let x = 1_000.0 + 10.0 * round as f64;
                if let Err(e) = c.mutate("net", Mutation::Move { node: victim, x, y: 1_000.0 }) {
                    eprintln!("kill failed: {e}");
                    failed.store(true, Ordering::SeqCst);
                    return;
                }
                kills.lock().unwrap().push(victim);
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        for t in 0..READERS {
            scope.spawn(move || {
                let mut rng = ChaCha12Rng::seed_from_u64(500 + t as u64);
                let mut c = Client::connect_with_timeout(addr, Duration::from_secs(30))
                    .expect("reader connect");
                for _ in 0..OPS {
                    let s = rng.gen_range(0..N);
                    let d = rng.gen_range(0..N);
                    attempted.fetch_add(1, Ordering::SeqCst);
                    match c.route("net", s, d) {
                        Ok(RouteOutcome::Path(path)) => {
                            assert_eq!(path.first(), Some(&s));
                            assert_eq!(path.last(), Some(&d));
                        }
                        Ok(RouteOutcome::Degraded { .. }) => {} // typed, not an error
                        Err(e) => {
                            eprintln!("route({s}, {d}) failed mid-storm: {e}");
                            failed.store(true, Ordering::SeqCst);
                            return;
                        }
                    }
                }
            });
        }
    });
    assert!(!failed.load(Ordering::SeqCst), "a client hit an unexpected error mid-storm");
    let killed = kills.into_inner().unwrap();
    assert_eq!(killed.len(), KILLS, "the storm must land every kill");

    // the server is still healthy and the counters reconcile exactly
    admin.ping().unwrap();
    let stats = admin.stats("net").unwrap();
    assert_eq!(stats.epoch, KILLS as u64, "every kill is one applied mutation");
    assert_eq!(
        stats.routes_ok + stats.routes_degraded + stats.routes_unreachable,
        attempted.load(Ordering::SeqCst),
        "every route query lands in exactly one availability counter"
    );
    assert_eq!(stats.nodes, N as u64, "moves never change the node count");

    admin.shutdown_server().unwrap();
    handle.join();
}
