//! Domination, independence, and weak-connectivity predicates.
//!
//! These are the paper's §1–2 definitions, implemented as checkable
//! predicates so every construction in the workspace can be *verified*
//! rather than trusted:
//!
//! * a set `S` is **dominating** if every node is in `S` or adjacent to a
//!   node of `S`;
//! * `S` is **independent** if no two nodes of `S` are adjacent;
//! * a **maximal independent set** admits no independent proper superset
//!   (equivalently: it is independent *and* dominating);
//! * `S` is a **weakly-connected dominating set** (WCDS) if it is
//!   dominating and the subgraph *weakly induced* by `S` — all edges with
//!   at least one endpoint in `S` — is connected.

use crate::{traversal, Graph, NodeId};

/// Whether `s` dominates `g`: every node is in `s` or has a neighbor in it.
///
/// The empty set dominates only the empty graph.
///
/// # Examples
///
/// ```
/// use wcds_graph::{domination, generators};
///
/// let g = generators::star(5);
/// assert!(domination::is_dominating_set(&g, &[0]));
/// assert!(!domination::is_dominating_set(&g, &[1]));
/// ```
pub fn is_dominating_set(g: &Graph, s: &[NodeId]) -> bool {
    let in_s = g.membership(s);
    g.nodes().all(|u| in_s[u] || g.adj(u).any(|v| in_s[v]))
}

/// Whether `s` is an independent set (pairwise non-adjacent).
pub fn is_independent_set(g: &Graph, s: &[NodeId]) -> bool {
    let in_s = g.membership(s);
    s.iter().all(|&u| g.adj(u).all(|v| !in_s[v]))
}

/// Whether `s` is a **maximal** independent set.
///
/// Uses the textbook equivalence (paper §2): an independent set is
/// maximal iff it is also dominating.
pub fn is_maximal_independent_set(g: &Graph, s: &[NodeId]) -> bool {
    is_independent_set(g, s) && is_dominating_set(g, s)
}

/// Whether `s` is a **connected** dominating set: dominating, and the
/// subgraph induced by `s` is connected.
pub fn is_connected_dominating_set(g: &Graph, s: &[NodeId]) -> bool {
    is_dominating_set(g, s) && traversal::is_connected_subset(g, s)
}

/// Whether `s` is a **weakly-connected** dominating set.
///
/// The weakly induced subgraph `G' = (V, E')`, `E' = {(u,v) ∈ E : u ∈ s
/// or v ∈ s}`, must be connected *over the nodes it touches*: every node
/// covered by `s` must be reachable from every other within `G'`.
/// Isolated nodes of `g` itself are tolerated only if `g` is just those
/// nodes (a dominating set of a graph with an isolated node must contain
/// it).
pub fn is_weakly_connected_dominating_set(g: &Graph, s: &[NodeId]) -> bool {
    if !is_dominating_set(g, s) {
        return false;
    }
    if s.is_empty() {
        return g.node_count() == 0;
    }
    // In a connected g, G' touches every node; in general we require all
    // non-isolated nodes plus all of s to sit in one component of G'.
    let w = g.weakly_induced(s);
    let dist = traversal::multi_source_bfs(&w, std::iter::once(s[0]));
    g.nodes().all(|u| dist[u].is_some() || (g.degree(u) == 0 && w.degree(u) == 0 && !involves(s, u)))
        && single_component_covers(&dist, s)
}

fn involves(s: &[NodeId], u: NodeId) -> bool {
    s.contains(&u)
}

fn single_component_covers(dist: &[Option<u32>], s: &[NodeId]) -> bool {
    s.iter().all(|&u| dist[u].is_some())
}

/// The number of nodes of `s` adjacent to `u` (not counting `u` itself).
pub fn dominator_count(g: &Graph, s: &[NodeId], u: NodeId) -> usize {
    let in_s = g.membership(s);
    g.adj(u).filter(|&v| in_s[v]).count()
}

/// Nodes not in `s` and with no neighbor in `s` (witnesses that `s` fails
/// to dominate). Empty iff `s` dominates.
pub fn undominated_nodes(g: &Graph, s: &[NodeId]) -> Vec<NodeId> {
    let in_s = g.membership(s);
    g.nodes()
        .filter(|&u| !in_s[u] && !g.adj(u).any(|v| in_s[v]))
        .collect()
}

/// Whether every node **outside** `s` has at least `m` neighbors in
/// `s` (the *m-fold domination* condition of Zhang et al.'s connected
/// m-fold dominating sets). Members of `s` are exempt: a dominator
/// covers itself by being in the backbone.
///
/// # Examples
///
/// ```
/// use wcds_graph::{domination, generators};
///
/// // C4: each node has both neighbors in the opposite pair
/// let g = generators::cycle(4);
/// assert!(domination::m_fold_coverage(&g, &[0, 2], 2));
/// assert!(!domination::m_fold_coverage(&g, &[0], 2));
/// ```
pub fn m_fold_coverage(g: &Graph, s: &[NodeId], m: usize) -> bool {
    m_fold_deficient_nodes(g, s, m).is_empty()
}

/// Nodes outside `s` with fewer than `m` neighbors in `s` (witnesses
/// that `s` fails m-fold coverage). Empty iff [`m_fold_coverage`] holds.
pub fn m_fold_deficient_nodes(g: &Graph, s: &[NodeId], m: usize) -> Vec<NodeId> {
    let in_s = g.membership(s);
    g.nodes()
        .filter(|&u| !in_s[u] && g.adj(u).filter(|&v| in_s[v]).count() < m)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn star_center_dominates() {
        let g = generators::star(6);
        assert!(is_dominating_set(&g, &[0]));
        assert!(undominated_nodes(&g, &[0]).is_empty());
    }

    #[test]
    fn star_leaf_does_not_dominate() {
        let g = generators::star(6);
        assert!(!is_dominating_set(&g, &[1]));
        assert_eq!(undominated_nodes(&g, &[1]).len(), 5);
    }

    #[test]
    fn empty_set_dominates_only_empty_graph() {
        assert!(is_dominating_set(&Graph::empty(0), &[]));
        assert!(!is_dominating_set(&Graph::empty(1), &[]));
    }

    #[test]
    fn independence_on_path() {
        let g = generators::path(5);
        assert!(is_independent_set(&g, &[0, 2, 4]));
        assert!(!is_independent_set(&g, &[0, 1]));
        assert!(is_independent_set(&g, &[]));
        assert!(is_independent_set(&g, &[3]));
    }

    #[test]
    fn mis_is_independent_and_dominating() {
        let g = generators::path(5);
        assert!(is_maximal_independent_set(&g, &[0, 2, 4]));
        // {0, 3} is independent and dominating hence maximal
        assert!(is_maximal_independent_set(&g, &[1, 3]) == is_dominating_set(&g, &[1, 3]));
        // {0, 4} is independent but not dominating (node 2 uncovered)
        assert!(!is_maximal_independent_set(&g, &[0, 4]));
    }

    #[test]
    fn cds_requires_induced_connectivity() {
        let g = generators::path(5);
        // {1, 3} dominates but 1-3 not adjacent → not CDS
        assert!(is_dominating_set(&g, &[1, 3]));
        assert!(!is_connected_dominating_set(&g, &[1, 3]));
        assert!(is_connected_dominating_set(&g, &[1, 2, 3]));
    }

    #[test]
    fn wcds_weaker_than_cds() {
        let g = generators::path(5);
        // {1, 3}: weakly induced edges 0-1,1-2,2-3,3-4 → connected → WCDS
        assert!(is_weakly_connected_dominating_set(&g, &[1, 3]));
        assert!(!is_connected_dominating_set(&g, &[1, 3]));
    }

    #[test]
    fn wcds_fails_when_weak_graph_splits() {
        // two disjoint edges: {0} dominates only its half
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!is_weakly_connected_dominating_set(&g, &[0]));
        // {0, 2} dominates but the weak graph has two components
        assert!(is_dominating_set(&g, &[0, 2]));
        assert!(!is_weakly_connected_dominating_set(&g, &[0, 2]));
    }

    #[test]
    fn paper_figure2_wcds() {
        // Two star centers joined through one shared gray node: the paper's
        // Figure 2 example of a WCDS {1, 2} that is not a CDS.
        let g = Graph::from_edges(
            9,
            [(0, 2), (1, 2), (0, 3), (0, 4), (0, 5), (1, 6), (1, 7), (1, 8)],
        );
        assert!(is_weakly_connected_dominating_set(&g, &[0, 1]));
        assert!(!is_connected_dominating_set(&g, &[0, 1]));
        assert!(is_maximal_independent_set(&g, &[0, 1]));
    }

    #[test]
    fn dominator_count_matches_lemma1_setup() {
        let g = generators::star(4);
        assert_eq!(dominator_count(&g, &[1, 2, 3], 0), 3);
        assert_eq!(dominator_count(&g, &[0], 2), 1);
        assert_eq!(dominator_count(&g, &[2], 1), 0);
    }

    #[test]
    fn whole_vertex_set_is_wcds_of_connected_graph() {
        let g = generators::connected_gnp(30, 0.1, 5);
        let all: Vec<NodeId> = g.nodes().collect();
        assert!(is_weakly_connected_dominating_set(&g, &all));
    }

    #[test]
    fn singleton_graph_cases() {
        let g = Graph::empty(1);
        assert!(is_dominating_set(&g, &[0]));
        assert!(is_weakly_connected_dominating_set(&g, &[0]));
        assert!(is_connected_dominating_set(&g, &[0]));
    }
}
