//! Opt-in parallel execution of per-source sweeps (`rayon` feature).
//!
//! All-sources measurements (dilation, eccentricity, APSP) are
//! embarrassingly parallel over sources, and every caller in this
//! workspace reduces per-source partials **serially in source order** —
//! so parallel runs produce byte-identical output to serial runs.
//!
//! The build environment vendors no third-party crates, so the engine
//! is dependency-free: `std::thread::scope` over contiguous chunks of
//! an output slice. The cargo feature keeps the crate's historical
//! `rayon` name (and CLI `--features rayon` spelling) even though no
//! external crate backs it; without the feature every function here
//! degrades to the serial loop.
//!
//! Worker count comes from [`threads`]: the `WCDS_THREADS` environment
//! variable when set, else [`std::thread::available_parallelism`].

/// Number of worker threads the parallel engine will use.
///
/// With the `rayon` feature off this is always 1. With it on, the
/// `WCDS_THREADS` environment variable overrides (values `< 1` are
/// clamped to 1), falling back to the machine's available parallelism.
pub fn threads() -> usize {
    #[cfg(not(feature = "rayon"))]
    {
        1
    }
    #[cfg(feature = "rayon")]
    {
        match std::env::var("WCDS_THREADS") {
            Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
            Err(_) => std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
    }
}

/// Fills `out[i] = f(state, i)` for every index, splitting the indices
/// into `nthreads` contiguous chunks.
///
/// `make_state` runs once per worker to build reusable per-worker state
/// (search scratch, buffers); `f` then runs for each index of that
/// worker's chunk, in order. With `nthreads <= 1` everything runs on
/// the calling thread — the degenerate case is exactly the serial loop,
/// so results never depend on the thread count.
pub fn map_indices_with<T, S>(
    nthreads: usize,
    out: &mut [T],
    make_state: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) -> T + Sync,
) where
    T: Send,
    S: Send,
{
    let n = out.len();
    if nthreads <= 1 || n <= 1 {
        let mut state = make_state();
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(&mut state, i);
        }
        return;
    }
    let nthreads = nthreads.min(n);
    let chunk = n.div_ceil(nthreads);
    std::thread::scope(|scope| {
        for (c, slots) in out.chunks_mut(chunk).enumerate() {
            let make_state = &make_state;
            let f = &f;
            scope.spawn(move || {
                let mut state = make_state();
                let base = c * chunk;
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = f(&mut state, base + j);
                }
            });
        }
    });
}

/// [`map_indices_with`] returning a fresh `Vec` of `n` results.
pub fn map_indices<T, S>(
    nthreads: usize,
    n: usize,
    make_state: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T>
where
    T: Send + Default + Clone,
    S: Send,
{
    let mut out = vec![T::default(); n];
    map_indices_with(nthreads, &mut out, make_state, f);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_for_every_thread_count() {
        let want: Vec<u64> = (0..97u64).map(|i| i * i + 7).collect();
        for nthreads in [1, 2, 3, 8, 97, 200] {
            let got = map_indices(nthreads, 97, || 7u64, |s, i| (i * i) as u64 + *s);
            assert_eq!(got, want, "nthreads {nthreads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(map_indices(4, 0, || (), |_, i| i), Vec::<usize>::new());
        assert_eq!(map_indices(4, 1, || (), |_, i| i), vec![0]);
    }

    #[test]
    fn per_worker_state_is_isolated() {
        // each worker's state counts its own calls; totals must cover
        // every index exactly once
        let marks = map_indices(3, 30, || 0usize, |calls, i| {
            *calls += 1;
            i
        });
        assert_eq!(marks, (0..30).collect::<Vec<_>>());
    }

    #[cfg(not(feature = "rayon"))]
    #[test]
    fn threads_is_one_without_the_feature() {
        assert_eq!(threads(), 1);
    }

    #[cfg(feature = "rayon")]
    #[test]
    fn threads_honors_env_override() {
        // NB: set_var is fine here; tests in this module run in one process
        // and this is the only test reading the variable with the feature on.
        std::env::set_var("WCDS_THREADS", "3");
        assert_eq!(threads(), 3);
        std::env::set_var("WCDS_THREADS", "0");
        assert_eq!(threads(), 1);
        std::env::remove_var("WCDS_THREADS");
        assert!(threads() >= 1);
    }
}
