//! Topology characterisation metrics.
//!
//! Experiments report these alongside results so a reader can judge
//! what kind of network each row was measured on (the paper's implicit
//! workload is "nodes in the plane"; density is the knob that matters).

use crate::{parallel, traversal, Graph, NodeId};

/// Summary statistics of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Average degree.
    pub avg_degree: f64,
    /// Maximum degree `Δ`.
    pub max_degree: usize,
    /// Global clustering coefficient (3 × triangles / open triads);
    /// 0 for graphs with no triads.
    pub clustering: f64,
    /// Hop diameter (`None` when disconnected or empty).
    pub diameter: Option<u32>,
    /// Number of connected components.
    pub components: usize,
}

impl GraphMetrics {
    /// Computes all metrics. The diameter costs `O(n·(n+|E|))`; pass
    /// `with_diameter = false` to skip it on large graphs.
    pub fn compute(g: &Graph, with_diameter: bool) -> Self {
        let n = g.node_count();
        let degrees: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
        let (triangles, triads) = triangle_census(g);
        Self {
            nodes: n,
            edges: g.edge_count(),
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            avg_degree: g.avg_degree(),
            max_degree: g.max_degree(),
            clustering: if triads == 0 { 0.0 } else { 3.0 * triangles as f64 / triads as f64 },
            diameter: if with_diameter { traversal::diameter(g) } else { None },
            components: traversal::connected_components(g).len(),
        }
    }
}

impl std::fmt::Display for GraphMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} deg[{}/{:.1}/{}] cc={:.3} diam={} comps={}",
            self.nodes,
            self.edges,
            self.min_degree,
            self.avg_degree,
            self.max_degree,
            self.clustering,
            self.diameter.map_or_else(|| "∞".into(), |d| d.to_string()),
            self.components
        )
    }
}

/// Returns `(#triangles, #open-or-closed triads)`.
///
/// Counts each triangle once (ordered `u < v < w`) and each path of
/// length 2 once (centered at its middle vertex). Per-node counts run
/// on the parallel engine and are summed in node order, so the census
/// is thread-count independent.
fn triangle_census(g: &Graph) -> (u64, u64) {
    let per_node = parallel::map_indices(
        parallel::threads(),
        g.node_count(),
        || (),
        |(), u| {
            let d = g.degree(u) as u64;
            let triads = d * d.saturating_sub(1) / 2;
            // count triangles with u as the smallest vertex
            let nb = g.neighbors(u);
            let mut triangles = 0u64;
            for (i, &v) in nb.iter().enumerate() {
                if (v as NodeId) < u {
                    continue;
                }
                for &w in &nb[i + 1..] {
                    if g.has_edge(v as NodeId, w as NodeId) {
                        triangles += 1;
                    }
                }
            }
            (triangles, triads)
        },
    );
    per_node.into_iter().fold((0, 0), |(t, s), (dt, ds)| (t + dt, s + ds))
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for u in g.nodes() {
        hist[g.degree(u)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangle_census_on_known_graphs() {
        assert_eq!(triangle_census(&generators::complete(4)), (4, 12));
        assert_eq!(triangle_census(&generators::cycle(5)).0, 0);
        assert_eq!(triangle_census(&generators::path(4)).0, 0);
        // one triangle: triads = 3 (one per corner), triangles = 1
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangle_census(&g), (1, 3));
    }

    #[test]
    fn complete_graph_clusters_perfectly() {
        let m = GraphMetrics::compute(&generators::complete(6), true);
        assert!((m.clustering - 1.0).abs() < 1e-12);
        assert_eq!(m.diameter, Some(1));
        assert_eq!(m.components, 1);
        assert_eq!(m.min_degree, 5);
    }

    #[test]
    fn path_metrics() {
        let m = GraphMetrics::compute(&generators::path(5), true);
        assert_eq!(m.clustering, 0.0);
        assert_eq!(m.diameter, Some(4));
        assert_eq!(m.min_degree, 1);
        assert_eq!(m.max_degree, 2);
    }

    #[test]
    fn diameter_can_be_skipped() {
        let m = GraphMetrics::compute(&generators::path(5), false);
        assert_eq!(m.diameter, None);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = generators::connected_gnp(40, 0.1, 2);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 40);
        let weighted: usize = h.iter().enumerate().map(|(d, &c)| d * c).sum();
        assert_eq!(weighted, 2 * g.edge_count());
    }

    #[test]
    fn display_is_compact() {
        let m = GraphMetrics::compute(&generators::star(4), true);
        let s = format!("{m}");
        assert!(s.contains("n=5"));
        assert!(s.contains("diam=2"));
    }

    #[test]
    fn empty_graph_metrics() {
        let m = GraphMetrics::compute(&Graph::empty(0), true);
        assert_eq!(m.nodes, 0);
        assert_eq!(m.clustering, 0.0);
        assert_eq!(m.diameter, None);
        assert_eq!(m.components, 0);
    }
}
