//! Breadth-first / depth-first traversals and connectivity.
//!
//! Hop distances are the paper's `h_G(u, v)` ("minimum number of hops in
//! `G`"); everything here is `O(n + |E|)`.

use crate::{parallel, Graph, NodeId, SearchScratch};
use std::collections::VecDeque;

/// Hop distance from `source` to every node.
///
/// Unreachable nodes get `None`.
///
/// # Examples
///
/// ```
/// use wcds_graph::{traversal, Graph};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2)]);
/// let d = traversal::bfs_distances(&g, 0);
/// assert_eq!(d[2], Some(2));
/// assert_eq!(d[3], None);
/// ```
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<u32>> {
    multi_source_bfs(g, std::iter::once(source))
}

/// Hop distance from the *nearest* of several sources to every node.
///
/// Used for "distance between complementary subsets" checks (Lemma 3 /
/// Theorem 4): run a multi-source BFS from subset `A` and inspect the
/// distance at subset `B`'s nodes.
pub fn multi_source_bfs<I>(g: &Graph, sources: I) -> Vec<Option<u32>>
where
    I: IntoIterator<Item = NodeId>,
{
    let mut scratch = SearchScratch::for_graph(g);
    scratch.multi_bfs(g, sources);
    scratch.hops_to_vec(g.node_count())
}

/// BFS with parent pointers: returns `(distances, parents)`.
///
/// `parents[source]` is `None`; so is every unreachable node's.
pub fn bfs_tree(g: &Graph, source: NodeId) -> (Vec<Option<u32>>, Vec<Option<NodeId>>) {
    let mut dist = vec![None; g.node_count()];
    let mut parent = vec![None; g.node_count()];
    let mut q = VecDeque::new();
    dist[source] = Some(0);
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for v in g.adj(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                parent[v] = Some(u);
                q.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// [`bfs_tree`] truncated at `radius` hops.
///
/// Distances and parents are **identical** to the full tree for every
/// node within `radius` of `source` (the frontier is expanded in the
/// same order, just not past the radius); nodes beyond stay `None`.
/// Consumers that only inspect a bounded ball — the backbone router's
/// 3-hop dominator links, the broadcast plan's spanning tree — get the
/// same answer for `O(ball)` scan work instead of `O(n + |E|)`.
pub fn bfs_tree_bounded(
    g: &Graph,
    source: NodeId,
    radius: u32,
) -> (Vec<Option<u32>>, Vec<Option<NodeId>>) {
    let mut dist = vec![None; g.node_count()];
    let mut parent = vec![None; g.node_count()];
    let mut q = VecDeque::new();
    dist[source] = Some(0);
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        let Some(du) = dist[u] else { continue }; // queued ⇒ distance set
        if du == radius {
            continue;
        }
        for v in g.adj(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                parent[v] = Some(u);
                q.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// Reconstructs the path `source → target` from BFS parent pointers.
///
/// Returns `None` if `target` was unreachable.
pub fn path_from_parents(
    parents: &[Option<NodeId>],
    source: NodeId,
    target: NodeId,
) -> Option<Vec<NodeId>> {
    if source == target {
        return Some(vec![source]);
    }
    parents[target]?;
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        cur = parents[cur]?;
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Hop distance between two nodes, `None` if disconnected.
pub fn hop_distance(g: &Graph, u: NodeId, v: NodeId) -> Option<u32> {
    bfs_distances(g, u)[v]
}

/// Shortest hop distance between two *node sets* (the paper's
/// complementary-subset distance). `None` if no path crosses.
pub fn set_distance(g: &Graph, a: &[NodeId], b: &[NodeId]) -> Option<u32> {
    let dist = multi_source_bfs(g, a.iter().copied());
    b.iter().filter_map(|&v| dist[v]).min()
}

/// Connected components, each sorted ascending; components ordered by
/// their smallest node.
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; g.node_count()];
    let mut comps = Vec::new();
    for start in g.nodes() {
        if seen[start] {
            continue;
        }
        let mut comp = Vec::new();
        let mut q = VecDeque::from([start]);
        seen[start] = true;
        while let Some(u) = q.pop_front() {
            comp.push(u);
            for v in g.adj(u) {
                if !seen[v] {
                    seen[v] = true;
                    q.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Whether the whole graph is connected.
///
/// The empty graph and singletons count as connected, matching the usual
/// convention (the paper implicitly assumes a connected network).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).len() <= 1
}

/// Whether a node subset is connected *in the subgraph it induces*.
pub fn is_connected_subset(g: &Graph, s: &[NodeId]) -> bool {
    if s.len() <= 1 {
        return true;
    }
    let induced = g.induced(s);
    let dist = bfs_distances(&induced, s[0]);
    s.iter().all(|&u| dist[u].is_some())
}

/// Per-node hop eccentricities; `None` marks a node that cannot reach
/// the whole graph.
///
/// Runs one BFS per node on the parallel engine ([`parallel::threads`]
/// workers when the `rayon` feature is on). The result is a pure
/// per-source map, so thread count cannot affect it.
pub fn eccentricities(g: &Graph) -> Vec<Option<u32>> {
    eccentricities_with_threads(g, parallel::threads())
}

/// [`eccentricities`] with an explicit worker count (testing hook; the
/// result is identical for every `nthreads`).
pub fn eccentricities_with_threads(g: &Graph, nthreads: usize) -> Vec<Option<u32>> {
    let n = g.node_count();
    parallel::map_indices(nthreads, n, || SearchScratch::new(n), |scratch, u| {
        scratch.bfs(g, u);
        if scratch.visit_order().len() < n {
            return None;
        }
        g.nodes().map(|v| scratch.hop(v).expect("fully visited")).max()
    })
}

/// Graph eccentricity-based diameter in hops (`None` if disconnected or
/// empty).
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.node_count() == 0 {
        return None;
    }
    eccentricities(g).into_iter().try_fold(0, |best, ecc| Some(best.max(ecc?)))
}

/// Iterative DFS preorder from `source` (deterministic: neighbors are
/// visited in ascending id order).
pub fn dfs_preorder(g: &Graph, source: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if seen[u] {
            continue;
        }
        seen[u] = true;
        order.push(u);
        // push reversed so the smallest neighbor is popped first
        for v in g.adj(u).rev() {
            if !seen[v] {
                stack.push(v);
            }
        }
    }
    order
}

/// All nodes within `k` hops of `u` (excluding `u` itself), sorted.
pub fn k_hop_neighborhood(g: &Graph, u: NodeId, k: u32) -> Vec<NodeId> {
    let dist = bfs_distances(g, u);
    let mut out: Vec<NodeId> = g
        .nodes()
        .filter(|&v| v != u && matches!(dist[v], Some(d) if d <= k))
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = generators::path(7);
        let d = multi_source_bfs(&g, [0, 6]);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[5], Some(1));
    }

    #[test]
    fn bfs_tree_parents_reconstruct_shortest_paths() {
        let g = generators::cycle(6);
        let (dist, parents) = bfs_tree(&g, 0);
        let p = path_from_parents(&parents, 0, 3).unwrap();
        assert_eq!(p.len() as u32 - 1, dist[3].unwrap());
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&3));
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn bounded_tree_matches_full_tree_inside_the_ball() {
        let g = generators::connected_gnp(80, 0.06, 17);
        for source in [0, 11, 42] {
            let (full_d, full_p) = bfs_tree(&g, source);
            for radius in 0..5 {
                let (d, p) = bfs_tree_bounded(&g, source, radius);
                for v in g.nodes() {
                    match full_d[v] {
                        Some(dv) if dv <= radius => {
                            assert_eq!(d[v], Some(dv), "src {source} r {radius} node {v}");
                            assert_eq!(p[v], full_p[v], "src {source} r {radius} node {v}");
                        }
                        _ => assert_eq!(d[v], None, "src {source} r {radius} node {v}"),
                    }
                }
            }
        }
    }

    #[test]
    fn path_to_self_is_singleton() {
        let g = generators::path(3);
        let (_, parents) = bfs_tree(&g, 1);
        assert_eq!(path_from_parents(&parents, 1, 1), Some(vec![1]));
    }

    #[test]
    fn path_to_unreachable_is_none() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let (_, parents) = bfs_tree(&g, 0);
        assert_eq!(path_from_parents(&parents, 0, 2), None);
    }

    #[test]
    fn hop_distance_is_symmetric() {
        let g = generators::cycle(8);
        assert_eq!(hop_distance(&g, 1, 5), hop_distance(&g, 5, 1));
        assert_eq!(hop_distance(&g, 1, 5), Some(4));
    }

    #[test]
    fn set_distance_between_cut_halves() {
        let g = generators::path(6);
        assert_eq!(set_distance(&g, &[0, 1], &[4, 5]), Some(3));
        assert_eq!(set_distance(&g, &[0], &[1]), Some(1));
        assert_eq!(set_distance(&g, &[2], &[2]), Some(0));
    }

    #[test]
    fn components_partition_nodes() {
        let g = Graph::from_edges(6, [(0, 1), (2, 3), (3, 4)]);
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3, 4], vec![5]]);
    }

    #[test]
    fn connectivity_predicates() {
        assert!(is_connected(&generators::path(4)));
        assert!(!is_connected(&Graph::from_edges(3, [(0, 1)])));
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
    }

    #[test]
    fn connected_subset_uses_induced_edges_only() {
        // path 0-1-2: {0,2} is not connected even though both touch node 1
        let g = generators::path(3);
        assert!(!is_connected_subset(&g, &[0, 2]));
        assert!(is_connected_subset(&g, &[0, 1, 2]));
        assert!(is_connected_subset(&g, &[1]));
        assert!(is_connected_subset(&g, &[]));
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&generators::path(5)), Some(4));
        assert_eq!(diameter(&generators::cycle(6)), Some(3));
        assert_eq!(diameter(&generators::complete(4)), Some(1));
        assert_eq!(diameter(&Graph::from_edges(3, [(0, 1)])), None);
        assert_eq!(diameter(&Graph::empty(0)), None);
        assert_eq!(diameter(&Graph::empty(1)), Some(0));
    }

    #[test]
    fn eccentricities_on_path_and_disconnected() {
        let g = generators::path(5);
        assert_eq!(
            eccentricities(&g),
            vec![Some(4), Some(3), Some(2), Some(3), Some(4)]
        );
        let split = Graph::from_edges(3, [(0, 1)]);
        assert_eq!(eccentricities(&split), vec![None, None, None]);
    }

    #[test]
    fn eccentricities_agree_across_thread_counts() {
        let g = generators::connected_gnp(70, 0.07, 11);
        let serial = eccentricities_with_threads(&g, 1);
        for nthreads in [2, 4, 70] {
            assert_eq!(eccentricities_with_threads(&g, nthreads), serial, "{nthreads}");
        }
    }

    #[test]
    fn dfs_preorder_visits_component_once() {
        let g = generators::cycle(5);
        let order = dfs_preorder(&g, 0);
        assert_eq!(order.len(), 5);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn k_hop_neighborhood_on_path() {
        let g = generators::path(7);
        assert_eq!(k_hop_neighborhood(&g, 3, 2), vec![1, 2, 4, 5]);
        assert_eq!(k_hop_neighborhood(&g, 0, 1), vec![1]);
        assert!(k_hop_neighborhood(&g, 0, 0).is_empty());
    }
}
