//! Rooted spanning trees with levels.
//!
//! Algorithm I's ranking (§2.2 of the paper) assigns each node the pair
//! `(level, id)` where *level* is its hop distance from the root of an
//! arbitrary spanning tree `T`. [`SpanningTree`] captures exactly that
//! structure: root, parent pointers, levels, and children lists.

use crate::{traversal, Graph, NodeId};

/// A rooted spanning tree of (one connected component of) a graph.
///
/// # Examples
///
/// ```
/// use wcds_graph::{generators, spanning::SpanningTree};
///
/// let g = generators::cycle(5);
/// let t = SpanningTree::bfs(&g, 0).expect("connected");
/// assert_eq!(t.level(0), 0);
/// assert_eq!(t.parent(0), None);
/// assert!(t.level(2) <= 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    level: Vec<u32>,
    children: Vec<Vec<NodeId>>,
}

impl SpanningTree {
    /// Builds a BFS spanning tree rooted at `root`.
    ///
    /// Returns `None` if the graph is not connected (a spanning tree of
    /// the whole node set does not exist). BFS levels equal hop distances
    /// from the root, which is precisely the paper's level definition.
    pub fn bfs(g: &Graph, root: NodeId) -> Option<Self> {
        let (dist, parent) = traversal::bfs_tree(g, root);
        if dist.iter().any(Option::is_none) {
            return None;
        }
        let level: Vec<u32> = dist.into_iter().map(|d| d.expect("checked connected")).collect();
        let mut children = vec![Vec::new(); g.node_count()];
        for v in g.nodes() {
            if let Some(p) = parent[v] {
                children[p].push(v);
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }
        Some(Self { root, parent, level, children })
    }

    /// Reconstructs a tree from explicit parent pointers (e.g. produced
    /// by a distributed leader-election protocol).
    ///
    /// `parents[root]` must be `None` and every other node must reach the
    /// root by following parents; returns `None` on malformed input
    /// (cycles, disconnected nodes, multiple roots).
    pub fn from_parents(root: NodeId, parents: &[Option<NodeId>]) -> Option<Self> {
        let n = parents.len();
        if root >= n || parents[root].is_some() {
            return None;
        }
        let mut level = vec![u32::MAX; n];
        level[root] = 0;
        for start in 0..n {
            if level[start] != u32::MAX {
                continue;
            }
            // walk up to a resolved ancestor, bailing out after n steps (cycle)
            let mut chain = Vec::new();
            let mut cur = start;
            loop {
                if chain.len() > n {
                    return None; // cycle
                }
                chain.push(cur);
                match parents[cur] {
                    None if cur == root => break,
                    None => return None, // second root
                    Some(p) => {
                        if level[p] != u32::MAX {
                            cur = p;
                            break;
                        }
                        cur = p;
                    }
                }
            }
            // `cur` is resolved (or the root); unwind the chain
            let mut l = level[cur];
            if chain.last() == Some(&cur) {
                chain.pop();
            }
            for &v in chain.iter().rev() {
                l += 1;
                level[v] = l;
            }
        }
        let mut children = vec![Vec::new(); n];
        for (v, p) in parents.iter().enumerate() {
            if let Some(p) = *p {
                children[p].push(v);
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }
        Some(Self { root, parent: parents.to_vec(), level, children })
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.level.len()
    }

    /// The parent of `u` (`None` for the root).
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        self.parent[u]
    }

    /// The level of `u` — its hop distance from the root **in the tree**.
    pub fn level(&self, u: NodeId) -> u32 {
        self.level[u]
    }

    /// All levels, indexed by node.
    pub fn levels(&self) -> &[u32] {
        &self.level
    }

    /// The children of `u`, sorted ascending.
    pub fn children(&self, u: NodeId) -> &[NodeId] {
        &self.children[u]
    }

    /// Whether `u` is a leaf (no children; the root can be a leaf only in
    /// a singleton tree).
    pub fn is_leaf(&self, u: NodeId) -> bool {
        self.children[u].is_empty()
    }

    /// Tree height: the maximum level.
    pub fn height(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }

    /// The path from `u` up to the root (inclusive of both).
    pub fn path_to_root(&self, u: NodeId) -> Vec<NodeId> {
        let mut path = vec![u];
        let mut cur = u;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// The tree's edge set as a [`Graph`] on the same node ids.
    pub fn as_graph(&self) -> Graph {
        Graph::from_edges(
            self.node_count(),
            (0..self.node_count()).filter_map(|v| self.parent[v].map(|p| (p, v))),
        )
    }

    /// Checks this tree is a spanning tree of `g`: every tree edge exists
    /// in `g` and the tree reaches all of `g`'s nodes.
    pub fn spans(&self, g: &Graph) -> bool {
        self.node_count() == g.node_count()
            && (0..self.node_count())
                .all(|v| self.parent[v].is_none_or(|p| g.has_edge(p, v)))
            && traversal::is_connected(&self.as_graph())
    }
}

/// A minimum spanning tree of `g` under the given edge weights
/// (Prim's algorithm), returned as a [`Graph`] on the same node ids.
///
/// Returns `None` if `g` is disconnected or empty. Weights must be
/// finite; ties break deterministically by endpoint ids.
///
/// # Examples
///
/// ```
/// use wcds_graph::{generators, spanning};
///
/// let g = generators::cycle(5);
/// let mst = spanning::minimum_spanning_tree(&g, |_, _| 1.0).expect("connected");
/// assert_eq!(mst.edge_count(), 4);
/// ```
pub fn minimum_spanning_tree<W>(g: &Graph, mut weight: W) -> Option<Graph>
where
    W: FnMut(NodeId, NodeId) -> f64,
{
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = g.node_count();
    if n == 0 {
        return None;
    }
    #[derive(PartialEq)]
    struct Cand(f64, NodeId, NodeId); // (weight, to, from)
    impl Eq for Cand {}
    impl Ord for Cand {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // weights are finite by construction; a NaN would only
            // misorder candidates, never panic
            self.0
                .partial_cmp(&other.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(self.1.cmp(&other.1))
                .then(self.2.cmp(&other.2))
        }
    }
    impl PartialOrd for Cand {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut in_tree = vec![false; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut heap: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
    in_tree[0] = true;
    for v in g.adj(0) {
        heap.push(Reverse(Cand(weight(0, v), v, 0)));
    }
    while let Some(Reverse(Cand(_, to, from))) = heap.pop() {
        if in_tree[to] {
            continue;
        }
        in_tree[to] = true;
        edges.push((from, to));
        for v in g.adj(to) {
            if !in_tree[v] {
                heap.push(Reverse(Cand(weight(to, v), v, to)));
            }
        }
    }
    if edges.len() + 1 != n {
        return None; // disconnected
    }
    Some(Graph::from_edges(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_tree_levels_are_hop_distances() {
        let g = generators::grid(4, 4);
        let t = SpanningTree::bfs(&g, 0).unwrap();
        let d = traversal::bfs_distances(&g, 0);
        for u in g.nodes() {
            assert_eq!(Some(t.level(u)), d[u]);
        }
    }

    #[test]
    fn bfs_on_disconnected_graph_is_none() {
        let g = Graph::from_edges(4, [(0, 1)]);
        assert!(SpanningTree::bfs(&g, 0).is_none());
    }

    #[test]
    fn tree_has_n_minus_1_edges_and_spans() {
        let g = generators::connected_gnp(40, 0.1, 6);
        let t = SpanningTree::bfs(&g, 0).unwrap();
        assert_eq!(t.as_graph().edge_count(), 39);
        assert!(t.spans(&g));
    }

    #[test]
    fn children_are_consistent_with_parents() {
        let g = generators::cycle(7);
        let t = SpanningTree::bfs(&g, 3).unwrap();
        for u in g.nodes() {
            for &c in t.children(u) {
                assert_eq!(t.parent(c), Some(u));
            }
        }
    }

    #[test]
    fn path_to_root_descends_levels() {
        let g = generators::grid(3, 3);
        let t = SpanningTree::bfs(&g, 0).unwrap();
        let p = t.path_to_root(8);
        assert_eq!(*p.first().unwrap(), 8);
        assert_eq!(*p.last().unwrap(), 0);
        for w in p.windows(2) {
            assert_eq!(t.level(w[0]), t.level(w[1]) + 1);
        }
    }

    #[test]
    fn height_of_path_tree() {
        let g = generators::path(6);
        assert_eq!(SpanningTree::bfs(&g, 0).unwrap().height(), 5);
        assert_eq!(SpanningTree::bfs(&g, 3).unwrap().height(), 3);
    }

    #[test]
    fn from_parents_roundtrip() {
        let g = generators::connected_gnp(25, 0.12, 2);
        let t = SpanningTree::bfs(&g, 0).unwrap();
        let parents: Vec<Option<NodeId>> = (0..25).map(|u| t.parent(u)).collect();
        let t2 = SpanningTree::from_parents(0, &parents).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn from_parents_rejects_cycles() {
        // 0 is root; 1 and 2 point at each other
        let parents = vec![None, Some(2), Some(1)];
        assert!(SpanningTree::from_parents(0, &parents).is_none());
    }

    #[test]
    fn from_parents_rejects_two_roots() {
        let parents = vec![None, None, Some(0)];
        assert!(SpanningTree::from_parents(0, &parents).is_none());
    }

    #[test]
    fn from_parents_rejects_parented_root() {
        let parents = vec![Some(1), None];
        assert!(SpanningTree::from_parents(0, &parents).is_none());
    }

    #[test]
    fn mst_has_n_minus_1_edges_and_spans() {
        let g = generators::connected_gnp(35, 0.15, 4);
        let mst =
            minimum_spanning_tree(&g, |u, v| ((u.min(v) * 31 + u.max(v)) % 17) as f64).unwrap();
        assert_eq!(mst.edge_count(), 34);
        assert!(g.contains_subgraph(&mst));
        assert!(traversal::is_connected(&mst));
    }

    #[test]
    fn mst_picks_cheap_edges() {
        // triangle with one heavy edge: MST avoids it
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let mst = minimum_spanning_tree(&g, |u, v| {
            if (u.min(v), u.max(v)) == (0, 2) {
                10.0
            } else {
                1.0
            }
        })
        .unwrap();
        assert!(!mst.has_edge(0, 2));
        assert_eq!(mst.edge_count(), 2);
    }

    #[test]
    fn mst_weight_is_minimal_vs_brute_force() {
        use crate::Graph;
        // exhaustively check a small weighted graph against all
        // spanning trees (pick edges subsets of size n-1)
        let g = generators::connected_gnp(6, 0.6, 2);
        let w = |u: NodeId, v: NodeId| ((u.min(v) * 7 + u.max(v) * 13) % 23) as f64 + 1.0;
        let mst = minimum_spanning_tree(&g, w).unwrap();
        let mst_weight: f64 = mst.edges().iter().map(|e| {
            let (u, v) = e.endpoints();
            w(u, v)
        }).sum();
        // brute force over all subsets of 5 edges
        let all = g.edges();
        let k = all.len();
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << k) {
            if mask.count_ones() as usize != 5 {
                continue;
            }
            let chosen: Vec<(NodeId, NodeId)> = (0..k)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| all[i].endpoints())
                .collect();
            let t = Graph::from_edges(6, chosen.iter().copied());
            if traversal::is_connected(&t) {
                let tw: f64 = chosen.iter().map(|&(u, v)| w(u, v)).sum();
                best = best.min(tw);
            }
        }
        assert!((mst_weight - best).abs() < 1e-9, "Prim {mst_weight} vs brute {best}");
    }

    #[test]
    fn mst_of_disconnected_graph_is_none() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(minimum_spanning_tree(&g, |_, _| 1.0).is_none());
        assert!(minimum_spanning_tree(&Graph::empty(0), |_, _| 1.0).is_none());
    }

    #[test]
    fn singleton_tree() {
        let g = Graph::empty(1);
        let t = SpanningTree::bfs(&g, 0).unwrap();
        assert!(t.is_leaf(0));
        assert_eq!(t.height(), 0);
        assert_eq!(t.path_to_root(0), vec![0]);
    }
}
