//! Graph substrate for the WCDS workspace.
//!
//! The paper models a wireless ad hoc network as a **unit-disk graph**
//! (UDG): nodes are points in the plane, and two nodes are adjacent iff
//! their Euclidean distance is at most one. Everything the paper's
//! algorithms and proofs need on top of that is implemented here, from
//! scratch:
//!
//! * [`Graph`] — a compact undirected simple graph in CSR (compressed
//!   sparse row) layout: one flat offset array plus one flat target
//!   array, so a node's neighbor list is a contiguous sorted slice;
//! * [`UnitDiskGraph`] — points + the induced [`Graph`], built in
//!   `O(n + |E|)` with a spatial hash (or a direct scan below the
//!   occupancy crossover);
//! * [`DynamicUdg`] — the same state kept mutable: moves/joins/leaves
//!   produce `O(Δ)` edge deltas against a live spatial index and splice
//!   the CSR instead of rebuilding it;
//! * [`traversal`] — BFS/DFS, hop distances, connected components;
//! * [`shortest_path`] — Dijkstra, hop-count and geometric-length APSP;
//! * [`SearchScratch`] — reusable epoch-stamped search state so
//!   all-sources sweeps run without per-source allocation;
//! * [`parallel`] — a dependency-free per-source parallel engine behind
//!   the opt-in `rayon` cargo feature;
//! * [`spanning`] — rooted BFS spanning trees with levels (the paper's
//!   level-based ranking substrate);
//! * [`domination`] — dominating-set / independence / weak-connectivity
//!   predicates (Definitions in §1–2 of the paper);
//! * [`generators`] — abstract (non-geometric) graph families for tests;
//! * [`io`] — a plain-text edge-list format for artifacts and debugging.
//!
//! # Examples
//!
//! ```
//! use wcds_geom::deploy;
//! use wcds_graph::{traversal, UnitDiskGraph};
//!
//! let udg = UnitDiskGraph::build(deploy::uniform(100, 5.0, 5.0, 7), 1.0);
//! let comps = traversal::connected_components(udg.graph());
//! assert_eq!(comps.iter().map(|c| c.len()).sum::<usize>(), 100);
//! ```

pub mod connectivity;
pub mod domination;
mod dynamic;
pub mod generators;
pub mod metrics;
mod graph;
pub mod io;
pub mod parallel;
// the one sanctioned `unsafe` island in the workspace: bounds-check-free
// CSR kernels whose index invariants are proved at construction
// (workspace policy denies unsafe_code everywhere else — DESIGN.md §9)
#[allow(unsafe_code)]
mod scratch;
pub mod shortest_path;
pub mod spanning;
pub mod traversal;
mod udg;

pub use dynamic::{DynamicUdg, TopoDelta};
pub use graph::{Graph, GraphBuilder};
pub use scratch::{CsrWeights, SearchScratch};
pub use udg::UnitDiskGraph;

/// Index of a node within a [`Graph`].
///
/// Nodes are dense indices `0..n`; algorithms in this workspace carry any
/// richer identity (protocol IDs, ranks) in side tables keyed by `NodeId`.
pub type NodeId = usize;

/// An undirected edge, stored with endpoints in ascending order.
///
/// # Examples
///
/// ```
/// use wcds_graph::Edge;
///
/// assert_eq!(Edge::new(5, 2), Edge::new(2, 5));
/// assert_eq!(Edge::new(5, 2).endpoints(), (2, 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    u: NodeId,
    v: NodeId,
}

impl Edge {
    /// Creates an edge; endpoint order is normalised.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loops are not representable; the UDG model
    /// has none).
    #[inline]
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loop edge ({u}, {u})");
        if u < v {
            Self { u, v }
        } else {
            Self { u: v, v: u }
        }
    }

    /// The endpoints in ascending order.
    #[inline]
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.u, self.v)
    }

    /// Whether `x` is one of the endpoints.
    #[inline]
    pub fn touches(self, x: NodeId) -> bool {
        self.u == x || self.v == x
    }

    /// The endpoint that is not `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint.
    #[inline]
    pub fn other(self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("node {x} is not an endpoint of {self:?}")
        }
    }
}

#[cfg(test)]
mod edge_tests {
    use super::Edge;

    #[test]
    fn normalisation_makes_edges_order_free() {
        assert_eq!(Edge::new(3, 1), Edge::new(1, 3));
    }

    #[test]
    fn other_returns_opposite_endpoint() {
        let e = Edge::new(4, 9);
        assert_eq!(e.other(4), 9);
        assert_eq!(e.other(9), 4);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let _ = Edge::new(1, 2).other(3);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = Edge::new(7, 7);
    }

    #[test]
    fn touches_both_endpoints_only() {
        let e = Edge::new(0, 5);
        assert!(e.touches(0));
        assert!(e.touches(5));
        assert!(!e.touches(3));
    }
}
