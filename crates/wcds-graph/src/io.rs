//! Plain-text graph serialization.
//!
//! A minimal, diff-friendly format for persisting experiment topologies
//! and debugging failures:
//!
//! ```text
//! # optional comments
//! nodes 5
//! edge 0 1
//! edge 1 2
//! point 0 0.25 1.5      # optional positions, one per node
//! ```
//!
//! Everything is line-oriented; unknown lines are an error (fail fast
//! rather than silently dropping data).

use crate::{Graph, GraphBuilder, NodeId};
use std::error::Error;
use std::fmt;
use std::str::FromStr;
use wcds_geom::Point;

/// Hard cap on the declared node count.
///
/// The parser allocates per-node state up front, so an adversarial
/// `nodes 99999999999999` line would otherwise abort the process with a
/// failed allocation before a single edge is read. Wire payloads (the
/// service layer reuses this format over TCP) must degrade to a typed
/// error instead.
pub const MAX_NODES: usize = 1 << 24;

/// Error parsing the text graph format.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseGraphError {
    line: usize,
    kind: ParseErrorKind,
}

impl ParseGraphError {
    /// The 1-based line the error was detected on (0 for whole-document
    /// errors such as a missing header or undecodable bytes).
    pub fn line(&self) -> usize {
        self.line
    }

    /// What went wrong.
    pub fn kind(&self) -> &ParseErrorKind {
        &self.kind
    }
}

/// The specific defect [`from_text`] / [`from_bytes`] rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// No `nodes <n>` header before the first data line (or at all).
    MissingHeader,
    /// A second `nodes` header — accepting it would silently discard
    /// every edge and point read so far.
    DuplicateHeader,
    /// A directive other than `nodes` / `edge` / `point`.
    UnknownDirective(String),
    /// Wrong token count or an unparsable token (includes lines cut off
    /// mid-way by truncation).
    Malformed(String),
    /// A node id at or beyond the declared count.
    OutOfRange(NodeId),
    /// Two `point` lines for one node.
    DuplicatePoint(NodeId),
    /// Declared node count beyond [`MAX_NODES`].
    TooManyNodes(usize),
    /// Byte input that is not valid UTF-8 (e.g. a frame truncated in
    /// the middle of a multi-byte character).
    InvalidUtf8,
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::MissingHeader => {
                write!(f, "line {}: expected `nodes <n>` header", self.line)
            }
            ParseErrorKind::UnknownDirective(d) => {
                write!(f, "line {}: unknown directive `{d}`", self.line)
            }
            ParseErrorKind::Malformed(s) => write!(f, "line {}: malformed line `{s}`", self.line),
            ParseErrorKind::OutOfRange(u) => {
                write!(f, "line {}: node {u} out of declared range", self.line)
            }
            ParseErrorKind::DuplicatePoint(u) => {
                write!(f, "line {}: duplicate point for node {u}", self.line)
            }
            ParseErrorKind::DuplicateHeader => {
                write!(f, "line {}: duplicate `nodes` header", self.line)
            }
            ParseErrorKind::TooManyNodes(n) => {
                write!(f, "line {}: node count {n} exceeds the {MAX_NODES} limit", self.line)
            }
            ParseErrorKind::InvalidUtf8 => write!(f, "input is not valid UTF-8"),
        }
    }
}

impl Error for ParseGraphError {}

/// A parsed document: the graph plus optional node positions.
#[derive(Debug, Clone)]
pub struct GraphDocument {
    /// The adjacency structure.
    pub graph: Graph,
    /// Node positions, if every node had a `point` line.
    pub points: Option<Vec<Point>>,
}

/// Serialises a graph (and optional positions) to the text format.
///
/// # Panics
///
/// Panics if `points` is `Some` with a length different from the node
/// count.
pub fn to_text(graph: &Graph, points: Option<&[Point]>) -> String {
    if let Some(p) = points {
        assert_eq!(p.len(), graph.node_count(), "points/nodes length mismatch");
    }
    let mut out = String::new();
    out.push_str(&format!("nodes {}\n", graph.node_count()));
    for e in graph.edges() {
        let (u, v) = e.endpoints();
        out.push_str(&format!("edge {u} {v}\n"));
    }
    if let Some(pts) = points {
        for (i, p) in pts.iter().enumerate() {
            out.push_str(&format!("point {i} {} {}\n", p.x, p.y));
        }
    }
    out
}

/// Parses the text format produced by [`to_text`].
///
/// # Errors
///
/// Returns [`ParseGraphError`] on any malformed, out-of-range, or unknown
/// line, with the 1-based line number.
pub fn from_text(text: &str) -> Result<GraphDocument, ParseGraphError> {
    let mut n: Option<usize> = None;
    let mut builder: Option<GraphBuilder> = None;
    let mut points: Vec<Option<Point>> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        // a trimmed non-empty line always has a first token, but stay
        // total: treat the impossible case as a blank line
        let Some(directive) = parts.next() else { continue };
        let err = |kind| ParseGraphError { line: line_no, kind };
        match directive {
            "nodes" => {
                if builder.is_some() {
                    return Err(err(ParseErrorKind::DuplicateHeader));
                }
                let count = parse_token::<usize>(parts.next(), line, line_no)?;
                if count > MAX_NODES {
                    return Err(err(ParseErrorKind::TooManyNodes(count)));
                }
                n = Some(count);
                builder = Some(GraphBuilder::new(count));
                points = vec![None; count];
            }
            "edge" => {
                let b = builder.as_mut().ok_or_else(|| err(ParseErrorKind::MissingHeader))?;
                let u = parse_token::<NodeId>(parts.next(), line, line_no)?;
                let v = parse_token::<NodeId>(parts.next(), line, line_no)?;
                let n = n.ok_or_else(|| err(ParseErrorKind::MissingHeader))?;
                for x in [u, v] {
                    if x >= n {
                        return Err(err(ParseErrorKind::OutOfRange(x)));
                    }
                }
                if u == v {
                    return Err(err(ParseErrorKind::Malformed(line.to_string())));
                }
                b.add_edge(u, v);
            }
            "point" => {
                if builder.is_none() {
                    return Err(err(ParseErrorKind::MissingHeader));
                }
                let u = parse_token::<NodeId>(parts.next(), line, line_no)?;
                let x = parse_token::<f64>(parts.next(), line, line_no)?;
                let y = parse_token::<f64>(parts.next(), line, line_no)?;
                let slot = points.get_mut(u).ok_or_else(|| err(ParseErrorKind::OutOfRange(u)))?;
                if slot.is_some() {
                    return Err(err(ParseErrorKind::DuplicatePoint(u)));
                }
                *slot = Some(Point::new(x, y));
            }
            other => return Err(err(ParseErrorKind::UnknownDirective(other.to_string()))),
        }
        if parts.next().is_some() {
            return Err(ParseGraphError {
                line: line_no,
                kind: ParseErrorKind::Malformed(line.to_string()),
            });
        }
    }
    let builder = builder.ok_or(ParseGraphError { line: 0, kind: ParseErrorKind::MissingHeader })?;
    let all_points: Option<Vec<Point>> = points.iter().copied().collect();
    Ok(GraphDocument { graph: builder.build(), points: all_points })
}

/// Parses the text format from raw bytes (e.g. a network frame).
///
/// Identical to [`from_text`] except that undecodable bytes — a frame
/// truncated inside a multi-byte character, or binary garbage — yield a
/// typed [`ParseErrorKind::InvalidUtf8`] instead of requiring the
/// caller to pre-validate.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on invalid UTF-8 or any defect
/// [`from_text`] rejects.
pub fn from_bytes(bytes: &[u8]) -> Result<GraphDocument, ParseGraphError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| ParseGraphError { line: 0, kind: ParseErrorKind::InvalidUtf8 })?;
    from_text(text)
}

fn parse_token<T: FromStr>(
    token: Option<&str>,
    line: &str,
    line_no: usize,
) -> Result<T, ParseGraphError> {
    token
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseGraphError { line: line_no, kind: ParseErrorKind::Malformed(line.to_string()) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::UnitDiskGraph;
    use wcds_geom::deploy;

    #[test]
    fn roundtrip_graph_only() {
        let g = generators::connected_gnp(20, 0.2, 4);
        let doc = from_text(&to_text(&g, None)).unwrap();
        assert_eq!(doc.graph, g);
        assert!(doc.points.is_none());
    }

    #[test]
    fn roundtrip_with_points() {
        let udg = UnitDiskGraph::build(deploy::uniform(15, 3.0, 3.0, 1), 1.0);
        let doc = from_text(&to_text(udg.graph(), Some(udg.points()))).unwrap();
        assert_eq!(&doc.graph, udg.graph());
        let pts = doc.points.unwrap();
        for (a, b) in pts.iter().zip(udg.points()) {
            assert!(a.distance(*b) < 1e-12);
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let doc = from_text("# hello\n\nnodes 2\nedge 0 1 # inline\n").unwrap();
        assert_eq!(doc.graph.edge_count(), 1);
    }

    #[test]
    fn missing_header_is_error() {
        let e = from_text("edge 0 1\n").unwrap_err();
        assert!(e.to_string().contains("nodes"));
    }

    #[test]
    fn out_of_range_edge_is_error() {
        let e = from_text("nodes 2\nedge 0 5\n").unwrap_err();
        assert!(e.to_string().contains("out of declared range"));
    }

    #[test]
    fn self_loop_is_error() {
        assert!(from_text("nodes 2\nedge 1 1\n").is_err());
    }

    #[test]
    fn unknown_directive_is_error() {
        let e = from_text("nodes 1\nvertex 0\n").unwrap_err();
        assert!(e.to_string().contains("unknown directive"));
    }

    #[test]
    fn trailing_tokens_are_error() {
        assert!(from_text("nodes 2\nedge 0 1 9\n").is_err());
    }

    #[test]
    fn duplicate_point_is_error() {
        let text = "nodes 1\npoint 0 0.0 0.0\npoint 0 1.0 1.0\n";
        let e = from_text(text).unwrap_err();
        assert!(e.to_string().contains("duplicate point"));
    }

    #[test]
    fn partial_points_yield_none() {
        let doc = from_text("nodes 2\nedge 0 1\npoint 0 0.0 0.0\n").unwrap();
        assert!(doc.points.is_none());
    }

    #[test]
    fn duplicate_header_is_error() {
        let e = from_text("nodes 3\nedge 0 1\nnodes 2\n").unwrap_err();
        assert_eq!(e.kind(), &ParseErrorKind::DuplicateHeader);
        assert_eq!(e.line(), 3);
    }

    #[test]
    fn absurd_node_count_is_error_not_abort() {
        let e = from_text("nodes 99999999999999\n").unwrap_err();
        assert!(matches!(e.kind(), ParseErrorKind::TooManyNodes(99999999999999)));
    }

    #[test]
    fn truncated_lines_are_typed_errors() {
        for text in ["nodes", "nodes 2\nedge 0", "nodes 2\nedge", "nodes 1\npoint 0 0.5"] {
            let e = from_text(text).unwrap_err();
            assert!(matches!(e.kind(), ParseErrorKind::Malformed(_)), "{text:?}: {e}");
        }
    }

    #[test]
    fn bytes_roundtrip_and_invalid_utf8() {
        let g = generators::connected_gnp(12, 0.3, 8);
        let doc = from_bytes(to_text(&g, None).as_bytes()).unwrap();
        assert_eq!(doc.graph, g);
        // a frame cut inside a multi-byte character must not panic
        let mut bytes = "nodes 2\nedge 0 1\n# é".as_bytes().to_vec();
        bytes.truncate(bytes.len() - 1);
        let e = from_bytes(&bytes).unwrap_err();
        assert_eq!(e.kind(), &ParseErrorKind::InvalidUtf8);
        assert_eq!(from_bytes(&[0xff, 0xfe, 0x00]).unwrap_err().kind(), &ParseErrorKind::InvalidUtf8);
    }

    #[test]
    fn empty_graph_roundtrip() {
        let doc = from_text("nodes 0\n").unwrap();
        assert_eq!(doc.graph.node_count(), 0);
        assert_eq!(doc.points, None.filter(|_: &Vec<Point>| false).or(Some(vec![])));
    }
}
