//! Weighted and hop-count shortest paths.
//!
//! The paper distinguishes (§3):
//!
//! * `h_G(u, v)` — minimum **hops** between `u` and `v` in `G`
//!   ([`crate::traversal::bfs_distances`]);
//! * `ℓ_G(u, v)` — total **Euclidean length** of a minimum-distance path
//!   in `G` ([`geometric_distances`], a Dijkstra over edge lengths);
//! * `ℓ_G'(u, v)` — worst-case length of a minimum-hop path in the
//!   spanner. Since every UDG edge has length ≤ 1, any minimum-hop path
//!   of `h` hops has length ≤ `h`; [`min_hop_max_length`] computes the
//!   exact maximum over all minimum-hop paths for tight measurements.

use crate::{parallel, Graph, NodeId, SearchScratch};
use wcds_geom::Point;

/// Dijkstra over arbitrary non-negative edge weights.
///
/// `weight(u, v)` is called for each relaxed edge and must be symmetric,
/// finite, and non-negative. Returns per-node distance (`None` if
/// unreachable).
///
/// # Panics
///
/// Panics if a weight is negative or non-finite.
pub fn dijkstra<W>(g: &Graph, source: NodeId, weight: W) -> Vec<Option<f64>>
where
    W: FnMut(NodeId, NodeId) -> f64,
{
    let mut scratch = SearchScratch::for_graph(g);
    scratch.dijkstra(g, source, weight);
    scratch.lens_to_vec(g.node_count())
}

/// Dijkstra over Euclidean edge lengths: the paper's `ℓ_G(u, ·)`.
///
/// `points[i]` must be the position of node `i`.
pub fn geometric_distances(g: &Graph, points: &[Point], source: NodeId) -> Vec<Option<f64>> {
    dijkstra(g, source, |u, v| points[u].distance(points[v]))
}

/// For every node `v`: the **maximum** Euclidean length over all
/// *minimum-hop* paths `source → v`.
///
/// This is the paper's `ℓ_G'(u, v)` ("the maximum total length of the
/// minimum-hop paths"): a routing layer that minimises hops may pick any
/// minimum-hop path, so the guarantee must cover the longest one. Runs a
/// BFS layering followed by a DAG longest-path pass over the shortest-path
/// DAG — `O(n + |E|)`. The BFS visit order *is* a topological order of
/// that DAG, so no sort is needed.
pub fn min_hop_max_length(g: &Graph, points: &[Point], source: NodeId) -> Vec<Option<f64>> {
    let mut scratch = SearchScratch::for_graph(g);
    scratch.min_hop_max_length(g, points, source);
    scratch.lens_to_vec(g.node_count())
}

/// All-pairs hop distances as a dense matrix (`n` BFS runs, `O(n·(n+|E|))`).
///
/// Entry `[u][v]` is `None` when `v` is unreachable from `u`. The rows
/// run on the parallel engine ([`parallel::threads`] workers when the
/// `rayon` feature is on); each row is a pure per-source map, so thread
/// count cannot affect the matrix.
pub fn all_pairs_hops(g: &Graph) -> Vec<Vec<Option<u32>>> {
    let n = g.node_count();
    parallel::map_indices(parallel::threads(), n, || SearchScratch::new(n), |scratch, u| {
        scratch.bfs(g, u);
        scratch.hops_to_vec(n)
    })
}

/// All-pairs geometric distances (`n` Dijkstra runs, parallel like
/// [`all_pairs_hops`]).
pub fn all_pairs_geometric(g: &Graph, points: &[Point]) -> Vec<Vec<Option<f64>>> {
    let n = g.node_count();
    parallel::map_indices(parallel::threads(), n, || SearchScratch::new(n), |scratch, u| {
        scratch.geometric(g, points, u);
        scratch.lens_to_vec(n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::UnitDiskGraph;
    use wcds_geom::deploy;

    #[test]
    fn dijkstra_matches_bfs_on_unit_weights() {
        let g = generators::connected_gnp(60, 0.08, 3);
        let d_w = dijkstra(&g, 0, |_, _| 1.0);
        let d_h = crate::traversal::bfs_distances(&g, 0);
        for u in g.nodes() {
            assert_eq!(d_w[u].map(|x| x.round() as u32), d_h[u], "node {u}");
        }
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        // 0-1 heavy direct edge, 0-2-1 light detour
        let g = Graph::from_edges(3, [(0, 1), (0, 2), (2, 1)]);
        let d = dijkstra(&g, 0, |u, v| if (u.min(v), u.max(v)) == (0, 1) { 10.0 } else { 1.0 });
        assert_eq!(d[1], Some(2.0));
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let d = dijkstra(&g, 0, |_, _| 1.0);
        assert_eq!(d[2], None);
    }

    #[test]
    #[should_panic(expected = "invalid edge weight")]
    fn dijkstra_rejects_negative_weights() {
        let g = generators::path(3);
        let _ = dijkstra(&g, 0, |_, _| -1.0);
    }

    #[test]
    fn geometric_distance_on_chain() {
        let udg = UnitDiskGraph::build(deploy::chain(5, 0.9), 1.0);
        let d = geometric_distances(udg.graph(), udg.points(), 0);
        assert!((d[4].unwrap() - 3.6).abs() < 1e-9);
    }

    #[test]
    fn geometric_never_below_euclidean() {
        let udg = UnitDiskGraph::build(deploy::uniform(80, 5.0, 5.0, 17), 1.0);
        let d = geometric_distances(udg.graph(), udg.points(), 0);
        for v in udg.graph().nodes() {
            if let Some(dv) = d[v] {
                let straight = udg.point(0).distance(udg.point(v));
                assert!(dv >= straight - 1e-9, "ℓ_G({v}) = {dv} < |0v| = {straight}");
            }
        }
    }

    #[test]
    fn min_hop_max_length_bounded_by_hops() {
        // every UDG edge has length ≤ radius, so max length ≤ hops · radius
        let udg = UnitDiskGraph::build(deploy::uniform(120, 6.0, 6.0, 9), 1.0);
        let hops = crate::traversal::bfs_distances(udg.graph(), 0);
        let lens = min_hop_max_length(udg.graph(), udg.points(), 0);
        for v in udg.graph().nodes() {
            match (hops[v], lens[v]) {
                (Some(h), Some(l)) => assert!(l <= h as f64 + 1e-9, "node {v}: {l} > {h}"),
                (None, None) => {}
                other => panic!("reachability mismatch at {v}: {other:?}"),
            }
        }
    }

    #[test]
    fn min_hop_max_length_picks_longest_tied_path() {
        // two 2-hop paths 0→3: via 1 (short legs) and via 2 (long legs)
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.1),  // node 1: short detour
            Point::new(0.5, -0.8), // node 2: long detour
            Point::new(1.0, 0.0),
        ];
        let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]);
        let lens = min_hop_max_length(&g, &pts, 0);
        let via1 = pts[0].distance(pts[1]) + pts[1].distance(pts[3]);
        let via2 = pts[0].distance(pts[2]) + pts[2].distance(pts[3]);
        assert!(via2 > via1);
        assert!((lens[3].unwrap() - via2).abs() < 1e-12);
    }

    #[test]
    fn all_pairs_hops_symmetric() {
        let g = generators::connected_gnp(25, 0.15, 8);
        let m = all_pairs_hops(&g);
        for u in g.nodes() {
            assert_eq!(m[u][u], Some(0));
            for v in g.nodes() {
                assert_eq!(m[u][v], m[v][u]);
            }
        }
    }

    #[test]
    fn all_pairs_geometric_symmetric() {
        let udg = UnitDiskGraph::build(deploy::uniform(30, 3.0, 3.0, 4), 1.0);
        let m = all_pairs_geometric(udg.graph(), udg.points());
        for u in udg.graph().nodes() {
            for v in udg.graph().nodes() {
                match (m[u][v], m[v][u]) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                    (None, None) => {}
                    other => panic!("asymmetry at ({u}, {v}): {other:?}"),
                }
            }
        }
    }
}
