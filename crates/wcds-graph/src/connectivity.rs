//! Cut vertices, bridges, and robustness metrics.
//!
//! A virtual backbone is only as good as its weakest dominator: these
//! utilities find the **articulation points** and **bridges** of a graph
//! (Hopcroft–Tarjan lowpoint algorithm, iterative) so experiments can
//! quantify how fragile a constructed backbone is to single-node
//! failures.

use crate::{Edge, Graph, NodeId};

/// The articulation points (cut vertices) of `g`, sorted ascending.
///
/// Removing an articulation point increases the number of connected
/// components. Computed per component; isolated vertices are never
/// articulation points.
///
/// # Examples
///
/// ```
/// use wcds_graph::{connectivity, generators};
///
/// // path 0-1-2-3: the interior nodes are cut vertices
/// let g = generators::path(4);
/// assert_eq!(connectivity::articulation_points(&g), vec![1, 2]);
/// ```
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    let state = lowpoint_dfs(g);
    let mut out: Vec<NodeId> = g.nodes().filter(|&u| state.is_cut[u]).collect();
    out.sort_unstable();
    out
}

/// The bridges (cut edges) of `g`, sorted.
///
/// # Examples
///
/// ```
/// use wcds_graph::{connectivity, generators, Edge};
///
/// let g = generators::path(3);
/// assert_eq!(connectivity::bridges(&g), vec![Edge::new(0, 1), Edge::new(1, 2)]);
/// assert!(connectivity::bridges(&generators::cycle(4)).is_empty());
/// ```
pub fn bridges(g: &Graph) -> Vec<Edge> {
    let state = lowpoint_dfs(g);
    let mut out = state.bridges;
    out.sort_unstable();
    out
}

/// Whether `g` stays connected after deleting node `u` (`u` itself is
/// ignored in the connectivity check).
///
/// The empty and singleton graphs survive trivially.
pub fn survives_node_removal(g: &Graph, u: NodeId) -> bool {
    let n = g.node_count();
    if n <= 2 {
        return true;
    }
    // BFS from any other node, skipping u
    let start = if u == 0 { 1 } else { 0 };
    let mut seen = vec![false; n];
    seen[u] = true; // pretend visited so BFS never enters
    seen[start] = true;
    let mut queue = std::collections::VecDeque::from([start]);
    let mut count = 1;
    while let Some(x) = queue.pop_front() {
        for y in g.adj(x) {
            if !seen[y] {
                seen[y] = true;
                count += 1;
                queue.push_back(y);
            }
        }
    }
    count == n - 1
}

/// A vertex cut of size `< k` whose removal disconnects `g`, or `None`
/// if no such cut exists.
///
/// `None` means `g` is *k-resilient*: it stays connected after **any**
/// `k − 1` node deletions. This is the standard k-vertex-connectivity
/// condition relaxed at small orders — complete graphs pass for every
/// `k` (removing nodes from a clique can never disconnect it), which is
/// the convention a backbone-survivability check wants. An already
/// disconnected graph yields the empty cut.
///
/// `k ≤ 1` reduces to connectivity; `k = 2` uses the Hopcroft–Tarjan
/// articulation pass; larger `k` runs a Menger flow sweep (unit node
/// capacities via node splitting) over the `k` smallest nodes — any cut
/// `C` with `|C| < k` misses at least one probe `s`, and a node `t` cut
/// off from `s` is necessarily non-adjacent to it, so the `s`–`t`
/// max-flow exposes `C` (or a smaller cut).
///
/// # Examples
///
/// ```
/// use wcds_graph::{connectivity, generators};
///
/// let path = generators::path(4);
/// assert_eq!(connectivity::vertex_cut_below(&path, 2), Some(vec![1]));
/// let cycle = generators::cycle(5);
/// assert_eq!(connectivity::vertex_cut_below(&cycle, 2), None);
/// assert!(connectivity::vertex_cut_below(&cycle, 3).is_some());
/// assert_eq!(connectivity::vertex_cut_below(&generators::complete(4), 3), None);
/// ```
pub fn vertex_cut_below(g: &Graph, k: u32) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    if n <= 1 {
        return None;
    }
    if !crate::traversal::is_connected(g) {
        return Some(Vec::new());
    }
    if k <= 1 {
        return None;
    }
    if k == 2 {
        return articulation_points(g).first().map(|&a| vec![a]);
    }
    let probes = n.min(k as usize);
    for s in 0..probes {
        for t in 0..n {
            if t == s || g.has_edge(s, t) {
                continue;
            }
            let (flow, cut) = vertex_disjoint_paths(g, s, t, k);
            if flow < k {
                return Some(cut);
            }
        }
    }
    None
}

/// Whether `g` stays connected after any `k − 1` node deletions
/// (see [`vertex_cut_below`] for the exact convention at small orders).
pub fn is_k_connected(g: &Graph, k: u32) -> bool {
    vertex_cut_below(g, k).is_none()
}

/// Whether the backbone `s` induces a k-connected subgraph **within
/// every connected component of `g`**.
///
/// The backbone nodes are grouped by the `g`-component containing
/// them; each group's induced subgraph (edges of `g` with both
/// endpoints in the group) must satisfy [`is_k_connected`]. Groups of
/// size ≤ 1 pass vacuously. Grouping per component makes the check
/// meaningful mid-storm, when `g` itself may already be partitioned.
///
/// # Examples
///
/// ```
/// use wcds_graph::{connectivity, generators};
///
/// // C6: opposite triangle {0, 2, 4} induces no edges — not connected
/// let g = generators::cycle(6);
/// assert!(!connectivity::backbone_k_connectivity(&g, &[0, 2, 4], 1));
/// assert!(connectivity::backbone_k_connectivity(&g, &[0, 1, 2], 1));
/// assert!(!connectivity::backbone_k_connectivity(&g, &[0, 1, 2], 2));
/// ```
pub fn backbone_k_connectivity(g: &Graph, s: &[NodeId], k: u32) -> bool {
    let mut comp = vec![usize::MAX; g.node_count()];
    for (i, c) in crate::traversal::connected_components(g).iter().enumerate() {
        for &u in c {
            comp[u] = i;
        }
    }
    let mut sorted: Vec<NodeId> = s.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut groups: std::collections::BTreeMap<usize, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for &u in &sorted {
        groups.entry(comp[u]).or_default().push(u);
    }
    groups.values().all(|grp| {
        grp.len() <= 1 || is_k_connected(&compact_induced(g, grp), k)
    })
}

/// The subgraph induced by the sorted node list `s`, re-numbered
/// `0..s.len()` (unlike [`Graph::induced`], which keeps the host id
/// space and leaves non-members isolated).
fn compact_induced(g: &Graph, s_sorted: &[NodeId]) -> Graph {
    let mut idx = vec![usize::MAX; g.node_count()];
    for (i, &u) in s_sorted.iter().enumerate() {
        idx[u] = i;
    }
    let mut edges = Vec::new();
    for (i, &u) in s_sorted.iter().enumerate() {
        for v in g.adj(u) {
            let j = idx[v];
            if j != usize::MAX && j > i {
                edges.push((i, j));
            }
        }
    }
    Graph::from_edges(s_sorted.len(), edges)
}

/// Unit-node-capacity max flow between `s` and `t` (node splitting:
/// `in(v) = 2v`, `out(v) = 2v + 1`), stopped at `limit`. Returns the
/// attained flow and, when it is below `limit`, the minimum `s`–`t`
/// vertex cut read off the residual reachability frontier.
fn vertex_disjoint_paths(g: &Graph, s: NodeId, t: NodeId, limit: u32) -> (u32, Vec<NodeId>) {
    let n = g.node_count();
    // edge arrays: edge i and its reverse i^1 are adjacent
    let mut to: Vec<u32> = Vec::new();
    let mut cap: Vec<u32> = Vec::new();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); 2 * n];
    let push = |adj: &mut Vec<Vec<u32>>, to: &mut Vec<u32>, cap: &mut Vec<u32>,
                    a: usize, b: usize, c: u32| {
        adj[a].push(to.len() as u32);
        to.push(b as u32);
        cap.push(c);
        adj[b].push(to.len() as u32);
        to.push(a as u32);
        cap.push(0);
    };
    for v in 0..n {
        push(&mut adj, &mut to, &mut cap, 2 * v, 2 * v + 1, 1);
        for w in g.adj(v) {
            push(&mut adj, &mut to, &mut cap, 2 * v + 1, 2 * w, limit);
        }
    }
    let src = 2 * s + 1;
    let dst = 2 * t;

    let mut flow = 0u32;
    let mut parent: Vec<u32> = vec![u32::MAX; 2 * n];
    let mut queue = std::collections::VecDeque::new();
    while flow < limit {
        parent.iter_mut().for_each(|p| *p = u32::MAX);
        parent[src] = u32::MAX - 1; // visited marker with no incoming edge
        queue.clear();
        queue.push_back(src);
        while let Some(x) = queue.pop_front() {
            if x == dst {
                break;
            }
            for &e in &adj[x] {
                let y = to[e as usize] as usize;
                if cap[e as usize] > 0 && parent[y] == u32::MAX {
                    parent[y] = e;
                    queue.push_back(y);
                }
            }
        }
        if parent[dst] == u32::MAX {
            break; // no augmenting path
        }
        // bottleneck and augment (internal arcs make it 1 in practice)
        let mut bottleneck = limit;
        let mut x = dst;
        while x != src {
            let e = parent[x] as usize;
            bottleneck = bottleneck.min(cap[e]);
            x = to[e ^ 1] as usize;
        }
        let mut x = dst;
        while x != src {
            let e = parent[x] as usize;
            cap[e] -= bottleneck;
            cap[e ^ 1] += bottleneck;
            x = to[e ^ 1] as usize;
        }
        flow += bottleneck;
    }
    if flow >= limit {
        return (flow, Vec::new());
    }
    // min cut: nodes whose in-half is residual-reachable from src but
    // whose out-half is not — the saturated internal arcs
    let cut = (0..n)
        .filter(|&v| parent[2 * v] != u32::MAX && parent[2 * v + 1] == u32::MAX)
        .collect();
    (flow, cut)
}

struct LowpointState {
    is_cut: Vec<bool>,
    bridges: Vec<Edge>,
}

/// Iterative Hopcroft–Tarjan DFS computing articulation points and
/// bridges in one pass, safe for deep graphs (no recursion).
fn lowpoint_dfs(g: &Graph) -> LowpointState {
    let n = g.node_count();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut is_cut = vec![false; n];
    let mut bridges = Vec::new();
    let mut timer = 0;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // stack entries: (node, index into neighbor list)
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0;

        while let Some(&(u, i)) = stack.last() {
            if i < g.degree(u) {
                if let Some(top) = stack.last_mut() {
                    top.1 += 1;
                }
                let v = g.neighbors(u)[i] as NodeId;
                if disc[v] == usize::MAX {
                    parent[v] = Some(u);
                    if u == root {
                        root_children += 1;
                    }
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, 0));
                } else if parent[u] != Some(v) {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(p) = parent[u] {
                    low[p] = low[p].min(low[u]);
                    if low[u] >= disc[p] && p != root {
                        is_cut[p] = true;
                    }
                    if low[u] > disc[p] {
                        bridges.push(Edge::new(p, u));
                    }
                }
            }
        }
        is_cut[root] = root_children >= 2;
    }
    LowpointState { is_cut, bridges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, traversal};

    #[test]
    fn path_interiors_are_cut_vertices() {
        let g = generators::path(6);
        assert_eq!(articulation_points(&g), vec![1, 2, 3, 4]);
        assert_eq!(bridges(&g).len(), 5);
    }

    #[test]
    fn cycle_has_no_cuts() {
        let g = generators::cycle(7);
        assert!(articulation_points(&g).is_empty());
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn star_center_is_the_only_cut() {
        let g = generators::star(5);
        assert_eq!(articulation_points(&g), vec![0]);
        assert_eq!(bridges(&g).len(), 5);
    }

    #[test]
    fn complete_graph_is_robust() {
        let g = generators::complete(6);
        assert!(articulation_points(&g).is_empty());
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        // triangles 0-1-2 and 2-3-4 share vertex 2
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        assert_eq!(articulation_points(&g), vec![2]);
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn bridge_with_triangle() {
        // triangle 0-1-2 plus pendant edge 2-3: bridge (2,3), cut {2}
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(articulation_points(&g), vec![2]);
        assert_eq!(bridges(&g), vec![Edge::new(2, 3)]);
    }

    #[test]
    fn disconnected_graphs_handled_per_component() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        assert_eq!(articulation_points(&g), vec![1, 4]);
        assert_eq!(bridges(&g).len(), 4);
    }

    #[test]
    fn survives_removal_agrees_with_cut_vertices() {
        for seed in 0..8 {
            let g = generators::connected_gnp(30, 0.1, seed);
            let cuts = articulation_points(&g);
            for u in g.nodes() {
                assert_eq!(
                    !survives_node_removal(&g, u),
                    cuts.contains(&u),
                    "seed {seed}, node {u}"
                );
            }
        }
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // the iterative DFS must handle 50k-node paths
        let g = generators::path(50_000);
        let cuts = articulation_points(&g);
        assert_eq!(cuts.len(), 49_998);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        assert!(articulation_points(&Graph::empty(0)).is_empty());
        assert!(articulation_points(&Graph::empty(1)).is_empty());
        assert!(articulation_points(&generators::path(2)).is_empty());
        assert!(survives_node_removal(&generators::path(2), 0));
    }

    /// Connectivity of `g` after deleting the node set `kill`.
    fn connected_without(g: &Graph, kill: &[NodeId]) -> bool {
        let n = g.node_count();
        let dead = g.membership(kill);
        let Some(start) = (0..n).find(|&u| !dead[u]) else { return true };
        let mut seen = dead.clone();
        seen[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        let mut count = 1;
        while let Some(x) = queue.pop_front() {
            for y in g.adj(x) {
                if !seen[y] {
                    seen[y] = true;
                    count += 1;
                    queue.push_back(y);
                }
            }
        }
        count == n - kill.len()
    }

    #[test]
    fn vertex_cut_below_matches_brute_force_removal() {
        for seed in 0..30u64 {
            let g = generators::connected_gnp(12, 0.3, seed);
            for k in 1..=3u32 {
                let brute = match k {
                    1 => true,
                    2 => (0..12).all(|u| connected_without(&g, &[u])),
                    _ => (0..12).all(|u| {
                        (u + 1..12).all(|v| connected_without(&g, &[u, v]))
                    }),
                };
                assert_eq!(
                    is_k_connected(&g, k),
                    brute,
                    "seed {seed} k {k} disagrees with brute force"
                );
                if let Some(cut) = vertex_cut_below(&g, k) {
                    assert!(cut.len() < k as usize, "seed {seed}: cut too large");
                    assert!(
                        !connected_without(&g, &cut),
                        "seed {seed} k {k}: witness cut {cut:?} does not disconnect"
                    );
                }
            }
        }
    }

    #[test]
    fn k_connectivity_known_families() {
        assert!(is_k_connected(&generators::cycle(8), 2));
        assert!(!is_k_connected(&generators::cycle(8), 3));
        assert!(!is_k_connected(&generators::path(5), 2));
        // cliques are k-resilient for every k (no cut disconnects them)
        for k in 1..=4 {
            assert!(is_k_connected(&generators::complete(4), k));
        }
        assert!(is_k_connected(&Graph::empty(1), 3));
        assert_eq!(vertex_cut_below(&Graph::empty(2), 1), Some(vec![]));
    }

    #[test]
    fn backbone_groups_are_checked_per_component() {
        // two disjoint triangles: each triangle's backbone is judged
        // inside its own component
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        assert!(backbone_k_connectivity(&g, &[0, 1, 2, 3, 4, 5], 2));
        assert!(backbone_k_connectivity(&g, &[0, 3], 2)); // singleton groups
        assert!(backbone_k_connectivity(&g, &[0, 1, 3], 2)); // K2 group: clique convention
        assert!(!backbone_k_connectivity(&generators::path(3), &[0, 1, 2], 2));
    }
}
