//! Cut vertices, bridges, and robustness metrics.
//!
//! A virtual backbone is only as good as its weakest dominator: these
//! utilities find the **articulation points** and **bridges** of a graph
//! (Hopcroft–Tarjan lowpoint algorithm, iterative) so experiments can
//! quantify how fragile a constructed backbone is to single-node
//! failures.

use crate::{Edge, Graph, NodeId};

/// The articulation points (cut vertices) of `g`, sorted ascending.
///
/// Removing an articulation point increases the number of connected
/// components. Computed per component; isolated vertices are never
/// articulation points.
///
/// # Examples
///
/// ```
/// use wcds_graph::{connectivity, generators};
///
/// // path 0-1-2-3: the interior nodes are cut vertices
/// let g = generators::path(4);
/// assert_eq!(connectivity::articulation_points(&g), vec![1, 2]);
/// ```
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    let state = lowpoint_dfs(g);
    let mut out: Vec<NodeId> = g.nodes().filter(|&u| state.is_cut[u]).collect();
    out.sort_unstable();
    out
}

/// The bridges (cut edges) of `g`, sorted.
///
/// # Examples
///
/// ```
/// use wcds_graph::{connectivity, generators, Edge};
///
/// let g = generators::path(3);
/// assert_eq!(connectivity::bridges(&g), vec![Edge::new(0, 1), Edge::new(1, 2)]);
/// assert!(connectivity::bridges(&generators::cycle(4)).is_empty());
/// ```
pub fn bridges(g: &Graph) -> Vec<Edge> {
    let state = lowpoint_dfs(g);
    let mut out = state.bridges;
    out.sort_unstable();
    out
}

/// Whether `g` stays connected after deleting node `u` (`u` itself is
/// ignored in the connectivity check).
///
/// The empty and singleton graphs survive trivially.
pub fn survives_node_removal(g: &Graph, u: NodeId) -> bool {
    let n = g.node_count();
    if n <= 2 {
        return true;
    }
    // BFS from any other node, skipping u
    let start = if u == 0 { 1 } else { 0 };
    let mut seen = vec![false; n];
    seen[u] = true; // pretend visited so BFS never enters
    seen[start] = true;
    let mut queue = std::collections::VecDeque::from([start]);
    let mut count = 1;
    while let Some(x) = queue.pop_front() {
        for y in g.adj(x) {
            if !seen[y] {
                seen[y] = true;
                count += 1;
                queue.push_back(y);
            }
        }
    }
    count == n - 1
}

struct LowpointState {
    is_cut: Vec<bool>,
    bridges: Vec<Edge>,
}

/// Iterative Hopcroft–Tarjan DFS computing articulation points and
/// bridges in one pass, safe for deep graphs (no recursion).
fn lowpoint_dfs(g: &Graph) -> LowpointState {
    let n = g.node_count();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut is_cut = vec![false; n];
    let mut bridges = Vec::new();
    let mut timer = 0;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // stack entries: (node, index into neighbor list)
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0;

        while let Some(&(u, i)) = stack.last() {
            if i < g.degree(u) {
                stack.last_mut().expect("just peeked").1 += 1;
                let v = g.neighbors(u)[i] as NodeId;
                if disc[v] == usize::MAX {
                    parent[v] = Some(u);
                    if u == root {
                        root_children += 1;
                    }
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, 0));
                } else if parent[u] != Some(v) {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(p) = parent[u] {
                    low[p] = low[p].min(low[u]);
                    if low[u] >= disc[p] && p != root {
                        is_cut[p] = true;
                    }
                    if low[u] > disc[p] {
                        bridges.push(Edge::new(p, u));
                    }
                }
            }
        }
        is_cut[root] = root_children >= 2;
    }
    LowpointState { is_cut, bridges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, traversal};

    #[test]
    fn path_interiors_are_cut_vertices() {
        let g = generators::path(6);
        assert_eq!(articulation_points(&g), vec![1, 2, 3, 4]);
        assert_eq!(bridges(&g).len(), 5);
    }

    #[test]
    fn cycle_has_no_cuts() {
        let g = generators::cycle(7);
        assert!(articulation_points(&g).is_empty());
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn star_center_is_the_only_cut() {
        let g = generators::star(5);
        assert_eq!(articulation_points(&g), vec![0]);
        assert_eq!(bridges(&g).len(), 5);
    }

    #[test]
    fn complete_graph_is_robust() {
        let g = generators::complete(6);
        assert!(articulation_points(&g).is_empty());
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        // triangles 0-1-2 and 2-3-4 share vertex 2
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        assert_eq!(articulation_points(&g), vec![2]);
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn bridge_with_triangle() {
        // triangle 0-1-2 plus pendant edge 2-3: bridge (2,3), cut {2}
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(articulation_points(&g), vec![2]);
        assert_eq!(bridges(&g), vec![Edge::new(2, 3)]);
    }

    #[test]
    fn disconnected_graphs_handled_per_component() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        assert_eq!(articulation_points(&g), vec![1, 4]);
        assert_eq!(bridges(&g).len(), 4);
    }

    #[test]
    fn survives_removal_agrees_with_cut_vertices() {
        for seed in 0..8 {
            let g = generators::connected_gnp(30, 0.1, seed);
            let cuts = articulation_points(&g);
            for u in g.nodes() {
                assert_eq!(
                    !survives_node_removal(&g, u),
                    cuts.contains(&u),
                    "seed {seed}, node {u}"
                );
            }
        }
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // the iterative DFS must handle 50k-node paths
        let g = generators::path(50_000);
        let cuts = articulation_points(&g);
        assert_eq!(cuts.len(), 49_998);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        assert!(articulation_points(&Graph::empty(0)).is_empty());
        assert!(articulation_points(&Graph::empty(1)).is_empty());
        assert!(articulation_points(&generators::path(2)).is_empty());
        assert!(survives_node_removal(&generators::path(2), 0));
    }
}
