//! Abstract (non-geometric) graph families.
//!
//! Unit-disk topologies come from [`crate::UnitDiskGraph`]; these
//! generators produce classic families for unit tests, adversarial
//! inputs, and property-test shrinking. Note that most of these are *not*
//! unit-disk graphs — MIS/UDG-specific lemmas (e.g. the "at most five MIS
//! neighbors" bound) do not apply to them, and tests that exercise those
//! lemmas must use geometric inputs.

use crate::{Graph, GraphBuilder};
use wcds_rng::{ChaCha12Rng, Rng};

/// A path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (i - 1, i)))
}

/// A cycle on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// A star with center `0` and `leaves` leaves.
pub fn star(leaves: usize) -> Graph {
    Graph::from_edges(leaves + 1, (1..=leaves).map(|i| (0, i)))
}

/// A complete `rows × cols` grid graph (4-neighborhood).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// An Erdős–Rényi `G(n, p)` random graph with a fixed seed.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// A connected `G(n, p)`-flavored graph: a random spanning tree (random
/// Prüfer-style attachment) plus `G(n, p)` extra edges.
///
/// Guaranteed connected for all `n`, useful when a test needs "some
/// connected graph" without retry loops.
pub fn connected_gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n.max(1));
    // random attachment tree: node i links to a uniform earlier node
    for i in 1..n {
        b.add_edge(i, rng.gen_range(0..i));
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// A "caterpillar": a spine path of length `spine` with `legs` pendant
/// leaves per spine node. Stresses dominating-set algorithms (every leaf
/// must be dominated).
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n.max(1));
    for i in 1..spine {
        b.add_edge(i - 1, i);
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(s, spine + s * legs + l);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn path_degenerate_sizes() {
        assert_eq!(path(0).node_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.nodes().all(|u| g.degree(u) == 2));
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(6).edge_count(), 15);
        assert_eq!(complete(1).edge_count(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(0), 7);
        assert!((1..=7).all(|u| g.degree(u) == 1));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // edges: 3*3 horizontal + 2*4 vertical
        assert_eq!(g.edge_count(), 9 + 8);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, 1).edge_count(), 45);
    }

    #[test]
    fn gnp_is_deterministic() {
        assert_eq!(gnp(20, 0.3, 5), gnp(20, 0.3, 5));
    }

    #[test]
    fn connected_gnp_is_connected() {
        for seed in 0..10 {
            assert!(traversal::is_connected(&connected_gnp(30, 0.05, seed)));
        }
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 3 + 12);
        assert!(traversal::is_connected(&g));
    }
}
