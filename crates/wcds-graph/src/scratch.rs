//! Reusable, epoch-stamped search state for all-sources sweeps.
//!
//! Per-source BFS/Dijkstra over the same graph dominates the workspace's
//! measurement paths (dilation, eccentricity, APSP). Allocating and
//! zeroing fresh `Vec`s for every source costs `O(n)` per source even
//! when a search touches a handful of nodes; [`SearchScratch`] keeps the
//! arrays alive across sources and resets them by bumping an **epoch
//! stamp** instead of clearing — a per-source reset is `O(1)`, and only
//! entries actually written during a search are ever observable.
//!
//! Two further hot-path choices, both invisible through the API:
//!
//! * stamps and values live in one `(stamp, value)` slot array, so a
//!   random-access probe during a relaxation touches one cache line,
//!   not two;
//! * Dijkstra over precomputed [`CsrWeights`] uses a **calendar queue**
//!   (ring of distance buckets of width `max_weight / 8`) instead of a
//!   binary heap. With non-negative bounded weights the label-correcting
//!   bucket scan settles the same fixed point `dist[v] = min over paths
//!   of the float path sum` as heap Dijkstra — IEEE addition of
//!   non-negatives is monotone, so the two produce bit-identical
//!   distance arrays — while replacing `O(log n)` sift steps with `O(1)`
//!   pushes and pops.
//!
//! The scratch holds one hop array and one length array, so a single
//! instance supports one BFS *and* one Dijkstra/DAG pass over the same
//! source concurrently (the dilation engine runs exactly that pair per
//! graph). Use two scratches to sweep two graphs side by side.

use crate::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wcds_geom::Point;

/// Hints the CPU to pull `p`'s cache line toward L1. A no-op off
/// x86_64; never a memory access in the language sense.
#[inline(always)]
fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a pure performance hint with no observable
    // memory effects; it is architecturally valid for any address.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// A `T`-valued array whose entries are valid only if their stamp
/// matches the current epoch; `reset` is `O(1)` (one epoch bump).
#[derive(Debug, Clone)]
struct EpochArray<T> {
    epoch: u32,
    slots: Vec<(u32, T)>,
}

impl<T: Copy + Default> EpochArray<T> {
    fn new(n: usize) -> Self {
        Self { epoch: 1, slots: vec![(0, T::default()); n] }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn resize(&mut self, n: usize) {
        self.slots.resize(n, (0, T::default()));
    }

    /// Invalidates every entry. `O(1)` except once every `u32::MAX`
    /// resets, when the stamps must be rewound.
    fn reset(&mut self) {
        if self.epoch == u32::MAX {
            for s in &mut self.slots {
                s.0 = 0;
            }
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    #[inline]
    fn set(&mut self, i: usize, v: T) {
        self.slots[i] = (self.epoch, v);
    }

    #[inline]
    fn get(&self, i: usize) -> Option<T> {
        let (stamp, v) = self.slots[i];
        (stamp == self.epoch).then_some(v)
    }

    #[inline]
    fn is_set(&self, i: usize) -> bool {
        self.slots[i].0 == self.epoch
    }

}

/// A max-heap entry ordered so the smallest distance pops first.
#[derive(Debug, Clone, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) yields the minimum distance;
        // distances are finite (asserted at insertion) — a NaN would
        // only misorder the heap, never panic.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-edge weights aligned with a graph's CSR target array, validated
/// once at construction so relaxation loops run assert-free.
///
/// Entry `i` weighs the edge whose head is `targets[i]` in
/// [`Graph::csr`]. Both directions of an undirected edge carry their
/// own (equal) entry.
#[derive(Debug, Clone)]
pub struct CsrWeights {
    values: Vec<f64>,
    max: f64,
}

impl CsrWeights {
    /// Euclidean edge lengths: `points[i]` is the position of node `i`.
    pub fn euclidean(g: &Graph, points: &[Point]) -> Self {
        assert_eq!(points.len(), g.node_count(), "one point per node required");
        Self::from_fn(g, |u, v| points[u].distance(points[v]))
    }

    /// Arbitrary symmetric weights from `weight(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    pub fn from_fn(g: &Graph, mut weight: impl FnMut(NodeId, NodeId) -> f64) -> Self {
        let (offsets, targets) = g.csr32();
        let mut values = Vec::with_capacity(targets.len());
        let mut max = 0.0f64;
        for u in 0..g.node_count() {
            for &v in &targets[offsets[u] as usize..offsets[u + 1] as usize] {
                let w = weight(u, v as NodeId);
                assert!(w.is_finite() && w >= 0.0, "invalid edge weight {w} on ({u}, {v})");
                max = max.max(w);
                values.push(w);
            }
        }
        Self { values, max }
    }

    /// The flat weight array (CSR edge-slot order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The largest weight.
    pub fn max_weight(&self) -> f64 {
        self.max
    }
}

/// Ring-bucket count for the calendar queue: the active distance window
/// spans `max_weight`, i.e. `BUCKETS_PER_MAX` buckets plus slack for
/// boundary rounding. The ring is the next power of two so the cursor
/// wraps with a mask instead of a division.
const BUCKETS_PER_MAX: usize = 32;
const RING: usize = 64;

/// Reusable state for repeated single-source searches over graphs of up
/// to a fixed node count.
///
/// One scratch concurrently holds the result of one hop search
/// ([`SearchScratch::bfs`] / [`SearchScratch::min_hop_max_length`]) and
/// one length search ([`SearchScratch::dijkstra`] /
/// [`SearchScratch::geometric`] / the DAG pass of
/// `min_hop_max_length`); starting a new search of either kind
/// invalidates only that kind's previous result.
///
/// # Examples
///
/// ```
/// use wcds_graph::{Graph, SearchScratch};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2)]);
/// let mut s = SearchScratch::for_graph(&g);
/// s.bfs(&g, 0);
/// assert_eq!(s.hop(2), Some(2));
/// assert_eq!(s.hop(3), None);
/// s.bfs(&g, 2); // O(1) reset, arrays reused
/// assert_eq!(s.hop(0), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct SearchScratch {
    hops: EpochArray<u32>,
    /// Length results keyed by `f64::INFINITY` = unreached. Unlike
    /// `hops` this is sentinel- rather than epoch-stamped: an `f64`
    /// value plus a stamp pads the slot to 16 bytes and doubles the
    /// cache pressure of every random relaxation probe, while the
    /// sequential `fill(INFINITY)` reset costs ~`n` streamed bytes —
    /// noise next to the search it precedes.
    lens: Vec<f64>,
    /// BFS queue; after a search it holds the visit order (sorted by
    /// layer, ties by discovery order).
    queue: Vec<NodeId>,
    heap: BinaryHeap<HeapEntry>,
    /// Calendar-queue ring for [`SearchScratch::dijkstra_weighted`].
    buckets: Vec<Vec<(f64, u32)>>,
    /// Drain buffer: the current bucket is swapped out and expanded as a
    /// batch, so the stale checks of a whole batch are independent loads
    /// instead of a pop → check → expand dependency chain.
    spill: Vec<(f64, u32)>,
}

impl SearchScratch {
    /// Scratch for graphs of up to `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            hops: EpochArray::new(n),
            lens: vec![f64::INFINITY; n],
            queue: Vec::with_capacity(n),
            heap: BinaryHeap::new(),
            buckets: vec![Vec::new(); RING],
            spill: Vec::new(),
        }
    }

    /// Scratch sized for `g`.
    pub fn for_graph(g: &Graph) -> Self {
        Self::new(g.node_count())
    }

    /// Grows the scratch to cover `n` nodes (no-op if already large
    /// enough). Invalidates previous results.
    pub fn ensure(&mut self, n: usize) {
        if self.hops.len() < n {
            self.hops.resize(n);
            self.lens.resize(n, f64::INFINITY);
        }
        self.hops.reset();
        self.lens.fill(f64::INFINITY);
    }

    /// Single-source BFS; afterwards [`SearchScratch::hop`] reports hop
    /// distances and [`SearchScratch::visit_order`] the traversal order.
    pub fn bfs(&mut self, g: &Graph, source: NodeId) {
        self.multi_bfs(g, std::iter::once(source));
    }

    /// [`SearchScratch::bfs`] that may stop early once every *reachable*
    /// node with id `>= min_id` has its final hop distance (a BFS hop is
    /// final at discovery). All-sources pair sweeps that consume only
    /// pairs `(source, v ≥ min_id)` skip the tail of each traversal;
    /// passing `min_id = 0` still requires discovering every reachable
    /// node and so degenerates to a full BFS.
    ///
    /// After an early stop, hops of nodes `< min_id` may be missing even
    /// when reachable, and [`SearchScratch::visit_order`] covers only
    /// the discovered prefix. `hop(v) == None` for `v >= min_id` still
    /// means exactly "unreachable" — the stop happens only once no such
    /// node is outstanding.
    pub fn bfs_covering(&mut self, g: &Graph, source: NodeId, min_id: NodeId) {
        assert!(g.node_count() <= self.hops.len(), "scratch too small");
        let n = g.node_count();
        self.hops.reset();
        self.queue.clear();
        self.hops.set(source, 0);
        self.queue.push(source);
        let mut remaining = n - min_id.min(n) - usize::from(source >= min_id);
        if remaining == 0 {
            return;
        }
        let (offsets, targets) = g.csr32();
        let epoch = self.hops.epoch;
        let slots = self.hops.slots.as_mut_slice();
        let queue = &mut self.queue;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            // SAFETY: as in `multi_bfs` — queue entries and CSR targets
            // are node ids `< n <= slots.len()`, offsets bound targets.
            let du = unsafe { slots.get_unchecked(u).1 };
            let (s, e) = unsafe {
                (*offsets.get_unchecked(u) as usize, *offsets.get_unchecked(u + 1) as usize)
            };
            for i in s..e {
                let v = unsafe { *targets.get_unchecked(i) } as usize;
                let slot = unsafe { slots.get_unchecked_mut(v) };
                if slot.0 != epoch {
                    *slot = (epoch, du + 1);
                    queue.push(v);
                    if v >= min_id {
                        remaining -= 1;
                        if remaining == 0 {
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Multi-source BFS from the nearest of several sources.
    pub fn multi_bfs<I>(&mut self, g: &Graph, sources: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        assert!(g.node_count() <= self.hops.len(), "scratch too small");
        self.hops.reset();
        self.queue.clear();
        for s in sources {
            if !self.hops.is_set(s) {
                self.hops.set(s, 0);
                self.queue.push(s);
            }
        }
        let (offsets, targets) = g.csr32();
        let epoch = self.hops.epoch;
        let slots = self.hops.slots.as_mut_slice();
        let queue = &mut self.queue;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            // SAFETY: queue entries and CSR targets are node ids
            // `< node_count <= slots.len()` (asserted above); `u + 1 <
            // offsets.len()` and offsets bound `targets` by CSR
            // construction.
            let du = unsafe { slots.get_unchecked(u).1 };
            let (s, e) = unsafe {
                (*offsets.get_unchecked(u) as usize, *offsets.get_unchecked(u + 1) as usize)
            };
            for i in s..e {
                let v = unsafe { *targets.get_unchecked(i) } as usize;
                let slot = unsafe { slots.get_unchecked_mut(v) };
                if slot.0 != epoch {
                    *slot = (epoch, du + 1);
                    queue.push(v);
                }
            }
        }
    }

    /// Hop distance of `v` from the last BFS's source(s), `None` if
    /// unreachable.
    #[inline]
    pub fn hop(&self, v: NodeId) -> Option<u32> {
        self.hops.get(v)
    }

    /// Nodes reached by the last hop search, in visit order (layer by
    /// layer, discovery order within a layer).
    #[inline]
    pub fn visit_order(&self) -> &[NodeId] {
        &self.queue
    }

    /// Dijkstra from `source` over non-negative symmetric edge weights;
    /// afterwards [`SearchScratch::len_of`] reports distances.
    ///
    /// For repeated sweeps over the same graph, precompute the weights
    /// once and use the faster [`SearchScratch::dijkstra_weighted`].
    ///
    /// # Panics
    ///
    /// Panics if a weight is negative or non-finite.
    pub fn dijkstra<W>(&mut self, g: &Graph, source: NodeId, mut weight: W)
    where
        W: FnMut(NodeId, NodeId) -> f64,
    {
        assert!(g.node_count() <= self.lens.len(), "scratch too small");
        self.lens.fill(f64::INFINITY);
        self.heap.clear();
        self.lens[source] = 0.0;
        self.heap.push(HeapEntry { dist: 0.0, node: source });
        while let Some(HeapEntry { dist: du, node: u }) = self.heap.pop() {
            if self.lens[u] < du {
                continue; // stale entry
            }
            for v in g.adj(u) {
                let w = weight(u, v);
                assert!(w.is_finite() && w >= 0.0, "invalid edge weight {w} on ({u}, {v})");
                let cand = du + w;
                if cand < self.lens[v] {
                    self.lens[v] = cand;
                    self.heap.push(HeapEntry { dist: cand, node: v });
                }
            }
        }
    }

    /// Dijkstra over weights precomputed with [`CsrWeights`], using the
    /// calendar queue. Produces bit-identical distances to
    /// [`SearchScratch::dijkstra`] with the same weights (see the module
    /// docs for why), at a fraction of the queue cost.
    pub fn dijkstra_weighted(&mut self, g: &Graph, weights: &CsrWeights, source: NodeId) {
        self.dijkstra_weighted_radius(g, weights, source, f64::INFINITY);
    }

    /// [`SearchScratch::dijkstra_weighted`] that may stop once every
    /// node within distance `radius` of the source is settled.
    ///
    /// Distances of nodes `v` with `dist(source, v) <= radius` are
    /// **final and bit-identical** to a full run: buckets are drained in
    /// order, so when the cursor passes the bucket containing `radius`,
    /// every shorter path has been fully relaxed (the standard Dial /
    /// delta-stepping invariant — entry bucketing uses the same rounding
    /// as the cutoff, and IEEE multiply is monotone). Nodes beyond the
    /// radius may be unreached (`None`) or carry a not-yet-final
    /// overestimate, so callers must only read nodes they can certify
    /// are within `radius`. Pass `f64::INFINITY` for an ordinary full
    /// search.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is NaN.
    pub fn dijkstra_weighted_radius(
        &mut self,
        g: &Graph,
        weights: &CsrWeights,
        source: NodeId,
        radius: f64,
    ) {
        assert!(g.node_count() <= self.lens.len(), "scratch too small");
        assert_eq!(weights.values.len(), g.csr32().1.len(), "weights/graph mismatch");
        assert!(!radius.is_nan(), "radius must not be NaN");
        self.lens.fill(f64::INFINITY);
        let (offsets, targets) = g.csr32();
        let w = weights.values.as_slice();
        // bucket width: max weight spans BUCKETS_PER_MAX buckets; a
        // zero-weight graph degenerates to a plain FIFO in bucket 0
        let delta = if weights.max > 0.0 { weights.max / BUCKETS_PER_MAX as f64 } else { 1.0 };
        let inv_delta = 1.0 / delta;
        let mut spill = std::mem::take(&mut self.spill);
        let lens = self.lens.as_mut_slice();
        let buckets = self.buckets.as_mut_slice();
        for b in buckets.iter_mut() {
            b.clear();
        }
        lens[source] = 0.0;
        buckets[0].push((0.0, source as u32));
        // last bucket that can hold a path of length <= radius, under
        // the same `(d * inv_delta) as u64` rounding pushes use (the
        // saturating cast maps an infinite radius to u64::MAX)
        let k_stop = (radius * inv_delta) as u64;
        let mut live = 1usize;
        let mut k = 0u64; // absolute index of the current bucket
        while live > 0 {
            if buckets[k as usize & (RING - 1)].is_empty() {
                k += 1;
                if k > k_stop {
                    break; // everything within `radius` is settled
                }
                continue;
            }
            // Drain the whole bucket as a batch: the batch's stale
            // checks become independent loads (no pop → check → expand
            // chain), and upcoming expansions can be prefetched.
            // Entries this batch pushes back into bucket `k` land in
            // the (empty) swapped-in vector and are drained before the
            // cursor advances, exactly as per-entry popping would.
            std::mem::swap(&mut buckets[k as usize & (RING - 1)], &mut spill);
            live -= spill.len();
            for j in 0..spill.len() {
                // SAFETY: bucket entries and CSR targets are node ids
                // `< node_count <= lens.len()` (asserted above); offsets
                // bound `targets`, `w` has `targets`' length (asserted
                // above), masked ring indices are `< RING ==
                // buckets.len()`, and `j + 2` is bounds-checked before
                // the prefetch address computation (a prefetch itself
                // has no memory effects either way).
                let (du, u) = unsafe { *spill.get_unchecked(j) };
                if j + 2 < spill.len() {
                    let ahead = unsafe { spill.get_unchecked(j + 2) }.1 as usize;
                    prefetch(unsafe { lens.as_ptr().add(ahead) });
                    prefetch(unsafe { offsets.as_ptr().add(ahead) });
                }
                let u = u as usize;
                if unsafe { *lens.get_unchecked(u) } < du {
                    continue; // improved since pushed
                }
                let (s, e) = unsafe {
                    (*offsets.get_unchecked(u) as usize, *offsets.get_unchecked(u + 1) as usize)
                };
                for i in s..e {
                    let v = unsafe { *targets.get_unchecked(i) } as usize;
                    let cand = du + unsafe { *w.get_unchecked(i) };
                    let slot = unsafe { lens.get_unchecked_mut(v) };
                    if cand < *slot {
                        *slot = cand;
                        // cand ≥ du ⇒ its bucket is ≥ k mathematically;
                        // the max() guards the float-rounding boundary
                        // case, which would otherwise park the entry
                        // behind the cursor and hang the drain loop
                        let kb = ((cand * inv_delta) as u64).max(k);
                        unsafe { buckets.get_unchecked_mut(kb as usize & (RING - 1)) }
                            .push((cand, v as u32));
                        live += 1;
                    }
                }
            }
            spill.clear();
        }
        self.spill = spill;
    }

    /// Dijkstra over Euclidean edge lengths: the paper's `ℓ_G(u, ·)`.
    pub fn geometric(&mut self, g: &Graph, points: &[Point], source: NodeId) {
        self.dijkstra(g, source, |u, v| points[u].distance(points[v]));
    }

    /// For every node: the **maximum** Euclidean length over all
    /// *minimum-hop* paths from `source` (the paper's `ℓ_G'(u, ·)`).
    ///
    /// Fills both results: hop distances (as after
    /// [`SearchScratch::bfs`]) and lengths (as after
    /// [`SearchScratch::dijkstra`]). The BFS visit order doubles as the
    /// topological order of the shortest-path DAG, so no sort is needed.
    pub fn min_hop_max_length(&mut self, g: &Graph, points: &[Point], source: NodeId) {
        let weights = CsrWeights::euclidean(g, points);
        self.min_hop_max_length_weighted(g, &weights, source);
    }

    /// [`SearchScratch::min_hop_max_length`] over precomputed weights
    /// (`ℓ_G'` generalised to arbitrary non-negative lengths).
    ///
    /// Runs the BFS and the DAG relaxation **fused in one pass**: when
    /// `u` is dequeued every layer-`h(u)−1` predecessor has already been
    /// dequeued (BFS pops whole layers in order), so `u`'s length is
    /// final and can be propagated to layer `h(u)+1` immediately. The
    /// relaxations happen in the same order as the two-pass version
    /// (dequeue order = visit order, rows in CSR order), so the results
    /// are bit-identical.
    pub fn min_hop_max_length_weighted(
        &mut self,
        g: &Graph,
        weights: &CsrWeights,
        source: NodeId,
    ) {
        // min_id = n: no node qualifies for the early stop, full drain
        self.min_hop_core(g, weights, source, g.node_count());
    }

    /// [`SearchScratch::min_hop_max_length_weighted`] that may stop
    /// early once every reachable node with id `>= min_id` has final
    /// results. Unlike plain BFS, the max-length value of a node is
    /// final only when the node is **dequeued** (all its previous-layer
    /// predecessors have relaxed it), so the stop triggers on dequeues.
    /// The same caveats as [`SearchScratch::bfs_covering`] apply to
    /// nodes `< min_id`.
    pub fn min_hop_max_length_covering(
        &mut self,
        g: &Graph,
        weights: &CsrWeights,
        source: NodeId,
        min_id: NodeId,
    ) {
        self.min_hop_core(g, weights, source, min_id);
    }

    fn min_hop_core(&mut self, g: &Graph, weights: &CsrWeights, source: NodeId, min_id: usize) {
        assert!(g.node_count() <= self.hops.len(), "scratch too small");
        assert_eq!(weights.values.len(), g.csr32().1.len(), "weights/graph mismatch");
        let (offsets, targets) = g.csr32();
        let w = weights.values.as_slice();
        self.hops.reset();
        self.lens.fill(f64::INFINITY);
        self.queue.clear();
        self.hops.set(source, 0);
        self.lens[source] = 0.0;
        self.queue.push(source);
        let hop_epoch = self.hops.epoch;
        let slots = self.hops.slots.as_mut_slice();
        let lens = self.lens.as_mut_slice();
        let queue = &mut self.queue;
        let mut remaining = g.node_count() - min_id.min(g.node_count());
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            if u >= min_id {
                // u's length is final at dequeue; once the last id of
                // interest is final, the rest of the sweep is unused
                remaining -= 1;
                if remaining == 0 {
                    return;
                }
            }
            // SAFETY: queue entries and CSR targets are node ids
            // `< node_count <= slots.len()` (asserted above); offsets
            // bound `targets`, and `w` has `targets`' length (asserted
            // above).
            let du = unsafe { slots.get_unchecked(u).1 };
            let lu = unsafe { *lens.get_unchecked(u) };
            // an already-visited neighbor one layer further down has
            // exactly this slot content
            let next_layer = (hop_epoch, du + 1);
            let (s, e) = unsafe {
                (*offsets.get_unchecked(u) as usize, *offsets.get_unchecked(u + 1) as usize)
            };
            for i in s..e {
                let v = unsafe { *targets.get_unchecked(i) } as usize;
                let wv = unsafe { *w.get_unchecked(i) };
                let hop_slot = unsafe { slots.get_unchecked_mut(v) };
                if hop_slot.0 != hop_epoch {
                    *hop_slot = next_layer;
                    unsafe { *lens.get_unchecked_mut(v) = lu + wv };
                    queue.push(v);
                } else {
                    // Branchless max-update: whether v sits one layer
                    // down and whether the candidate wins are both
                    // data-dependent coin flips, so a conditional jump
                    // here mispredicts constantly; a select plus an
                    // unconditional store does not.
                    let cand = lu + wv;
                    let len_slot = unsafe { lens.get_unchecked_mut(v) };
                    let upd = (*hop_slot == next_layer) & (cand > *len_slot);
                    *len_slot = if upd { cand } else { *len_slot };
                }
            }
        }
    }

    /// Length distance of `v` from the last length search's source,
    /// `None` if unreachable.
    #[inline]
    pub fn len_of(&self, v: NodeId) -> Option<f64> {
        let l = self.lens[v];
        (l != f64::INFINITY).then_some(l)
    }

    /// Copies the hop results into the allocating `Vec<Option<u32>>`
    /// shape used by the public traversal API.
    pub fn hops_to_vec(&self, n: usize) -> Vec<Option<u32>> {
        (0..n).map(|v| self.hops.get(v)).collect()
    }

    /// Copies the length results into the allocating `Vec<Option<f64>>`
    /// shape used by the public shortest-path API.
    pub fn lens_to_vec(&self, n: usize) -> Vec<Option<f64>> {
        (0..n).map(|v| self.len_of(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_matches_public_api_across_reuse() {
        let g = generators::connected_gnp(80, 0.06, 5);
        let mut s = SearchScratch::for_graph(&g);
        for src in [0, 17, 63, 0, 41] {
            s.bfs(&g, src);
            let want = crate::traversal::bfs_distances(&g, src);
            for v in g.nodes() {
                assert_eq!(s.hop(v), want[v], "source {src}, node {v}");
            }
        }
    }

    #[test]
    fn visit_order_is_layer_monotone() {
        let g = generators::connected_gnp(60, 0.1, 2);
        let mut s = SearchScratch::for_graph(&g);
        s.bfs(&g, 3);
        let order = s.visit_order();
        assert_eq!(order.len(), 60, "connected graph fully visited");
        for w in order.windows(2) {
            assert!(s.hop(w[0]).unwrap() <= s.hop(w[1]).unwrap());
        }
    }

    #[test]
    fn bfs_and_dijkstra_coexist_in_one_scratch() {
        let g = generators::cycle(9);
        let mut s = SearchScratch::for_graph(&g);
        s.bfs(&g, 0);
        s.dijkstra(&g, 0, |_, _| 2.5);
        for v in g.nodes() {
            // both result sets remain readable
            assert_eq!(s.len_of(v), s.hop(v).map(|h| h as f64 * 2.5), "node {v}");
        }
    }

    #[test]
    fn unreachable_nodes_stay_unset_after_reuse() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
        let mut s = SearchScratch::for_graph(&g);
        s.bfs(&g, 0);
        assert_eq!(s.hop(2), None);
        s.bfs(&g, 2);
        // stale entries from the previous epoch must not leak
        assert_eq!(s.hop(0), None);
        assert_eq!(s.hop(4), None);
        assert_eq!(s.hop(3), Some(1));
    }

    #[test]
    fn epoch_wrap_resets_cleanly() {
        let g = generators::path(4);
        let mut s = SearchScratch::for_graph(&g);
        // force the wrap path
        s.hops.epoch = u32::MAX - 1;
        s.bfs(&g, 0); // epoch -> MAX
        assert_eq!(s.hop(3), Some(3));
        s.bfs(&g, 3); // wraps
        assert_eq!(s.hop(0), Some(3));
        assert_eq!(s.hop(3), Some(0));
    }

    #[test]
    fn scratch_grows_on_demand() {
        let small = generators::path(3);
        let big = generators::path(50);
        let mut s = SearchScratch::for_graph(&small);
        s.bfs(&small, 0);
        s.ensure(big.node_count());
        s.bfs(&big, 0);
        assert_eq!(s.hop(49), Some(49));
    }

    #[test]
    fn csr_weights_align_with_rows() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 3)]);
        let w = CsrWeights::from_fn(&g, |u, v| (u + v) as f64);
        let (offsets, targets) = g.csr32();
        for u in g.nodes() {
            let row = offsets[u] as usize..offsets[u + 1] as usize;
            for (&weight, &v) in w.values()[row.clone()].iter().zip(&targets[row]) {
                assert_eq!(weight, (u + v as usize) as f64);
            }
        }
        assert_eq!(w.max_weight(), 3.0);
    }

    #[test]
    #[should_panic(expected = "invalid edge weight")]
    fn csr_weights_reject_negative() {
        let g = generators::path(3);
        let _ = CsrWeights::from_fn(&g, |_, _| -1.0);
    }

    #[test]
    fn bucket_dijkstra_bit_identical_to_heap() {
        // random weighted graphs: the calendar queue must reproduce the
        // heap's distance array exactly, not approximately
        for seed in 0..12u64 {
            let g = generators::connected_gnp(70, 0.08, seed);
            // deterministic pseudo-random weights in (0, 1]
            let wf = |u: usize, v: usize| {
                let h = (u.min(v) * 31 + u.max(v)) as u64 ^ (seed << 7);
                let x = h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11;
                (x as f64 / (1u64 << 53) as f64).max(1e-6)
            };
            let weights = CsrWeights::from_fn(&g, wf);
            let mut a = SearchScratch::for_graph(&g);
            let mut b = SearchScratch::for_graph(&g);
            for src in [0usize, 33, 69] {
                a.dijkstra(&g, src, wf);
                b.dijkstra_weighted(&g, &weights, src);
                for v in g.nodes() {
                    assert_eq!(
                        a.len_of(v).map(f64::to_bits),
                        b.len_of(v).map(f64::to_bits),
                        "seed {seed}, source {src}, node {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_dijkstra_handles_zero_and_equal_weights() {
        let g = generators::cycle(10);
        let zero = CsrWeights::from_fn(&g, |_, _| 0.0);
        let mut s = SearchScratch::for_graph(&g);
        s.dijkstra_weighted(&g, &zero, 0);
        for v in g.nodes() {
            assert_eq!(s.len_of(v), Some(0.0), "node {v}");
        }
        let unit = CsrWeights::from_fn(&g, |_, _| 1.0);
        s.dijkstra_weighted(&g, &unit, 0);
        assert_eq!(s.len_of(5), Some(5.0));
        assert_eq!(s.len_of(9), Some(1.0));
    }

    #[test]
    fn radius_bounded_dijkstra_is_final_within_radius() {
        // every node whose full-search distance is <= radius must carry
        // exactly that distance (bitwise) after the bounded search
        for seed in 0..8u64 {
            let g = generators::connected_gnp(80, 0.07, seed);
            let wf = |u: usize, v: usize| {
                let h = (u.min(v) * 37 + u.max(v)) as u64 ^ (seed << 9);
                let x = h.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
                (x as f64 / (1u64 << 53) as f64).max(1e-6)
            };
            let weights = CsrWeights::from_fn(&g, wf);
            let mut full = SearchScratch::for_graph(&g);
            full.dijkstra_weighted(&g, &weights, 0);
            let want = full.lens_to_vec(g.node_count());
            let max_d = want.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
            let mut bounded = SearchScratch::for_graph(&g);
            for radius in [0.0, max_d * 0.3, max_d * 0.7, max_d, f64::INFINITY] {
                bounded.dijkstra_weighted_radius(&g, &weights, 0, radius);
                for v in g.nodes() {
                    if let Some(d) = want[v] {
                        if d <= radius {
                            assert_eq!(
                                bounded.len_of(v).map(f64::to_bits),
                                Some(d.to_bits()),
                                "seed {seed}, radius {radius}, node {v}"
                            );
                        } else if let Some(got) = bounded.len_of(v) {
                            // beyond the radius only overestimates may appear
                            assert!(got >= d, "seed {seed}, radius {radius}, node {v}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn radius_zero_still_settles_the_source() {
        let g = generators::path(5);
        let unit = CsrWeights::from_fn(&g, |_, _| 1.0);
        let mut s = SearchScratch::for_graph(&g);
        s.dijkstra_weighted_radius(&g, &unit, 2, 0.0);
        assert_eq!(s.len_of(2), Some(0.0));
    }

    #[test]
    fn radius_dijkstra_with_unreachable_nodes() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let unit = CsrWeights::from_fn(&g, |_, _| 1.0);
        let mut s = SearchScratch::for_graph(&g);
        s.dijkstra_weighted_radius(&g, &unit, 0, f64::INFINITY);
        assert_eq!(s.len_of(2), Some(2.0));
        assert_eq!(s.len_of(3), None);
        s.dijkstra_weighted_radius(&g, &unit, 0, 1.0);
        assert_eq!(s.len_of(1), Some(1.0));
        assert_eq!(s.len_of(4), None);
    }

    #[test]
    fn covering_bfs_matches_full_bfs_on_covered_ids() {
        for seed in 0..8u64 {
            let g = generators::connected_gnp(60, 0.08, seed);
            let mut full = SearchScratch::for_graph(&g);
            let mut cov = SearchScratch::for_graph(&g);
            for src in [0usize, 29, 59] {
                full.bfs(&g, src);
                for min_id in [0usize, src, 30, 59] {
                    cov.bfs_covering(&g, src, min_id);
                    for v in min_id..g.node_count() {
                        assert_eq!(
                            cov.hop(v),
                            full.hop(v),
                            "seed {seed}, src {src}, min_id {min_id}, node {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn covering_bfs_on_disconnected_graph() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]);
        let mut s = SearchScratch::for_graph(&g);
        s.bfs_covering(&g, 0, 3);
        // ids >= 3 in the source's component don't exist; the sweep must
        // terminate and report the reachable ones it saw correctly
        assert_eq!(s.hop(4), None);
        assert_eq!(s.hop(5), None);
    }

    #[test]
    fn covering_min_hop_matches_full_on_covered_ids() {
        use wcds_geom::deploy;
        for seed in 0..6u64 {
            let pts = deploy::uniform(70, 4.5, 4.5, seed);
            let udg = crate::UnitDiskGraph::build(pts, 1.0);
            let g = udg.graph();
            let weights = CsrWeights::euclidean(g, udg.points());
            let mut full = SearchScratch::for_graph(g);
            let mut cov = SearchScratch::for_graph(g);
            for src in [0usize, 35, 69] {
                full.min_hop_max_length_weighted(g, &weights, src);
                for min_id in [0usize, src, 40] {
                    cov.min_hop_max_length_covering(g, &weights, src, min_id);
                    for v in min_id..g.node_count() {
                        assert_eq!(
                            cov.len_of(v).map(f64::to_bits),
                            full.len_of(v).map(f64::to_bits),
                            "seed {seed}, src {src}, min_id {min_id}, node {v}"
                        );
                        assert_eq!(cov.hop(v), full.hop(v), "hops: seed {seed}, node {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_min_hop_matches_closure_version() {
        use wcds_geom::deploy;
        let pts = deploy::uniform(90, 5.0, 5.0, 4);
        let udg = crate::UnitDiskGraph::build(pts, 1.0);
        let g = udg.graph();
        let weights = CsrWeights::euclidean(g, udg.points());
        let mut s = SearchScratch::for_graph(g);
        for src in [0usize, 44, 89] {
            s.min_hop_max_length_weighted(g, &weights, src);
            let fast = s.lens_to_vec(g.node_count());
            let want = crate::shortest_path::min_hop_max_length(g, udg.points(), src);
            assert_eq!(
                fast.iter().map(|x| x.map(f64::to_bits)).collect::<Vec<_>>(),
                want.iter().map(|x| x.map(f64::to_bits)).collect::<Vec<_>>(),
                "source {src}"
            );
        }
    }
}
