use crate::{Edge, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A compact undirected simple graph over nodes `0..n`.
///
/// Adjacency is stored in **compressed sparse row** (CSR) form: one flat
/// `targets` array holding every adjacency list back to back, and an
/// `offsets` array marking where each node's slice begins. A node's
/// neighbors are therefore a contiguous, cache-resident slice — the
/// traversal kernels (BFS sweeps, Dijkstra, the dilation engine) walk
/// memory linearly instead of chasing one heap allocation per node.
///
/// Both arrays are `u32`: node ids and half-edge counts must fit
/// `u32::MAX` (the builder asserts), which halves adjacency bandwidth
/// versus pointer-width ids and keeps a one-million-node, average-degree
/// eleven topology under 100 MB. Callers that index with a neighbor use
/// [`Graph::adj`], which widens to [`NodeId`] on the fly.
///
/// Adjacency lists are kept **sorted**, which gives deterministic
/// iteration everywhere (important: distributed runs must be replayable)
/// and `O(log d)` adjacency tests.
///
/// `Graph` is immutable once built; construct one with [`GraphBuilder`],
/// [`Graph::from_edges`], or a generator from [`crate::generators`].
/// Mutation under churn (mobility) is handled by rebuilding — UDG
/// construction is `O(n + |E|)`, so rebuild cost never dominates.
///
/// # Examples
///
/// ```
/// use wcds_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(2, 1));
/// assert_eq!(g.neighbors(2), &[1, 3]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[u]..offsets[u + 1]` indexes `u`'s slice of `targets`;
    /// length `n + 1`. `u32` keeps the row index half the width of a
    /// pointer — the arrays must fit `2|E| ≤ u32::MAX` half-edges, which
    /// the builder asserts.
    offsets: Vec<u32>,
    /// All adjacency lists concatenated, each sorted ascending. The sole
    /// copy, narrow: ids fit `u32` by the builder's assert.
    targets: Vec<u32>,
    edge_count: usize,
}

impl Graph {
    /// An edgeless graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Self { offsets: vec![0; n + 1], targets: Vec::new(), edge_count: 0 }
    }

    /// Builds a graph on `n` nodes from an edge iterator.
    ///
    /// Duplicate edges (in either orientation) are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n` or an edge is a self-loop.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Assembles a graph directly from per-node sorted neighbor rows.
    ///
    /// `rows[u]` must be `u`'s complete neighbor list, sorted ascending,
    /// duplicate-free, self-loop-free, and symmetric (`v ∈ rows[u]` iff
    /// `u ∈ rows[v]`). This is the bulk path for builders that already
    /// produce canonical rows (the parallel UDG construction): it skips
    /// [`GraphBuilder`]'s global edge sort and yields the exact CSR the
    /// builder would, byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if the half-edge total is odd or overflows `u32`; row
    /// invariants are checked in debug builds only.
    pub(crate) fn from_sorted_rows(rows: Vec<Vec<u32>>) -> Self {
        let n = rows.len();
        assert!(n <= u32::MAX as usize, "node ids must fit u32: n = {n}");
        let half_edges: usize = rows.iter().map(Vec::len).sum();
        assert!(half_edges.is_multiple_of(2), "asymmetric rows: {half_edges} half-edges");
        assert!(half_edges <= u32::MAX as usize, "graph too large for u32 CSR offsets");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(half_edges);
        offsets.push(0u32);
        for (u, row) in rows.iter().enumerate() {
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row {u} not sorted unique");
            debug_assert!(!row.contains(&(u as u32)), "self-loop at {u}");
            targets.extend_from_slice(row);
            offsets.push(targets.len() as u32);
        }
        Self { offsets, targets, edge_count: half_edges / 2 }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count()
    }

    /// The sorted neighbor list of `u`, as one contiguous CSR slice of
    /// narrow `u32` ids.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[u32] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// The sorted neighbors of `u` widened to [`NodeId`], for call sites
    /// that index arrays with them.
    #[inline]
    pub fn adj(
        &self,
        u: NodeId,
    ) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator + '_ {
        self.neighbors(u).iter().map(|&v| v as NodeId)
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// The raw CSR arrays `(offsets, targets)`, both `u32`.
    ///
    /// `offsets` has `n + 1` entries; node `u`'s neighbors occupy
    /// `targets[offsets[u] as usize..offsets[u + 1] as usize]`. Exposed
    /// for benchmark introspection and bulk kernels; everything else
    /// should go through [`Graph::neighbors`].
    #[inline]
    pub fn csr32(&self) -> (&[u32], &[u32]) {
        (&self.offsets, &self.targets)
    }

    /// Maximum degree `Δ` over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.offsets.windows(2).map(|w| (w[1] - w[0]) as usize).max().unwrap_or(0)
    }

    /// Average degree `2|E|/n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.node_count() as f64
        }
    }

    /// Whether `u` and `v` are adjacent.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// All edges, each reported once with `u < v`, in ascending order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.edge_count);
        for u in self.nodes() {
            for v in self.adj(u) {
                if u < v {
                    out.push(Edge::new(u, v));
                }
            }
        }
        out
    }

    /// The subgraph containing only the given edges, on the same node set.
    ///
    /// # Panics
    ///
    /// Panics if an edge is not present in `self`.
    pub fn edge_subgraph<I>(&self, edges: I) -> Graph
    where
        I: IntoIterator<Item = Edge>,
    {
        let mut b = GraphBuilder::new(self.node_count());
        for e in edges {
            let (u, v) = e.endpoints();
            assert!(self.has_edge(u, v), "edge ({u}, {v}) not in graph");
            b.add_edge(u, v);
        }
        b.build()
    }

    /// The *weakly induced* subgraph of a node set `s`: same nodes, but
    /// only the edges with **at least one endpoint in `s`** (the paper's
    /// `G' = (V, E')`).
    ///
    /// # Examples
    ///
    /// ```
    /// use wcds_graph::Graph;
    ///
    /// // path 0-1-2-3; weakly inducing on {1} keeps edges 0-1 and 1-2.
    /// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
    /// let w = g.weakly_induced(&[1]);
    /// assert_eq!(w.edge_count(), 2);
    /// assert!(!w.has_edge(2, 3));
    /// ```
    pub fn weakly_induced(&self, s: &[NodeId]) -> Graph {
        let in_s = self.membership(s);
        self.filtered_rows(|u, v| in_s[u] || in_s[v])
    }

    /// The subgraph *induced* by node set `s`: edges with **both**
    /// endpoints in `s`. The node set is unchanged (non-members become
    /// isolated), so ids remain comparable across graphs.
    pub fn induced(&self, s: &[NodeId]) -> Graph {
        let in_s = self.membership(s);
        self.filtered_rows(|u, v| in_s[u] && in_s[v])
    }

    /// The subgraph keeping exactly the edges `(u, v)` with
    /// `keep(u, v)` true. `keep` must be symmetric. Filters the CSR rows
    /// directly — each output row is a subsequence of a sorted input
    /// row, so no re-sort (and no intermediate edge list) is needed.
    fn filtered_rows(&self, keep: impl Fn(NodeId, NodeId) -> bool) -> Graph {
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut targets = Vec::new();
        for u in 0..n {
            for &v in self.neighbors(u) {
                if keep(u, v as NodeId) {
                    targets.push(v);
                }
            }
            offsets.push(targets.len() as u32);
        }
        let edge_count = targets.len() / 2;
        Graph { offsets, targets, edge_count }
    }

    /// A membership bitmap for a node list.
    ///
    /// # Panics
    ///
    /// Panics if a listed node is out of range.
    pub fn membership(&self, s: &[NodeId]) -> Vec<bool> {
        let mut m = vec![false; self.node_count()];
        for &u in s {
            m[u] = true;
        }
        m
    }

    /// The union of this graph's edges with `other`'s (same node count).
    ///
    /// # Panics
    ///
    /// Panics if node counts differ.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(self.node_count(), other.node_count(), "node count mismatch");
        let mut set: BTreeSet<Edge> = self.edges().into_iter().collect();
        set.extend(other.edges());
        let mut b = GraphBuilder::new(self.node_count());
        for e in set {
            let (u, v) = e.endpoints();
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Whether `sub`'s edge set is a subset of this graph's.
    pub fn contains_subgraph(&self, sub: &Graph) -> bool {
        sub.node_count() == self.node_count()
            && sub.edges().iter().all(|e| {
                let (u, v) = e.endpoints();
                self.has_edge(u, v)
            })
    }

    /// Reassembles a graph from spliced CSR rows, re-validating the row
    /// invariants in debug builds.
    pub(crate) fn from_rows(offsets: Vec<u32>, targets: Vec<u32>, edge_count: usize) -> Graph {
        debug_assert_eq!(offsets.last().map(|&o| o as usize), Some(targets.len()));
        debug_assert_eq!(targets.len(), edge_count * 2);
        debug_assert!(offsets.windows(2).all(|w| {
            let row = &targets[w[0] as usize..w[1] as usize];
            row.windows(2).all(|p| p[0] < p[1])
        }));
        Graph { offsets, targets, edge_count }
    }

    /// A copy of `self` on `n_new` nodes with `added` edges inserted and
    /// `removed` edges deleted — the incremental-mutation fast path.
    ///
    /// `n_new` is the old node count or one more (a splice can append one
    /// node; dropping one is [`Graph::compacted_without`]'s job). Edge
    /// lists are canonical `(u, v)` with `u < v`. Untouched adjacency
    /// rows are copied as bulk spans; only rows incident to a delta edge
    /// are re-merged, preserving the sorted-targets invariant, so the
    /// cost is `O(n + |E|)` worth of `memcpy` plus `O(|Δ| log |Δ|)` of
    /// actual merging — no hashing, no re-sorting of the edge list.
    ///
    /// # Panics
    ///
    /// Panics if `n_new` is out of the allowed range, an endpoint is out
    /// of range, or an edge list is non-canonical. Debug builds also
    /// verify each added edge was absent and each removed edge present.
    pub fn spliced(
        &self,
        n_new: usize,
        added: &[(NodeId, NodeId)],
        removed: &[(NodeId, NodeId)],
    ) -> Graph {
        let n_old = self.node_count();
        assert!(
            n_old == n_new || n_old + 1 == n_new,
            "splice may append at most one node ({n_old} -> {n_new})"
        );
        // group the delta per incident row, both orientations
        let mut patch: BTreeMap<NodeId, (Vec<u32>, Vec<u32>)> = BTreeMap::new();
        for &(u, v) in added {
            assert!(u < v && v < n_new, "added edge ({u}, {v}) not canonical in-range");
            patch.entry(u).or_default().0.push(v as u32);
            patch.entry(v).or_default().0.push(u as u32);
        }
        for &(u, v) in removed {
            assert!(u < v && v < n_old, "removed edge ({u}, {v}) not canonical in-range");
            patch.entry(u).or_default().1.push(v as u32);
            patch.entry(v).or_default().1.push(u as u32);
        }
        for (adds, dels) in patch.values_mut() {
            adds.sort_unstable();
            dels.sort_unstable();
        }
        debug_assert!(
            self.edge_count + added.len() >= removed.len(),
            "removed edges exceed the edge count"
        );
        let edge_count =
            self.edge_count.saturating_add(added.len()).saturating_sub(removed.len());
        assert!(edge_count * 2 <= u32::MAX as usize, "graph too large for u32 CSR offsets");

        let mut offsets = Vec::with_capacity(n_new + 1);
        offsets.push(0u32);
        let mut targets: Vec<u32> = Vec::with_capacity(edge_count * 2);
        let mut row_cursor = 0; // next row still to emit
        let copy_span = |from: usize, to: usize, targets: &mut Vec<u32>, offsets: &mut Vec<u32>| {
            if from >= to {
                return;
            }
            let base = targets.len() as u32;
            let old_base = self.offsets[from];
            targets.extend_from_slice(
                &self.targets[old_base as usize..self.offsets[to] as usize],
            );
            offsets.extend((from + 1..=to).map(|r| base + (self.offsets[r] - old_base)));
        };
        for (&w, (adds, dels)) in &patch {
            copy_span(row_cursor, w.min(n_old), &mut targets, &mut offsets);
            let old_row: &[u32] = if w < n_old { self.neighbors(w) } else { &[] };
            merge_row(old_row, adds, dels, &mut targets);
            offsets.push(targets.len() as u32);
            row_cursor = w + 1;
        }
        copy_span(row_cursor, n_old, &mut targets, &mut offsets);
        offsets.resize(n_new + 1, targets.len() as u32); // appended node with no patch
        Self::from_rows(offsets, targets, edge_count)
    }

    /// A copy of `self` without node `u`: its incident edges vanish and
    /// every id above `u` shifts down by one (the maintenance layer's
    /// id-compaction rule for departures). Rows stay sorted because the
    /// shift is monotone. `O(n + |E|)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn compacted_without(&self, u: NodeId) -> Graph {
        let n = self.node_count();
        assert!(u < n, "compaction of out-of-range node {u} (n = {n})");
        let victim = u as u32;
        let deg_u = self.degree(u);
        let mut offsets = Vec::with_capacity(n);
        offsets.push(0u32);
        let mut targets = Vec::with_capacity(self.targets.len() - 2 * deg_u);
        for w in self.nodes() {
            if w == u {
                continue;
            }
            for &v in self.neighbors(w) {
                if v != victim {
                    targets.push(if v > victim { v - 1 } else { v });
                }
            }
            offsets.push(targets.len() as u32);
        }
        Self::from_rows(offsets, targets, self.edge_count - deg_u)
    }
}

/// Merges one sorted adjacency row with its sorted add/remove deltas.
fn merge_row(old: &[u32], adds: &[u32], dels: &[u32], out: &mut Vec<u32>) {
    let mut ai = 0;
    let mut di = 0;
    for &v in old {
        while ai < adds.len() && adds[ai] < v {
            out.push(adds[ai]);
            ai += 1;
        }
        debug_assert!(ai >= adds.len() || adds[ai] != v, "added edge already present at {v}");
        if di < dels.len() && dels[di] == v {
            di += 1;
            continue;
        }
        out.push(v);
    }
    out.extend_from_slice(&adds[ai..]);
    debug_assert_eq!(di, dels.len(), "removed edge missing from row");
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count)
            .finish()
    }
}

/// Incremental builder for [`Graph`].
///
/// Deduplicates edges and keeps adjacency sorted on
/// [`GraphBuilder::build`].
///
/// # Examples
///
/// ```
/// use wcds_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, collapsed
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Self { n, edges: Vec::new() }
    }

    /// Adds an undirected edge; duplicates are collapsed at build time.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert!(u < self.n && v < self.n, "edge ({u}, {v}) out of range for n = {}", self.n);
        assert_ne!(u, v, "self-loop ({u}, {u})");
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        self
    }

    /// Finalises the graph into CSR form.
    ///
    /// One counting pass sizes the rows, one fill pass writes them. The
    /// fill walks the `(u, v)`-sorted edge list once, appending `v` to
    /// row `u` and `u` to row `v`; row `w` therefore receives first its
    /// smaller neighbors (ascending, from edges `(y, w)`) and then its
    /// larger ones (ascending, from edges `(w, x)`), so every row comes
    /// out sorted without a per-row sort.
    pub fn build(&self) -> Graph {
        let mut sorted = self.edges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(
            sorted.len() * 2 <= u32::MAX as usize,
            "graph too large for u32 CSR offsets: {} edges",
            sorted.len()
        );
        assert!(self.n <= u32::MAX as usize, "node ids must fit u32: n = {}", self.n);
        let mut offsets = vec![0u32; self.n + 1];
        for &(u, v) in &sorted {
            offsets[u + 1] += 1;
            offsets[v + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut targets = vec![0u32; sorted.len() * 2];
        for &(u, v) in &sorted {
            targets[cursor[u] as usize] = v as u32;
            cursor[u] += 1;
            targets[cursor[v] as usize] = u as u32;
            cursor[v] += 1;
        }
        Graph { offsets, targets, edge_count: sorted.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn counts_and_degrees() {
        let g = path4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn has_edge_is_symmetric_and_irreflexive() {
        let g = path4();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn adj_widens_to_node_ids() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3)]);
        let wide: Vec<NodeId> = g.adj(2).collect();
        assert_eq!(wide, vec![0, 3, 4]);
    }

    #[test]
    fn edges_listed_once_ascending() {
        let g = path4();
        let es = g.edges();
        assert_eq!(es.len(), 3);
        assert_eq!(es[0].endpoints(), (0, 1));
        assert_eq!(es[2].endpoints(), (2, 3));
    }

    #[test]
    fn weakly_induced_keeps_incident_edges_only() {
        // star center 0 with leaves 1..4 plus leaf-leaf edge (3,4)
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4), (3, 4)]);
        let w = g.weakly_induced(&[0]);
        assert_eq!(w.edge_count(), 4);
        assert!(!w.has_edge(3, 4));
        assert_eq!(w.node_count(), 5);
    }

    #[test]
    fn weakly_induced_of_all_nodes_is_identity() {
        let g = path4();
        let all: Vec<_> = g.nodes().collect();
        assert_eq!(g.weakly_induced(&all), g);
    }

    #[test]
    fn weakly_induced_matches_builder_reference() {
        // the CSR row filter must reproduce the builder path bit for bit
        let n = 30;
        let edges = scrambled_edges(n, 80, 11);
        let g = Graph::from_edges(n, edges.iter().copied());
        let s: Vec<NodeId> = (0..n).step_by(3).collect();
        let in_s = g.membership(&s);
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            if in_s[u] || in_s[v] {
                b.add_edge(u, v);
            }
        }
        assert_eq!(g.weakly_induced(&s), b.build());
    }

    #[test]
    fn induced_requires_both_endpoints() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let h = g.induced(&[0, 1, 2]);
        assert_eq!(h.edge_count(), 2);
        assert!(h.has_edge(0, 1) && h.has_edge(1, 2));
        assert!(!h.has_edge(2, 3) && !h.has_edge(3, 0));
    }

    #[test]
    fn union_merges_edge_sets() {
        let a = Graph::from_edges(3, [(0, 1)]);
        let b = Graph::from_edges(3, [(1, 2), (0, 1)]);
        let u = a.union(&b);
        assert_eq!(u.edge_count(), 2);
    }

    #[test]
    fn contains_subgraph_checks_edges() {
        let g = path4();
        let sub = Graph::from_edges(4, [(0, 1)]);
        assert!(g.contains_subgraph(&sub));
        let not_sub = Graph::from_edges(4, [(0, 3)]);
        assert!(!g.contains_subgraph(&not_sub));
    }

    #[test]
    fn edge_subgraph_roundtrip() {
        let g = path4();
        let same = g.edge_subgraph(g.edges());
        assert_eq!(same, g);
    }

    #[test]
    #[should_panic(expected = "not in graph")]
    fn edge_subgraph_rejects_foreign_edges() {
        let _ = path4().edge_subgraph([Edge::new(0, 3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range() {
        GraphBuilder::new(2).add_edge(0, 2);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", path4()).is_empty());
    }

    /// Pseudo-random edge set over `n` nodes (deterministic LCG).
    fn scrambled_edges(n: usize, count: usize, seed: u64) -> BTreeSet<(NodeId, NodeId)> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut edges = BTreeSet::new();
        while edges.len() < count {
            let u = next() % n;
            let v = next() % n;
            if u != v {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        edges
    }

    #[test]
    fn spliced_matches_from_scratch_build() {
        let n = 40;
        let edges = scrambled_edges(n, 120, 7);
        let g = Graph::from_edges(n, edges.iter().copied());
        // remove every 5th existing edge, add fresh non-edges
        let removed: Vec<_> = edges.iter().copied().step_by(5).collect();
        let added: Vec<_> = scrambled_edges(n, 200, 8)
            .into_iter()
            .filter(|e| !edges.contains(e))
            .take(25)
            .collect();
        let spliced = g.spliced(n, &added, &removed);
        let mut want = edges.clone();
        for e in &removed {
            want.remove(e);
        }
        want.extend(added.iter().copied());
        assert_eq!(spliced, Graph::from_edges(n, want.iter().copied()));
        assert_eq!(spliced.edge_count(), want.len());
    }

    #[test]
    fn spliced_can_append_a_node() {
        let g = path4();
        let joined = g.spliced(5, &[(1, 4), (3, 4)], &[]);
        assert_eq!(joined, Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (1, 4), (3, 4)]));
        let isolated = g.spliced(5, &[], &[]);
        assert_eq!(isolated.node_count(), 5);
        assert_eq!(isolated.degree(4), 0);
        assert_eq!(isolated.edge_count(), 3);
    }

    #[test]
    fn spliced_with_empty_delta_is_identity() {
        let g = path4();
        assert_eq!(g.spliced(4, &[], &[]), g);
    }

    #[test]
    #[should_panic(expected = "at most one node")]
    fn spliced_rejects_node_drops() {
        let _ = path4().spliced(3, &[], &[]);
    }

    #[test]
    fn compacted_without_shifts_ids_down() {
        let n = 30;
        let edges = scrambled_edges(n, 90, 3);
        let g = Graph::from_edges(n, edges.iter().copied());
        for victim in [0, 7, 29] {
            let compacted = g.compacted_without(victim);
            let remapped = edges
                .iter()
                .copied()
                .filter(|&(u, v)| u != victim && v != victim)
                .map(|(u, v)| {
                    (if u > victim { u - 1 } else { u }, if v > victim { v - 1 } else { v })
                });
            assert_eq!(compacted, Graph::from_edges(n - 1, remapped), "victim {victim}");
        }
    }
}
