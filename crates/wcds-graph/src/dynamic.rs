//! A unit-disk graph under churn: `O(Δ)` topology deltas.
//!
//! [`crate::UnitDiskGraph`] is immutable — under mobility the old flow
//! was clone-all-points → rebuild spatial hash → rebuild CSR, `O(n+|E|)`
//! per mutation no matter how local the disturbance. [`DynamicUdg`]
//! keeps the [`GridIndex`] **alive across mutations** and derives each
//! edge delta from only the disturbed cells: a move inspects the moved
//! node's old adjacency row plus one 3×3-block probe at its new
//! position; a join probes once and appends; only a leave (id
//! compaction renames every node above the leaver) rebuilds the index.
//! The CSR is then spliced in place through [`Graph::spliced`] /
//! [`Graph::compacted_without`], which re-merge only the touched
//! adjacency rows and bulk-copy the rest.
//!
//! Every mutation returns a [`TopoDelta`] — the changed edges plus the
//! *seed* nodes whose incident edge set changed — which is exactly what
//! the 3-hop-bounded WCDS repair in `wcds-core::maintenance` consumes.
//! In debug builds each splice is checked against a from-scratch
//! [`crate::UnitDiskGraph::build`]; release-mode tests exercise the same
//! oracle through [`DynamicUdg::rebuilt_graph`].

use crate::{Graph, NodeId, UnitDiskGraph};
use wcds_geom::{GridIndex, Point};

/// The edge delta of one topology mutation.
///
/// Edge lists are canonical `(u, v)` with `u < v`, sorted ascending.
/// All ids are in the **post-mutation** id space, except
/// [`DynamicUdg::remove_node`]'s `removed` list: the vanished node has
/// no post-mutation id, so those edges are reported in the pre-removal
/// space (`seeds` is still post-mutation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopoDelta {
    /// Edges that appeared.
    pub added: Vec<(NodeId, NodeId)>,
    /// Edges that vanished.
    pub removed: Vec<(NodeId, NodeId)>,
    /// Nodes whose incident edge set changed (every endpoint of every
    /// changed edge, plus a joined node even when it arrives isolated),
    /// sorted ascending.
    pub seeds: Vec<NodeId>,
}

impl TopoDelta {
    /// Whether the mutation changed any adjacency.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// A unit-disk graph that mutates in `O(Δ)` instead of rebuilding.
///
/// # Examples
///
/// ```
/// use wcds_geom::Point;
/// use wcds_graph::DynamicUdg;
///
/// let mut udg = DynamicUdg::new(
///     vec![Point::new(0.0, 0.0), Point::new(0.8, 0.0), Point::new(2.0, 0.0)],
///     1.0,
/// );
/// assert!(udg.graph().has_edge(0, 1));
/// let delta = udg.move_node(1, Point::new(1.6, 0.0));
/// assert_eq!(delta.removed, vec![(0, 1)]);
/// assert_eq!(delta.added, vec![(1, 2)]);
/// assert_eq!(udg.graph(), &udg.rebuilt_graph());
/// ```
#[derive(Debug, Clone)]
pub struct DynamicUdg {
    points: Vec<Point>,
    radius: f64,
    index: GridIndex,
    graph: Graph,
}

impl DynamicUdg {
    /// Builds the initial state from a deployment.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite.
    pub fn new(points: Vec<Point>, radius: f64) -> Self {
        Self::from_udg(UnitDiskGraph::build(points, radius))
    }

    /// Adopts an already-built static UDG, adding the live index.
    pub fn from_udg(udg: UnitDiskGraph) -> Self {
        let (points, radius, graph) = udg.into_parts();
        let index = GridIndex::build(&points, radius);
        Self { points, radius, index, graph }
    }

    /// The current adjacency structure.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current node positions.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The transmission radius.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Moves node `u` to `p`, splicing the edge delta into the CSR.
    ///
    /// Cost: `u`'s old adjacency row + one grid probe at `p` + the
    /// splice (`O(Δ)` row merges over a bulk-copied CSR).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range or `p` has a non-finite coordinate.
    pub fn move_node(&mut self, u: NodeId, p: Point) -> TopoDelta {
        assert!(u < self.points.len(), "move of out-of-range node {u}");
        assert!(p.x.is_finite() && p.y.is_finite(), "non-finite position for node {u}");
        let old_pos = self.points.get(u).copied().unwrap_or(p);
        self.index.relocate(u, old_pos, p);
        if let Some(slot) = self.points.get_mut(u) {
            *slot = p;
        }
        let old_row: Vec<NodeId> = self.graph.adj(u).collect();
        let new_row = self.probe(p, Some(u));
        let (gained, lost) = sorted_diff(&new_row, &old_row);
        if gained.is_empty() && lost.is_empty() {
            return TopoDelta::default();
        }
        let mut added: Vec<(NodeId, NodeId)> = gained.iter().map(|&v| canonical(u, v)).collect();
        let mut removed: Vec<(NodeId, NodeId)> = lost.iter().map(|&v| canonical(u, v)).collect();
        added.sort_unstable();
        removed.sort_unstable();
        let mut seeds: Vec<NodeId> = gained.iter().chain(&lost).copied().collect();
        seeds.push(u);
        seeds.sort_unstable();
        self.graph = self.graph.spliced(self.points.len(), &added, &removed);
        self.debug_check_against_rebuild();
        TopoDelta { added, removed, seeds }
    }

    /// Moves several nodes at once, splicing the **net** edge delta into
    /// the CSR with a single row-merge pass. Later moves of the same
    /// node win; intra-batch toggles (a later move undoing an earlier
    /// one) cancel. The resulting topology is identical to applying
    /// [`DynamicUdg::move_node`] per entry, but the `O(n + |E|)` CSR
    /// splice is paid once per batch instead of once per move.
    ///
    /// `seeds` lists the endpoints of the net-changed edges only — a
    /// move that lands where it started (or whose edges all survive)
    /// contributes nothing, matching what a delta-driven repair needs.
    ///
    /// # Panics
    ///
    /// Panics if a node id is out of range or a position has a
    /// non-finite coordinate.
    pub fn move_nodes(&mut self, moves: &[(NodeId, Point)]) -> TopoDelta {
        // first pass: settle every position (last write wins) while
        // snapshotting each moved node's pre-batch adjacency row once
        let mut old_rows: std::collections::BTreeMap<NodeId, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for &(u, p) in moves {
            assert!(u < self.points.len(), "move of out-of-range node {u}");
            assert!(p.x.is_finite() && p.y.is_finite(), "non-finite position for node {u}");
            old_rows.entry(u).or_insert_with(|| self.graph.adj(u).collect());
            let old_pos = self.points.get(u).copied().unwrap_or(p);
            self.index.relocate(u, old_pos, p);
            if let Some(slot) = self.points.get_mut(u) {
                *slot = p;
            }
        }
        // second pass: diff each moved node's final-configuration row
        // against its snapshot. An edge between two moved endpoints
        // shows up in both diffs with the same verdict (both rows are
        // probed against final positions), so dedup below suffices.
        let mut added: Vec<(NodeId, NodeId)> = Vec::new();
        let mut removed: Vec<(NodeId, NodeId)> = Vec::new();
        for (&u, old_row) in &old_rows {
            let pos = self.points.get(u).copied();
            let Some(pos) = pos else { continue };
            let new_row = self.probe(pos, Some(u));
            let (gained, lost) = sorted_diff(&new_row, old_row);
            added.extend(gained.into_iter().map(|v| canonical(u, v)));
            removed.extend(lost.into_iter().map(|v| canonical(u, v)));
        }
        added.sort_unstable();
        added.dedup();
        removed.sort_unstable();
        removed.dedup();
        if added.is_empty() && removed.is_empty() {
            return TopoDelta::default();
        }
        let mut seeds: Vec<NodeId> =
            added.iter().chain(&removed).flat_map(|&(a, b)| [a, b]).collect();
        seeds.sort_unstable();
        seeds.dedup();
        self.graph = self.graph.spliced(self.points.len(), &added, &removed);
        self.debug_check_against_rebuild();
        TopoDelta { added, removed, seeds }
    }

    /// Adds a node at `p`; it receives the next id `n`. Returns the id
    /// and the delta. Appending keeps every existing row's sorted order:
    /// the new id is the maximum, so it lands at row ends.
    ///
    /// # Panics
    ///
    /// Panics if `p` has a non-finite coordinate.
    pub fn add_node(&mut self, p: Point) -> (NodeId, TopoDelta) {
        assert!(p.x.is_finite() && p.y.is_finite(), "non-finite position for joiner");
        let n = self.points.len();
        let neighbors = self.probe(p, None);
        self.index.push(p);
        self.points.push(p);
        let added: Vec<(NodeId, NodeId)> = neighbors.iter().map(|&v| (v, n)).collect();
        let mut seeds = neighbors;
        seeds.push(n);
        self.graph = self.graph.spliced(n + 1, &added, &[]);
        self.debug_check_against_rebuild();
        (n, TopoDelta { added, removed: Vec::new(), seeds })
    }

    /// Removes node `u`. **Ids above `u` shift down by one** (the
    /// maintenance layer's id-compaction rule). The spatial index is
    /// rebuilt (`O(n)` — every stored index changes name), and the CSR
    /// is compacted in one remap pass.
    ///
    /// `removed` lists `u`'s vanished edges in the pre-removal id space;
    /// `seeds` holds `u`'s former neighbors under their new ids.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn remove_node(&mut self, u: NodeId) -> TopoDelta {
        assert!(u < self.points.len(), "removal of out-of-range node {u}");
        let old_row: Vec<NodeId> = self.graph.adj(u).collect();
        let mut removed: Vec<(NodeId, NodeId)> =
            old_row.iter().map(|&v| canonical(u, v)).collect();
        removed.sort_unstable();
        self.points.remove(u);
        self.index = GridIndex::build(&self.points, self.radius);
        self.graph = self.graph.compacted_without(u);
        // the monotone shift preserves the row's ascending order
        let seeds: Vec<NodeId> =
            old_row.iter().map(|&v| if v > u { v - 1 } else { v }).collect();
        self.debug_check_against_rebuild();
        TopoDelta { added: Vec::new(), removed, seeds }
    }

    /// From-scratch rebuild of the current topology — the splice oracle.
    /// Tests assert `udg.graph() == &udg.rebuilt_graph()` after
    /// mutations (debug builds additionally check it after every one).
    pub fn rebuilt_graph(&self) -> Graph {
        let (_, _, graph) = UnitDiskGraph::build(self.points.clone(), self.radius).into_parts();
        graph
    }

    /// Sorted ids of all current points within `radius` of `p`,
    /// excluding `skip`.
    fn probe(&self, p: Point, skip: Option<NodeId>) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.index.for_each_within(&self.points, p, self.radius, |v| {
            if Some(v) != skip {
                out.push(v);
            }
        });
        out.sort_unstable();
        out
    }

    #[inline]
    fn debug_check_against_rebuild(&self) {
        debug_assert_eq!(
            self.graph,
            self.rebuilt_graph(),
            "spliced CSR diverged from a from-scratch build"
        );
    }
}

/// Canonical `(min, max)` edge representation.
#[inline]
fn canonical(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Symmetric difference of two sorted id lists: `(only in new, only in
/// old)`, each sorted.
fn sorted_diff(new_list: &[NodeId], old_list: &[NodeId]) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut gained = Vec::new();
    let mut lost = Vec::new();
    let mut ni = new_list.iter().copied().peekable();
    let mut oi = old_list.iter().copied().peekable();
    loop {
        match (ni.peek().copied(), oi.peek().copied()) {
            (Some(a), Some(b)) => {
                if a == b {
                    ni.next();
                    oi.next();
                } else if a < b {
                    gained.push(a);
                    ni.next();
                } else {
                    lost.push(b);
                    oi.next();
                }
            }
            (Some(a), None) => {
                gained.push(a);
                ni.next();
            }
            (None, Some(b)) => {
                lost.push(b);
                oi.next();
            }
            (None, None) => break,
        }
    }
    (gained, lost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcds_geom::deploy;
    use wcds_rng::{ChaCha12Rng, Rng};

    fn assert_matches_rebuild(udg: &DynamicUdg) {
        // release-mode oracle: the spliced CSR equals a from-scratch
        // build byte for byte (not just debug_assert coverage)
        assert_eq!(udg.graph(), &udg.rebuilt_graph());
    }

    #[test]
    fn moves_splice_exactly() {
        let mut udg = DynamicUdg::new(deploy::uniform(150, 5.0, 5.0, 11), 1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        for _ in 0..60 {
            let u = rng.gen_range(0..udg.node_count());
            let p = Point::new(rng.gen::<f64>() * 5.0, rng.gen::<f64>() * 5.0);
            let delta = udg.move_node(u, p);
            assert_matches_rebuild(&udg);
            for &(a, b) in &delta.added {
                assert!(udg.graph().has_edge(a, b));
                assert!(delta.seeds.binary_search(&a).is_ok());
                assert!(delta.seeds.binary_search(&b).is_ok());
            }
            for &(a, b) in &delta.removed {
                assert!(!udg.graph().has_edge(a, b));
            }
        }
    }

    #[test]
    fn noop_move_yields_empty_delta() {
        let mut udg = DynamicUdg::new(deploy::uniform(60, 4.0, 4.0, 3), 1.0);
        let p = udg.points()[5];
        let delta = udg.move_node(5, p);
        assert!(delta.is_empty());
        assert!(delta.seeds.is_empty());
        assert_matches_rebuild(&udg);
    }

    #[test]
    fn joins_append_and_leaves_compact() {
        let mut udg = DynamicUdg::new(deploy::uniform(80, 4.0, 4.0, 9), 1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(31);
        for step in 0..40 {
            if step % 3 == 2 && udg.node_count() > 10 {
                let u = rng.gen_range(0..udg.node_count());
                let deg = udg.graph().degree(u);
                let delta = udg.remove_node(u);
                assert_eq!(delta.removed.len(), deg);
                assert_eq!(delta.seeds.len(), deg);
            } else {
                let p = Point::new(rng.gen::<f64>() * 4.0, rng.gen::<f64>() * 4.0);
                let (id, delta) = udg.add_node(p);
                assert_eq!(id, udg.node_count() - 1);
                assert!(delta.seeds.contains(&id));
                assert_eq!(delta.added.len(), udg.graph().degree(id));
            }
            assert_matches_rebuild(&udg);
        }
    }

    #[test]
    fn isolated_join_still_seeds_itself() {
        let mut udg = DynamicUdg::new(deploy::uniform(30, 3.0, 3.0, 5), 1.0);
        let (id, delta) = udg.add_node(Point::new(100.0, 100.0));
        assert!(delta.is_empty());
        assert_eq!(delta.seeds, vec![id]);
        assert_matches_rebuild(&udg);
    }

    #[test]
    fn disconnecting_and_reconnecting_moves() {
        let mut udg = DynamicUdg::new(deploy::chain(6, 0.9), 1.0);
        let home = udg.points()[3];
        let away = udg.move_node(3, Point::new(50.0, 50.0));
        assert_eq!(away.added, vec![]);
        assert_eq!(away.removed.len(), 2);
        assert_matches_rebuild(&udg);
        let back = udg.move_node(3, home);
        assert_eq!(back.added.len(), 2);
        assert!(back.removed.is_empty());
        assert_matches_rebuild(&udg);
    }

    #[test]
    fn mirrors_the_static_builder_from_any_start() {
        let udg = DynamicUdg::new(deploy::uniform(500, 10.0, 10.0, 77), 1.0);
        assert_matches_rebuild(&udg);
    }
}
